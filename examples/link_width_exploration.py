#!/usr/bin/env python3
"""Future-system exploration: how wide a link does a storage device need?

This is the kind of question the paper builds the model for: sweep the
PCI-Express generation and width of the whole fabric and watch where the
interconnect stops being the bottleneck for a ``dd``-style sequential
read — including the counter-intuitive regime where a *faster* link
performs no better because the switch port cannot drain it and the
flow-control layer stalls the transmitter waiting for credits (the
paper's Figure 9(b), whose gem5 model shows the same overrun as
replay storms).

The 12-point sweep runs through :class:`repro.exp.SweepEngine`: points
fan out across worker processes and are memoised on disk, so the second
invocation answers from cache in milliseconds.

Run:  python examples/link_width_exploration.py [--workers N] [--fresh]
"""

import argparse
import shutil

from repro.analysis.report import Table
from repro.exp import Sweep, SweepEngine

BLOCK = 512 * 1024  # keep the sweep quick
CACHE_DIR = ".sweep-cache"
GENS = ("GEN1", "GEN2", "GEN3")
WIDTHS = (1, 2, 4, 8)


def build_sweep() -> Sweep:
    """Generation × width over the validation fabric, no startup cost."""
    sweep = Sweep("link_width_exploration")
    for gen in GENS:
        for width in WIDTHS:
            sweep.add(f"{gen}/x{width}", "repro.exp.points:dd_point",
                      block_bytes=BLOCK, startup_overhead=0, gen=gen,
                      root_link_width=width, device_link_width=width)
    return sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel worker processes "
                             "(default: $REPRO_SWEEP_WORKERS or 1)")
    parser.add_argument("--fresh", action="store_true",
                        help="drop the local result cache first")
    args = parser.parse_args()
    if args.fresh:
        shutil.rmtree(CACHE_DIR, ignore_errors=True)

    engine = SweepEngine(cache_dir=CACHE_DIR, workers=args.workers)
    result = engine.run(build_sweep())
    print(result.summary())

    table = Table("dd throughput vs link configuration", "width", "Gbps")
    stall_notes = []
    for gen in GENS:
        series = table.new_series(gen)
        for width in WIDTHS:
            point = result.results[f"{gen}/x{width}"]
            series.add(f"x{width}", point["throughput_gbps"])
            if point.get("fc_stall_ticks", 0) > 0:
                per_tlp = point["fc_stall_ticks"] / max(point["tlps_sent"], 1)
                stall_notes.append(
                    f"  {gen} x{width}: {per_tlp:,.0f} credit-stall ticks/TLP "
                    f"(the link outruns the switch port at this width)"
                )
    print(table.render("{:.2f}"))
    if stall_notes:
        print("\nflow-control pressure:")
        print("\n".join(stall_notes))
    print("\nReading: throughput stops scaling once the link outruns the")
    print("switch/root-complex ports — exactly the paper's x8 observation.")
    print(f"(results cached under {CACHE_DIR}/; rerun to see a full-cache hit)")


if __name__ == "__main__":
    main()
