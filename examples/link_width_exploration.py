#!/usr/bin/env python3
"""Future-system exploration: how wide a link does a storage device need?

This is the kind of question the paper builds the model for: sweep the
PCI-Express generation and width of the whole fabric and watch where the
interconnect stops being the bottleneck for a ``dd``-style sequential
read — including the counter-intuitive regime where a *faster* link
performs no better because switch-port buffers overflow and the
data-link layer replays packets (the paper's Figure 9(b)).

Run:  python examples/link_width_exploration.py
"""

from repro.analysis.report import Table, link_replay_stats
from repro.pcie.timing import PcieGen
from repro.system.topology import build_validation_system
from repro.workloads.dd import DdWorkload

BLOCK = 512 * 1024  # keep the sweep quick


def measure(gen: PcieGen, width: int):
    system = build_validation_system(gen=gen, root_link_width=width,
                                     device_link_width=width)
    dd = DdWorkload(system.kernel, system.disk_driver, BLOCK,
                    startup_overhead=0)
    system.kernel.spawn("dd", dd.run())
    system.run()
    stats = link_replay_stats(system.disk_link)
    return dd.result.throughput_gbps, stats["replay_fraction"]


def main() -> None:
    table = Table("dd throughput vs link configuration", "width", "Gbps")
    replay_notes = []
    for gen in (PcieGen.GEN1, PcieGen.GEN2, PcieGen.GEN3):
        series = table.new_series(gen.name)
        for width in (1, 2, 4, 8):
            gbps, replay = measure(gen, width)
            series.add(f"x{width}", gbps)
            if replay > 0.01:
                replay_notes.append(
                    f"  {gen.name} x{width}: {replay:.1%} of TLPs replayed "
                    f"(port buffers overflow at this width)"
                )
    print(table.render("{:.2f}"))
    if replay_notes:
        print("\nreliability-protocol pressure:")
        print("\n".join(replay_notes))
    print("\nReading: throughput stops scaling once the link outruns the")
    print("switch/root-complex ports — exactly the paper's x8 observation.")


if __name__ == "__main__":
    main()
