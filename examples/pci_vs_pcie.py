#!/usr/bin/env python3
"""Why PCI-Express exists: the same disk on a classic shared PCI bus
versus the PCI-Express fabric.

Section II of the paper contrasts the two interconnects qualitatively —
shared parallel bus with wait states and no split transactions versus
point-to-point serial links with packetized split transactions.  This
example runs the identical ``dd`` workload over both and prints the
quantitative version of that story, including the classic bus's ~50 %
cycle efficiency.

Run:  python examples/pci_vs_pcie.py
"""

from repro.pcie.timing import PcieGen
from repro.sim import ticks
from repro.system.topology import build_classic_pci_system, build_validation_system
from repro.workloads.dd import DdWorkload

BLOCK = 256 * 1024


def run_dd(system):
    dd = DdWorkload(system.kernel, system.disk_driver, BLOCK, startup_overhead=0)
    process = system.kernel.spawn("dd", dd.run())
    system.run()
    assert process.done
    return dd.result.throughput_gbps


def main() -> None:
    rows = []

    classic = build_classic_pci_system(clock_mhz=33)
    rows.append(("PCI 33 MHz shared bus", run_dd(classic)))
    bus = classic.devices["pci_bus"]
    stats = classic.sim.dump_stats()
    efficiency = next(v for k, v in stats.items() if k.endswith("pci_bus.efficiency"))

    classic66 = build_classic_pci_system(clock_mhz=66)
    rows.append(("PCI 66 MHz shared bus", run_dd(classic66)))

    for gen, width in ((PcieGen.GEN1, 1), (PcieGen.GEN2, 1), (PcieGen.GEN2, 4)):
        system = build_validation_system(gen=gen, root_link_width=max(width, 4),
                                         device_link_width=width)
        rows.append((f"PCIe {gen.name} x{width}", run_dd(system)))

    print(f"dd sequential read of {BLOCK >> 10} KB:\n")
    for name, gbps in rows:
        bar = "#" * max(1, int(gbps * 12))
        print(f"  {name:<24} {gbps:5.2f} Gbps  {bar}")
    print(f"\nclassic bus cycle efficiency: {efficiency:.0%} "
          f"(the paper: 'only approximately half of the bus cycles are "
          f"actually used to transfer data')")
    print(f"bus transactions: {int(bus.transactions.value())}, "
          f"target retries: {int(bus.retry_cycles.value())}")


if __name__ == "__main__":
    main()
