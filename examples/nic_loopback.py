#!/usr/bin/env python3
"""Drive the 8254x-pcie NIC through its e1000e-style driver.

Shows the full device-bring-up story the paper enables in gem5: the
driver probes via the module device table (device id 0x10D3), walks the
capability chain (PM → MSI → PCI-Express → MSI-X), tries MSI-X and MSI —
whose enable bits the capability structures hold at zero — falls back to
a legacy interrupt, maps BAR0, and then moves real descriptor-ring DMA
traffic: frames transmitted in loopback mode come back as received
frames, every descriptor and payload crossing the PCI-Express link.

Run:  python examples/nic_loopback.py
"""

from repro.sim import ticks
from repro.sim.process import WaitFor
from repro.system import build_system, nic_spec
from repro.workloads.mmio import MmioReadBench

FRAMES = 8
FRAME_BYTES = 1500
TX_BUFFER = 0x9100_0000
RX_BUFFER = 0x9200_0000


def main() -> None:
    # The machine as data: nic_spec() is the declarative description of
    # the Table II topology (a NIC directly on a root port); print its
    # JSON form with spec.to_json() to see exactly what gets built.
    system = build_system(nic_spec())
    driver = system.nic_driver
    print("probe results:")
    print(f"  matched {driver.found!r}")
    print(f"  capability chain: "
          f"{[hex(cap_id) for cap_id, __ in driver.found.capabilities]}")
    print(f"  interrupt mode: {driver.interrupt_mode} "
          f"(MSI/MSI-X enables are read-only zero, as in the paper)")
    print(f"  BAR0 mapped at {driver.bar0:#x}")

    done = {}

    def workload():
        yield from driver.bring_up()
        yield from driver.enable_loopback()
        received = []
        for i in range(FRAMES):
            rx_done = driver.post_rx_buffer(RX_BUFFER + i * 2048, 2048)
            received.append(rx_done)
        start = system.sim.curtick
        for i in range(FRAMES):
            tx_done = yield from driver.transmit(TX_BUFFER + i * 2048,
                                                 FRAME_BYTES)
            yield WaitFor(tx_done)
        for rx_done in received:
            yield WaitFor(rx_done)
        done["elapsed"] = system.sim.curtick - start

    system.kernel.spawn("loopback", workload())
    system.run()

    elapsed_us = ticks.to_us(done["elapsed"])
    nic = system.nic
    print(f"\nmoved {FRAMES} frames of {FRAME_BYTES}B out and back "
          f"in {elapsed_us:.1f} us")
    print(f"  TX: {int(nic.frames_transmitted.value())} frames, "
          f"{int(nic.tx_bytes.value())} bytes")
    print(f"  RX: {int(nic.frames_received.value())} frames, "
          f"{int(nic.rx_bytes.value())} bytes")
    print(f"  interrupts: {int(system.kernel.intc.dispatched.value())} dispatched")

    bench = MmioReadBench(system.kernel, driver.bar0 + 0x8, iterations=20)
    system.kernel.spawn("mmio", bench.run())
    system.run()
    print(f"\n4B MMIO register read latency: {bench.mean_latency_ns:.0f} ns "
          f"(the paper's Table II measures 318-517 ns across RC latencies)")


if __name__ == "__main__":
    main()
