#!/usr/bin/env python3
"""Quickstart: build the paper's validation system and run ``dd``.

Assembles the full machine — processor, MemBus, DRAM, IOCache, PCI
host, root complex, a Gen 2 x4 link to a PCI-Express switch, and a
Gen 2 x1 link to an IDE-like disk — boots it (real PCI enumeration with
BAR assignment and bridge-window programming), binds the disk driver,
and reads 1 MB with a ``dd``-style workload.

Run:  python examples/quickstart.py

Optionally emits the observability artifacts:

    python examples/quickstart.py --trace dd.jsonl \
        --chrome-trace dd.chrome.json --stats dd-stats.json

``dd.jsonl`` feeds ``repro.analysis.report.trace_latency_breakdown``;
``dd.chrome.json`` loads in chrome://tracing or Perfetto.
"""

import argparse

from repro.analysis.report import (
    format_latency_breakdown,
    link_replay_stats,
    trace_latency_breakdown,
)
from repro.obs import ChromeTraceSink, JsonlSink, write_stats_json
from repro.sim import ticks
from repro.system.topology import build_validation_system
from repro.workloads.dd import DdWorkload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", metavar="PATH",
                        help="write a JSONL TLP-lifecycle trace of the dd run")
    parser.add_argument("--chrome-trace", metavar="PATH",
                        help="write a chrome://tracing / Perfetto trace")
    parser.add_argument("--stats", metavar="PATH",
                        help="write the typed statistics document")
    args = parser.parse_args()

    system = build_validation_system()

    print("=== discovered PCI hierarchy (lspci-style) ===")
    print(system.kernel.enumerator.tree_text())
    driver = system.disk_driver
    print(f"\ndisk driver: BAR0 at {driver.bar0:#x}, "
          f"interrupt mode: {driver.interrupt_mode}, "
          f"IRQ line {driver.found.interrupt_line}")

    tracer = system.sim.tracer
    chrome_sink = None
    if args.trace or args.chrome_trace:
        tracer.categories = frozenset(("link", "engine"))
    if args.trace:
        tracer.attach(JsonlSink(args.trace, meta={"workload": "dd"}))
    if args.chrome_trace:
        chrome_sink = tracer.attach(ChromeTraceSink())

    dd = DdWorkload(system.kernel, driver, block_size=1 << 20,
                    startup_overhead=ticks.from_us(450))
    process = system.kernel.spawn("dd", dd.run())
    system.run()
    assert process.done

    if chrome_sink is not None:
        chrome_sink.write(args.chrome_trace)
    tracer.close()
    if args.stats:
        write_stats_json(system.sim, args.stats, meta={"workload": "dd"})

    result = dd.result
    print("\n=== dd if=/dev/disk of=/dev/zero bs=1M count=1 iflag=direct ===")
    print(f"{result.nbytes} bytes copied, "
          f"{ticks.to_ms(result.elapsed_ticks):.3f} ms, "
          f"{result.throughput_gbps:.2f} Gbps")
    print(f"transfer phase only: {result.transfer_gbps:.2f} Gbps")

    stats = link_replay_stats(system.disk_link)
    print(f"\ndisk link: {stats['tlps_sent']} TLPs sent, "
          f"{stats['replays']} replayed, {stats['timeouts']} timeouts")
    sector_ns = ticks.to_ns(system.disk.sector_transfer_ticks.mean)
    print(f"device-level sector throughput: "
          f"{4096 * 8 / sector_ns:.2f} Gbps "
          f"(paper: 3.072 Gbps on Gen 2 x1)")

    if args.trace:
        breakdown = trace_latency_breakdown(args.trace)
        print(f"\n{format_latency_breakdown(breakdown)}")
        print(f"trace written to {args.trace}")
    if args.chrome_trace:
        print(f"chrome trace written to {args.chrome_trace}")
    if args.stats:
        print(f"stats document written to {args.stats}")


if __name__ == "__main__":
    main()
