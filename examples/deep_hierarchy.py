#!/usr/bin/env python3
"""Build arbitrary PCI-Express fabrics from a declarative spec.

The paper's machines stop at one switch; the topology layer does not.
This example describes a depth-4 switch spine with four disks per
switch — 16 devices, the deepest behind four store-and-forward hops —
serialises the spec to JSON, rebuilds it from that JSON (proving a
bug report or sweep artifact can name the exact machine), boots it,
prints the enumerated bus tree, and runs ``dd`` against the deepest
disk with the protocol-invariant checker armed.

Run:  python examples/deep_hierarchy.py
"""

from repro.sim import ticks
from repro.system import TopologySpec, build_system, deep_hierarchy_spec
from repro.workloads.dd import DdWorkload

DEPTH = 4
FANOUT = 4
BLOCK_BYTES = 64 * 1024


def main() -> None:
    spec = deep_hierarchy_spec(DEPTH, FANOUT)
    text = spec.to_json()
    print(f"spec: {len(spec.devices())} devices behind "
          f"{len(spec.switches())} chained switches "
          f"({len(text.splitlines())} lines of JSON, digest {spec.digest()})")

    # Round-trip through the serialised form — what a sweep point or a
    # bug report would carry — and build from that.
    system = build_system(TopologySpec.from_json(text), check=True)
    print("\nenumerated configuration-space tree:")
    print(system.kernel.enumerator.tree_text())

    target = f"sw{DEPTH}_disk{FANOUT - 1}"
    dd = DdWorkload(system.kernel, system.drivers[target], BLOCK_BYTES,
                    startup_overhead=0)
    process = system.kernel.spawn("dd", dd.run())
    system.run(max_events=100_000_000)
    assert process.done, "dd did not finish"

    print(f"dd of {BLOCK_BYTES // 1024} KiB against {target!r} "
          f"({DEPTH} switch hops): {dd.result.throughput_gbps:.3f} Gbps "
          f"in {ticks.to_us(dd.result.elapsed_ticks):.1f} us")
    print(f"checker violations: {len(system.sim.checker.violations)}")
    assert not system.sim.checker.violations


if __name__ == "__main__":
    main()
