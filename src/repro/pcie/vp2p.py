"""Virtual PCI-to-PCI bridges (VP2P).

A VP2P is the software-visible face of a root port or switch port: a
type-1 configuration header (Figure 7) carrying the PCI-Express
capability structure at offset 0xD8 that identifies the port's role
(root port, switch upstream, switch downstream).  The paper configures
its three root-port VP2Ps with vendor 0x8086 and device IDs 0x9C90 /
0x9C92 / 0x9C94 — an Intel Wildcat Point chipset root-port configuration.

The enumeration software programs the VP2P's bus numbers and windows
through ordinary configuration writes; the root complex and switch then
*route live traffic* by reading those same registers, so the datapath
follows whatever topology software configured.
"""

from repro.pci.capabilities import PcieCapability, PciePortType
from repro.pci.header import PciBridgeFunction

INTEL_VENDOR_ID = 0x8086
WILDCAT_ROOT_PORT_IDS = (0x9C90, 0x9C92, 0x9C94)
PCIE_CAP_OFFSET = 0xD8


class VirtualP2PBridge(PciBridgeFunction):
    """A type-1 header + PCIe capability identifying the port role.

    Args:
        device_id: configuration device id (the paper's root ports use
            the Wildcat ids above).
        port_type: role advertised in the PCIe capability.
        link_speed: 1/2/3 for Gen 1/2/3 (capability registers only).
        link_width: advertised maximum link width.
    """

    def __init__(
        self,
        device_id: int = WILDCAT_ROOT_PORT_IDS[0],
        vendor_id: int = INTEL_VENDOR_ID,
        port_type: PciePortType = PciePortType.ROOT_PORT,
        link_speed: int = 2,
        link_width: int = 1,
    ):
        super().__init__(vendor_id, device_id)
        self.port_type = PciePortType(port_type)
        self.add_capability(
            PcieCapability(
                port_type=self.port_type,
                max_link_speed=link_speed,
                max_link_width=link_width,
                slot_implemented=self.port_type
                in (PciePortType.ROOT_PORT, PciePortType.DOWNSTREAM_SWITCH_PORT),
            ),
            offset=PCIE_CAP_OFFSET,
        )

    def __repr__(self) -> str:
        return (
            f"<VP2P {self.port_type.name} {self.vendor_id:04x}:{self.device_id:04x} "
            f"sec={self.secondary_bus} sub={self.subordinate_bus}>"
        )
