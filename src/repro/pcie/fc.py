"""Per-class credit-based flow control (posted / non-posted / completion).

Real PCI-Express never lets a receiver drop a TLP for want of buffer
space.  Instead each receiver *advertises* how many TLPs of each
flow-control class it can hold — **posted** (memory writes, messages),
**non-posted** (reads, config accesses) and **completion** — during
link initialisation (InitFC), the transmitter *consumes* one credit per
TLP it sends, and the receiver *returns* credits with UpdateFC DLLPs as
its buffers drain.  Because the classes have independent credit pools a
flood of non-posted requests can never occupy the buffers that
completions need: completions always have a reserved path forward,
which is the property that makes PCIe deadlock-free by construction.

This module is the shared vocabulary for that machinery:

* :class:`FlowClass` — the three classes, an ``IntEnum`` whose values
  match the plain ints stamped on every :class:`~repro.mem.packet.Packet`
  at construction (``repro.mem.packet`` cannot import us — we import
  it — so the packet layer carries ints and this enum mirrors them);
* :class:`CreditLedger` — one transmit-side and one receive-side
  account per link interface: advertised limits, cumulative consumed
  counts, receive-buffer occupancy and cumulative drain counts, plus
  the per-class credit-stall clocks behind the
  ``fc_stall_ticks_{p,np,cpl}`` statistics.

Credit arithmetic is *cumulative*, exactly like ACK sequence numbers:
the transmitter tracks ``consumed[cls]`` (total TLPs ever sent in the
class) against ``limit[cls]`` (total the receiver has ever allowed) and
may send while ``consumed < limit``.  An UpdateFC therefore carries an
absolute limit, later UpdateFCs subsume earlier ones, and a corrupted
(discarded) UpdateFC is healed by any subsequent one — no credit is
ever lost permanently, mirroring how the spec's sequence numbers
survive lost ACKs.
"""

import enum

from repro.mem.packet import FLOW_CPL, FLOW_NP, FLOW_P


class FlowClass(enum.IntEnum):
    """The three PCI-Express flow-control classes.

    Values equal the module-level ints in :mod:`repro.mem.packet`
    (``FLOW_P``/``FLOW_NP``/``FLOW_CPL``) so a packet's ``flow_class``
    slot indexes per-class arrays directly and converts to this enum
    for display.
    """

    P = FLOW_P
    NP = FLOW_NP
    CPL = FLOW_CPL

    @property
    def label(self) -> str:
        """Lower-case stat/trace suffix: ``"p"``, ``"np"``, ``"cpl"``."""
        return _LABELS[self]


_LABELS = {FlowClass.P: "p", FlowClass.NP: "np", FlowClass.CPL: "cpl"}

#: All classes in array order — index with ``Packet.flow_class``.
ALL_CLASSES = (FlowClass.P, FlowClass.NP, FlowClass.CPL)


class CreditLedger:
    """Both sides of one interface's credit accounting.

    The *transmit* account gates what we may put on the wire:
    ``tx_limit[cls]`` is the peer's cumulative advertisement and
    ``tx_consumed[cls]`` our cumulative sends; headroom is their
    difference.  The *receive* account tracks our own buffers:
    ``rx_capacity[cls]`` slots advertised at link-up, ``rx_held[cls]``
    TLPs currently buffered, and ``rx_drained[cls]`` cumulative drains
    — the absolute limit we re-advertise is ``capacity + drained``.

    The ledger also owns the per-class stall clocks: :meth:`stall_begin`
    stamps the tick a class first blocks on zero headroom,
    :meth:`stall_end` accumulates the elapsed ticks when credits
    return.  The accumulated ``stall_ticks`` feed the link interface's
    ``fc_stall_ticks_{p,np,cpl}`` statistics so a replay-storm analysis
    can attribute backpressure to the starved class.
    """

    __slots__ = (
        "rx_capacity",
        "rx_held",
        "rx_drained",
        "tx_limit",
        "tx_consumed",
        "stall_ticks",
        "_stall_since",
    )

    def __init__(self, p_credits: int, np_credits: int, cpl_credits: int):
        if min(p_credits, np_credits, cpl_credits) < 1:
            raise ValueError("every flow-control class needs at least one credit")
        self.rx_capacity = [p_credits, np_credits, cpl_credits]
        self.rx_held = [0, 0, 0]
        self.rx_drained = [0, 0, 0]
        # InitFC: the peer installs our capacities as its tx limits at
        # link-up; start our own tx account empty until it does.
        self.tx_limit = [0, 0, 0]
        self.tx_consumed = [0, 0, 0]
        self.stall_ticks = [0, 0, 0]
        self._stall_since = [-1, -1, -1]

    # -- transmit side ----------------------------------------------------
    def tx_headroom(self, cls: int) -> int:
        """Credits left to send in ``cls`` (cumulative limit − consumed)."""
        return self.tx_limit[cls] - self.tx_consumed[cls]

    def consume(self, cls: int) -> None:
        """Spend one ``cls`` credit for a first-time TLP transmission.

        Replays never call this: the credit was consumed when the TLP
        first went on the wire and the receiver's buffer slot is still
        (or again) accounted to it.
        """
        self.tx_consumed[cls] += 1

    def advertise(self, cls: int, limit: int) -> bool:
        """Install a cumulative credit limit from InitFC/UpdateFC.

        Returns True when the limit advanced.  Limits are monotone —
        UpdateFC DLLPs can arrive coalesced or be discarded by injected
        corruption, and a stale (lower) limit must never claw back
        credits already granted.
        """
        if limit <= self.tx_limit[cls]:
            return False
        self.tx_limit[cls] = limit
        return True

    # -- receive side -----------------------------------------------------
    def rx_accept(self, cls: int) -> None:
        """Account an accepted TLP into the ``cls`` receive buffer."""
        self.rx_held[cls] += 1

    def rx_drain(self, cls: int) -> None:
        """A buffered TLP left the ``cls`` receive buffer (credit frees)."""
        self.rx_held[cls] -= 1
        self.rx_drained[cls] += 1

    def rx_limit(self, cls: int) -> int:
        """The cumulative limit our next UpdateFC advertises."""
        return self.rx_capacity[cls] + self.rx_drained[cls]

    # -- stall attribution ------------------------------------------------
    def stall_begin(self, cls: int, now: int) -> None:
        """Start ``cls``'s stall clock (idempotent while stalled)."""
        if self._stall_since[cls] < 0:
            self._stall_since[cls] = now

    def stall_end(self, cls: int, now: int) -> None:
        """Stop ``cls``'s stall clock and accumulate the elapsed ticks."""
        since = self._stall_since[cls]
        if since >= 0:
            self.stall_ticks[cls] += now - since
            self._stall_since[cls] = -1

    def stalled(self, cls: int) -> bool:
        """True while ``cls``'s stall clock is running."""
        return self._stall_since[cls] >= 0

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> dict:
        """Both accounts plus the stall clocks, as JSON-safe lists.

        ``rx_capacity`` is construction-time configuration and is *not*
        captured — the rebuilt twin already has it, and restoring into a
        ledger with different capacities would silently corrupt the
        cumulative arithmetic, so :meth:`load_state_dict` only overlays
        the dynamic accounts.
        """
        return {
            "rx_held": list(self.rx_held),
            "rx_drained": list(self.rx_drained),
            "tx_limit": list(self.tx_limit),
            "tx_consumed": list(self.tx_consumed),
            "stall_ticks": list(self.stall_ticks),
            "stall_since": list(self._stall_since),
        }

    def load_state_dict(self, state: dict) -> None:
        """Overlay captured credit accounts onto this (rebuilt) ledger."""
        self.rx_held = [int(v) for v in state["rx_held"]]
        self.rx_drained = [int(v) for v in state["rx_drained"]]
        self.tx_limit = [int(v) for v in state["tx_limit"]]
        self.tx_consumed = [int(v) for v in state["tx_consumed"]]
        self.stall_ticks = [int(v) for v in state["stall_ticks"]]
        self._stall_since = [int(v) for v in state["stall_since"]]
