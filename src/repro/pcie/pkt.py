"""The ``pcie-pkt`` wrapper.

The paper: "Since we transmit both DLLPs and TLPs across the same link,
we create a new wrapper class, called pcie-pkt, to encapsulate both
DLLPs and TLPs.  A sequence number is assigned to a pcie-pkt
encapsulating a TLP prior to transmission.  Each pcie-pkt returns a size
depending on whether it encapsulates a TLP or a DLLP."

A :class:`PciePacket` therefore wraps either a memory packet (the TLP)
tagged with a data-link sequence number, or an ACK/NAK DLLP carrying the
acknowledged sequence number.
"""

import enum
from typing import Optional

from repro.mem.packet import Packet
from repro.pcie.timing import DLLP_WIRE_BYTES, TLP_OVERHEAD_BYTES


class DllpType(enum.Enum):
    ACK = "ack"
    NAK = "nak"


class PciePacket:
    """One unit of transmission on a unidirectional link."""

    __slots__ = ("tlp", "dllp_type", "seq", "is_replay")

    def __init__(
        self,
        tlp: Optional[Packet] = None,
        dllp_type: Optional[DllpType] = None,
        seq: int = -1,
    ):
        if (tlp is None) == (dllp_type is None):
            raise ValueError("a pcie-pkt wraps exactly one of a TLP or a DLLP")
        if dllp_type is not None and seq < -1:
            # seq == -1 is legal and means "nothing received yet" (it
            # acknowledges nothing); anything lower is a bug.
            raise ValueError("a DLLP must carry the sequence number it acknowledges")
        self.tlp = tlp
        self.dllp_type = dllp_type
        self.seq = seq
        # Marked when this transmission is a retransmission from the
        # replay buffer (statistics only).
        self.is_replay = False

    @classmethod
    def for_tlp(cls, tlp: Packet, seq: int) -> "PciePacket":
        return cls(tlp=tlp, seq=seq)

    @classmethod
    def ack(cls, seq: int) -> "PciePacket":
        return cls(dllp_type=DllpType.ACK, seq=seq)

    @classmethod
    def nak(cls, seq: int) -> "PciePacket":
        return cls(dllp_type=DllpType.NAK, seq=seq)

    @property
    def is_tlp(self) -> bool:
        return self.tlp is not None

    @property
    def is_dllp(self) -> bool:
        return self.dllp_type is not None

    def wire_bytes(self) -> int:
        """On-wire size per Table I (encoding cost lives in the symbol
        time, not here)."""
        if self.tlp is not None:
            return self.tlp.payload_size + TLP_OVERHEAD_BYTES
        return DLLP_WIRE_BYTES

    def __repr__(self) -> str:
        if self.is_tlp:
            replay = " replay" if self.is_replay else ""
            return f"<pcie-pkt TLP seq={self.seq}{replay} {self.tlp!r}>"
        return f"<pcie-pkt {self.dllp_type.value.upper()} seq={self.seq}>"
