"""The ``pcie-pkt`` wrapper.

The paper: "Since we transmit both DLLPs and TLPs across the same link,
we create a new wrapper class, called pcie-pkt, to encapsulate both
DLLPs and TLPs.  A sequence number is assigned to a pcie-pkt
encapsulating a TLP prior to transmission.  Each pcie-pkt returns a size
depending on whether it encapsulates a TLP or a DLLP."

A :class:`PciePacket` therefore wraps either a memory packet (the TLP)
tagged with a data-link sequence number, or a DLLP.  DLLPs come in two
families: ACK/NAK carry the acknowledged data-link sequence number, and
the three UpdateFC types (one per flow-control class, see
:mod:`repro.pcie.fc`) carry a *cumulative credit limit* in the same
``seq`` field — both families are cumulative counters, so both coalesce
to the maximum when queued behind a busy transmitter.

TLP flow-class classification (posted / non-posted / completion) is
stamped on the wrapped :class:`~repro.mem.packet.Packet` at
construction; :attr:`PciePacket.flow_class` exposes it.
"""

import enum
from typing import Optional

from repro.mem.packet import Packet
from repro.pcie.fc import FlowClass
from repro.pcie.timing import DLLP_WIRE_BYTES, TLP_OVERHEAD_BYTES


class DllpType(enum.Enum):
    """Data-link-layer packet kinds.

    ``ACK``/``NAK`` acknowledge TLP sequence numbers; the ``UPDATE_FC_*``
    types return flow-control credits, carrying the cumulative per-class
    credit limit in the pcie-pkt's ``seq`` field.
    """

    ACK = "ack"
    NAK = "nak"
    UPDATE_FC_P = "updatefc_p"
    UPDATE_FC_NP = "updatefc_np"
    UPDATE_FC_CPL = "updatefc_cpl"


#: UpdateFC DllpType for each :class:`FlowClass`, in class order.
UPDATE_FC_FOR = (
    DllpType.UPDATE_FC_P,
    DllpType.UPDATE_FC_NP,
    DllpType.UPDATE_FC_CPL,
)

#: Inverse of :data:`UPDATE_FC_FOR`: DllpType -> flow-class int.
FLOW_CLASS_FOR_DLLP = {t: i for i, t in enumerate(UPDATE_FC_FOR)}


class PciePacket:
    """One unit of transmission on a unidirectional link."""

    __slots__ = ("tlp", "dllp_type", "seq", "is_replay")

    def __init__(
        self,
        tlp: Optional[Packet] = None,
        dllp_type: Optional[DllpType] = None,
        seq: int = -1,
    ):
        if (tlp is None) == (dllp_type is None):
            raise ValueError("a pcie-pkt wraps exactly one of a TLP or a DLLP")
        if dllp_type is not None and seq < -1:
            # seq == -1 is legal and means "nothing received yet" (it
            # acknowledges nothing); anything lower is a bug.
            raise ValueError("a DLLP must carry the sequence number it acknowledges")
        self.tlp = tlp
        self.dllp_type = dllp_type
        self.seq = seq
        # Marked when this transmission is a retransmission from the
        # replay buffer (statistics only).
        self.is_replay = False

    @classmethod
    def for_tlp(cls, tlp: Packet, seq: int) -> "PciePacket":
        """Wrap a TLP with its data-link sequence number."""
        return cls(tlp=tlp, seq=seq)

    @classmethod
    def ack(cls, seq: int) -> "PciePacket":
        """An ACK DLLP acknowledging every TLP up to ``seq``."""
        return cls(dllp_type=DllpType.ACK, seq=seq)

    @classmethod
    def nak(cls, seq: int) -> "PciePacket":
        """A NAK DLLP acknowledging up to ``seq``, rejecting the rest."""
        return cls(dllp_type=DllpType.NAK, seq=seq)

    @classmethod
    def update_fc(cls, flow_class: int, limit: int) -> "PciePacket":
        """An UpdateFC DLLP advertising a cumulative ``limit`` for
        ``flow_class`` (a :class:`FlowClass` or its int value)."""
        return cls(dllp_type=UPDATE_FC_FOR[flow_class], seq=limit)

    @property
    def is_tlp(self) -> bool:
        """True when this pcie-pkt wraps a TLP."""
        return self.tlp is not None

    @property
    def is_dllp(self) -> bool:
        """True when this pcie-pkt wraps a DLLP."""
        return self.dllp_type is not None

    @property
    def flow_class(self) -> FlowClass:
        """The wrapped TLP's flow-control class (TLP pcie-pkts only)."""
        return FlowClass(self.tlp.flow_class)

    def wire_bytes(self) -> int:
        """On-wire size per Table I (encoding cost lives in the symbol
        time, not here)."""
        if self.tlp is not None:
            return self.tlp.payload_size + TLP_OVERHEAD_BYTES
        return DLLP_WIRE_BYTES

    def __repr__(self) -> str:
        if self.is_tlp:
            replay = " replay" if self.is_replay else ""
            return f"<pcie-pkt TLP seq={self.seq}{replay} {self.tlp!r}>"
        return f"<pcie-pkt {self.dllp_type.value.upper()} seq={self.seq}>"
