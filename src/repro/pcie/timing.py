"""PCI-Express wire timing.

Everything here follows Table I of the paper and the PCI-Express base
specification:

* per-generation lane rates (2.5 / 5 / 8 Gbps) and encodings (8b/10b for
  Gen 1/2, 128b/130b for Gen 3);
* TLP overhead: 12 B header + 2 B sequence number + 4 B LCRC + 2 B
  framing = 20 B on the wire in addition to the payload;
* DLLP overhead: 6 B (type + content + CRC-16) + 2 B framing = 8 B;
* the replay-timer formula, in symbol times::

      ((MaxPayloadSize + TLPOverhead) / Width * AckFactor
        + InternalDelay) * 3 + RxL0sAdjustment

  with the AckFactor table from the specification, InternalDelay and
  RxL0sAdjustment both 0 (the paper models neither internal delay nor
  low-power states), and the ACK timer set to 1/3 of the replay value.

A *symbol time* is the time to move one byte across one lane, including
the encoding overhead: 4 ns for Gen 1, 2 ns for Gen 2, and
(130/128) ÷ 1 GB/s ≈ 1.016 ns for Gen 3.
"""

import enum
import math
from fractions import Fraction

from repro.sim import ticks

# Table I: TLP overheads (bytes added around the payload on the wire).
TLP_HEADER_BYTES = 12
TLP_SEQUENCE_BYTES = 2
TLP_LCRC_BYTES = 4
TLP_FRAMING_BYTES = 2
TLP_OVERHEAD_BYTES = (
    TLP_HEADER_BYTES + TLP_SEQUENCE_BYTES + TLP_LCRC_BYTES + TLP_FRAMING_BYTES
)

# A DLLP is 6 bytes (type, payload, CRC-16) plus 2 framing symbols.
DLLP_WIRE_BYTES = 8

# The spec's TLP overhead constant used *inside the replay-timer
# formula* (it assumes the larger 4-DW header plus digest).
REPLAY_FORMULA_TLP_OVERHEAD = 28

VALID_WIDTHS = (1, 2, 4, 8, 12, 16, 32)

#: Module-level transmission-tick memo, keyed by ``(gen, width)``.  Each
#: entry maps ``wire_bytes -> ticks`` and is *shared* by every
#: :class:`LinkTiming` with that geometry: a deep fabric builds hundreds
#: of links but only ever sees a handful of distinct (gen, width) pairs
#: and wire sizes, so one warm cache serves them all instead of every
#: interface re-deriving the same Fraction arithmetic.
_TX_TICKS_CACHE: dict = {}

#: Memoised exact symbol times per generation (``PcieGen.symbol_time_exact``
#: builds a Fraction on every property read; link construction and the
#: fast path want a plain dict hit).
_SYMBOL_TIME_CACHE: dict = {}


def _shared_tx_cache(gen: "PcieGen", width: int) -> dict:
    """The shared ``wire_bytes -> ticks`` memo for one link geometry."""
    cache = _TX_TICKS_CACHE.get((gen, width))
    if cache is None:
        cache = _TX_TICKS_CACHE[(gen, width)] = {}
    return cache


def _shared_symbol_time(gen: "PcieGen") -> Fraction:
    """Memoised exact symbol time for ``gen``."""
    cached = _SYMBOL_TIME_CACHE.get(gen)
    if cached is None:
        cached = _SYMBOL_TIME_CACHE[gen] = gen.symbol_time_exact
    return cached


class PcieGen(enum.Enum):
    """A PCI-Express generation: (megatransfers/s, encoded bits/byte).

    Both stored exactly (the encoding ratio as a :class:`Fraction`) so
    that wire times come out in exact integer ticks — 84 wire bytes on a
    Gen 2 x1 link is exactly 168 ns, never 168.000000001.
    """

    GEN1 = (2_500, Fraction(10))
    GEN2 = (5_000, Fraction(10))
    GEN3 = (8_000, Fraction(130, 16))  # 128b/130b: 130 bits per 16 bytes

    @property
    def mt_per_second(self) -> int:
        return self.value[0]

    @property
    def gt_per_second(self) -> float:
        return self.value[0] / 1000.0

    @property
    def encoded_bits_per_byte(self) -> Fraction:
        return self.value[1]

    @property
    def symbol_time_exact(self) -> Fraction:
        """Ticks (exact) to move one byte over one lane, encoding
        included: bits-per-byte / (bits-per-tick)."""
        bits_per_tick = Fraction(self.mt_per_second * 1_000_000, ticks.S)
        return self.encoded_bits_per_byte / bits_per_tick

    @property
    def symbol_time_ticks(self) -> float:
        return float(self.symbol_time_exact)

    @property
    def effective_gbps_per_lane(self) -> float:
        """Payload bit rate of one lane after encoding."""
        return float(self.gt_per_second * 8.0 / self.encoded_bits_per_byte)

    @property
    def speed_code(self) -> int:
        """Link-speed code used in the PCIe capability registers."""
        return {"GEN1": 1, "GEN2": 2, "GEN3": 3}[self.name]


# The AckFactor table from the PCI-Express base specification
# (max-payload-size rows × link-width columns).  Payloads below 128 B
# clamp to the 128 B row, as the paper does with its 64 B cache lines.
_ACK_FACTOR_TABLE = {
    128: {1: 1.4, 2: 1.4, 4: 1.4, 8: 2.5, 12: 3.0, 16: 3.0, 32: 3.0},
    256: {1: 1.4, 2: 1.4, 4: 1.4, 8: 2.5, 12: 3.0, 16: 3.0, 32: 3.0},
    512: {1: 1.4, 2: 1.4, 4: 1.4, 8: 2.5, 12: 3.0, 16: 3.0, 32: 3.0},
    1024: {1: 2.4, 2: 2.4, 4: 2.4, 8: 2.5, 12: 3.0, 16: 3.0, 32: 3.0},
    2048: {1: 1.8, 2: 1.8, 4: 1.8, 8: 2.5, 12: 3.0, 16: 3.0, 32: 3.0},
    4096: {1: 1.5, 2: 1.5, 4: 1.5, 8: 2.5, 12: 3.0, 16: 3.0, 32: 3.0},
}


def ack_factor(max_payload: int, width: int) -> float:
    """The spec's AckFactor for a payload size and link width."""
    if width not in VALID_WIDTHS:
        raise ValueError(f"invalid link width x{width}")
    for row_payload in sorted(_ACK_FACTOR_TABLE):
        if max_payload <= row_payload:
            return _ACK_FACTOR_TABLE[row_payload][width]
    raise ValueError(f"max payload {max_payload} exceeds 4096 bytes")


def replay_timeout_ticks(gen: PcieGen, width: int, max_payload: int) -> int:
    """Replay-timer expiration per the spec formula, converted to ticks.

    InternalDelay and RxL0sAdjustment are zero, as in the paper.
    """
    symbols = (
        Fraction(max_payload + REPLAY_FORMULA_TLP_OVERHEAD, width)
        * Fraction(ack_factor(max_payload, width)).limit_denominator(100)
    ) * 3
    return max(1, math.ceil(symbols * gen.symbol_time_exact))


def ack_timer_ticks(gen: PcieGen, width: int, max_payload: int) -> int:
    """ACK-timer period: one third of the replay timeout (the paper)."""
    return max(1, replay_timeout_ticks(gen, width, max_payload) // 3)


def fc_watchdog_ticks(gen: PcieGen, width: int, max_payload: int) -> int:
    """Credit-stall watchdog period: twice the replay timeout.

    The PCIe spec obliges receivers to retransmit UpdateFC DLLPs
    periodically (at least every 30 µs) precisely so a corrupted,
    discarded UpdateFC cannot starve the transmitter forever.  Rather
    than streaming periodic DLLPs over idle links (which would defeat
    quiescence detection), the model arms this watchdog on the
    *transmitter* when it is credit-blocked with work pending; on
    expiry the peer re-advertises its current cumulative limits.  Two
    replay timeouts comfortably covers a full ACK/replay round trip, so
    the watchdog only fires when an UpdateFC genuinely went missing.
    """
    return 2 * replay_timeout_ticks(gen, width, max_payload)


class LinkTiming:
    """Wire timing of one link: a generation plus a lane count."""

    def __init__(self, gen: PcieGen = PcieGen.GEN2, width: int = 1):
        if width not in VALID_WIDTHS:
            raise ValueError(f"invalid link width x{width} (valid: {VALID_WIDTHS})")
        self.gen = gen
        self.width = width
        # transmission_ticks runs once per pcie-pkt and its exact
        # Fraction arithmetic is measurably hot; a run only ever sees a
        # handful of distinct wire sizes, so memoise per wire_bytes.
        # The memo lives at module level keyed by (gen, width): every
        # LinkTiming of the same geometry shares one warm cache instead
        # of rebuilding its own (deep fabrics construct hundreds).
        self._symbol_time = _shared_symbol_time(gen)
        self._tx_ticks_cache = _shared_tx_cache(gen, width)

    def transmission_ticks(self, wire_bytes: int) -> int:
        """Ticks a packet of ``wire_bytes`` occupies the link.

        Bytes are striped across the lanes, so the occupancy is
        ``ceil(bytes / width)`` symbol times.
        """
        cached = self._tx_ticks_cache.get(wire_bytes)
        if cached is not None:
            return cached
        symbols = -(-wire_bytes // self.width)
        result = max(1, math.ceil(symbols * self._symbol_time))
        self._tx_ticks_cache[wire_bytes] = result
        return result

    def tlp_wire_bytes(self, payload: int) -> int:
        return payload + TLP_OVERHEAD_BYTES

    @property
    def effective_gbps(self) -> float:
        """Encoded payload bandwidth of the whole link, one direction."""
        return self.gen.effective_gbps_per_lane * self.width

    def __repr__(self) -> str:
        return f"<LinkTiming {self.gen.name} x{self.width}>"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LinkTiming)
            and self.gen is other.gen
            and self.width == other.width
        )
