"""The PCI-Express link model (Figure 8 of the paper).

A :class:`PcieLink` is two unidirectional links plus a
:class:`PcieLinkInterface` at each end.  Each interface owns a master
and a slave port that bind to the neighbouring component (a device's
PIO/DMA ports, or a root-complex/switch port pair), and implements the
paper's simplified data-link layer plus PCIe's credit-based flow
control (see :mod:`repro.pcie.fc` and docs/ARCHITECTURE.md "Flow
control & ordering"):

* TLPs are wrapped in pcie-pkts, given a *sending sequence number*, and
  stored in a bounded **replay buffer** until acknowledged;
* every TLP belongs to a flow-control class — posted (P), non-posted
  (NP) or completion (CPL) — and a new TLP is transmitted only while
  the transmitter holds a credit for its class.  Credits are advertised
  by the receiver at link-up (InitFC, modelled as an instantaneous
  handshake), consumed per first transmission, and returned with
  UpdateFC DLLPs as the receiver's per-class RX buffers drain into the
  attached component.  Because the sender never transmits without a
  credit, an in-sequence TLP is *always* accepted into the RX buffer —
  backpressure surfaces as credit stalls at the transmitter
  (``fc_stall_ticks_{p,np,cpl}``), never as dropped deliveries;
* a TLP is accepted only when its sequence number equals the
  *receiving sequence number*; acceptance bumps the receive counter
  and schedules an ACK.  A component refusal (full buffers past the
  link) leaves the TLP in the RX buffer: the component's port retry
  resumes the drain, and completions queue separately from requests so
  a request flood can never block completions from draining;
* ACK DLLPs are coalesced: the receiver holds them back until the ACK
  timer (one third of the replay timeout) expires;
* an ACK purges every replay-buffer entry with a sequence number less
  than or equal to the acknowledged one and resets the replay timer;
* transmission priority is (1) DLLPs (ACK/NAK/UpdateFC), (2)
  retransmitted pcie-pkts, (3) new TLPs — and new TLPs are transmitted
  only while the replay buffer has space, which is the *source
  throttling* behaviour the paper's Figure 9(c) studies.

Optional error injection corrupts a deterministic pseudo-random
fraction of received TLPs, exercising the NAK path (the receiver NAKs,
the sender purges acknowledged TLPs and replays the rest).  A separate
``dllp_error_rate`` corrupts received DLLPs instead: per the spec a
corrupted DLLP is silently discarded.  A lost ACK leaves the sender's
replay buffer populated until the replay timer retransmits; a lost
UpdateFC is healed by the next one (credit limits are cumulative) or,
on an otherwise idle class, by the **FC watchdog** — a transmitter-side
timer armed while credit-starved with work pending that asks the peer
to re-advertise its current limits, modelling the spec's mandatory
periodic UpdateFC retransmission without streaming DLLPs over idle
links.  Recovery happens through timers, never deadlock.

When a sink is attached to the simulator's tracer, every interface
stamps ``link``-category trace points (``tlp_tx``, ``tlp_deliver``,
``tlp_refused``, ``tlp_out_of_seq``, ``tlp_corrupt``, ``dllp_tx``,
``dllp_rx``, ``dllp_corrupt``, ``replay_timeout``, ``fc_watchdog``)
carrying the tracer-local TLP id, the data-link sequence number and the
replay flag — the raw material for per-TLP latency attribution.
"""

import random
from collections import deque
from typing import Deque, Optional

from repro.mem.packet import FLOW_CPL, Packet
from repro.mem.port import MasterPort, SlavePort
from repro.pcie.fc import CreditLedger
from repro.pcie.pkt import FLOW_CLASS_FOR_DLLP, DllpType, PciePacket
from repro.pcie.timing import (
    LinkTiming,
    PcieGen,
    ack_timer_ticks,
    fc_watchdog_ticks,
    replay_timeout_ticks,
)
from repro.sim import ticks
from repro.sim.eventq import CallbackEvent, Event
from repro.sim.simobject import SimObject, Simulator


class _TxDoneEvent(Event):
    """Recycled end-of-serialization event: frees the link for the next
    pcie-pkt.

    One instance per :class:`UnidirectionalLink` suffices — the ``busy``
    flag guarantees a single transmission in flight, and the event has
    always fired (clearing ``busy``) before the next ``send`` can
    reschedule it.  The sender travels as a mutable slot instead of a
    per-packet closure.
    """

    __slots__ = ("link", "sender")

    def __init__(self, link: "UnidirectionalLink"):
        super().__init__(name="tx_done")
        self.link = link
        self.sender: Optional["PcieLinkInterface"] = None

    def process(self) -> None:
        """Clear the busy flag, then let the sender pick its next pkt."""
        sender = self.sender
        self.sender = None
        self.link.busy = False
        sender.link_free()


class _DeliverEvent(Event):
    """Recycled wire-delivery event: hands a pcie-pkt to the receiver.

    Deliveries outlive ``tx_done`` by the propagation delay, so several
    can be in flight per link; a small pool on the link recycles them.
    The event returns itself to the pool *before* invoking the receiver
    — per the recycling contract a fired event is immediately reusable,
    and a reentrant ``send`` triggered by the delivery then reuses this
    instance instead of growing the pool.
    """

    __slots__ = ("link", "receiver", "ppkt")

    def __init__(self, link: "UnidirectionalLink"):
        super().__init__(name="deliver")
        self.link = link
        self.receiver: Optional["PcieLinkInterface"] = None
        self.ppkt: Optional[PciePacket] = None

    def process(self) -> None:
        """Recycle into the link's pool, then deliver the payload."""
        receiver = self.receiver
        ppkt = self.ppkt
        self.receiver = None
        self.ppkt = None
        self.link._deliver_pool.append(self)
        receiver.receive_from_link(ppkt)


class UnidirectionalLink(SimObject):
    """One direction of a link: serializes pcie-pkts at the wire rate."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        parent: SimObject,
        timing: LinkTiming,
        propagation_delay: int,
    ):
        super().__init__(sim, name, parent)
        self.timing = timing
        self.propagation_delay = propagation_delay
        self.busy = False
        self._tx_done_event = _TxDoneEvent(self)
        self._deliver_pool: list = []
        # Installed by the partitioned-parallel engine when this wire
        # half crosses a partition boundary: called as
        # ``remote_delivery(ppkt, send_tick, arrival_tick)`` instead of
        # scheduling a local delivery event (repro.sim.partition).
        self.remote_delivery = None
        self.packets = self.stats.scalar("packets", "pcie-pkts transmitted")
        self.bytes = self.stats.scalar("bytes", "wire bytes transmitted")
        self.busy_ticks = self.stats.scalar("busy_ticks", "ticks spent transmitting")

    def send(self, ppkt: PciePacket, sender: "PcieLinkInterface",
             receiver: "PcieLinkInterface") -> None:
        """Serialize ``ppkt`` onto the wire towards ``receiver``."""
        if self.busy:
            raise RuntimeError(f"{self.full_name} is busy")
        wire = ppkt.wire_bytes()
        tx_time = self.timing.transmission_ticks(wire)
        self.busy = True
        self.packets.inc()
        self.bytes.inc(wire)
        self.busy_ticks.inc(tx_time)
        # tx_done must be scheduled before the delivery so their
        # insertion sequence (and thus dispatch order at equal ticks)
        # matches the historical per-packet-callback code exactly.
        eventq = self.eventq
        now = eventq.curtick
        tx_done = self._tx_done_event
        tx_done.sender = sender
        eventq.schedule(tx_done, now + tx_time)
        if self.remote_delivery is not None:
            self.remote_delivery(ppkt, now,
                                 now + tx_time + self.propagation_delay)
            return
        pool = self._deliver_pool
        deliver = pool.pop() if pool else _DeliverEvent(self)
        deliver.receiver = receiver
        deliver.ppkt = ppkt
        eventq.schedule(deliver, now + tx_time + self.propagation_delay)


class PcieLinkInterface(SimObject):
    """One end of a PCI-Express link: the TX/RX logic of Figure 8."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        parent: "PcieLink",
    ):
        super().__init__(sim, name, parent)
        self.link_parent = parent
        self.tx_link: Optional[UnidirectionalLink] = None  # wired by PcieLink
        self.peer: Optional["PcieLinkInterface"] = None
        # Installed by PcieLink under the turbo backend when the link is
        # statically eligible (repro.pcie.fastpath); None otherwise, so
        # the hot paths below pay one attribute load and branch.
        self._fp = None

        # Ports facing the attached component.  The master port carries
        # requests *off* the link into the component and responses from
        # the component *onto* the link; the slave port the reverse.
        self.master_port = MasterPort(
            self, "master",
            recv_timing_resp=self._recv_from_component,
            recv_req_retry=self._component_req_retry,
        )
        self.slave_port = SlavePort(
            self, "slave",
            recv_timing_req=self._recv_from_component,
            recv_resp_retry=self._component_resp_retry,
        )

        # -- TX state ------------------------------------------------------
        self.send_seq = 0
        self.replay_buffer: Deque[PciePacket] = deque()
        self.retransmit_queue: Deque[PciePacket] = deque()
        self.dllp_queue: Deque[PciePacket] = deque()
        # Component-facing input, split so completions never queue
        # behind credit-blocked requests (each bounded separately).
        self._in_req: Deque[Packet] = deque()
        self._in_cpl: Deque[Packet] = deque()
        self._replay_event = CallbackEvent(self._replay_timeout, name=f"{name}.replay")
        # Armed while a class is credit-starved with work pending; on
        # expiry the peer re-advertises (lost-UpdateFC recovery).
        self._fc_watchdog_event = CallbackEvent(
            self._fc_watchdog_fired, name=f"{name}.fc_watchdog"
        )

        # -- flow control ----------------------------------------------------
        # Both accounts of this end's credit state: what we may send
        # (tx_*, installed by InitFC/UpdateFC from the peer) and what we
        # have advertised and buffered (rx_*).
        self.fc = CreditLedger(
            parent.p_credits, parent.np_credits, parent.cpl_credits
        )

        # -- RX state --------------------------------------------------------
        self.recv_seq = 0
        # Per-class receive buffers backing the advertised credits:
        # completions drain through our slave port, requests (P and NP,
        # in arrival order) through our master port.
        self._rx_req: Deque[Packet] = deque()
        self._rx_cpl: Deque[Packet] = deque()
        self._ack_event = CallbackEvent(self._ack_timer_fired, name=f"{name}.ack")
        self._have_unacked_delivery = False
        # Seeded with a string for run-to-run determinism (str seeding
        # does not go through randomized str.__hash__).
        self._rng = random.Random(f"{parent.error_seed}:{parent.full_name}.{name}")

        # -- statistics ----------------------------------------------------
        s = self.stats
        self.tlps_sent = s.scalar("tlps_sent", "first-time TLP transmissions")
        self.tlp_replays = s.scalar("tlp_replays", "TLP retransmissions")
        self.timeouts = s.scalar("timeouts", "replay-timer expirations")
        self.acks_sent = s.scalar("acks_sent")
        self.naks_sent = s.scalar("naks_sent")
        self.acks_received = s.scalar("acks_received")
        self.fc_updates_sent = s.scalar(
            "fc_updates_sent", "UpdateFC DLLPs transmitted"
        )
        self.fc_updates_received = s.scalar(
            "fc_updates_received", "UpdateFC DLLPs received intact"
        )
        self.fc_watchdog_fires = s.scalar(
            "fc_watchdog_fires", "credit-stall watchdog expirations"
        )
        self.delivered = s.scalar(
            "delivered", "TLPs accepted into the receive buffers"
        )
        self.delivery_refused = s.scalar(
            "delivery_refused",
            "RX-buffer drain attempts refused by the attached port",
        )
        self.out_of_seq = s.scalar("out_of_seq", "TLPs discarded by the sequence check")
        self.corrupted = s.scalar("corrupted", "TLPs hit by injected errors")
        self.dllp_corrupted = s.scalar(
            "dllp_corrupted", "DLLPs hit by injected errors (discarded)"
        )
        fc = self.fc
        s.formula(
            "fc_stall_ticks_p", lambda: fc.stall_ticks[0],
            "ticks new posted TLPs waited on credits",
        )
        s.formula(
            "fc_stall_ticks_np", lambda: fc.stall_ticks[1],
            "ticks new non-posted TLPs waited on credits",
        )
        s.formula(
            "fc_stall_ticks_cpl", lambda: fc.stall_ticks[2],
            "ticks new completion TLPs waited on credits",
        )

        def _replay_fraction() -> float:
            # An idle interface has sent nothing: its replay fraction is
            # 0.0, not a ZeroDivisionError at stats-dump time.
            total = self.tlps_sent.value() + self.tlp_replays.value()
            return self.tlp_replays.value() / total if total else 0.0

        s.formula(
            "replay_fraction",
            _replay_fraction,
            "fraction of TLP transmissions that were replays",
        )

        # Protocol-invariant hooks (repro.check): the checker is cached
        # by SimObject.__init__; registration feeds the quiescence
        # watchdog that flags undrained replay buffers as deadlocks.
        self.checker.register_link_interface(self)

    # -- convenience -----------------------------------------------------------
    @property
    def replay_buffer_size(self) -> int:
        """Shared replay-buffer capacity (all classes)."""
        return self.link_parent.replay_buffer_size

    @property
    def input_queue_size(self) -> int:
        """Per-queue bound on the component-facing input queues."""
        return self.link_parent.input_queue_size

    @property
    def input_queue(self) -> Deque[Packet]:
        """Combined view of both input queues (requests then
        completions) — diagnostics and quiescence checks only; the
        bounded queues themselves are per-class."""
        return self._in_req + self._in_cpl

    @property
    def replay_timeout(self) -> int:
        """Replay-timer period in ticks."""
        return self.link_parent.replay_timeout

    @property
    def ack_period(self) -> int:
        """ACK-coalescing timer period in ticks."""
        return self.link_parent.ack_period

    @property
    def fc_watchdog(self) -> int:
        """Credit-stall watchdog period in ticks."""
        return self.link_parent.fc_watchdog

    # ==================== TX: component -> link =========================
    def _recv_from_component(self, pkt: Packet) -> bool:
        """A TLP offered by the attached component (request via our slave
        port or response via our master port)."""
        fp = self._fp
        if fp is not None and fp.active:
            # Late-apply the burst's earlier virtual actions before the
            # queues change: a past credit-grant kick must not see the
            # TLP being offered now.
            fp.before_mutation(self)
        queue = self._in_cpl if pkt.is_response else self._in_req
        if len(queue) >= self.input_queue_size:
            return False
        queue.append(pkt)
        self._kick_tx()
        return True

    def _component_req_retry(self) -> None:
        """The component can accept a previously-refused delivery again:
        resume draining the request receive buffer."""
        fp = self._fp
        if fp is not None and fp.active:
            fp.before_rx_mutation()
        self._drain_rx()

    def _component_resp_retry(self) -> None:
        """Symmetric to :meth:`_component_req_retry` for completions."""
        fp = self._fp
        if fp is not None and fp.active:
            fp.before_rx_mutation()
        self._drain_rx()

    def _kick_tx(self) -> None:
        fp = self._fp
        if fp is not None:
            if fp.active:
                fp.notify_tx(self)
                return
            if fp.try_engage(self):
                return
        if self.tx_link is None or self.tx_link.busy:
            return
        ppkt = self._pick_next()
        if ppkt is None:
            return
        trc = self.tracer
        if trc.enabled:
            if ppkt.is_tlp:
                trc.emit(self.curtick, "link", self.full_name, "tlp_tx",
                         tlp=trc.tlp_id(ppkt.tlp.req_id), seq=ppkt.seq,
                         replay=ppkt.is_replay, resp=ppkt.tlp.is_response)
            else:
                trc.emit(self.curtick, "link", self.full_name, "dllp_tx",
                         kind=ppkt.dllp_type.value, seq=ppkt.seq)
        self.tx_link.send(ppkt, self, self.peer)
        if ppkt.is_tlp and not self._replay_event.scheduled:
            self.eventq.schedule_after(self._replay_event, self.replay_timeout)

    def _pick_next(self) -> Optional[PciePacket]:
        """Select the next pcie-pkt per the paper's priority order."""
        if self.dllp_queue:
            ppkt = self.dllp_queue.popleft()
            dllp_type = ppkt.dllp_type
            if dllp_type is DllpType.ACK:
                self.acks_sent.inc()
            elif dllp_type is DllpType.NAK:
                self.naks_sent.inc()
            else:
                self.fc_updates_sent.inc()
            return ppkt
        while self.retransmit_queue:
            ppkt = self.retransmit_queue.popleft()
            if ppkt in self.replay_buffer:  # not ACKed while waiting
                ppkt.is_replay = True
                self.tlp_replays.inc()
                return ppkt
        if len(self.replay_buffer) < self.replay_buffer_size:
            # New TLPs spend a credit of their class on first
            # transmission (replays above never re-consume: the
            # receiver's buffer slot is still accounted to the TLP).
            # Completions first — they hold a dedicated end-to-end
            # path, and a credit-blocked class must not block the
            # other queue.
            fc = self.fc
            queue = self._in_cpl
            if queue:
                if fc.tx_headroom(FLOW_CPL) > 0:
                    return self._wrap_new_tlp(queue.popleft())
                self._fc_blocked(FLOW_CPL)
            queue = self._in_req
            if queue:
                cls = queue[0].flow_class
                if fc.tx_headroom(cls) > 0:
                    return self._wrap_new_tlp(queue.popleft())
                self._fc_blocked(cls)
        return None

    def _wrap_new_tlp(self, pkt: Packet) -> PciePacket:
        """Sequence a first-time TLP, consuming one credit of its class."""
        self.fc.consume(pkt.flow_class)
        ppkt = PciePacket.for_tlp(pkt, self.send_seq)
        self.send_seq += 1
        self.replay_buffer.append(ppkt)
        self.tlps_sent.inc()
        ck = self.checker
        if ck.enabled:
            ck.link_tlp_queued(self, ppkt)
        self._issue_component_retries()
        return ppkt

    def _issue_component_retries(self) -> None:
        """Input-queue space freed: let the component retry refusals."""
        if (self.slave_port.retry_owed
                and len(self._in_req) < self.input_queue_size):
            self.slave_port.send_retry_req()
        if (self.master_port.resp_retry_owed
                and len(self._in_cpl) < self.input_queue_size):
            self.master_port.send_retry_resp()

    def link_free(self) -> None:
        """Our unidirectional link finished a transmission."""
        self._kick_tx()

    # -- credit stalls -------------------------------------------------------
    def _fc_blocked(self, cls: int) -> None:
        """A new TLP of ``cls`` is ready but its credits are exhausted:
        start the class's stall clock and arm the FC watchdog."""
        fc = self.fc
        if not fc.stalled(cls):
            fc.stall_begin(cls, self.curtick)
        if not self._fc_watchdog_event.scheduled:
            self.eventq.schedule_after(self._fc_watchdog_event, self.fc_watchdog)

    def _fc_watchdog_fired(self) -> None:
        """Credit-starved for a full watchdog period: an UpdateFC was
        probably lost to corruption.  Ask the peer to re-advertise its
        cumulative limits (the model's stand-in for the spec's periodic
        UpdateFC retransmission) and re-arm while still starved."""
        fc = self.fc
        if not (fc.stalled(0) or fc.stalled(1) or fc.stalled(2)):
            return
        self.fc_watchdog_fires.inc()
        trc = self.tracer
        if trc.enabled:
            trc.emit(self.curtick, "link", self.full_name, "fc_watchdog",
                     p=fc.tx_headroom(0), np=fc.tx_headroom(1),
                     cpl=fc.tx_headroom(2))
        self.peer._readvertise_credits()
        self.eventq.schedule_after(self._fc_watchdog_event, self.fc_watchdog)

    def _readvertise_credits(self) -> None:
        """Queue UpdateFC DLLPs carrying our current cumulative limits
        for every class (idempotent at the receiver: limits are
        monotone, so a duplicate advertisement is a no-op)."""
        fc = self.fc
        for cls in (0, 1, 2):
            self._queue_dllp(PciePacket.update_fc(cls, fc.rx_limit(cls)))
        self._kick_tx()

    def _credits_arrived(self, cls: int) -> None:
        """The peer advanced our ``cls`` credit limit: close the stall
        clock, stand down the watchdog if nothing is starved, resume."""
        fc = self.fc
        fc.stall_end(cls, self.curtick)
        if (self._fc_watchdog_event.scheduled
                and not (fc.stalled(0) or fc.stalled(1) or fc.stalled(2))):
            self.eventq.deschedule(self._fc_watchdog_event)
        self._kick_tx()

    # -- replay timer -------------------------------------------------------
    def _replay_timeout(self) -> None:
        self.timeouts.inc()
        trc = self.tracer
        if trc.enabled:
            trc.emit(self.curtick, "link", self.full_name, "replay_timeout",
                     pending=len(self.replay_buffer))
        # Retransmit everything still unacknowledged, oldest first.
        self.retransmit_queue.clear()
        self.retransmit_queue.extend(self.replay_buffer)
        if self.replay_buffer:
            self.eventq.schedule_after(self._replay_event, self.replay_timeout)
        ck = self.checker
        if ck.enabled:
            ck.link_timeout(self)
        self._kick_tx()

    def _reset_replay_timer(self) -> None:
        if self._replay_event.scheduled:
            self.eventq.deschedule(self._replay_event)
        if self.replay_buffer:
            self.eventq.schedule_after(self._replay_event, self.replay_timeout)

    # ===================== RX: link -> component =========================
    def receive_from_link(self, ppkt: PciePacket) -> None:
        """Entry point for everything arriving off the wire."""
        fp = self._fp
        if fp is not None and fp.active:
            # A real delivery scheduled before the fast-forward burst
            # began: route it through the engine, which orders it
            # against the burst's virtual actions.
            fp.on_wire_arrival(self, ppkt)
            return
        if ppkt.is_dllp:
            self._receive_dllp(ppkt)
        else:
            self._receive_tlp(ppkt)

    def _receive_dllp(self, ppkt: PciePacket) -> None:
        trc = self.tracer
        if (self.link_parent.dllp_error_rate
                and self._rng.random() < self.link_parent.dllp_error_rate):
            # A corrupted DLLP fails its CRC and is silently discarded;
            # a lost ACK is recovered by the sender's replay timer, a
            # lost NAK by the next timeout or a later ACK/NAK, a lost
            # UpdateFC by the next one (cumulative limits) or the FC
            # watchdog.
            self.dllp_corrupted.inc()
            if trc.enabled:
                trc.emit(self.curtick, "link", self.full_name, "dllp_corrupt",
                         kind=ppkt.dllp_type.value, seq=ppkt.seq)
            return
        if trc.enabled:
            trc.emit(self.curtick, "link", self.full_name, "dllp_rx",
                     kind=ppkt.dllp_type.value, seq=ppkt.seq)
        ck = self.checker
        if ck.enabled:
            ck.link_dllp_received(self, ppkt)
        dllp_type = ppkt.dllp_type
        if dllp_type is DllpType.ACK:
            self.acks_received.inc()
            self._purge_acknowledged(ppkt.seq)
            self._reset_replay_timer()
            self._kick_tx()
        elif dllp_type is DllpType.NAK:
            # NAK: purge what it acknowledges, replay the rest.
            self._purge_acknowledged(ppkt.seq)
            self.retransmit_queue.clear()
            self.retransmit_queue.extend(self.replay_buffer)
            self._reset_replay_timer()
            self._kick_tx()
        else:
            # UpdateFC: install the cumulative limit; stale (lower or
            # duplicate) limits are no-ops per the monotone rule.
            self.fc_updates_received.inc()
            cls = FLOW_CLASS_FOR_DLLP[dllp_type]
            if self.fc.advertise(cls, ppkt.seq):
                self._credits_arrived(cls)

    def _purge_acknowledged(self, seq: int) -> None:
        while self.replay_buffer and self.replay_buffer[0].seq <= seq:
            self.replay_buffer.popleft()

    def _queue_dllp(self, ppkt: PciePacket) -> None:
        """Enqueue a DLLP, coalescing with a pending one of the same
        type.

        ACK/NAK sequence numbers and UpdateFC credit limits are all
        cumulative — a later value subsumes every earlier one — so a
        pending same-type DLLP is updated to the highest value instead
        of queueing a second entry.  Without this, sustained TLP
        corruption (every received TLP NAKed while the transmitter is
        busy) grows ``dllp_queue`` without bound; with it the queue
        never holds more than one entry per DLLP type.
        """
        for pending in self.dllp_queue:
            if pending.dllp_type is ppkt.dllp_type:
                if ppkt.seq > pending.seq:
                    pending.seq = ppkt.seq
                return
        self.dllp_queue.append(ppkt)

    def _receive_tlp(self, ppkt: PciePacket) -> None:
        trc = self.tracer
        if self.link_parent.error_rate and self._rng.random() < self.link_parent.error_rate:
            # A corrupted TLP: discard and NAK the last good sequence.
            # No credit moves — the sender's credit stays consumed and
            # our buffer slot stays reserved until the replay lands.
            self.corrupted.inc()
            if trc.enabled:
                trc.emit(self.curtick, "link", self.full_name, "tlp_corrupt",
                         tlp=trc.tlp_id(ppkt.tlp.req_id), seq=ppkt.seq)
            self._queue_dllp(PciePacket.nak(self.recv_seq - 1))
            self._kick_tx()
            return
        if ppkt.seq != self.recv_seq:
            # Duplicate (already delivered) or out-of-order replay.
            self.out_of_seq.inc()
            if trc.enabled:
                trc.emit(self.curtick, "link", self.full_name, "tlp_out_of_seq",
                         tlp=trc.tlp_id(ppkt.tlp.req_id), seq=ppkt.seq,
                         expect=self.recv_seq)
            if ppkt.seq < self.recv_seq:
                # Re-ACK so the sender can purge its replay buffer even
                # if the original ACK crossed a timeout.
                self._schedule_ack()
            return
        # In sequence: always accepted.  The sender consumed a credit of
        # this class before transmitting, so the class's RX buffer has
        # a slot by construction (the checker enforces it).
        pkt = ppkt.tlp
        cls = pkt.flow_class
        self.delivered.inc()
        if trc.enabled:
            trc.emit(self.curtick, "link", self.full_name, "tlp_deliver",
                     tlp=trc.tlp_id(pkt.req_id), seq=ppkt.seq,
                     resp=pkt.is_response)
        ck = self.checker
        if ck.enabled:
            ck.link_tlp_delivered(self, ppkt)
        self.fc.rx_accept(cls)
        (self._rx_cpl if cls == FLOW_CPL else self._rx_req).append(pkt)
        self.recv_seq += 1
        self._schedule_ack()
        self._drain_rx()

    def _drain_rx(self) -> None:
        """Push buffered TLPs into the attached component, completions
        first, returning one credit per drained TLP.

        A refusal parks the queue until the component's port retry; the
        completion and request queues block independently, so a request
        flood past the link can never stop completions from draining —
        the forward-progress guarantee behind PCIe's deadlock freedom.
        """
        drained = False
        queue = self._rx_cpl
        port = self.slave_port
        if queue and not port.waiting_for_resp_retry:
            while queue:
                if not port.send_timing_resp(queue[0]):
                    self._count_refusal(queue[0])
                    break
                queue.popleft()
                self._credit_return(FLOW_CPL)
                drained = True
        queue = self._rx_req
        mport = self.master_port
        if queue and not mport.waiting_for_req_retry:
            while queue:
                if not mport.send_timing_req(queue[0]):
                    self._count_refusal(queue[0])
                    break
                pkt = queue.popleft()
                self._credit_return(pkt.flow_class)
                drained = True
        if drained:
            self._kick_tx()

    def _count_refusal(self, pkt: Packet) -> None:
        """The attached component refused an RX-buffer drain attempt."""
        self.delivery_refused.inc()
        trc = self.tracer
        if trc.enabled:
            trc.emit(self.curtick, "link", self.full_name, "tlp_refused",
                     tlp=trc.tlp_id(pkt.req_id), resp=pkt.is_response)

    def _credit_return(self, cls: int) -> None:
        """A ``cls`` RX-buffer slot drained: queue the UpdateFC that
        returns the credit (coalesced — limits are cumulative)."""
        fc = self.fc
        fc.rx_drain(cls)
        self._queue_dllp(PciePacket.update_fc(cls, fc.rx_limit(cls)))

    # -- ACK scheduling ---------------------------------------------------------
    def _schedule_ack(self) -> None:
        if self.link_parent.ack_policy == "immediate":
            self._queue_dllp(PciePacket.ack(self.recv_seq - 1))
            self._kick_tx()
            return
        self._have_unacked_delivery = True
        if not self._ack_event.scheduled:
            self.eventq.schedule_after(self._ack_event, self.ack_period)

    def _ack_timer_fired(self) -> None:
        if not self._have_unacked_delivery:
            return
        self._have_unacked_delivery = False
        self._queue_dllp(PciePacket.ack(self.recv_seq - 1))
        self._kick_tx()

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> dict:
        """Sequence counters, credit accounts and the error-injection RNG.

        The in-flight buffers (replay buffer, retransmit/DLLP queues,
        component-facing input queues, RX buffers) hold live packet
        objects that cannot be described by owner-path + method-name, so
        a checkpoint is only valid while they are all empty — which they
        are at software quiescence, the supported checkpoint boundary.
        A non-empty buffer raises :class:`~repro.sim.checkpoint.
        CheckpointError` instead of silently dropping traffic.
        """
        if self._fp is not None and self._fp.mid_burst:
            # Mid-burst, wire occupancy and in-flight DLLPs live as
            # virtual integers on the fast-forward engine — invisible
            # to event capture — so a snapshot here would silently drop
            # traffic even when every buffer below happens to be empty.
            # (A *parked* engine is fine: real and virtual state
            # coincide, nothing is in flight.)
            from repro.sim.checkpoint import CheckpointError

            raise CheckpointError(
                f"{self.full_name} is inside a fast-forward burst; "
                f"checkpoints require a quiescent link")
        pending = {
            "replay_buffer": self.replay_buffer,
            "retransmit_queue": self.retransmit_queue,
            "dllp_queue": self.dllp_queue,
            "in_req": self._in_req,
            "in_cpl": self._in_cpl,
            "rx_req": self._rx_req,
            "rx_cpl": self._rx_cpl,
        }
        busy = sorted(name for name, queue in pending.items() if queue)
        if busy:
            from repro.sim.checkpoint import CheckpointError

            raise CheckpointError(
                f"{self.full_name} has in-flight packets in {busy}; "
                f"checkpoints require a quiescent link")
        rng_state = self._rng.getstate()
        return {
            "send_seq": self.send_seq,
            "recv_seq": self.recv_seq,
            "have_unacked_delivery": self._have_unacked_delivery,
            "fc": self.fc.state_dict(),
            # getstate() is (version, tuple-of-ints, gauss_next) —
            # flattened to JSON-safe lists, rebuilt in load_state_dict.
            "rng": [rng_state[0], list(rng_state[1]), rng_state[2]],
        }

    def load_state_dict(self, state: dict) -> None:
        """Overlay captured counters/credits onto this rebuilt interface."""
        self.send_seq = state["send_seq"]
        self.recv_seq = state["recv_seq"]
        self._have_unacked_delivery = state["have_unacked_delivery"]
        self.fc.load_state_dict(state["fc"])
        rng_state = state["rng"]
        self._rng.setstate((rng_state[0], tuple(rng_state[1]), rng_state[2]))


class PcieLink(SimObject):
    """A full-duplex PCI-Express link.

    ``upstream_if`` is the end nearer the root complex (bind its ports
    to a root/switch *downstream* port); ``downstream_if`` is the device
    end.  Both directions share one :class:`LinkTiming`.

    Args:
        gen: PCI-Express generation (defaults to Gen 2 like the paper's
            validation setup).
        width: lane count.
        propagation_delay: flight time added after serialization.
        replay_buffer_size: TLPs held awaiting acknowledgement (the
            paper's default is 4, "enough TLP pcie-pkts until the next
            ACK arrives based on the ack factor").
        max_payload: MaxPayloadSize used in the replay-timer formula
            (the paper uses the cache-line size, 64 B).
        ack_policy: ``"timer"`` coalesces ACKs until the ACK timer
            expires (the paper's default); ``"immediate"`` ACKs every
            delivery.
        input_queue_size: TLPs an interface buffers from its component
            (per direction: one request queue and one completion queue
            of this size) before exerting port backpressure.
        p_credits / np_credits / cpl_credits: per-class receive-buffer
            slots each interface advertises at link-up — posted,
            non-posted and completion flow-control credits.  The
            defaults (6/6/4) sum to the 16-slot aggregate each
            routing-engine port pool carried before the credit split.
        error_rate: fraction of received TLPs corrupted (NAK path).
        dllp_error_rate: fraction of received DLLPs corrupted
            (discarded; ACK recovery via the replay timeout, UpdateFC
            recovery via cumulative limits + the FC watchdog).
        replay_timeout / ack_period / fc_watchdog: timer overrides in
            ticks; default to the spec formulas in
            :mod:`repro.pcie.timing`.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        parent: Optional[SimObject] = None,
        gen: PcieGen = PcieGen.GEN2,
        width: int = 1,
        propagation_delay: int = ticks.from_ns(4),
        replay_buffer_size: int = 4,
        max_payload: int = 64,
        ack_policy: str = "timer",
        input_queue_size: int = 2,
        p_credits: int = 6,
        np_credits: int = 6,
        cpl_credits: int = 4,
        error_rate: float = 0.0,
        dllp_error_rate: float = 0.0,
        error_seed: int = 0x5EED,
        replay_timeout: Optional[int] = None,
        ack_period: Optional[int] = None,
        fc_watchdog: Optional[int] = None,
    ):
        super().__init__(sim, name, parent)
        if replay_buffer_size < 1:
            raise ValueError("replay buffer must hold at least one TLP")
        if ack_policy not in ("timer", "immediate"):
            raise ValueError(f"unknown ack policy {ack_policy!r}")
        if min(p_credits, np_credits, cpl_credits) < 1:
            raise ValueError("every flow-control class needs at least one credit")
        self.timing = LinkTiming(gen, width)
        self.replay_buffer_size = replay_buffer_size
        self.max_payload = max_payload
        self.ack_policy = ack_policy
        self.input_queue_size = input_queue_size
        self.p_credits = p_credits
        self.np_credits = np_credits
        self.cpl_credits = cpl_credits
        self.error_rate = error_rate
        self.dllp_error_rate = dllp_error_rate
        self.error_seed = error_seed
        # The spec formula by default; explicit overrides support the
        # timer-sensitivity ablations.
        self.replay_timeout = (
            replay_timeout
            if replay_timeout is not None
            else replay_timeout_ticks(gen, width, max_payload)
        )
        self.ack_period = (
            ack_period if ack_period is not None else ack_timer_ticks(gen, width, max_payload)
        )
        self.fc_watchdog = (
            fc_watchdog
            if fc_watchdog is not None
            else fc_watchdog_ticks(gen, width, max_payload)
        )

        self.upstream_if = PcieLinkInterface(sim, "up_if", self)
        self.downstream_if = PcieLinkInterface(sim, "down_if", self)
        self.up_link = UnidirectionalLink(
            sim, "up_link", self, self.timing, propagation_delay
        )
        self.down_link = UnidirectionalLink(
            sim, "down_link", self, self.timing, propagation_delay
        )
        # The downstream interface transmits on the upstream-bound link.
        self.downstream_if.tx_link = self.up_link
        self.downstream_if.peer = self.upstream_if
        self.upstream_if.tx_link = self.down_link
        self.upstream_if.peer = self.downstream_if
        # InitFC: each end installs the peer's advertised receive
        # capacities as its transmit credit limits.  Modelled as an
        # instantaneous link-up handshake — no DLLPs on the wire.
        for iface in (self.upstream_if, self.downstream_if):
            for cls in (0, 1, 2):
                iface.fc.advertise(cls, iface.peer.fc.rx_limit(cls))
        # The turbo backend's analytic fast-forward engine.  Static
        # eligibility: error injection takes RNG draws per received
        # packet and the timer ACK policy coalesces on a timer, neither
        # of which the virtual model replicates — such links simply stay
        # on the event-by-event path.
        self.fastpath = None
        if (sim.backend.link_fastpath and error_rate == 0.0
                and dllp_error_rate == 0.0 and ack_policy == "immediate"):
            from repro.pcie.fastpath import LinkFastPath

            self.fastpath = LinkFastPath(self)
            self.upstream_if._fp = self.fastpath
            self.downstream_if._fp = self.fastpath

    @property
    def gen(self) -> PcieGen:
        """The link's PCI-Express generation."""
        return self.timing.gen

    @property
    def width(self) -> int:
        """The link's lane count."""
        return self.timing.width

    def config_dict(self) -> dict:
        """The link's knobs, recorded into stats exports."""
        return {
            "kind": "pcie_link",
            "gen": self.gen.name,
            "width": self.width,
            "replay_buffer_size": self.replay_buffer_size,
            "max_payload": self.max_payload,
            "ack_policy": self.ack_policy,
            "input_queue_size": self.input_queue_size,
            "p_credits": self.p_credits,
            "np_credits": self.np_credits,
            "cpl_credits": self.cpl_credits,
            "error_rate": self.error_rate,
            "dllp_error_rate": self.dllp_error_rate,
            "replay_timeout": self.replay_timeout,
            "ack_period": self.ack_period,
            "fc_watchdog": self.fc_watchdog,
        }

    def __repr__(self) -> str:
        return f"<PcieLink {self.full_name} {self.gen.name} x{self.width}>"
