"""Quiescent-link fast-forward engine (the ``turbo`` backend).

A PCI-Express link in its steady state is a *provably dead* region of
the event timeline: with zero injected error rates and immediate ACKs,
every data-link-layer event between two component interactions — wire
serialization (``tx_done``), DLLP deliveries, ACK purges, UpdateFC
credit returns, replay and FC-watchdog timer motion — is a pure
function of link state and the memoised
:class:`~repro.pcie.timing.LinkTiming` symbol times.  The slow path
pays two event-queue operations per pcie-pkt on the wire (a dozen per
transferred TLP once the ACK and UpdateFC DLLPs are counted); this
module collapses all of it into one recycled **pump** event that fires
only at *component-visible* ticks:

* a new-TLP transmission start — ``_wrap_new_tlp`` consumes a credit,
  assigns the data-link sequence number and lets the component retry a
  previously refused offer, and the retry response is a deferred
  zero-delay event, so the tick must be exact;
* a TLP delivery — ``_drain_rx`` hands the payload to the attached
  component, which reacts at that tick.

Everything else — DLLP sends and arrivals, wire occupancy, the replay
and FC-watchdog deadlines — is *virtualized*: kept as plain integers
and deques on the :class:`LinkFastPath` and applied **late**, in exact
``(tick, sequence)`` order with exact tick arguments, at the next pump
firing.  Late application is safe because nothing outside the link
reads the data-link state (credit ledger, replay buffer, DLLP queue)
between firings; state is never applied *ahead* of the simulated
clock, so any external observation — a component offering a TLP
mid-gap — always sees slow-path-equivalent state.

Both directions of a :class:`~repro.pcie.link.PcieLink` are managed by
one engine because they are coupled through DLLPs: direction A's TLP
stream generates ACK/UpdateFC traffic that occupies direction B's wire
and delays B's TLPs, and vice versa.  (On the paper's dd workload the
disk's DMA writes are non-posted, so *both* wires carry TLPs at once —
a per-direction engine would never engage.)

**The identity contract.**  Every state mutation the engine performs
is the same mutation, with the same tick argument, in the same
relative order, that the event-by-event path in :mod:`repro.pcie.link`
performs: the TX selection replicates ``_pick_next`` (DLLPs first,
then retransmits, then completions-first new TLPs with per-class stall
attribution), the RX side replicates ``_receive_tlp`` /
``_receive_dllp`` minus the error-injection draws that a zero error
rate never takes, and kicks are evaluated exactly where the slow
path's ``_kick_tx`` call sites sit.  Results — statistics, payloads,
figure metrics, final ticks — are byte-identical; only internal event
counts and insertion sequences differ, which the ``backend-identity``
CI job verifies empirically across the golden, figure and stress
batteries.

**Bailouts.**  Any perturbation the virtual model does not cover
aborts the burst at a safe tick: virtual wire occupancy, in-flight
deliveries and timer deadlines are materialised back into real events
and the slow path resumes from an equivalent state.  Reasons (each a
per-link statistic):

======================= ================================================
``refusal``             the attached component refused an RX drain
``retransmit``          a retransmit queue became non-empty
``wire_event``          a pre-engagement wire event arrived that the
                        fast model does not cover (NAK, out-of-sequence
                        or replayed TLP)
``starve``              credit-starved with no replenishment pending
``replay_deadline``     the replay timer would expire mid-burst
``watchdog``            the FC watchdog would expire mid-burst
``observer``            the tracer or invariant checker was enabled
                        mid-burst (observers attached before the run
                        keep the link on the event-by-event path)
``desync``              defensive: the planner and the executor
                        disagreed about a component-visible tick; never
                        expected, and asserted zero by the test suite
======================= ================================================

A checkpoint request during a burst raises
:class:`~repro.sim.checkpoint.CheckpointError` (never a half-burst
snapshot), exactly as the slow path refuses while packets are in
flight; quiesce the simulation first.
"""

import os
from collections import deque
from typing import List, Optional, Tuple

from repro.mem.packet import FLOW_CPL
from repro.pcie.pkt import DllpType, FLOW_CLASS_FOR_DLLP, PciePacket
from repro.pcie.timing import DLLP_WIRE_BYTES
from repro.sim.eventq import CallbackEvent

#: Bailout reasons, in display order (each becomes a link statistic).
BAIL_REASONS = ("refusal", "retransmit", "wire_event", "starve",
                "replay_deadline", "watchdog", "observer", "desync")

# Indices into the per-direction statistic accumulators (plain-int
# counters the sweep bumps in place of Stat method calls; settled by
# LinkFastPath._flush_stats at every quiescent point).
_ACC_PKTS = 0        # tx_link.packets
_ACC_BYTES = 1       # tx_link.bytes
_ACC_BUSY = 2        # tx_link.busy_ticks
_ACC_ACKS_SENT = 3
_ACC_NAKS_SENT = 4
_ACC_FCU_SENT = 5
_ACC_ACKS_RECV = 6
_ACC_FCU_RECV = 7
_ACC_DELIVERED = 8
_ACC_TLPS = 9        # fastpath_tlps (summed over both directions)
_ACC_SLOTS = 10
_ACC_ZERO = (0,) * _ACC_SLOTS

# Sentinel tick meaning "no candidate / no deadline" in the dry-walk
# scratch: larger than any reachable simulation tick, so the merge probe
# and deadline checks need no None tests.
_FAR = 1 << 62

# Saturation guard: the engine only profits when one pump fast-forwards
# several virtual actions; on a saturated link every DLLP forces its own
# pump and the planning overhead exceeds the event-queue traffic it
# replaces.  Once _GUARD_MIN_ACTIONS have been measured, a yield below
# _GUARD_RATIO actions per pump stands the engine down for
# _GUARD_COOLDOWN kicks, after which it re-probes.
_GUARD_MIN_ACTIONS = 1024
_GUARD_RATIO = 3
_GUARD_COOLDOWN = 200_000


class _Bail(Exception):
    """Raised mid-sweep to abort the burst with a reason string."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class LinkFastPath:
    """Analytic fast-forward engine for one :class:`PcieLink`.

    Installed by the link's constructor when the simulator backend asks
    for it (``sim.backend.link_fastpath``) and the link is *statically*
    eligible: zero ``error_rate``, zero ``dllp_error_rate`` and the
    ``immediate`` ACK policy (the ``timer`` policy coalesces ACKs on a
    timer the virtual model does not replicate, so such links simply
    stay on the event-by-event path).

    Dynamic engagement happens at a ``_kick_tx`` with a new TLP ready;
    it requires the tracer and invariant checker disabled and both
    retransmit queues empty.  Real in-flight events at engagement time
    (wire serializations, deliveries) are not descheduled — they fire
    normally and are routed into the engine — which keeps engagement
    O(1).

    The engine is two mirrored halves that MUST stay in sync:

    * the *wet* sweep (:meth:`_advance` / :meth:`_try_tx` /
      :meth:`_apply_tlp` / :meth:`_apply_dllp`) mutates real link
      state, late-applying virtual actions in ``(tick, vseq)`` order;
    * the *dry* planner (:meth:`_peek`) walks the identical decision
      procedure over scratch copies, without mutating anything, to find
      the next component-visible tick so the pump can skip straight to
      it.

    A planner/executor disagreement about a TLP tick is a bug, not a
    hazard: :meth:`_send_new_tlp` and :meth:`_apply_tlp` bail with
    reason ``desync`` (asserted zero by the tests) rather than touch a
    component at the wrong tick.
    """

    def __init__(self, link) -> None:
        self.link = link
        #: Directions indexed 0/1; direction *i* transmits on
        #: ``ifaces[i].tx_link`` towards ``ifaces[1 - i]``.
        self.ifaces = (link.upstream_if, link.downstream_if)
        self.active = False
        #: Static master switch (kept for operational use, e.g.
        #: standing an engine down after repeated bailouts).
        self.enabled = True
        self._tracer = link.sim.tracer
        self._checker = link.sim.checker
        self._eventq = link.sim.eventq
        self._pump_event = CallbackEvent(
            self._pump_fired, name=f"{link.name}.fastpath_pump")
        #: Reentrancy guard: real calls made by the sweep (``_drain_rx``
        #: port pushes, component retries) can recurse into ``_kick_tx``
        #: and thus :meth:`notify_tx`; the sweep's own follow-up kicks
        #: already sit at the slow path's call sites, so the recursive
        #: notification must be a no-op.
        self._in_sweep = False
        # Per-direction virtual wire state:
        # _wire_free[i]  — first tick direction i can start serialising.
        # _freed[i]      — pending tx_done-equivalent kick [tick, vseq],
        #                  or None (at most one: sends serialize).
        # _inflight[i]   — [tick, vseq, ppkt] deliveries this engine put
        #                  on wire i (pre-engagement deliveries remain
        #                  real events and re-enter via
        #                  :meth:`on_wire_arrival`).
        # _replay_deadline[i] / _watchdog_deadline[i] — the virtualised
        #                  timer expiries (the real CallbackEvents are
        #                  descheduled while engaged).
        self._wire_free = [0, 0]
        self._freed: List[Optional[list]] = [None, None]
        self._inflight: Tuple[deque, deque] = (deque(), deque())
        self._replay_deadline: List[Optional[int]] = [None, None]
        self._watchdog_deadline: List[Optional[int]] = [None, None]
        #: Virtual insertion sequence: allocated at send-commit time in
        #: pairs (tx_done-equivalent before delivery), mirroring how
        #: ``UnidirectionalLink.send`` schedules its two events.
        self._vseq = 0
        # All DLLPs are 8 wire bytes; memoise their serialisation time.
        self._dllp_ttx = link.timing.transmission_ticks(DLLP_WIRE_BYTES)
        # Per-link constants, cached off the property chain.
        self._replay_timeout = link.replay_timeout
        self._fc_watchdog = link.fc_watchdog
        self._prop_delay = link.up_link.propagation_delay
        self._replay_cap = link.replay_buffer_size
        # Plan-validity tracking: the scheduled pump tick stays correct
        # under every *planned* action the sweep applies; it is
        # invalidated only by unplanned inputs — an external mutation
        # (before_mutation sets the stale flag) or an unplanned kick
        # that changed transmit state (the mutation counter moves).
        self._plan_stale = True
        self._mutations = 0
        #: Parked: still claiming the link (kicks route here, the slow
        #: path stays off) but the virtual timeline is empty, no
        #: deadline is armed, and real state fully coincides with
        #: virtual state — so no pump is scheduled and checkpoints are
        #: safe.  Parking between back-to-back TLPs avoids paying the
        #: engage/deschedule cycle once per quiet gap.
        self._parked = False
        s = link.stats
        self.batches = s.scalar(
            "fastpath_batches", "bursts fast-forwarded analytically")
        self.tlps = s.scalar(
            "fastpath_tlps", "TLPs transmitted inside fast-forward bursts")
        self.bailouts = {
            reason: s.scalar(f"fastpath_bailouts_{reason}",
                             f"fast-forward bursts aborted: {reason}")
            for reason in BAIL_REASONS
        }
        self.standdowns = s.scalar(
            "fastpath_standdowns",
            "engine stood down after measuring a saturated link")
        #: Saturation guard (see the _GUARD_* constants).  Tests that
        #: assert on engagement behaviour switch it off; operationally
        #: REPRO_FASTPATH_GUARD=off does the same.
        self.saturation_guard = (
            os.environ.get("REPRO_FASTPATH_GUARD", "on") != "off")
        self._ff_actions = 0
        self._ff_pumps = 0
        self._cooldown = 0
        # Per-direction statistic accumulators (indexed by the _ACC_*
        # constants): the sweep bumps plain ints and _flush_stats()
        # settles them into the real Stat objects at every quiescent
        # point (park, disengage, bail) — so statistics are exact
        # whenever the engine is observable, without paying a Stat
        # method call per virtual action mid-burst.
        self._acc = ([0] * _ACC_SLOTS, [0] * _ACC_SLOTS)
        # Earliest pending virtual-action tick (_FAR when the timeline
        # is empty): lets catch-up call sites skip _advance entirely.
        self._next_at = _FAR
        # Persistent dry-walk scratch, reset by index stores at the top
        # of each _peek() call instead of reallocated.  Slots 0..3 of the
        # candidate arrays hold the four merge heads — freed wire (even)
        # and arrival head (odd) per direction — as flat (tick, vseq,
        # dllp_type, value) columns.
        self._pk_cand = [0, 0, 0, 0]
        self._pk_cv = [0, 0, 0, 0]
        self._pk_cdt = [None, None, None, None]
        self._pk_cdv = [0, 0, 0, 0]
        self._pk_wf = [0, 0]
        self._pk_li = [0, 0]
        self._pk_xi = [0, 0]
        self._pk_oc = [0, 0]
        self._pk_rskip = [0, 0]
        self._pk_extra = ([], [])
        self._pk_hr = [None, None]
        self._pk_lim = [None, None]
        self._pk_st = [None, None]
        self._pk_rdl = [0, 0]
        self._pk_wdl = [0, 0]

    @property
    def mid_burst(self) -> bool:
        """True while virtual state diverges from real link state (an
        un-parked engagement): checkpoints must refuse, observers force
        a bailout.  A parked engine is quiescent and safe."""
        return self.active and not self._parked

    # -- engagement --------------------------------------------------------
    def try_engage(self, iface) -> bool:
        """Claim the link at a ``_kick_tx`` with a new TLP pending.

        Returns False — the caller proceeds event-by-event — when the
        engine is disabled, an observer is armed, a retransmit queue is
        busy, or this kick cannot transmit a new TLP right now (wire
        busy, nothing queued, replay buffer full, or the head TLP
        credit-blocked).  Requiring an immediate transmission guarantees
        the burst starts with a non-empty virtual timeline, so the
        planner either finds a pump tick or bails over *pending* work —
        an engage-then-bail cycle over an empty timeline could otherwise
        recurse through ``_do_bail``'s trailing kick forever.
        """
        if not self.enabled:
            return False
        if self._cooldown:
            # Standing down after a saturation verdict; re-probe once
            # the cooldown drains.
            self._cooldown -= 1
            return False
        if self._tracer.enabled or self._checker.enabled:
            return False
        up, down = self.ifaces
        if up.retransmit_queue or down.retransmit_queue:
            return False
        if iface.tx_link.busy or iface.dllp_queue:
            return False
        if not self._head_sendable(iface):
            return False
        eventq = self._eventq
        now = eventq.curtick
        for i, it in enumerate(self.ifaces):
            link = it.tx_link
            # A busy wire's tx_done event stays scheduled; when it
            # fires it is a stale link_free -> _kick_tx -> notify_tx,
            # which the engine absorbs.
            self._wire_free[i] = (link._tx_done_event._when if link.busy
                                  else now)
            self._freed[i] = None
            self._inflight[i].clear()
            ev = it._replay_event
            if ev.scheduled:
                self._replay_deadline[i] = ev._when
                eventq.deschedule(ev)
            else:
                self._replay_deadline[i] = None
            ev = it._fc_watchdog_event
            if ev.scheduled:
                self._watchdog_deadline[i] = ev._when
                eventq.deschedule(ev)
            else:
                self._watchdog_deadline[i] = None
        self._next_at = _FAR
        self.active = True
        self.batches.inc()
        try:
            self._in_sweep = True
            self._try_tx(0 if iface is self.ifaces[0] else 1, now)
        except _Bail as bail:
            self._in_sweep = False
            self._do_bail(bail.reason)
            return True
        finally:
            self._in_sweep = False
        self._replan()
        return True

    def _head_sendable(self, iface) -> bool:
        """Whether ``_pick_next`` would transmit a new TLP right now:
        replay-buffer space and credit headroom for a queued head."""
        if len(iface.replay_buffer) >= iface.replay_buffer_size:
            return False
        fc = iface.fc
        if iface._in_cpl and fc.tx_headroom(FLOW_CPL) > 0:
            return True
        return bool(iface._in_req
                    and fc.tx_headroom(iface._in_req[0].flow_class) > 0)

    # -- external notifications -------------------------------------------
    def before_mutation(self, iface) -> None:
        """The component is about to offer a TLP to ``iface`` at the
        current tick.

        Virtual actions from earlier ticks must late-apply *before* the
        mutation: a credit-grant kick at tick t must see the TLP queues
        as they stood at t, not with an entry the component only
        produces now.  (The planner already predicted those actions
        against the pre-mutation state, so applying them after the
        mutation would also desynchronise planner and executor.)

        Then, instead of invalidating the plan wholesale, patch it: the
        appended TLP can only become component-visible through a
        ``_try_tx`` trigger for this direction — the pending
        tx_done-equivalent kick or the next arrival on the reverse
        wire.  Pulling the pump forward to the earliest such trigger
        keeps the plan sound without a dry walk; the pump's own replan
        recovers the full picture from there.
        """
        if self._in_sweep or self._parked:
            # Parked: nothing pending to late-apply, and the mutation's
            # own follow-up kick re-evaluates transmission.
            return
        if self._next_at <= self._eventq.curtick:
            try:
                self._in_sweep = True
                self._advance(self._eventq.curtick)
            except _Bail as bail:
                self._in_sweep = False
                self._do_bail(bail.reason)
                return
            finally:
                self._in_sweep = False
        if not self.active:
            return
        i = 0 if iface is self.ifaces[0] else 1
        u = -1
        f = self._freed[i]
        if f is not None:
            u = f[0]
        q = self._inflight[1 - i]
        if q:
            t = q[0][0]
            if u < 0 or t < u:
                u = t
        if u < 0:
            # No pending trigger: the kick following this append (and
            # its mutation-counter replan) decides.
            return
        pump = self._pump_event
        if not pump.scheduled or u < pump._when:
            self._eventq.reschedule(pump, u)

    def before_rx_mutation(self) -> None:
        """A component retry is about to drain refused RX buffers:
        late-apply earlier virtual actions first.  The drain itself
        cannot create an earlier component-visible tick (DLLP credit
        returns it queues are invisible sends the wet sweep orders
        exactly like the slow path), so the plan stands."""
        if self._in_sweep or self._parked:
            return
        if self._next_at > self._eventq.curtick:
            return
        try:
            self._in_sweep = True
            self._advance(self._eventq.curtick)
        except _Bail as bail:
            self._in_sweep = False
            self._do_bail(bail.reason)
        finally:
            self._in_sweep = False

    def notify_tx(self, iface) -> None:
        """A ``_kick_tx`` while engaged: a component offered a TLP, a
        stale pre-engagement ``tx_done`` fired, or a port retry freed
        input space.  Catch up, evaluate the kick at the current tick,
        replan the pump."""
        if self._in_sweep:
            return
        if self._tracer.enabled or self._checker.enabled:
            self._catch_up_and_bail("observer")
            return
        now = self._eventq.curtick
        k = 0 if iface is self.ifaces[0] else 1
        before = 0
        wf_before = self._wire_free[k]
        try:
            self._in_sweep = True
            if not self._parked and self._next_at <= now:
                self._advance(now)
            before = self._mutations
            self._try_tx(k, now)
        except _Bail as bail:
            self._in_sweep = False
            self._do_bail(bail.reason)
            return
        finally:
            self._in_sweep = False
        # The catch-up advance only applies actions the planner already
        # ordered before the scheduled pump tick, so the plan survives
        # it; replan only if state actually moved out of plan.
        if self._plan_stale:
            self._replan()
        elif self._mutations != before:
            free_at = self._wire_free[k]
            if free_at == wf_before:
                # The mutation was a credit stall (watchdog armed), not
                # a transmission — only a dry walk can order the new
                # deadline against the pending timeline.
                self._replan()
            else:
                # The kick transmitted.  Every component-visible tick
                # the commit can enable — the follow-on send once the
                # wire frees, or the delivery prop-delay later — lies
                # at or after ``free_at``, and the pre-existing plan
                # already covers the rest of the timeline.  Pull the
                # pump forward instead of re-walking; its own replan
                # recovers the exact picture.
                self._parked = False
                pump = self._pump_event
                if not pump.scheduled or free_at < pump._when:
                    self._eventq.reschedule(pump, free_at)

    def on_wire_arrival(self, iface, ppkt) -> None:
        """A real (pre-engagement) delivery landed at ``iface`` while
        engaged.

        The real event was scheduled before the burst began, so it
        orders *before* any same-tick virtual action: strictly-earlier
        actions are applied first, then the delivery, then the rest of
        the current tick.  Anything the fast model does not cover (NAK,
        out-of-sequence or replayed TLP) bails and is redelivered
        through the slow path.
        """
        if self._tracer.enabled or self._checker.enabled:
            self._catch_up_and_bail("observer")
            iface.receive_from_link(ppkt)
            return
        now = self._eventq.curtick
        if self._next_at < now:
            try:
                self._in_sweep = True
                self._advance(now - 1)
            except _Bail as bail:
                self._in_sweep = False
                self._do_bail(bail.reason)
                iface.receive_from_link(ppkt)
                return
            finally:
                self._in_sweep = False
        weird = (ppkt.dllp_type is DllpType.NAK if ppkt.is_dllp
                 else (ppkt.seq != iface.recv_seq or ppkt.is_replay))
        if weird:
            self._do_bail("wire_event")
            iface.receive_from_link(ppkt)
            return
        r = 0 if iface is self.ifaces[0] else 1
        try:
            self._in_sweep = True
            if ppkt.is_dllp:
                self._apply_dllp(r, now, ppkt)
            else:
                self._apply_tlp(r, now, ppkt)
            if self._next_at <= now:
                self._advance(now)
        except _Bail as bail:
            self._in_sweep = False
            self._do_bail(bail.reason)
            return
        finally:
            self._in_sweep = False
        self._replan()

    def _pump_fired(self) -> None:
        """The pump: apply every virtual action now due, then replan."""
        if self._tracer.enabled or self._checker.enabled:
            self._catch_up_and_bail("observer")
            return
        self._ff_pumps += 1
        try:
            self._in_sweep = True
            self._advance(self._eventq.curtick)
        except _Bail as bail:
            self._in_sweep = False
            self._do_bail(bail.reason)
            return
        finally:
            self._in_sweep = False
        self._replan()

    def _catch_up_and_bail(self, reason: str) -> None:
        """An observer was armed mid-burst: apply the already-elapsed
        virtual actions (they belong to ticks at or before now), then
        stand down so the slow path carries the observed traffic."""
        try:
            self._in_sweep = True
            self._advance(self._eventq.curtick)
        except _Bail as bail:
            self._in_sweep = False
            self._do_bail(bail.reason)
            return
        finally:
            self._in_sweep = False
        self._do_bail(reason)

    # -- the wet sweep -----------------------------------------------------
    # _advance/_try_tx/_apply_* are the executable mirror of the slow
    # path (link.py _kick_tx/_pick_next/_receive_tlp/_receive_dllp with
    # the tracer/checker/error branches dead).  _peek below walks the
    # same decision procedure dry.  KEEP ALL THREE IN SYNC.
    def _advance(self, limit: int) -> None:
        """Apply every pending virtual action with tick <= ``limit`` in
        ``(tick, vseq)`` order — the slow path's dispatch order.

        Maintains ``_next_at``, the tick of the earliest still-pending
        action (``_FAR`` when none): callers skip the whole catch-up —
        probe included — when nothing is due yet.
        """
        freed = self._freed
        inflight = self._inflight
        while True:
            bt = -1
            bv = 0
            best_i = 0
            best_is_freed = False
            for i in (0, 1):
                f = freed[i]
                if f is not None:
                    t = f[0]
                    if bt < 0 or t < bt or (t == bt and f[1] < bv):
                        bt = t
                        bv = f[1]
                        best_i = i
                        best_is_freed = True
                q = inflight[i]
                if q:
                    a = q[0]
                    t = a[0]
                    if bt < 0 or t < bt or (t == bt and a[1] < bv):
                        bt = t
                        bv = a[1]
                        best_i = i
                        best_is_freed = False
            if bt < 0 or bt > limit:
                self._next_at = _FAR if bt < 0 else bt
                return
            if best_is_freed:
                freed[best_i] = None
                self._try_tx(best_i, bt)
            else:
                ppkt = inflight[best_i].popleft()[2]
                r = 1 - best_i  # direction i delivers to the peer end
                if ppkt.is_dllp:
                    self._apply_dllp(r, bt, ppkt)
                else:
                    self._apply_tlp(r, bt, ppkt)

    def _try_tx(self, i: int, t: int) -> None:
        """``_kick_tx``/``_pick_next`` at tick ``t`` for direction ``i``."""
        if self._wire_free[i] > t:
            return  # wire busy — the slow path's tx_link.busy check
        iface = self.ifaces[i]
        if iface.dllp_queue:
            ppkt = iface.dllp_queue.popleft()
            dllp_type = ppkt.dllp_type
            acc = self._acc[i]
            if dllp_type is DllpType.ACK:
                acc[_ACC_ACKS_SENT] += 1
            elif dllp_type is DllpType.NAK:
                acc[_ACC_NAKS_SENT] += 1
            else:
                acc[_ACC_FCU_SENT] += 1
            self._commit_send(i, t, ppkt, DLLP_WIRE_BYTES, self._dllp_ttx)
            return
        if iface.retransmit_queue:
            raise _Bail("retransmit")
        if len(iface.replay_buffer) < iface.replay_buffer_size:
            fc = iface.fc
            queue = iface._in_cpl
            if queue:
                if fc.tx_headroom(FLOW_CPL) > 0:
                    self._send_new_tlp(i, t, queue.popleft())
                    return
                self._fp_blocked(i, FLOW_CPL, t)
            queue = iface._in_req
            if queue:
                cls = queue[0].flow_class
                if fc.tx_headroom(cls) > 0:
                    self._send_new_tlp(i, t, queue.popleft())
                    return
                self._fp_blocked(i, cls, t)

    def _send_new_tlp(self, i: int, t: int, pkt) -> None:
        """Commit a first-time TLP transmission at tick ``t``.

        ``_wrap_new_tlp`` issues component retries whose deferred
        responses fire at the current tick, so ``t`` must equal the
        simulated clock — the planner guarantees it, and a violation
        bails loudly instead of touching the component off-schedule.
        """
        iface = self.ifaces[i]
        if t != self._eventq.curtick:
            queue = iface._in_cpl if pkt.is_response else iface._in_req
            queue.appendleft(pkt)
            raise _Bail("desync")
        ppkt = iface._wrap_new_tlp(pkt)
        self._acc[i][_ACC_TLPS] += 1
        wire = ppkt.wire_bytes()
        self._commit_send(
            i, t, ppkt, wire, self.link.timing.transmission_ticks(wire))
        if self._replay_deadline[i] is None:
            self._replay_deadline[i] = t + self._replay_timeout

    def _commit_send(self, i: int, t: int, ppkt, wire: int, ttx: int) -> None:
        """Occupy the wire and enqueue the virtual tx_done/delivery
        pair (the fast mirror of ``UnidirectionalLink.send``)."""
        acc = self._acc[i]
        acc[_ACC_PKTS] += 1
        acc[_ACC_BYTES] += wire
        acc[_ACC_BUSY] += ttx
        free_at = t + ttx
        self._wire_free[i] = free_at
        if free_at < self._next_at:
            self._next_at = free_at
        self._mutations += 1
        vseq = self._vseq
        self._vseq = vseq + 2
        self._freed[i] = [free_at, vseq]
        self._inflight[i].append(
            [free_at + self._prop_delay, vseq + 1, ppkt])

    def _fp_blocked(self, i: int, cls: int, t: int) -> None:
        """``_fc_blocked`` at tick ``t``: start the stall clock and arm
        the (virtual) FC watchdog."""
        fc = self.ifaces[i].fc
        if not fc.stalled(cls):
            fc.stall_begin(cls, t)
            self._mutations += 1
        if self._watchdog_deadline[i] is None:
            self._watchdog_deadline[i] = t + self._fc_watchdog
            self._mutations += 1

    def _apply_dllp(self, r: int, t: int, ppkt) -> None:
        """``_receive_dllp`` at tick ``t`` for direction ``r`` (no
        corruption draw: a zero error rate never samples the RNG)."""
        iface = self.ifaces[r]
        dllp_type = ppkt.dllp_type
        if dllp_type is DllpType.ACK:
            self._acc[r][_ACC_ACKS_RECV] += 1
            iface._purge_acknowledged(ppkt.seq)
            self._replay_deadline[r] = (
                t + self._replay_timeout if iface.replay_buffer else None)
            if self._wire_free[r] <= t:
                self._try_tx(r, t)
        elif dllp_type is DllpType.NAK:
            raise _Bail("wire_event")  # never generated while engaged
        else:
            self._acc[r][_ACC_FCU_RECV] += 1
            cls = FLOW_CLASS_FOR_DLLP[dllp_type]
            fc = iface.fc
            if fc.advertise(cls, ppkt.seq):
                fc.stall_end(cls, t)
                if (self._watchdog_deadline[r] is not None
                        and not (fc.stalled(0) or fc.stalled(1)
                                 or fc.stalled(2))):
                    self._watchdog_deadline[r] = None
                if self._wire_free[r] <= t:
                    self._try_tx(r, t)

    def _apply_tlp(self, r: int, t: int, ppkt) -> None:
        """``_receive_tlp`` at tick ``t`` for direction ``r``.

        Deliveries are component-visible (``_drain_rx`` makes real port
        calls), so ``t`` must equal the simulated clock; the planner
        guarantees it.  A drain refusal bails: the parked RX queues
        re-enter through the slow path's port-retry machinery.
        """
        iface = self.ifaces[r]
        if ppkt.seq != iface.recv_seq:
            raise _Bail("wire_event")
        if t != self._eventq.curtick:
            self._inflight[1 - r].appendleft([t, -1, ppkt])
            raise _Bail("desync")
        pkt = ppkt.tlp
        cls = pkt.flow_class
        self._acc[r][_ACC_DELIVERED] += 1
        iface.fc.rx_accept(cls)
        (iface._rx_cpl if cls == FLOW_CPL else iface._rx_req).append(pkt)
        iface.recv_seq += 1
        # _schedule_ack under the immediate policy: queue + kick.
        iface._queue_dllp(PciePacket.ack(iface.recv_seq - 1))
        if self._wire_free[r] <= t:
            self._try_tx(r, t)
        # Real port pushes at the exact tick; the drain's own trailing
        # _kick_tx routes to notify_tx, which the sweep guard absorbs.
        iface._drain_rx()
        if iface._rx_req or iface._rx_cpl:
            raise _Bail("refusal")
        # _drain_rx's trailing kick: `drained` is always True here (the
        # queue was non-empty and the refusal case bailed above).
        if self._wire_free[r] <= t:
            self._try_tx(r, t)

    # -- planning ----------------------------------------------------------
    def _quick_plan(self) -> int:
        """Conservative next-pump tick from settled state alone, or -1
        when only the full dry walk can decide.

        Component-visible ticks have exactly two sources: a TLP delivery
        (its arrival tick is fixed the moment it entered flight) and a
        new-TLP send, which needs a kick — and every kick source is
        pinned too: the pending freed-wire tick, an arrival on the
        reverse wire, or an external notify (which patches the pump
        itself).  A send cannot happen while the wire is busy, and the
        wire stays busy exactly until the pending freed tick, so
        ``min(earliest in-flight TLP arrival, per-direction earliest
        kick with a TLP queued)`` lower-bounds the next component tick.
        Pumping early is safe — the pump just applies due actions and
        replans — so a conservative bound is a valid plan.

        Falls back to the full planner when a virtualised deadline is
        not strictly beyond the bound (only the walk can order a bail),
        when no bound exists (finalise/park/starve decisions), or when
        a retransmit queue is pending (the walk bails on it).
        """
        ifaces = self.ifaces
        if ifaces[0].retransmit_queue or ifaces[1].retransmit_queue:
            return -1
        freed = self._freed
        inflight = self._inflight
        best = _FAR
        for i in (0, 1):
            iface = ifaces[i]
            if iface._in_req or iface._in_cpl:
                f = freed[i]
                if f is not None:
                    t = f[0]
                    if t < best:
                        best = t
                else:
                    q = inflight[1 - i]
                    if q:
                        t = q[0][0]
                        if t < best:
                            best = t
            for e in inflight[i]:
                if e[2].dllp_type is None:
                    if e[0] < best:
                        best = e[0]
                    break
        if best >= _FAR:
            return -1
        rd = self._replay_deadline
        d = rd[0]
        if d is not None and d <= best:
            return -1
        d = rd[1]
        if d is not None and d <= best:
            return -1
        wd = self._watchdog_deadline
        d = wd[0]
        if d is not None and d <= best:
            return -1
        d = wd[1]
        if d is not None and d <= best:
            return -1
        return best

    def _replan(self) -> None:
        """Plan the next pump: a quick conservative bound when settled
        state pins one down, else the full dry walk; schedule the pump
        at the next component-visible tick, park, or bail."""
        quick = self._quick_plan()
        if quick >= 0:
            self._parked = False
            self._plan_stale = False
            pump = self._pump_event
            if pump.when != quick:
                self._eventq.reschedule(pump, quick)
            return
        plan = self._peek()
        if plan is None:
            # Quiescent: timeline empty, no deadline armed, real and
            # virtual state coincide.  Park — stay claimed with no
            # pump scheduled; the next kick resumes through notify_tx
            # without paying an engage/deschedule cycle.
            self._parked = True
            self._plan_stale = False
            self._flush_stats()
            if self._pump_event.scheduled:
                self._eventq.deschedule(self._pump_event)
            # A park is a settled point, so standing down here is free:
            # if the measured yield says the link is saturated (nearly
            # every action needed its own pump), release it to the
            # event-by-event path and only re-probe after a cooldown.
            if (self.saturation_guard
                    and self._ff_actions > _GUARD_MIN_ACTIONS
                    and self._ff_actions < self._ff_pumps * _GUARD_RATIO):
                self.active = False
                self._parked = False
                self.standdowns.inc()
                self._cooldown = _GUARD_COOLDOWN
                self._ff_actions = 0
                self._ff_pumps = 0
            return
        kind, value = plan
        if kind == "bail":
            self._do_bail(value)
            return
        # The plan is valid until external state changes (a component
        # mutation, or an unplanned kick that transmitted/stalled):
        # notify_tx skips the re-walk while this stays False.
        self._parked = False
        self._plan_stale = False
        pump = self._pump_event
        if pump.when != value:
            self._eventq.reschedule(pump, value)

    def _peek(self):
        """Walk the pending timeline without touching real state.

        Returns ``("pump", tick)`` for the next tick the pump must fire
        at — the first TLP send or delivery, else the tick of the last
        pending action so the burst can finalise and disengage;
        ``("bail", reason)`` when a virtualised timer would expire
        first or the burst can no longer progress; or None when nothing
        is pending at all (clean disengage).

        This is the dry mirror of ``_advance``/``_try_tx``/
        ``_apply_dllp`` over scratch state: same ``(tick, vseq)``
        ordering, same decision procedure, no mutation.  Dry-sent
        DLLPs carry their (type, value) payload so their arrival
        effects — ACK purges, UpdateFC credits — are modelled too.
        """
        ifaces = self.ifaces
        fr = self._freed
        live = self._inflight
        out0 = ifaces[0].dllp_queue
        out1 = ifaces[1].dllp_queue
        if (fr[0] is None and fr[1] is None and not live[0] and not live[1]
                and not out0 and not out1):
            # Empty timeline: the exhaustion rules, without scratch setup.
            wd = self._watchdog_deadline
            if wd[0] is not None or wd[1] is not None:
                return ("bail", "starve")
            rd = self._replay_deadline
            if rd[0] is not None or rd[1] is not None:
                return ("bail", "replay_deadline")
            return None
        dllp_ttx = self._dllp_ttx
        prop = self._prop_delay
        cap = self._replay_cap
        replay_timeout = self._replay_timeout
        fc_watchdog = self._fc_watchdog
        ack_t = DllpType.ACK
        nak_t = DllpType.NAK
        # Scratch is persistent (allocated once in __init__) and reset by
        # index stores here: this walk runs a few times per fast-forwarded
        # TLP, so per-call allocation and per-iteration re-derivation are
        # what the profile bleeds on.  The four merge candidates — freed
        # wire (even slots) and arrival head (odd slots) per direction —
        # live in flat (tick, vseq, dllp_type, value) columns and are
        # refreshed only when consumed; _FAR marks an exhausted candidate
        # so the probe needs no None checks.
        f0 = fr[0]
        f1 = fr[1]
        cand = self._pk_cand
        cv = self._pk_cv
        cdt = self._pk_cdt
        cdv = self._pk_cdv
        if f0 is None:
            cand[0] = _FAR
        else:
            cand[0] = f0[0]
            cv[0] = f0[1]
        if f1 is None:
            cand[2] = _FAR
        else:
            cand[2] = f1[0]
            cv[2] = f1[1]
        # Arrival streams are read in place rather than copied: an index
        # cursor walks the live in-flight deque, and DLLPs the dry walk
        # itself transmits land in a per-direction overflow list carrying
        # their (type, value) payload.  The wire is FIFO with a constant
        # propagation delay, so every dry-sent arrival sorts after every
        # live one — the live cursor drains before the overflow cursor,
        # making cursor-then-overflow a true two-level merge.  A None
        # dllp_type marks a TLP (the walk ends there).
        if live[0]:
            e = live[0][0]
            cand[1] = e[0]
            cv[1] = e[1]
            p = e[2]
            cdt[1] = p.dllp_type
            cdv[1] = p.seq
        else:
            cand[1] = _FAR
        if live[1]:
            e = live[1][0]
            cand[3] = e[0]
            cv[3] = e[1]
            p = e[2]
            cdt[3] = p.dllp_type
            cdv[3] = p.seq
        else:
            cand[3] = _FAR
        li = self._pk_li
        li[0] = 0
        li[1] = 0
        extra = self._pk_extra
        extra[0].clear()
        extra[1].clear()
        xi = self._pk_xi
        xi[0] = 0
        xi[1] = 0
        wf = self._pk_wf
        wf[0] = self._wire_free[0]
        wf[1] = self._wire_free[1]
        outq = (out0, out1)
        oc = self._pk_oc
        oc[0] = 0
        oc[1] = 0
        rbuf = (ifaces[0].replay_buffer, ifaces[1].replay_buffer)
        rskip = self._pk_rskip  # dry-ACKed prefix of each live replay buffer
        rskip[0] = 0
        rskip[1] = 0
        # Flow-control scratch is materialised per direction only when
        # the walk actually reaches a TLP-send or UpdateFC decision.
        headroom = self._pk_hr
        headroom[0] = None
        headroom[1] = None
        limit = self._pk_lim
        limit[0] = None
        limit[1] = None
        stalled = self._pk_st
        stalled[0] = None
        stalled[1] = None
        rd = self._replay_deadline
        wd = self._watchdog_deadline
        rdl = self._pk_rdl
        rdl[0] = _FAR if rd[0] is None else rd[0]
        rdl[1] = _FAR if rd[1] is None else rd[1]
        wdl = self._pk_wdl
        wdl[0] = _FAR if wd[0] is None else wd[0]
        wdl[1] = _FAR if wd[1] is None else wd[1]
        # dmin caches min(rdl+wdl) so the loop pays one compare per
        # iteration; recomputed at the (rare) deadline re-arm sites.
        dmin = rdl[0]
        if rdl[1] < dmin:
            dmin = rdl[1]
        if wdl[0] < dmin:
            dmin = wdl[0]
        if wdl[1] < dmin:
            dmin = wdl[1]
        vseq = self._vseq
        last_tick = -1

        while True:
            bt = cand[0]
            bv = cv[0]
            bj = 0
            t = cand[1]
            if t < bt or (t == bt and cv[1] < bv):
                bt = t
                bv = cv[1]
                bj = 1
            t = cand[2]
            if t < bt or (t == bt and cv[2] < bv):
                bt = t
                bv = cv[2]
                bj = 2
            t = cand[3]
            if t < bt or (t == bt and cv[3] < bv):
                bt = t
                bv = cv[3]
                bj = 3
            if bt >= _FAR:
                # Timeline exhausted without reaching a TLP tick.
                if wdl[0] != _FAR or wdl[1] != _FAR:
                    return ("bail", "starve")
                if rdl[0] != _FAR or rdl[1] != _FAR:
                    return ("bail", "replay_deadline")
                if last_tick >= 0:
                    # A finalising pump applies the remaining late
                    # actions, after which the burst can disengage.
                    now = self._eventq.curtick
                    return ("pump", last_tick if last_tick > now else now)
                return None
            if dmin <= bt:
                if rdl[0] <= bt:
                    return ("bail", "replay_deadline")
                if wdl[0] <= bt:
                    return ("bail", "watchdog")
                if rdl[1] <= bt:
                    return ("bail", "replay_deadline")
                return ("bail", "watchdog")
            tick = last_tick = bt
            if not bj & 1:
                cand[bj] = _FAR
                kick_i = bj >> 1
            else:
                i = bj >> 1
                dllp_type = cdt[bj]
                if dllp_type is None:
                    return ("pump", tick)  # TLP delivery: pump must fire
                value = cdv[bj]
                # Consume the head (live cursor first, then overflow) and
                # refresh this direction's arrival candidate.
                q = live[i]
                k = li[i]
                if k < len(q):
                    k += 1
                    li[i] = k
                else:
                    xi[i] += 1
                if k < len(q):
                    e = q[k]
                    cand[bj] = e[0]
                    cv[bj] = e[1]
                    p = e[2]
                    cdt[bj] = p.dllp_type
                    cdv[bj] = p.seq
                else:
                    x = extra[i]
                    k = xi[i]
                    if k < len(x):
                        e = x[k]
                        cand[bj] = e[0]
                        cv[bj] = e[1]
                        cdt[bj] = e[2]
                        cdv[bj] = e[3]
                    else:
                        cand[bj] = _FAR
                r = 1 - i
                if dllp_type is ack_t:
                    rb = rbuf[r]
                    k = rskip[r]
                    n = len(rb)
                    while k < n and rb[k].seq <= value:
                        k += 1
                    rskip[r] = k
                    rdl[r] = tick + replay_timeout if k < n else _FAR
                    dmin = rdl[0]
                    if rdl[1] < dmin:
                        dmin = rdl[1]
                    if wdl[0] < dmin:
                        dmin = wdl[0]
                    if wdl[1] < dmin:
                        dmin = wdl[1]
                    kick_i = r
                elif dllp_type is nak_t:
                    return ("pump", tick)  # wet path bails on it exactly
                else:
                    cls = FLOW_CLASS_FOR_DLLP[dllp_type]
                    lim = limit[r]
                    if lim is None:
                        fc = ifaces[r].fc
                        headroom[r] = [fc.tx_headroom(0), fc.tx_headroom(1),
                                       fc.tx_headroom(2)]
                        lim = limit[r] = list(fc.tx_limit)
                        stalled[r] = [fc.stalled(0), fc.stalled(1),
                                      fc.stalled(2)]
                    if value <= lim[cls]:
                        continue
                    headroom[r][cls] += value - lim[cls]
                    lim[cls] = value
                    st = stalled[r]
                    st[cls] = False
                    if wdl[r] != _FAR and not (st[0] or st[1] or st[2]):
                        wdl[r] = _FAR
                        dmin = rdl[0]
                        if rdl[1] < dmin:
                            dmin = rdl[1]
                        if wdl[0] < dmin:
                            dmin = wdl[0]
                        if wdl[1] < dmin:
                            dmin = wdl[1]
                    kick_i = r
            # -- dry _try_tx for direction kick_i at `tick`, inlined ----
            i = kick_i
            if wf[i] > tick:
                continue
            q = outq[i]
            if oc[i] < len(q):
                p = q[oc[i]]
                oc[i] += 1
                free_at = tick + dllp_ttx
                wf[i] = free_at
                j = i + i
                cand[j] = free_at
                cv[j] = vseq
                j += 1
                if cand[j] >= _FAR:
                    # Both arrival cursors were exhausted: the entry being
                    # appended becomes this direction's arrival head.
                    cand[j] = free_at + prop
                    cv[j] = vseq + 1
                    cdt[j] = p.dllp_type
                    cdv[j] = p.seq
                extra[i].append(
                    (free_at + prop, vseq + 1, p.dllp_type, p.seq))
                vseq += 2
                continue
            iface = ifaces[i]
            if iface.retransmit_queue:
                continue  # the wet sweep bails on this instead
            if len(rbuf[i]) - rskip[i] >= cap:
                continue
            incpl = iface._in_cpl
            inreq = iface._in_req
            if not incpl and not inreq:
                continue
            hr = headroom[i]
            if hr is None:
                fc = iface.fc
                hr = headroom[i] = [fc.tx_headroom(0), fc.tx_headroom(1),
                                    fc.tx_headroom(2)]
                limit[i] = list(fc.tx_limit)
                stalled[i] = [fc.stalled(0), fc.stalled(1), fc.stalled(2)]
            if incpl:
                if hr[FLOW_CPL] > 0:
                    return ("pump", tick)
                stalled[i][FLOW_CPL] = True
                if wdl[i] == _FAR:
                    wdl[i] = tick + fc_watchdog
                    if wdl[i] < dmin:
                        dmin = wdl[i]
            if inreq:
                cls = inreq[0].flow_class
                if hr[cls] > 0:
                    return ("pump", tick)
                stalled[i][cls] = True
                if wdl[i] == _FAR:
                    wdl[i] = tick + fc_watchdog
                    if wdl[i] < dmin:
                        dmin = wdl[i]

    # -- burst exit --------------------------------------------------------
    def _flush_stats(self) -> None:
        """Settle the accumulated counters into the real Stat objects.

        Runs at every quiescent point — park, disengage, bail — so the
        statistics tree is exact whenever the engine can be observed;
        only strictly mid-burst reads (which checkpoints already
        refuse) could see counters a few virtual actions behind.
        """
        for i, iface in enumerate(self.ifaces):
            acc = self._acc[i]
            # Yield measurement for the saturation guard: sends plus
            # arrivals is the virtual-action count of this window.
            self._ff_actions += (acc[_ACC_PKTS] + acc[_ACC_ACKS_RECV]
                                 + acc[_ACC_FCU_RECV] + acc[_ACC_DELIVERED])
            n = acc[_ACC_PKTS]
            if n:
                link = iface.tx_link
                link.packets.inc(n)
                link.bytes.inc(acc[_ACC_BYTES])
                link.busy_ticks.inc(acc[_ACC_BUSY])
            if acc[_ACC_ACKS_SENT]:
                iface.acks_sent.inc(acc[_ACC_ACKS_SENT])
            if acc[_ACC_NAKS_SENT]:
                iface.naks_sent.inc(acc[_ACC_NAKS_SENT])
            if acc[_ACC_FCU_SENT]:
                iface.fc_updates_sent.inc(acc[_ACC_FCU_SENT])
            if acc[_ACC_ACKS_RECV]:
                iface.acks_received.inc(acc[_ACC_ACKS_RECV])
            if acc[_ACC_FCU_RECV]:
                iface.fc_updates_received.inc(acc[_ACC_FCU_RECV])
            if acc[_ACC_DELIVERED]:
                iface.delivered.inc(acc[_ACC_DELIVERED])
            if acc[_ACC_TLPS]:
                self.tlps.inc(acc[_ACC_TLPS])
            acc[:] = _ACC_ZERO

    def _disengage(self) -> None:
        """Clean end of a burst: the virtual timeline fully drained, no
        deadline armed, nothing to materialise."""
        self.active = False
        self._parked = False
        self._flush_stats()
        if self._pump_event.scheduled:
            self._eventq.deschedule(self._pump_event)

    def _do_bail(self, reason: str) -> None:
        """Materialise virtual state back into real events and stand
        down; the event-by-event path resumes from an equivalent state.

        Deliveries still pending *before* the current tick (possible
        only when a refusal aborts a sweep midway) are handed over
        directly, in order — their slow-path processing would also have
        completed by now.  Same-tick and future deliveries are
        scheduled as real events, so they fire after the event being
        processed, matching their virtual sequence position.
        """
        self.bailouts[reason].inc()
        self.active = False
        self._parked = False
        self._flush_stats()
        eventq = self._eventq
        now = eventq.curtick
        if self._pump_event.scheduled:
            eventq.deschedule(self._pump_event)
        for i, iface in enumerate(self.ifaces):
            self._freed[i] = None
            link = iface.tx_link
            receiver = self.ifaces[1 - i]
            q = self._inflight[i]
            while q and q[0][0] < now:
                receiver.receive_from_link(q.popleft()[2])
            pool = link._deliver_pool
            while q:
                tick, __, ppkt = q.popleft()
                deliver = pool.pop() if pool else _new_deliver_event(link)
                deliver.receiver = receiver
                deliver.ppkt = ppkt
                eventq.schedule(deliver, max(tick, now))
            # Wire still serialising: restore busy + tx_done, unless a
            # pre-engagement tx_done still owns the wire.
            if self._wire_free[i] > now and not link._tx_done_event.scheduled:
                link.busy = True
                link._tx_done_event.sender = iface
                eventq.schedule(link._tx_done_event, self._wire_free[i])
            deadline = self._replay_deadline[i]
            self._replay_deadline[i] = None
            if deadline is not None and iface.replay_buffer:
                eventq.schedule(iface._replay_event, max(deadline, now))
            deadline = self._watchdog_deadline[i]
            self._watchdog_deadline[i] = None
            fc = iface.fc
            if deadline is not None and (fc.stalled(0) or fc.stalled(1)
                                         or fc.stalled(2)):
                eventq.schedule(iface._fc_watchdog_event, max(deadline, now))
        for iface in self.ifaces:
            iface._kick_tx()


def _new_deliver_event(link):
    """Build a fresh wire-delivery event for ``link`` (pool empty).

    Imported lazily: :mod:`repro.pcie.link` instantiates this module's
    engine, so a module-level import back into it would be cyclic.
    """
    from repro.pcie.link import _DeliverEvent

    return _DeliverEvent(link)
