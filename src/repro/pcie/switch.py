"""The PCI-Express switch.

A switch interconnects links: one upstream port and one or more
downstream ports, *each* represented by a VP2P (in contrast to the root
complex, where only the root ports carry VP2Ps).  Ours is a
store-and-forward switch — gem5 deals in whole packets — with a
configurable latency; a typical switch on the market is 150 ns.

Differences from the root complex, per the paper:

* the upstream slave port claims the address ranges programmed into the
  *upstream VP2P's* base/limit registers (not the union of the
  downstream ports');
* the upstream port, too, is software-visible as a bridge: enumeration
  discovers upstream-VP2P → bus → downstream-VP2Ps → buses.
"""

from typing import List, Optional

from repro.mem.addr import AddrRange
from repro.pci.capabilities import PciePortType
from repro.pcie.routing import ComponentPort, PcieRoutingEngine
from repro.pcie.vp2p import VirtualP2PBridge
from repro.sim import ticks
from repro.sim.simobject import SimObject, Simulator

# A generic PLX/Broadcom-style switch identity.
PLX_VENDOR_ID = 0x10B5
PLX_SWITCH_DEVICE_ID = 0x8796


class PcieSwitch(PcieRoutingEngine):
    """A store-and-forward PCI-Express switch.

    Args:
        num_downstream_ports: downstream port (and VP2P) count.
        latency: store-and-forward processing latency (default 150 ns).
        buffer_size: per-port, per-direction packet buffer (default 16).
        service_interval: per-packet serialization of a port's internal
            datapath.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "switch",
        parent: Optional[SimObject] = None,
        num_downstream_ports: int = 2,
        latency: int = ticks.from_ns(150),
        buffer_size: int = 16,
        service_interval: int = ticks.from_ns(30),
        datapath_scope: str = "port",
        link_speed: int = 2,
        link_width: int = 1,
    ):
        super().__init__(
            sim, name, parent,
            latency=latency, buffer_size=buffer_size,
            service_interval=service_interval,
            datapath_scope=datapath_scope,
        )
        if num_downstream_ports < 1:
            raise ValueError("a switch needs at least one downstream port")
        self.upstream_vp2p = VirtualP2PBridge(
            device_id=PLX_SWITCH_DEVICE_ID,
            vendor_id=PLX_VENDOR_ID,
            port_type=PciePortType.UPSTREAM_SWITCH_PORT,
            link_speed=link_speed,
            link_width=link_width,
        )
        for i in range(num_downstream_ports):
            vp2p = VirtualP2PBridge(
                device_id=PLX_SWITCH_DEVICE_ID + 1 + i,
                vendor_id=PLX_VENDOR_ID,
                port_type=PciePortType.DOWNSTREAM_SWITCH_PORT,
                link_speed=link_speed,
                link_width=link_width,
            )
            self.add_downstream_port(vp2p, name=f"down_port{i}")

    # -- aliases -------------------------------------------------------------
    @property
    def upstream_slave(self):
        """Accepts requests from the root-complex side link."""
        return self.upstream_port.slave_port

    @property
    def upstream_master(self):
        """Sends DMA requests toward the root complex."""
        return self.upstream_port.master_port

    @property
    def vp2ps(self) -> List[VirtualP2PBridge]:
        return [self.upstream_vp2p] + [p.vp2p for p in self.downstream_ports]

    def config_dict(self) -> dict:
        config = super().config_dict()
        config["kind"] = "switch"
        return config

    # -- routing policy ------------------------------------------------------------
    def upstream_ranges(self) -> List[AddrRange]:
        """What the switch claims from upstream: the windows programmed
        into the *upstream* VP2P."""
        return self.upstream_vp2p.forwarding_ranges()

    def upstream_stamp_bus(self) -> int:
        # A request entering from upstream arrived on the upstream
        # VP2P's primary bus.  (Requests from the processor were already
        # stamped 0 at the root complex; this matters only for unusual
        # topologies where the switch is the first stamping point.)
        return self.upstream_vp2p.primary_bus

    def register_with_host(self, parent_bus, device: int = 0) -> list:
        """Install the switch's VP2P hierarchy into a host config-bus.

        ``parent_bus`` is the config bus behind the root port (or
        upstream switch) this switch hangs off.  The upstream VP2P
        becomes device ``device`` on that bus; the downstream VP2Ps
        populate the internal bus behind it.  Returns the list of config
        buses behind each downstream port, in port order.
        """
        internal = parent_bus.add_bridge(device, 0, self.upstream_vp2p,
                                         child_name=f"{self.name}.internal")
        children = []
        for i, port in enumerate(self.downstream_ports):
            child = internal.add_bridge(i, 0, port.vp2p,
                                        child_name=f"{self.name}.dp{i}")
            children.append(child)
        self._downstream_config_buses = children
        return children
