"""The PCI-Express interconnect model — the paper's core contribution.

* :mod:`repro.pcie.timing` — generations, lane rates, encoding and
  framing overheads (Table I), and the replay/ACK timer formula from the
  PCI-Express specification;
* :mod:`repro.pcie.pkt` — the ``pcie-pkt`` wrapper encapsulating either
  a TLP (a gem5-style memory packet) or a DLLP (ACK/NAK);
* :mod:`repro.pcie.link` — the link model of Figure 8: two
  unidirectional links plus an interface at each end implementing the
  simplified data-link-layer ACK/NAK protocol with replay buffers,
  sequence numbers, replay timers and ACK timers;
* :mod:`repro.pcie.vp2p` — virtual PCI-to-PCI bridges: a type-1 header
  plus a PCI-Express capability identifying the port role;
* :mod:`repro.pcie.routing` — the shared routing/queueing engine the
  root complex and switch are built on (the paper builds both on the
  gem5 bridge);
* :mod:`repro.pcie.root_complex` and :mod:`repro.pcie.switch` — the two
  concrete components of Figure 6.
"""

from repro.pcie.timing import (
    PcieGen,
    LinkTiming,
    TLP_OVERHEAD_BYTES,
    DLLP_WIRE_BYTES,
    ack_factor,
    replay_timeout_ticks,
    ack_timer_ticks,
)
from repro.pcie.pkt import PciePacket, DllpType
from repro.pcie.link import PcieLink, PcieLinkInterface
from repro.pcie.vp2p import VirtualP2PBridge
from repro.pcie.root_complex import RootComplex
from repro.pcie.switch import PcieSwitch

__all__ = [
    "PcieGen",
    "LinkTiming",
    "TLP_OVERHEAD_BYTES",
    "DLLP_WIRE_BYTES",
    "ack_factor",
    "replay_timeout_ticks",
    "ack_timer_ticks",
    "PciePacket",
    "DllpType",
    "PcieLink",
    "PcieLinkInterface",
    "VirtualP2PBridge",
    "RootComplex",
    "PcieSwitch",
]
