"""The root complex (Figure 6 of the paper).

The root complex connects the PCI-Express fabric to the processor and
memory:

* its **upstream slave port** accepts processor requests destined for
  any PCI-Express device — it claims the union of the address windows
  programmed into its root ports' VP2Ps;
* its **upstream master port** sends DMA requests from the devices
  toward memory (through an IOCache, in the paper's topology);
* each of its **root ports** is a master/slave pair with a VP2P whose
  windows and bus numbers, programmed by the enumeration software,
  drive live routing.

The paper does not place a host-PCI bridge inside the root complex —
configuration accesses go through gem5's functional PCI Host — and
neither do we (:class:`repro.pci.host.PciHost` plays that role).

Requests entering the upstream port are stamped with bus number 0.
"""

from typing import List, Optional

from repro.mem.addr import AddrRange
from repro.pci.capabilities import PciePortType
from repro.pcie.routing import ComponentPort, PcieRoutingEngine
from repro.pcie.vp2p import VirtualP2PBridge, WILDCAT_ROOT_PORT_IDS
from repro.sim import ticks
from repro.sim.simobject import SimObject, Simulator


class RootComplex(PcieRoutingEngine):
    """A root complex with ``num_root_ports`` root ports.

    Args:
        num_root_ports: how many root ports (and VP2Ps) to create; the
            paper's model implements three.
        latency: request/response processing latency (default 150 ns,
            the paper's fixed root-complex setting).
        buffer_size: per-port, per-direction packet buffer (default 16).
        service_interval: per-packet serialization of a port's internal
            datapath.
        link_width: advertised width in the VP2P capability registers.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "root_complex",
        parent: Optional[SimObject] = None,
        num_root_ports: int = 3,
        latency: int = ticks.from_ns(150),
        buffer_size: int = 16,
        service_interval: int = ticks.from_ns(30),
        datapath_scope: str = "port",
        link_speed: int = 2,
        link_width: int = 1,
    ):
        super().__init__(
            sim, name, parent,
            latency=latency, buffer_size=buffer_size,
            service_interval=service_interval,
            datapath_scope=datapath_scope,
        )
        if num_root_ports < 1:
            raise ValueError("a root complex needs at least one root port")
        for i in range(num_root_ports):
            device_id = WILDCAT_ROOT_PORT_IDS[i % len(WILDCAT_ROOT_PORT_IDS)]
            vp2p = VirtualP2PBridge(
                device_id=device_id,
                port_type=PciePortType.ROOT_PORT,
                link_speed=link_speed,
                link_width=link_width,
            )
            self.add_downstream_port(vp2p, name=f"root_port{i}")

    # -- aliases matching the paper's vocabulary ---------------------------------
    @property
    def root_ports(self) -> List[ComponentPort]:
        return self.downstream_ports

    @property
    def upstream_slave(self):
        """Accepts processor requests (bind to MemBus/bridge master)."""
        return self.upstream_port.slave_port

    @property
    def upstream_master(self):
        """Sends DMA requests toward memory (bind to the IOCache)."""
        return self.upstream_port.master_port

    @property
    def vp2ps(self) -> List[VirtualP2PBridge]:
        return [port.vp2p for port in self.downstream_ports]

    def config_dict(self) -> dict:
        config = super().config_dict()
        config["kind"] = "root_complex"
        config["num_root_ports"] = len(self.root_ports)
        return config

    # -- routing policy ------------------------------------------------------------
    def upstream_ranges(self) -> List[AddrRange]:
        """The union of every root port's programmed windows — what the
        root complex claims from the processor side."""
        out: List[AddrRange] = []
        for port in self.downstream_ports:
            out.extend(port.vp2p.forwarding_ranges())
        return out

    def upstream_stamp_bus(self) -> int:
        # "The upstream root complex slave port sets the bus number to 0."
        return 0

    def register_with_host(self, host, start_device: int = 0) -> list:
        """Register each root port's VP2P on the host's bus 0.

        Returns the config bus behind each root port, in port order;
        callers install device/switch config models onto those buses so
        that enumeration can discover them (see
        :mod:`repro.system.topology`).
        """
        children = []
        for i, port in enumerate(self.downstream_ports):
            child = host.root_bus.add_bridge(start_device + i, 0, port.vp2p,
                                             child_name=f"{self.name}.rp{i}")
            children.append(child)
        return children
