"""The routing/queueing engine shared by the root complex and switch.

The paper builds both components on the gem5 bridge; here they share a
:class:`PcieRoutingEngine` that owns a set of :class:`ComponentPort`
pairs (one upstream, N downstream) and the two routing rules from
Section V-A:

* **requests** route downstream to the port whose VP2P memory or I/O
  window contains the packet's address, and otherwise upstream (DMA to
  host memory);
* **responses** route by the packet's ``pci_bus_num``: downstream to the
  port whose VP2P [secondary, subordinate] range contains the bus, and
  upstream when no port matches.

Every slave port stamps ``pci_bus_num`` on requests still carrying the
−1 sentinel: downstream ports stamp their VP2P's secondary bus number,
the upstream port stamps the bus the component itself lives on (0 for
the root complex).

**Buffering.**  "Each port associated with the root complex has
configurable buffers and models the congestion at the port."  Each
:class:`ComponentPort` owns a pool of ``buffer_size`` packet slots,
partitioned by flow-control class — posted, non-posted and completion
(see :mod:`repro.pcie.fc`) — mirroring the per-class credits the link
layer advertises.  A packet occupies exactly one slot of its class — at
the port it *entered* through — for its entire residence in the
component: the processing delay (``latency``, admitted one per
``service_interval``, the port's internal datapath rate) plus however
long it waits in its egress queue.  Holding a single resource per
packet keeps the fabric deadlock-free by construction (no
hold-and-wait), while a full class pool refuses ingress — backpressure
the link layer absorbs into its receive buffers and surfaces to *its*
peer as per-class credit stalls.

The class partition (completion slots ``max(1, buffer_size // 4)``, the
remainder split evenly between posted and non-posted, every class at
least one slot) guarantees completions a dedicated path through every
engine: a non-posted request flood can fill the NP slots and nothing
else, so the completions it is waiting on always have somewhere to go —
the property that used to be approximated by reserving a single slot
for all responses combined.
"""

from typing import Dict, List, Optional, Tuple

from repro.mem.addr import AddrRange
from repro.mem.packet import FLOW_CPL, FLOW_NP, FLOW_P, Packet
from repro.mem.port import MasterPort, PacketQueue, PortError, SlavePort
from repro.pcie.vp2p import VirtualP2PBridge
from repro.sim import ticks
from repro.sim.eventq import Event
from repro.sim.simobject import SimObject, Simulator


class _ProcessedEvent(Event):
    """Recycled ingress-processing-done event for one ComponentPort.

    Up to ``buffer_size`` packets can be in the port's datapath at
    once, so the port keeps a pool; a fired event recycles itself into
    it before routing the packet onward (the recycling contract makes
    it immediately reusable), keeping the pool at the high-water mark
    of in-flight processings instead of one allocation per packet.
    """

    __slots__ = ("port", "pkt", "is_response")

    def __init__(self, port: "ComponentPort"):
        super().__init__(name="processed")
        self.port = port
        self.pkt: Optional[Packet] = None
        self.is_response = False

    def process(self) -> None:
        """Recycle into the port's pool, then route the packet on."""
        port = self.port
        pkt = self.pkt
        is_response = self.is_response
        self.pkt = None
        port._processed_pool.append(self)
        port.engine._move(pkt, src=port, is_response=is_response)


class ComponentPort(SimObject):
    """One port of a root complex or switch: a master/slave pair plus a
    slot pool accounting for every packet that entered here."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        parent: "PcieRoutingEngine",
        vp2p: Optional[VirtualP2PBridge],
        is_upstream: bool,
    ):
        super().__init__(sim, name, parent)
        self.engine = parent
        self.vp2p = vp2p
        self.is_upstream = is_upstream

        self.master_port = MasterPort(
            self, "master",
            recv_timing_resp=self._recv_response,
            recv_req_retry=lambda: self.req_queue.retry(),
        )
        self.slave_port = SlavePort(
            self, "slave",
            recv_timing_req=self._recv_request,
            recv_resp_retry=lambda: self.resp_queue.retry(),
        )
        if is_upstream:
            self.slave_port.get_ranges = parent.upstream_ranges

        # Egress queues.  Slot accounting lives with the ingress port,
        # so capacity here only needs to cover the whole engine's worst
        # case (every resident packet targeting one egress).
        capacity = (parent.p_slots + parent.np_slots + parent.cpl_slots) * 8
        self.req_queue = PacketQueue(
            self, "reqq", self.master_port.send_timing_req, capacity
        )
        self.resp_queue = PacketQueue(
            self, "respq", self.slave_port.send_timing_resp, capacity
        )
        self.req_queue.on_packet_sent = (
            lambda pkt: parent._packet_left(pkt, is_response=False)
        )
        self.resp_queue.on_packet_sent = (
            lambda pkt: parent._packet_left(pkt, is_response=True)
        )

        # The pool: packets resident in the engine that entered here,
        # accounted per flow-control class (index with pkt.flow_class).
        self._slots = [0, 0, 0]
        self._slot_caps = [parent.p_slots, parent.np_slots, parent.cpl_slots]
        # Recycled ingress-processing events (see _ProcessedEvent).
        self._processed_pool: List[_ProcessedEvent] = []
        # Per-port datapath serialization horizon (used when the engine
        # runs with datapath_scope="port").
        self._proc_next_free = 0

        self.pool_occupancy = self.stats.average(
            "pool_occupancy", "pool slots in use, sampled at ingress"
        )
        self.ingress_refusals = self.stats.scalar(
            "ingress_refusals", "packets refused because the pool was full"
        )

    # -- pool accounting ------------------------------------------------------
    @property
    def pool_used(self) -> int:
        """Total slots in use across the three flow-control classes."""
        slots = self._slots
        return slots[0] + slots[1] + slots[2]

    def _try_reserve(self, flow_class: int) -> bool:
        """Claim a ``flow_class`` slot; False when that class is full.

        Classes never borrow from each other: a non-posted flood can
        exhaust only the NP slots, leaving posted traffic and — above
        all — completions their own guaranteed paths through the
        engine.
        """
        if self._slots[flow_class] >= self._slot_caps[flow_class]:
            return False
        self._slots[flow_class] += 1
        return True

    def _release(self, flow_class: int) -> None:
        assert self._slots[flow_class] > 0
        self._slots[flow_class] -= 1
        self.engine._on_slot_freed()

    # -- ingress ------------------------------------------------------------------
    def _recv_request(self, pkt: Packet) -> bool:
        return self._ingress(pkt, is_response=False)

    def _recv_response(self, pkt: Packet) -> bool:
        return self._ingress(pkt, is_response=True)

    def _ingress(self, pkt: Packet, is_response: bool) -> bool:
        trc = self.tracer
        if not self._try_reserve(pkt.flow_class):
            self.ingress_refusals.inc()
            if trc.enabled:
                trc.emit(self.curtick, "engine", self.full_name,
                         "ingress_refused", tlp=trc.tlp_id(pkt.req_id),
                         resp=is_response, pool=self.pool_used)
            return False
        self.pool_occupancy.sample(self.pool_used)
        if trc.enabled:
            trc.emit(self.curtick, "engine", self.full_name, "ingress",
                     tlp=trc.tlp_id(pkt.req_id), resp=is_response,
                     pool=self.pool_used)
        self.engine._register_owner(pkt, is_response, self)
        if not is_response and pkt.pci_bus_num == -1:
            pkt.pci_bus_num = self.stamp_bus_number()
        now = self.eventq.curtick
        # The internal datapath admits one packet per service interval.
        # With datapath_scope="port" each port has its own pipeline;
        # with "engine" a single store-and-forward engine is shared by
        # every port and both directions, so a request flood delays
        # response processing too.
        if self.engine.datapath_scope == "engine":
            start = max(now, self.engine._datapath_next_free)
            self.engine._datapath_next_free = start + self.engine.service_interval
        else:
            start = max(now, self._proc_next_free)
            self._proc_next_free = start + self.engine.service_interval
        pool = self._processed_pool
        event = pool.pop() if pool else _ProcessedEvent(self)
        event.pkt = pkt
        event.is_response = is_response
        self.eventq.schedule(event, start + self.engine.latency)
        return True

    def stamp_bus_number(self) -> int:
        if self.is_upstream:
            return self.engine.upstream_stamp_bus()
        assert self.vp2p is not None
        return self.vp2p.secondary_bus

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> dict:
        """The port's datapath serialization horizon.

        ``_proc_next_free`` is the only state that survives quiescence:
        the slot pool, the owner map and both egress queues hold live
        packets and must be empty — a resident packet raises
        :class:`~repro.sim.checkpoint.CheckpointError` because packets
        are not describable by owner-path + method-name.
        """
        if self.pool_used or self.req_queue._entries or self.resp_queue._entries:
            from repro.sim.checkpoint import CheckpointError

            raise CheckpointError(
                f"{self.full_name} has resident packets "
                f"(pool={self.pool_used}, reqq={len(self.req_queue)}, "
                f"respq={len(self.resp_queue)}); checkpoints require a "
                f"quiescent engine")
        return {"proc_next_free": self._proc_next_free}

    def load_state_dict(self, state: dict) -> None:
        """Restore the datapath horizon onto this rebuilt port."""
        self._proc_next_free = state["proc_next_free"]

    # -- egress ----------------------------------------------------------------------
    def enqueue_egress(self, pkt: Packet, is_response: bool) -> None:
        queue = self.resp_queue if is_response else self.req_queue
        pushed = queue.push(pkt, 0)
        assert pushed, "egress capacity covers the engine's worst case"

    def retry_refused_peers(self) -> None:
        """Pool space freed: let refused ingress peers try again.

        A request retry is useful once either request class has space
        (the peer resends the same packet, so it may be re-refused when
        only the other class freed — the next slot release retries
        again); a response retry needs completion-class space.
        """
        slots, caps = self._slots, self._slot_caps
        if self.slave_port.retry_owed and (
                slots[FLOW_P] < caps[FLOW_P] or slots[FLOW_NP] < caps[FLOW_NP]):
            self.slave_port.send_retry_req()
        if self.master_port._resp_retry_owed and slots[FLOW_CPL] < caps[FLOW_CPL]:
            self.master_port.send_retry_resp()


class PcieRoutingEngine(SimObject):
    """Base class: see module docstring.

    Args:
        latency: request/response processing latency in ticks (the
            paper's root complex default is 150 ns; a typical switch on
            the market is also 150 ns).
        buffer_size: packet slots in each port's pool (the paper's
            experiments use 16, 20, 24, 28).
        service_interval: per-packet admission serialization of the
            internal datapath, in ticks.
        datapath_scope: "port" gives each port its own datapath
            pipeline; "engine" shares one pipeline across all ports and
            both directions (an ablation of the internal organisation).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        parent: Optional[SimObject] = None,
        latency: int = ticks.from_ns(150),
        buffer_size: int = 16,
        service_interval: int = ticks.from_ns(42),
        datapath_scope: str = "port",
    ):
        super().__init__(sim, name, parent)
        if buffer_size < 2:
            raise ValueError("port buffers need at least two slots "
                             "(completions always get a dedicated one)")
        if datapath_scope not in ("port", "engine"):
            raise ValueError(f"unknown datapath scope {datapath_scope!r}")
        self.latency = latency
        self.buffer_size = buffer_size
        # Per-class partition of each port's pool: completions get a
        # quarter, the remainder splits evenly between posted and
        # non-posted, and every class gets at least one slot (tiny
        # pools round up, so their aggregate can exceed buffer_size).
        self.cpl_slots = max(1, buffer_size // 4)
        self.p_slots = max(1, (buffer_size - self.cpl_slots) // 2)
        self.np_slots = max(1, buffer_size - self.cpl_slots - self.p_slots)
        self.service_interval = service_interval
        self.datapath_scope = datapath_scope
        # Shared internal-datapath serialization horizon (see
        # ComponentPort._ingress).
        self._datapath_next_free = 0
        self.upstream_port = ComponentPort(sim, "upstream", self, vp2p=None,
                                           is_upstream=True)
        self.downstream_ports: List[ComponentPort] = []
        # Which port's pool each resident packet is charged to, keyed
        # by (req_id, is_response) — a request and its response never
        # reside in the same engine simultaneously, and ids are unique.
        self._owners: Dict[Tuple[int, bool], ComponentPort] = {}

        self.requests_routed = self.stats.scalar("requests_routed")
        self.responses_routed = self.stats.scalar("responses_routed")

    # -- construction ------------------------------------------------------------
    def add_downstream_port(self, vp2p: VirtualP2PBridge,
                            name: str = "") -> ComponentPort:
        index = len(self.downstream_ports)
        port = ComponentPort(
            self.sim, name or f"port{index}", self, vp2p=vp2p, is_upstream=False
        )
        self.downstream_ports.append(port)
        return port

    def _all_ports(self) -> List[ComponentPort]:
        return [self.upstream_port] + self.downstream_ports

    def config_dict(self) -> dict:
        """The engine's knobs, recorded into stats exports; subclasses
        override to name their kind."""
        return {
            "kind": type(self).__name__,
            "latency": self.latency,
            "buffer_size": self.buffer_size,
            "p_slots": self.p_slots,
            "np_slots": self.np_slots,
            "cpl_slots": self.cpl_slots,
            "service_interval": self.service_interval,
            "datapath_scope": self.datapath_scope,
            "num_downstream_ports": len(self.downstream_ports),
        }

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> dict:
        """The engine-scoped datapath horizon (ports carry their own).

        A populated owner map means packets are still resident in the
        engine, which a quiescent checkpoint forbids.
        """
        if self._owners:
            from repro.sim.checkpoint import CheckpointError

            raise CheckpointError(
                f"{self.full_name} still owns {len(self._owners)} resident "
                f"packet(s); checkpoints require a quiescent engine")
        return {"datapath_next_free": self._datapath_next_free}

    def load_state_dict(self, state: dict) -> None:
        """Restore the shared datapath horizon onto this rebuilt engine."""
        self._datapath_next_free = state["datapath_next_free"]

    # -- policy hooks (overridden by RootComplex / PcieSwitch) ------------------------
    def upstream_ranges(self) -> List[AddrRange]:
        """Address ranges the upstream slave port claims."""
        raise NotImplementedError

    def upstream_stamp_bus(self) -> int:
        """Bus number stamped on requests entering the upstream port."""
        raise NotImplementedError

    # -- slot ownership ---------------------------------------------------------------
    def _register_owner(self, pkt: Packet, is_response: bool,
                        port: ComponentPort) -> None:
        self._owners[(pkt.req_id, is_response)] = port

    def _packet_left(self, pkt: Packet, is_response: bool) -> None:
        owner = self._owners.pop((pkt.req_id, is_response))
        owner._release(pkt.flow_class)
        trc = self.tracer
        if trc.enabled:
            trc.emit(self.eventq.curtick, "engine", owner.full_name, "egress",
                     tlp=trc.tlp_id(pkt.req_id), resp=is_response,
                     pool=owner.pool_used)

    # -- internal movement ---------------------------------------------------------
    def _move(self, pkt: Packet, src: ComponentPort, is_response: bool) -> None:
        """Ingress processing finished: hand the packet to its egress
        queue (the slot stays charged to ``src`` until transmission)."""
        if is_response:
            target = self._response_target(pkt)
            self.responses_routed.inc()
        else:
            target = self._request_target(pkt, src)
            self.requests_routed.inc()
        target.enqueue_egress(pkt, is_response)

    def _request_target(self, pkt: Packet, src: ComponentPort) -> ComponentPort:
        for port in self.downstream_ports:
            if port is src:
                continue
            assert port.vp2p is not None
            if port.vp2p.forwards(pkt.addr):
                return port
        if src.is_upstream:
            raise PortError(
                f"{self.full_name}: request {pkt!r} entered the upstream port "
                f"but no downstream window claims {pkt.addr:#x}"
            )
        return self.upstream_port

    def _response_target(self, pkt: Packet) -> ComponentPort:
        for port in self.downstream_ports:
            vp2p = port.vp2p
            assert vp2p is not None
            if vp2p.routes_bus(pkt.pci_bus_num):
                return port
        # Per the paper: "If no match is found, the response packet is
        # forwarded to the upstream slave port."
        return self.upstream_port

    # -- backpressure fan-out ----------------------------------------------------------
    def _on_slot_freed(self) -> None:
        for port in self._all_ports():
            port.retry_refused_peers()
