"""The legacy-interrupt controller.

The paper disables MSI and MSI-X in every capability structure so "the
device driver is forced to register a legacy interrupt handler".  This
controller models that path: a device asserts its line, and after a
dispatch latency (GIC + trap entry) the registered handler runs as a
kernel process.  Re-assertions while a handler for the same line is
still pending coalesce, like a level-triggered INTx wire.
"""

from typing import Callable, Dict, Optional

from repro.sim import ticks
from repro.sim.process import Process
from repro.sim.simobject import SimObject, Simulator


class InterruptController(SimObject):
    """Dispatches interrupt lines to driver handler processes.

    Args:
        dispatch_latency: ticks from assertion to handler entry.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "intc",
        parent: Optional[SimObject] = None,
        dispatch_latency: int = ticks.from_ns(500),
    ):
        super().__init__(sim, name, parent)
        self.dispatch_latency = dispatch_latency
        # line -> generator factory (each dispatch builds a fresh one).
        self._handlers: Dict[int, Callable] = {}
        self._pending: Dict[int, bool] = {}
        self._counter = 0

        self.raised = self.stats.scalar("raised", "interrupt assertions")
        self.dispatched = self.stats.scalar("dispatched", "handler invocations")
        self.spurious = self.stats.scalar("spurious", "assertions with no handler")
        self.coalesced = self.stats.scalar(
            "coalesced", "assertions merged into an already-pending dispatch"
        )

    def register(self, line: int, handler_factory: Callable) -> None:
        """Register ``handler_factory() -> generator`` for a line."""
        if line in self._handlers:
            raise ValueError(f"interrupt line {line} already has a handler")
        self._handlers[line] = handler_factory

    def unregister(self, line: int) -> None:
        del self._handlers[line]

    def raise_irq(self, line: int) -> None:
        """A device asserted its INTx line."""
        self.raised.inc()
        if line not in self._handlers:
            self.spurious.inc()
            return
        if self._pending.get(line):
            self.coalesced.inc()
            return
        self._pending[line] = True
        self.schedule(self.dispatch_latency, lambda: self._dispatch(line),
                      name=f"irq{line}")

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> dict:
        """The handler-invocation counter behind ``irq{line}_{n}`` names.

        A pending (not yet dispatched) interrupt has a closure event in
        flight that cannot be described, so a checkpoint requires all
        lines idle.
        """
        pending = sorted(line for line, armed in self._pending.items() if armed)
        if pending:
            from repro.sim.checkpoint import CheckpointError

            raise CheckpointError(
                f"{self.full_name} has undispatched interrupt(s) on "
                f"line(s) {pending}; checkpoints require an idle controller")
        return {"counter": self._counter}

    def load_state_dict(self, state: dict) -> None:
        """Continue handler-process numbering from the captured run."""
        self._counter = state["counter"]

    def _dispatch(self, line: int) -> None:
        self._pending[line] = False
        self.dispatched.inc()
        self._counter += 1
        factory = self._handlers[line]
        Process(self.sim, f"irq{line}_{self._counter}", factory(), parent=self)


class MsiDoorbell(SimObject):
    """The platform's MSI target: a write-to-interrupt doorbell.

    A device with an enabled MSI capability raises interrupts by
    posting a memory write of its programmed data value to its
    programmed address; the doorbell claims that address window on the
    memory bus and converts each landing write into an interrupt on the
    vector the write's payload names — the extension path the paper
    sketches ("A device uses MSI to write a programmed value to a
    specified address location in order to raise an interrupt").
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "msi_doorbell",
        intc: Optional[InterruptController] = None,
        parent: Optional[SimObject] = None,
        base: int = 0x10000000,
        size: int = 0x1000,
        latency: int = ticks.from_ns(50),
    ):
        from repro.mem.addr import AddrRange
        from repro.mem.port import PacketQueue, SlavePort

        super().__init__(sim, name, parent)
        if intc is None:
            raise ValueError("an MSI doorbell needs an interrupt controller")
        self.intc = intc
        self.range = AddrRange(base, size)
        self.latency = latency
        self.port = SlavePort(
            self,
            "port",
            recv_timing_req=self._recv,
            recv_resp_retry=lambda: self._respq.retry(),
            ranges=[self.range],
        )
        self._respq = PacketQueue(self, "respq", self.port.send_timing_resp, 16)
        self._respq.on_space_freed = self._maybe_retry
        self.msis_received = self.stats.scalar("msis_received")

    def _maybe_retry(self) -> None:
        """Response-queue space freed: let a refused requester retry."""
        if self.port.retry_owed:
            self.port.send_retry_req()

    def _recv(self, pkt) -> bool:
        if pkt.needs_response and self._respq.full:
            return False
        vector = int.from_bytes(pkt.data or b"\x00", "little") & 0xFF
        self.msis_received.inc()
        self.schedule(self.latency, lambda: self.intc.raise_irq(vector),
                      name="msi")
        if pkt.needs_response:
            self._respq.push(pkt.make_response(), self.latency)
        return True
