"""The block layer.

Splits a read/write into hardware requests of at most
``max_sectors_per_request`` sectors (Linux's ``max_sectors`` bound —
with 4 KB sectors the default of 32 gives 128 KB requests), drives the
block-device driver one request at a time (``dd`` issues synchronous
sequential reads, so there is never queue depth to exploit), and charges
the software costs around each request:

* ``submit_overhead`` — request construction, driver entry;
* ``per_sector_overhead`` — per-page block/bio bookkeeping;
* ``complete_overhead`` — end-of-request processing after the IRQ.

These constants are the calibration knobs standing in for the "OS
overheads in gem5 for setting up the transfer" that the paper holds
responsible for its throughput gap against the physical machine.
"""

from typing import Optional

from repro.sim import ticks
from repro.sim.process import Delay, WaitFor
from repro.sim.simobject import SimObject, Simulator


class BlockLayer(SimObject):
    """See module docstring."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "block_layer",
        parent: Optional[SimObject] = None,
        max_sectors_per_request: int = 32,
        submit_overhead: int = ticks.from_us(4),
        complete_overhead: int = ticks.from_us(3),
        per_sector_overhead: int = ticks.from_us(1.0),
    ):
        super().__init__(sim, name, parent)
        if max_sectors_per_request < 1:
            raise ValueError("requests must carry at least one sector")
        self.max_sectors_per_request = max_sectors_per_request
        self.submit_overhead = submit_overhead
        self.complete_overhead = complete_overhead
        self.per_sector_overhead = per_sector_overhead

        self.requests_submitted = self.stats.scalar("requests_submitted")
        self.sectors_moved = self.stats.scalar("sectors_moved")
        self.request_ticks = self.stats.distribution(
            "request_ticks", "submit-to-complete time per hardware request"
        )

    def read(self, driver, lba: int, n_sectors: int, buffer_addr: int):
        """Generator: read ``n_sectors`` starting at ``lba`` into the
        buffer.  ``yield from`` it inside a process."""
        return self._transfer(driver, lba, n_sectors, buffer_addr, is_write=False)

    def write(self, driver, lba: int, n_sectors: int, buffer_addr: int):
        return self._transfer(driver, lba, n_sectors, buffer_addr, is_write=True)

    def _transfer(self, driver, lba: int, n_sectors: int, buffer_addr: int,
                  is_write: bool):
        if n_sectors < 1:
            raise ValueError("transfer needs at least one sector")
        remaining = n_sectors
        current_lba = lba
        current_buf = buffer_addr
        sector_bytes = driver.sector_size
        while remaining:
            chunk = min(remaining, self.max_sectors_per_request)
            start = self.curtick
            self.requests_submitted.inc()
            yield Delay(self.submit_overhead + chunk * self.per_sector_overhead)
            completion = yield from driver.start_request(
                current_lba, chunk, current_buf, is_write
            )
            yield WaitFor(completion)
            yield Delay(self.complete_overhead)
            self.request_ticks.sample(self.curtick - start)
            self.sectors_moved.inc(chunk)
            remaining -= chunk
            current_lba += chunk
            current_buf += chunk * sector_bytes
