"""The OS model.

The paper runs a real Linux kernel on gem5's simulated CPU; the
evaluation depends on that software only through (a) enumeration and
driver behaviour and (b) the software overheads around each I/O request.
This package models exactly that surface:

* :mod:`repro.kernel.processor` — an abstract processor that runs
  software *processes* (timed generators) and issues MMIO/PIO requests
  into the memory system;
* :mod:`repro.kernel.interrupts` — a legacy-interrupt controller
  dispatching lines to registered driver handlers;
* :mod:`repro.kernel.blockio` — a block layer that splits reads/writes
  into bounded requests and charges submit/complete/per-sector software
  costs;
* :mod:`repro.kernel.kernel` — the :class:`OsKernel` facade tying it
  together: boot (PCI enumeration), driver binding, process spawning.
"""

from repro.kernel.processor import Processor
from repro.kernel.interrupts import InterruptController, MsiDoorbell
from repro.kernel.blockio import BlockLayer
from repro.kernel.kernel import OsKernel, KernelConfig

__all__ = [
    "Processor",
    "InterruptController",
    "MsiDoorbell",
    "BlockLayer",
    "OsKernel",
    "KernelConfig",
]
