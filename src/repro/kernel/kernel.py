"""The kernel facade.

:class:`OsKernel` ties the software side together: the processor, the
interrupt controller, the block layer, PCI enumeration at boot, and
driver binding through module device tables — the same sequence a Linux
kernel performs on the paper's simulated machine.
"""

from typing import Dict, List, Optional

from repro.kernel.blockio import BlockLayer
from repro.kernel.interrupts import InterruptController
from repro.kernel.processor import Processor
from repro.pci.enumeration import Enumerator, FoundDevice
from repro.sim import ticks
from repro.sim.process import Process
from repro.sim.simobject import SimObject, Simulator


class KernelConfig:
    """Software-overhead knobs, grouped so system builders can pass one
    object around (all values in ticks)."""

    def __init__(
        self,
        irq_dispatch_latency: int = ticks.from_ns(500),
        block_submit_overhead: int = ticks.from_us(4),
        block_complete_overhead: int = ticks.from_us(3),
        block_per_sector_overhead: int = ticks.from_us(1.0),
        max_sectors_per_request: int = 32,
    ):
        self.irq_dispatch_latency = irq_dispatch_latency
        self.block_submit_overhead = block_submit_overhead
        self.block_complete_overhead = block_complete_overhead
        self.block_per_sector_overhead = block_per_sector_overhead
        self.max_sectors_per_request = max_sectors_per_request


class OsKernel(SimObject):
    """The operating system: processor + interrupts + block layer +
    enumeration + driver binding."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "kernel",
        parent: Optional[SimObject] = None,
        config: Optional[KernelConfig] = None,
    ):
        super().__init__(sim, name, parent)
        self.config = config or KernelConfig()
        self.cpu = Processor(sim, "cpu", parent=self)
        self.intc = InterruptController(
            sim, "intc", parent=self,
            dispatch_latency=self.config.irq_dispatch_latency,
        )
        self.block_layer = BlockLayer(
            sim, "block_layer", parent=self,
            max_sectors_per_request=self.config.max_sectors_per_request,
            submit_overhead=self.config.block_submit_overhead,
            complete_overhead=self.config.block_complete_overhead,
            per_sector_overhead=self.config.block_per_sector_overhead,
        )
        self.enumerator: Optional[Enumerator] = None
        # Set by the system builder when the platform has an MSI
        # doorbell; drivers program it into MSI-capable devices.
        self.msi_target_addr: Optional[int] = None
        self.drivers: List = []
        self._process_count = 0

    # -- boot ----------------------------------------------------------------
    def boot(self, host, mem_window=None, io_window=None) -> List[FoundDevice]:
        """Enumerate the PCI hierarchy (the functional part of boot)."""
        kwargs = {}
        if mem_window is not None:
            kwargs["mem_window"] = mem_window
        if io_window is not None:
            kwargs["io_window"] = io_window
        self.enumerator = Enumerator(host, **kwargs)
        return self.enumerator.enumerate()

    def bind_drivers(self, drivers: List, device_map: Dict) -> List:
        """Match discovered endpoints against each driver's module
        device table and run the winning driver's probe.

        Args:
            drivers: driver instances, in registration order (first
                match wins, like kernel module load order).  A driver
                already bound to an earlier device is skipped, so
                multi-device topologies pass one driver instance per
                device of a kind.
            device_map: maps a discovered function's ``(bus, device,
                function)`` to the device *model* so the probe can reach
                its functional side-channels.

        Returns the list of (driver, FoundDevice) bindings made.
        """
        if self.enumerator is None:
            raise RuntimeError("boot() must run before bind_drivers()")
        bindings = []
        for node in self.enumerator.all_devices():
            if node.is_bridge:
                continue
            for driver in drivers:
                if driver.bound or not driver.matches(node):
                    continue
                device_model = device_map.get(node.bdf)
                driver.bind(self, node, device_model)
                bindings.append((driver, node))
                break
        self.drivers = [driver for driver, __ in bindings]
        return bindings

    # -- checkpointing -------------------------------------------------------------
    def state_dict(self) -> dict:
        """The process-name counter.

        :meth:`spawn` names processes ``{name}_{count}``, and process
        names appear in event labels and stat paths — a forked run must
        continue the numbering where the captured run stopped for its
        traces to match a cold run byte for byte.
        """
        return {"process_count": self._process_count}

    def load_state_dict(self, state: dict) -> None:
        """Continue process numbering from the captured run."""
        self._process_count = state["process_count"]

    # -- process management --------------------------------------------------------
    def spawn(self, name: str, generator, start_delay: int = 0) -> Process:
        """Run a software activity as a kernel process."""
        self._process_count += 1
        return Process(self.sim, f"{name}_{self._process_count}", generator,
                       parent=self, start_delay=start_delay)
