"""An abstract processor.

The paper tunes gem5's out-of-order CPU to approximate a Xeon, then
picks an I/O-bound workload precisely so that CPU detail does not
dominate.  Our processor is therefore abstract: software runs as timed
:class:`~repro.sim.process.Process` generators, and memory-mapped I/O
is issued through a master port into the simulated memory system, so an
MMIO read's latency is whatever the interconnect makes it (Table II
measures exactly this).
"""

from typing import Dict, Optional

from repro.mem.packet import MemCmd, Packet
from repro.mem.port import MasterPort, PacketQueue
from repro.sim.process import Signal, WaitFor
from repro.sim.simobject import SimObject, Simulator


class Processor(SimObject):
    """Issues timed memory/I/O requests on behalf of software processes."""

    def __init__(self, sim: Simulator, name: str = "cpu",
                 parent: Optional[SimObject] = None):
        super().__init__(sim, name, parent)
        self.port = MasterPort(
            self,
            "port",
            recv_timing_resp=self._recv_response,
            recv_req_retry=lambda: self._outq.retry(),
        )
        self._outq = PacketQueue(self, "outq", self.port.send_timing_req, 1024)
        self._waiters: Dict[int, Signal] = {}

        self.reads_issued = self.stats.scalar("reads_issued")
        self.writes_issued = self.stats.scalar("writes_issued")
        self.mmio_latency = self.stats.distribution(
            "mmio_latency", "round-trip ticks of processor-issued accesses"
        )

    # -- raw issue ----------------------------------------------------------
    def issue(self, pkt: Packet) -> Signal:
        """Send a request; the returned signal notifies with the
        response packet."""
        done = Signal(f"{self.name}.req{pkt.req_id}")
        if pkt.needs_response:
            self._waiters[pkt.req_id] = done
        self._outq.push(pkt)
        if pkt.is_read:
            self.reads_issued.inc()
        else:
            self.writes_issued.inc()
        return done

    def _recv_response(self, pkt: Packet) -> bool:
        signal = self._waiters.pop(pkt.req_id, None)
        if signal is not None:
            self.mmio_latency.sample(self.curtick - pkt.create_tick)
            signal.notify(pkt)
        return True

    # -- process-facing helpers ------------------------------------------------
    def timed_read(self, addr: int, size: int = 4):
        """``resp = yield from cpu.timed_read(addr)`` inside a process."""
        pkt = Packet(MemCmd.READ_REQ, addr, size, requestor=self.full_name,
                     create_tick=self.curtick)
        resp = yield WaitFor(self.issue(pkt))
        return resp

    def timed_write(self, addr: int, value: int, size: int = 4):
        """``yield from cpu.timed_write(addr, value)`` inside a process."""
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        pkt = Packet(MemCmd.WRITE_REQ, addr, size, data=data,
                     requestor=self.full_name, create_tick=self.curtick)
        resp = yield WaitFor(self.issue(pkt))
        return resp

    def read_value(self, resp: Packet) -> int:
        """Decode the little-endian payload of a read response."""
        return int.from_bytes(resp.data or b"", "little")
