"""Validation references."""

from repro.validation.physical_reference import PhysicalSetup, phys_dd_series

__all__ = ["PhysicalSetup", "phys_dd_series"]
