"""The physical-machine reference model (the ``phys`` series).

The paper validates against a real machine: a Xeon E5-2660 v4 whose X99
PCH exposes a Gen 2 x1 slot holding an Intel P3700 SSD (sequential read
2800 MB/s — far above the link, so the link is the bottleneck), measured
with single-block ``dd`` direct-I/O reads of 64–512 MB.

We cannot measure that hardware here, so — per the substitution policy
in DESIGN.md — the ``phys`` curve is generated from a first-principles
model of the same setup.  It captures the two effects that define the
measured curve's shape:

* a **wire-rate ceiling**: a Gen 2 lane moves 4 Gbps after 8b/10b
  encoding; each 64 B read-completion TLP carries 20 B of header /
  framing overhead, and the host adds a small per-transaction
  efficiency loss (flow-control updates, read-request latency bubbles);
* a **fixed software cost** per ``dd`` invocation (exec, ``open``,
  direct-I/O buffer setup) that amortises with block size — which is
  why the measured throughput *grows* with block size.

The defaults give a ceiling of ≈3.35 Gbps, consistent with the paper's
statement that the reported bandwidth sits somewhat below the 4 Gbps
encoded maximum and 10–20 % above their gem5 model.
"""

from typing import Dict, Iterable

from repro.pcie.timing import LinkTiming, PcieGen, TLP_OVERHEAD_BYTES
from repro.sim import ticks


class PhysicalSetup:
    """Analytic model of the paper's physical testbed.

    Args:
        gen: link generation of the slot (Gen 2).
        width: lane count of the slot (x1).
        payload: completion payload per TLP (the host's 64 B lines).
        host_efficiency: multiplicative efficiency of everything the
            wire model does not capture (flow control, root-complex
            scheduling); calibrated so the ceiling lands where the
            paper's ``phys`` bars do.
        startup_cost: fixed per-run software cost, in ticks.
        device_bandwidth_gbps: the SSD's internal sequential-read rate
            (P3700: 2800 MB/s = 22.4 Gbps); only matters if it ever
            drops below the link rate.
    """

    def __init__(
        self,
        gen: PcieGen = PcieGen.GEN2,
        width: int = 1,
        payload: int = 64,
        host_efficiency: float = 0.94,
        startup_cost: int = ticks.from_us(450),
        device_bandwidth_gbps: float = 22.4,
    ):
        if not 0 < host_efficiency <= 1:
            raise ValueError("host efficiency must be in (0, 1]")
        self.timing = LinkTiming(gen, width)
        self.payload = payload
        self.host_efficiency = host_efficiency
        self.startup_cost = startup_cost
        self.device_bandwidth_gbps = device_bandwidth_gbps

    @property
    def wire_rate_gbps(self) -> float:
        """Payload throughput of back-to-back completion TLPs."""
        per_tlp = self.timing.transmission_ticks(
            self.payload + TLP_OVERHEAD_BYTES
        )
        return self.payload * 8 / ticks.to_ns(per_tlp)

    @property
    def ceiling_gbps(self) -> float:
        """Steady-state throughput: link wire rate times host
        efficiency, capped by the device's internal bandwidth."""
        return min(self.wire_rate_gbps * self.host_efficiency,
                   self.device_bandwidth_gbps)

    def dd_throughput_gbps(self, block_bytes: int) -> float:
        """What ``dd`` reports for one block of ``block_bytes``."""
        if block_bytes < 1:
            raise ValueError("block must be at least one byte")
        transfer_ticks = block_bytes * 8 / self.ceiling_gbps * ticks.NS
        total_ticks = self.startup_cost + transfer_ticks
        return block_bytes * 8 / ticks.to_ns(total_ticks)


def phys_dd_series(block_sizes: Iterable[int],
                   setup: PhysicalSetup = None) -> Dict[int, float]:
    """The ``phys`` series of Figure 9(a): block size → Gbps."""
    setup = setup or PhysicalSetup()
    return {block: setup.dd_throughput_gbps(block) for block in block_sizes}
