"""A memory-to-memory DMA copy accelerator.

The third device kind of the registry (``"accel"``), built around the
chunking :class:`~repro.devices.dma.DmaEngine` front-end: a copy
command DMA-reads the source buffer out of DRAM chunk by chunk, then
DMA-writes it back to the destination — two full traversals of the
PCI-Express fabric per copied byte, which is what makes the device an
interesting *initiator* for multi-flow contention studies (it loads a
link in both directions without any disk/NIC protocol on top).

The register interface (BAR0, 4 KB MMIO) mirrors the IDE-like disk's
bus-master style:

====== ===========  =================================================
offset name         meaning
====== ===========  =================================================
0x00   CMD          1 = COPY (starts the transfer)
0x08   SRC          physical source address
0x10   DST          physical destination address
0x18   NBYTES       bytes to copy
0x20   STATUS       bit0 busy, bit1 irq pending, bit2 error
0x28   IRQ_CLEAR    write 1 to acknowledge the interrupt
====== ===========  =================================================
"""

from typing import Dict, Optional

from repro.devices.base import PcieDevice
from repro.devices.dma import DmaEngine
from repro.pci.capabilities import (
    MsiCapability,
    MsixCapability,
    PcieCapability,
    PciePortType,
    PowerManagementCapability,
)
from repro.pci.header import Bar, PciEndpointFunction
from repro.sim import ticks
from repro.sim.simobject import SimObject, Simulator

REG_CMD = 0x00
REG_SRC = 0x08
REG_DST = 0x10
REG_NBYTES = 0x18
REG_STATUS = 0x20
REG_IRQ_CLEAR = 0x28

CMD_COPY = 1

STATUS_BUSY = 1 << 0
STATUS_IRQ = 1 << 1
STATUS_ERROR = 1 << 2

ACCEL_VENDOR_ID = 0x1DE5  # Eideticom, a real PCIe NVMe-accelerator vendor
ACCEL_DEVICE_ID = 0x3000


def make_accel_function(msi_functional: bool = False) -> PciEndpointFunction:
    """Config function for the accelerator: one 4 KB memory BAR and the
    same PM → MSI → PCIe → MSI-X capability chain as the other devices
    (pass ``msi_functional=True`` for the MSI extension)."""
    fn = PciEndpointFunction(
        ACCEL_VENDOR_ID,
        ACCEL_DEVICE_ID,
        bars=[Bar(4096)],
        class_code=0x120000,  # processing accelerator
    )
    fn.add_capability(PowerManagementCapability())
    fn.add_capability(MsiCapability(functional=msi_functional))
    fn.add_capability(PcieCapability(PciePortType.ENDPOINT))
    fn.add_capability(MsixCapability())
    return fn


class DmaAccelerator(PcieDevice):
    """The copy accelerator; see module docstring.

    Args:
        setup_latency: fixed command-decode latency before the first
            DMA packet of a copy is issued.
        chunk: DMA packet payload size (cache line, 64 B).
        dma_outstanding: in-flight DMA packets within one direction.
        posted_writes: run the write-back half posted (fire-and-forget)
            instead of waiting for every write response.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "accel",
        parent: Optional[SimObject] = None,
        setup_latency: int = ticks.from_ns(200),
        chunk: int = 64,
        dma_outstanding: int = 32,
        posted_writes: bool = False,
        pio_latency: int = ticks.from_ns(30),
        msi_functional: bool = False,
    ):
        super().__init__(sim, name, make_accel_function(msi_functional),
                         parent, pio_latency=pio_latency)
        self.setup_latency = setup_latency
        self.posted_writes = posted_writes
        self.dma = DmaEngine(sim, "dma_engine", self, chunk=chunk,
                             max_outstanding=dma_outstanding)

        # Register file.
        self._regs: Dict[int, int] = {
            REG_CMD: 0, REG_SRC: 0, REG_DST: 0, REG_NBYTES: 0, REG_STATUS: 0,
        }

        self.copies_completed = self.stats.scalar("copies_completed")
        self.bytes_copied = self.stats.scalar(
            "bytes_copied", "logical bytes copied (fabric traffic is 2x)")
        self.copy_ticks = self.stats.distribution(
            "copy_ticks", "command write to completion interrupt, per copy")

    # -- register interface --------------------------------------------------
    def mmio_read(self, bar: int, offset: int, size: int) -> int:
        return self._regs.get(offset, 0)

    def mmio_write(self, bar: int, offset: int, size: int, value: int) -> None:
        if offset == REG_IRQ_CLEAR:
            self._regs[REG_STATUS] &= ~STATUS_IRQ
            return
        if offset == REG_CMD:
            self._start_command(value)
            return
        if offset in self._regs:
            self._regs[offset] = value

    # -- command execution ---------------------------------------------------
    def _start_command(self, command: int) -> None:
        if self._regs[REG_STATUS] & STATUS_BUSY:
            self._regs[REG_STATUS] |= STATUS_ERROR
            return
        if command != CMD_COPY or self._regs[REG_NBYTES] < 1:
            self._regs[REG_STATUS] |= STATUS_ERROR
            self.raise_interrupt()
            return
        self._regs[REG_STATUS] = STATUS_BUSY
        self._start_tick = self.curtick
        self.schedule(self.setup_latency, self._read_source,
                      name="copy_setup")

    def _read_source(self) -> None:
        transfer = self.dma.read(self._regs[REG_SRC], self._regs[REG_NBYTES])
        transfer.on_complete(lambda __: self._write_destination())

    def _write_destination(self) -> None:
        transfer = self.dma.write(self._regs[REG_DST], self._regs[REG_NBYTES],
                                  posted=self.posted_writes)
        transfer.on_complete(lambda __: self._complete_command())

    def _complete_command(self) -> None:
        self.copy_ticks.sample(self.curtick - self._start_tick)
        self.copies_completed.inc()
        self.bytes_copied.inc(self._regs[REG_NBYTES])
        self._regs[REG_STATUS] = STATUS_IRQ  # busy clear, irq pending
        self.raise_interrupt()

    # -- introspection -------------------------------------------------------
    @property
    def busy(self) -> bool:
        return bool(self._regs[REG_STATUS] & STATUS_BUSY)
