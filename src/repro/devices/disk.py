"""The IDE-like storage device.

Stands in for gem5's IDE disk in the paper's evaluation, with the two
properties the methodology depends on:

* the internal medium imposes **no bandwidth limit** — each sector costs
  a constant ``access_latency`` (1 µs in gem5) and nothing else, so the
  PCI-Express interconnect is always the bottleneck;
* DMA uses **no posted writes** — once a sector has been transmitted,
  the responses for all of its write packets must return before the next
  sector starts (``posted_writes=True`` flips this for the ablation).

The register interface (BAR0, 4 KB MMIO) is a simplified bus-master DMA
controller.  A driver programs a buffer address, an LBA and a sector
count, then writes the command register; the device transfers sector by
sector and raises its legacy interrupt when the command completes:

====== ===========  =================================================
offset name         meaning
====== ===========  =================================================
0x00   CMD          1 = READ_DMA, 2 = WRITE_DMA (starts the transfer)
0x08   LBA          starting logical block
0x10   COUNT        sectors to transfer
0x18   BUF_ADDR     physical DMA buffer address
0x20   STATUS       bit0 busy, bit1 irq pending, bit2 error
0x28   IRQ_CLEAR    write 1 to acknowledge the interrupt
====== ===========  =================================================
"""

from typing import Dict, Optional

from repro.devices.base import PcieDevice
from repro.devices.dma import DmaEngine
from repro.pci.capabilities import (
    MsiCapability,
    MsixCapability,
    PcieCapability,
    PciePortType,
    PowerManagementCapability,
)
from repro.pci.header import Bar, PciEndpointFunction
from repro.sim import ticks
from repro.sim.simobject import SimObject, Simulator

REG_CMD = 0x00
REG_LBA = 0x08
REG_COUNT = 0x10
REG_BUF_ADDR = 0x18
REG_STATUS = 0x20
REG_IRQ_CLEAR = 0x28

CMD_READ_DMA = 1
CMD_WRITE_DMA = 2

STATUS_BUSY = 1 << 0
STATUS_IRQ = 1 << 1
STATUS_ERROR = 1 << 2

IDE_VENDOR_ID = 0x8086
IDE_DEVICE_ID = 0x7111  # PIIX4 IDE, the identity gem5's IDE controller uses


def make_disk_function(msi_functional: bool = False) -> PciEndpointFunction:
    """Config function for the disk: one 4 KB memory BAR, the paper's
    capability chain with everything but PCI-Express disabled (pass
    ``msi_functional=True`` for the MSI extension)."""
    fn = PciEndpointFunction(
        IDE_VENDOR_ID,
        IDE_DEVICE_ID,
        bars=[Bar(4096)],
        class_code=0x010185,  # mass storage, IDE, bus-master capable
    )
    fn.add_capability(PowerManagementCapability())
    fn.add_capability(MsiCapability(functional=msi_functional))
    fn.add_capability(PcieCapability(PciePortType.ENDPOINT))
    fn.add_capability(MsixCapability())
    return fn


class IdeDisk(PcieDevice):
    """The storage device driven by the ``dd`` experiments.

    Args:
        sector_size: bytes per sector (the paper transfers 4 KB
            sectors).
        access_latency: constant internal medium latency per sector
            (gem5's IDE disk: 1 µs).
        capacity_sectors: disk size.
        posted_writes: run DMA writes posted (ablation; the paper's
            model does not support posted writes).
        dma_outstanding: in-flight DMA packets within one sector.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "disk",
        parent: Optional[SimObject] = None,
        sector_size: int = 4096,
        access_latency: int = ticks.from_us(1),
        capacity_sectors: int = 1 << 30,
        posted_writes: bool = False,
        dma_outstanding: int = 64,
        pio_latency: int = ticks.from_ns(30),
        msi_functional: bool = False,
    ):
        super().__init__(sim, name, make_disk_function(msi_functional), parent,
                         pio_latency=pio_latency)
        self.sector_size = sector_size
        self.access_latency = access_latency
        self.capacity_sectors = capacity_sectors
        self.posted_writes = posted_writes
        self.dma = DmaEngine(sim, "dma_engine", self,
                             max_outstanding=dma_outstanding)

        # Register file.
        self._regs: Dict[int, int] = {
            REG_CMD: 0, REG_LBA: 0, REG_COUNT: 0, REG_BUF_ADDR: 0, REG_STATUS: 0,
        }
        # In-memory backing store for written sectors (reads of
        # never-written sectors return zeros).
        self._store: Dict[int, bytes] = {}
        self._sectors_remaining = 0
        self._current_lba = 0
        self._current_buf = 0
        self._is_write_command = False

        self.sectors_transferred = self.stats.scalar("sectors_transferred")
        self.commands_completed = self.stats.scalar("commands_completed")
        self.bytes_transferred = self.stats.scalar("bytes_transferred")
        # Device-level transfer time, excluding OS/driver overheads —
        # what the paper quotes as "3.072 Gbps over our PCI-Express
        # link" for Gen 2 x1.
        self.sector_transfer_ticks = self.stats.distribution(
            "sector_transfer_ticks", "DMA time per sector (barrier to barrier)"
        )

    # -- register interface --------------------------------------------------
    def mmio_read(self, bar: int, offset: int, size: int) -> int:
        return self._regs.get(offset, 0)

    def mmio_write(self, bar: int, offset: int, size: int, value: int) -> None:
        if offset == REG_IRQ_CLEAR:
            self._regs[REG_STATUS] &= ~STATUS_IRQ
            return
        if offset == REG_CMD:
            self._start_command(value)
            return
        if offset in self._regs:
            self._regs[offset] = value

    # -- command execution -----------------------------------------------------
    def _start_command(self, command: int) -> None:
        if self._regs[REG_STATUS] & STATUS_BUSY:
            self._regs[REG_STATUS] |= STATUS_ERROR
            return
        if command not in (CMD_READ_DMA, CMD_WRITE_DMA):
            self._regs[REG_STATUS] |= STATUS_ERROR
            self.raise_interrupt()
            return
        count = self._regs[REG_COUNT]
        lba = self._regs[REG_LBA]
        if count < 1 or lba + count > self.capacity_sectors:
            self._regs[REG_STATUS] |= STATUS_ERROR
            self.raise_interrupt()
            return
        self._regs[REG_STATUS] = STATUS_BUSY
        self._is_write_command = command == CMD_WRITE_DMA
        self._sectors_remaining = count
        self._current_lba = lba
        self._current_buf = self._regs[REG_BUF_ADDR]
        self._next_sector()

    def _next_sector(self) -> None:
        if self._sectors_remaining == 0:
            self._complete_command()
            return
        # Constant-latency medium access, then the DMA burst.
        self.schedule(self.access_latency, self._transfer_sector,
                      name="sector_access")

    def _transfer_sector(self) -> None:
        start = self.curtick
        if self._is_write_command:
            # Host -> disk: DMA-read the buffer from memory.
            transfer = self.dma.read(self._current_buf, self.sector_size)
        else:
            # Disk -> host: DMA-write the sector into memory.  The
            # paper's model does not support posted writes: the barrier
            # below waits for every write response.
            transfer = self.dma.write(self._current_buf, self.sector_size,
                                      posted=self.posted_writes)
        transfer.on_complete(lambda __: self._sector_done(start))

    def _sector_done(self, start_tick: int) -> None:
        self.sector_transfer_ticks.sample(self.curtick - start_tick)
        self.sectors_transferred.inc()
        self.bytes_transferred.inc(self.sector_size)
        if self._is_write_command:
            self._store[self._current_lba] = bytes(self.sector_size)
        self._sectors_remaining -= 1
        self._current_lba += 1
        self._current_buf += self.sector_size
        self._next_sector()

    def _complete_command(self) -> None:
        self._regs[REG_STATUS] = STATUS_IRQ  # busy clear, irq pending
        self.commands_completed.inc()
        self.raise_interrupt()

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> dict:
        """Register file, written-sector set and command cursors.

        The backing store only ever holds zero-filled sectors (writes
        record ``bytes(sector_size)``), so the checkpoint carries just
        the written LBAs.  A busy device has DMA events and packets in
        flight that a quiescent checkpoint cannot describe.
        """
        if self.busy:
            from repro.sim.checkpoint import CheckpointError

            raise CheckpointError(
                f"{self.full_name} has a DMA command in progress; "
                f"checkpoints require an idle device")
        return {
            "regs": {str(offset): value for offset, value in self._regs.items()},
            "written_lbas": sorted(self._store),
            "sectors_remaining": self._sectors_remaining,
            "current_lba": self._current_lba,
            "current_buf": self._current_buf,
            "is_write_command": self._is_write_command,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore registers and the written-sector set."""
        self._regs = {int(offset): value for offset, value in state["regs"].items()}
        self._store = {int(lba): bytes(self.sector_size)
                       for lba in state["written_lbas"]}
        self._sectors_remaining = state["sectors_remaining"]
        self._current_lba = state["current_lba"]
        self._current_buf = state["current_buf"]
        self._is_write_command = state["is_write_command"]

    # -- introspection -----------------------------------------------------------
    @property
    def busy(self) -> bool:
        return bool(self._regs[REG_STATUS] & STATUS_BUSY)

    @property
    def irq_pending(self) -> bool:
        return bool(self._regs[REG_STATUS] & STATUS_IRQ)
