"""PCI-Express device models.

* :mod:`repro.devices.base` — the generic PCI-Express device template
  (PIO slave port, DMA master port, config function, legacy interrupt);
* :mod:`repro.devices.dma` — a chunking DMA engine with an outstanding
  window and optional per-buffer completion barrier;
* :mod:`repro.devices.disk` — the IDE-like storage device used for the
  ``dd`` experiments (1 µs sector access, no internal bandwidth limit,
  no posted writes: a sector's DMA must be fully acknowledged before the
  next begins);
* :mod:`repro.devices.nic` — the 8254x-pcie NIC model with the paper's
  capability chain (PM → MSI → PCIe → MSI-X, all but PCIe disabled);
* :mod:`repro.devices.accel` — a memory-to-memory DMA copy accelerator
  built on the chunking engine (the ``"accel"`` device kind).
"""

from repro.devices.accel import DmaAccelerator
from repro.devices.base import PcieDevice
from repro.devices.dma import DmaEngine
from repro.devices.disk import IdeDisk
from repro.devices.nic import Nic8254xPcie

__all__ = ["PcieDevice", "DmaEngine", "DmaAccelerator", "IdeDisk",
           "Nic8254xPcie"]
