"""A chunking DMA engine.

Device models move buffers with cache-line-sized packets — the paper's
TLP payload rule ("cache line size for a write request or read
response") comes from DMA engines doing exactly this.  The engine

* splits a transfer into ``chunk``-byte packets;
* keeps at most ``max_outstanding`` requests in flight;
* signals completion when every response has returned — which is the
  paper's *no posted writes* semantics ("responses for all gem5 write
  packets need to be obtained before the next sector can be
  transmitted");
* can instead run writes posted (fire-and-forget) for the posted-write
  ablation.
"""

from typing import Optional

from repro.mem.packet import MemCmd, Packet
from repro.sim.process import Signal
from repro.sim.simobject import SimObject, Simulator


class DmaTransfer:
    """Book-keeping for one in-progress buffer transfer."""

    def __init__(self, engine: "DmaEngine", addr: int, nbytes: int, is_write: bool,
                 posted: bool):
        self.engine = engine
        self.addr = addr
        self.nbytes = nbytes
        self.is_write = is_write
        self.posted = posted
        self.completed = Signal("dma_done", latch=True)
        self._next_offset = 0
        self._responses_pending = 0
        self._all_issued = False
        self._finished = False

    def _issue_some(self) -> None:
        if self._finished:
            return
        engine = self.engine
        device = engine.device
        while (
            self._next_offset < self.nbytes
            and self._responses_pending + device.dma_backlog < engine.max_outstanding
            and device.dma_space > 0
        ):
            size = min(engine.chunk, self.nbytes - self._next_offset)
            addr = self.addr + self._next_offset
            self._next_offset += size
            if self.is_write:
                cmd = MemCmd.MESSAGE if self.posted else MemCmd.WRITE_REQ
                pkt = Packet(cmd, addr, size, data=bytes(size),
                             requestor=engine.device.full_name,
                             create_tick=engine.device.curtick)
            else:
                pkt = Packet(MemCmd.READ_REQ, addr, size,
                             requestor=engine.device.full_name,
                             create_tick=engine.device.curtick)
            if pkt.needs_response:
                self._responses_pending += 1
                engine.device.dma_send(pkt, self._on_response)
            else:
                engine.device.dma_send(pkt, None)
            engine.packets_issued.inc()
        if self._next_offset >= self.nbytes:
            self._all_issued = True
            if self._responses_pending == 0:
                self._finish()

    def on_complete(self, fn) -> None:
        """Run ``fn(transfer)`` when the transfer completes — firing
        immediately if it already has (a posted transfer can finish
        synchronously inside the call that started it)."""
        if self._finished:
            fn(self)
        else:
            self.completed.subscribe(fn)

    def _on_response(self, resp: Packet) -> None:
        self._responses_pending -= 1
        if self._all_issued and self._responses_pending == 0:
            self._finish()
        else:
            self._issue_some()

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self.engine.device.remove_dma_pump(self._issue_some)
        self.engine.transfers_completed.inc()
        self.engine.bytes_moved.inc(self.nbytes)
        self.completed.notify(self)


class DmaEngine(SimObject):
    """The DMA front-end of a :class:`~repro.devices.base.PcieDevice`.

    Args:
        device: owning device (supplies the DMA port).
        chunk: packet payload size (cache line, 64 B).
        max_outstanding: in-flight request window per transfer.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        device,
        chunk: int = 64,
        max_outstanding: int = 32,
    ):
        super().__init__(sim, name, parent=device)
        if chunk < 1:
            raise ValueError("chunk must be positive")
        if max_outstanding < 1:
            raise ValueError("max_outstanding must be positive")
        self.device = device
        self.chunk = chunk
        self.max_outstanding = max_outstanding

        self.packets_issued = self.stats.scalar("packets_issued")
        self.transfers_completed = self.stats.scalar("transfers_completed")
        self.bytes_moved = self.stats.scalar("bytes_moved")

    def write(self, addr: int, nbytes: int, posted: bool = False) -> DmaTransfer:
        """DMA a buffer to memory.  ``transfer.completed`` notifies when
        all responses returned (immediately after the last packet is
        issued when ``posted``)."""
        return self._start(addr, nbytes, is_write=True, posted=posted)

    def read(self, addr: int, nbytes: int) -> DmaTransfer:
        """DMA a buffer from memory."""
        return self._start(addr, nbytes, is_write=False, posted=False)

    def _start(self, addr: int, nbytes: int, is_write: bool, posted: bool) -> DmaTransfer:
        if nbytes < 1:
            raise ValueError("transfer must move at least one byte")
        transfer = DmaTransfer(self, addr, nbytes, is_write, posted)
        self.device.add_dma_pump(transfer._issue_some)
        transfer._issue_some()
        return transfer
