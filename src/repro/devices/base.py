"""The generic PCI-Express device template.

The paper enables one concrete device (the 8254x-pcie NIC) but stresses
that it "can serve as a template for future PCI-Express device model
developments".  :class:`PcieDevice` is that template:

* a :class:`~repro.pci.header.PciEndpointFunction` holding the config
  header, BARs and capability chain (register it with the PCI host to
  make the device discoverable);
* a **PIO slave port** accepting processor requests — the device
  decodes the target BAR and dispatches to :meth:`mmio_read` /
  :meth:`mmio_write` hooks;
* a **DMA master port** for bus mastering (drive it through a
  :class:`~repro.devices.dma.DmaEngine`);
* a legacy INTx interrupt raised through the platform interrupt
  controller at the line the enumeration software assigned.
"""

from typing import List, Optional

from repro.mem.addr import AddrRange
from repro.mem.packet import MemCmd, Packet
from repro.mem.port import MasterPort, PacketQueue, SlavePort
from repro.pci.header import Bar, PciEndpointFunction
from repro.sim import ticks
from repro.sim.simobject import SimObject, Simulator


class PcieDevice(SimObject):
    """Base class for endpoint device models.

    Args:
        function: the device's configuration-space function.
        pio_latency: ticks from accepting an MMIO/PIO request to sending
            its response.
        pio_buffer: bounded in-flight PIO requests.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        function: PciEndpointFunction,
        parent: Optional[SimObject] = None,
        pio_latency: int = ticks.from_ns(30),
        pio_buffer: int = 8,
    ):
        super().__init__(sim, name, parent)
        self.function = function
        self.pio_latency = pio_latency
        self.intc = None  # wired by the system builder

        self.pio_port = SlavePort(
            self,
            "pio",
            recv_timing_req=self._recv_pio,
            recv_resp_retry=lambda: self._pio_respq.retry(),
        )
        self.pio_port.get_ranges = self._pio_ranges
        self.dma_port = MasterPort(
            self,
            "dma",
            recv_timing_resp=self._recv_dma_response,
            recv_req_retry=lambda: self._dma_queue.retry(),
        )
        self._pio_respq = PacketQueue(
            self, "pio_respq", self.pio_port.send_timing_resp, pio_buffer
        )
        self._pio_respq.on_space_freed = self._maybe_retry_pio
        self._dma_queue = PacketQueue(self, "dmaq", self.dma_port.send_timing_req, 64)
        self._dma_queue.on_space_freed = self._pump_dma
        # DMA completions dispatch by req_id to whoever issued them.
        self._dma_waiters = {}
        # Active DMA transfers poked whenever queue space frees (this is
        # how posted transfers pace themselves without responses).
        self._dma_pumps = []

        self.mmio_reads = self.stats.scalar("mmio_reads")
        self.msis_sent = self.stats.scalar("msis_sent", "MSI memory writes issued")
        self.mmio_writes = self.stats.scalar("mmio_writes")
        self.interrupts_raised = self.stats.scalar("interrupts_raised")

    # -- discovery ------------------------------------------------------------
    def _pio_ranges(self) -> List[AddrRange]:
        """The device claims whatever its (enabled) BARs decode."""
        return self.function.bar_ranges()

    def locate_bar(self, addr: int):
        """Return (bar_index, offset) for an address, or (None, None).

        Honours the command register: with memory/I/O decode disabled
        the device does not recognise the address (a request that still
        reaches it through a stale window gets an all-ones response).
        """
        for index, bar in enumerate(self.function.bars):
            rng = bar.range()
            if rng is None or addr not in rng:
                continue
            enabled = self.function.io_enabled if bar.io else self.function.memory_enabled
            if not enabled:
                continue
            return index, rng.offset(addr)
        return None, None

    # -- PIO path ---------------------------------------------------------------
    def _recv_pio(self, pkt: Packet) -> bool:
        if self._pio_respq.full:
            return False
        bar, offset = self.locate_bar(pkt.addr)
        if bar is None:
            # Claimed by a stale window: respond all-ones like absent
            # config space rather than wedging the fabric.
            data = b"\xff" * pkt.size if pkt.is_read else None
            if pkt.needs_response:
                self._pio_respq.push(pkt.make_response(data), self.pio_latency)
            return True
        if pkt.is_read:
            self.mmio_reads.inc()
            value = self.mmio_read(bar, offset, pkt.size)
            data = (value & ((1 << (8 * pkt.size)) - 1)).to_bytes(pkt.size, "little")
            self._pio_respq.push(pkt.make_response(data), self.pio_latency)
        else:
            self.mmio_writes.inc()
            value = int.from_bytes(pkt.data or bytes(pkt.size), "little")
            self.mmio_write(bar, offset, pkt.size, value)
            if pkt.needs_response:
                self._pio_respq.push(pkt.make_response(), self.pio_latency)
        return True

    def _maybe_retry_pio(self) -> None:
        if self.pio_port.retry_owed:
            self.pio_port.send_retry_req()

    # -- register hooks (override in concrete devices) ------------------------------
    def mmio_read(self, bar: int, offset: int, size: int) -> int:
        """Read a device register.  Default: all zeros."""
        return 0

    def mmio_write(self, bar: int, offset: int, size: int, value: int) -> None:
        """Write a device register.  Default: ignored."""

    # -- DMA path ----------------------------------------------------------------
    def dma_send(self, pkt: Packet, on_response) -> None:
        """Issue a DMA request; ``on_response(resp)`` fires when (and
        if) the response returns.  Pass None for posted requests.

        Callers must respect :attr:`dma_space` — the engine's issue
        window guarantees it."""
        if self._dma_queue.full:
            raise RuntimeError(f"{self.full_name}: DMA queue overrun")
        if on_response is not None:
            self._dma_waiters[pkt.req_id] = on_response
        self._dma_queue.push(pkt)

    @property
    def dma_backlog(self) -> int:
        return len(self._dma_queue)

    @property
    def dma_space(self) -> int:
        return self._dma_queue.capacity - len(self._dma_queue)

    def add_dma_pump(self, pump) -> None:
        self._dma_pumps.append(pump)

    def remove_dma_pump(self, pump) -> None:
        self._dma_pumps.remove(pump)

    def _pump_dma(self) -> None:
        for pump in list(self._dma_pumps):
            pump()

    def _recv_dma_response(self, pkt: Packet) -> bool:
        waiter = self._dma_waiters.pop(pkt.req_id, None)
        if waiter is not None:
            waiter(pkt)
        return True

    # -- interrupts -----------------------------------------------------------------
    def raise_interrupt(self) -> None:
        """Signal an interrupt: an MSI memory write when the function's
        MSI capability is enabled, the legacy INTx wire otherwise.

        MSI is the paper's future-work path — "a message is a posted
        request that is mainly used for implementing message signaled
        interrupts (MSI).  A device uses MSI to write a programmed value
        to a specified address location in order to raise an interrupt."
        The write travels the PCI-Express fabric like any other posted
        request and lands on the platform's MSI doorbell.
        """
        self.interrupts_raised.inc()
        if self._send_msi():
            return
        if self.intc is None:
            raise RuntimeError(
                f"{self.full_name} has no interrupt controller wired"
            )
        self.intc.raise_irq(self.function.interrupt_line)

    def _send_msi(self) -> bool:
        from repro.pci.capabilities import CAP_ID_MSI, MsiCapability

        offset = self.function.find_capability(CAP_ID_MSI)
        if offset is None:
            return False
        control = self.function.config_read(offset + MsiCapability.CONTROL, 2)
        if not control & MsiCapability.ENABLE_BIT:
            return False
        address = self.function.config_read(offset + MsiCapability.ADDRESS, 4)
        data = self.function.config_read(offset + MsiCapability.DATA, 2)
        msi = Packet(
            MemCmd.MESSAGE, address, 4,
            data=data.to_bytes(4, "little"),
            requestor=self.full_name,
            create_tick=self.curtick,
        )
        self.msis_sent.inc()
        self.dma_send(msi, None)
        return True
