"""The 8254x-pcie NIC model.

The paper takes gem5's Intel 8254x NIC, sets its device id to 0x10D3 so
the PCI-Express ``e1000e`` driver probes it, and adds the capability
chain PM → MSI → PCI-Express → MSI-X with everything but PCI-Express
disabled (forcing a legacy interrupt).  This model does the same and
implements an e1000-style register file plus descriptor-ring DMA:

* **TX**: the driver posts descriptors and bumps the tail register; the
  NIC DMA-reads each descriptor (16 B) and its packet buffer, writes the
  descriptor back with the done bit, and interrupts.
* **RX (loopback)**: transmitted frames are looped back into posted RX
  buffers: the NIC DMA-writes packet data and the RX descriptor, and
  interrupts.

Simulated memory carries no data contents, so descriptor *values*
travel through a functional side-channel (:meth:`post_tx_descriptor`,
:meth:`post_rx_buffer`) while every DMA access is still performed on the
timing path with its real size — timing-faithful, functionally simple.

Register map (BAR0, 128 KB):

======= ======  ===================================================
offset  name    meaning
======= ======  ===================================================
0x00000 CTRL    device control (bit 26: ``LOOPBACK``)
0x00008 STATUS  device status (link up, speed, ...)
0x000C0 ICR     interrupt cause, cleared on read
0x000D0 IMS     interrupt mask set (enable bits)
0x000D8 IMC     interrupt mask clear
0x03818 TDT     TX tail: writing it starts transmission
======= ======  ===================================================
"""

from collections import deque
from typing import Deque, Optional, Tuple

from repro.devices.base import PcieDevice
from repro.devices.dma import DmaEngine
from repro.pci.capabilities import (
    MsiCapability,
    MsixCapability,
    PcieCapability,
    PciePortType,
    PowerManagementCapability,
)
from repro.pci.header import Bar, PciEndpointFunction
from repro.sim import ticks
from repro.sim.simobject import SimObject, Simulator

REG_CTRL = 0x00000
REG_STATUS = 0x00008
REG_ICR = 0x000C0
REG_IMS = 0x000D0
REG_IMC = 0x000D8
REG_TDT = 0x03818

CTRL_LOOPBACK = 1 << 26

ICR_TXDW = 1 << 0  # transmit descriptor written back
ICR_RXT0 = 1 << 7  # receive timer / packet delivered

STATUS_LINK_UP = 1 << 1

INTEL_VENDOR_ID = 0x8086
NIC_8254X_PCIE_DEVICE_ID = 0x10D3  # invokes the e1000e probe function

DESCRIPTOR_BYTES = 16


def make_nic_function(msi_functional: bool = False) -> PciEndpointFunction:
    """The 8254x-pcie configuration function: 128 KB MMIO BAR, 32 B I/O
    BAR, and the paper's capability chain in order (pass
    ``msi_functional=True`` for the MSI extension)."""
    fn = PciEndpointFunction(
        INTEL_VENDOR_ID,
        NIC_8254X_PCIE_DEVICE_ID,
        bars=[Bar(128 * 1024), Bar(0), Bar(32, io=True)],
        class_code=0x020000,  # Ethernet controller
    )
    fn.add_capability(PowerManagementCapability())
    fn.add_capability(MsiCapability(functional=msi_functional))
    fn.add_capability(PcieCapability(PciePortType.ENDPOINT, max_link_speed=2,
                                     max_link_width=1))
    fn.add_capability(MsixCapability(table_size=5))
    return fn


class Nic8254xPcie(PcieDevice):
    """See module docstring.

    Args:
        tx_process_latency: per-frame internal processing time.
        loopback_wire_latency: delay between TX completion and RX
            delivery when loopback is enabled.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "nic",
        parent: Optional[SimObject] = None,
        tx_process_latency: int = ticks.from_ns(500),
        loopback_wire_latency: int = ticks.from_us(1),
        # Register-file access time.  Calibrated against Table II: with
        # the fabric contributing ~200 ns and the root complex 2x its
        # latency, 120 ns here lands the sweep on the paper's
        # 318...517 ns measurements.
        pio_latency: int = ticks.from_ns(120),
        msi_functional: bool = False,
    ):
        super().__init__(sim, name, make_nic_function(msi_functional), parent,
                         pio_latency=pio_latency)
        self.tx_process_latency = tx_process_latency
        self.loopback_wire_latency = loopback_wire_latency
        self.dma = DmaEngine(sim, "dma_engine", self)

        self._regs = {
            REG_CTRL: 0,
            REG_STATUS: STATUS_LINK_UP | (2 << 6),  # link up at 1000 Mbps
            REG_ICR: 0,
            REG_IMS: 0,
            REG_TDT: 0,
        }
        # Functional descriptor side-channels: (descriptor_addr,
        # buffer_addr, length).
        self._tx_ring: Deque[Tuple[int, int, int]] = deque()
        self._rx_ring: Deque[Tuple[int, int, int]] = deque()
        self._tx_busy = False

        self.frames_transmitted = self.stats.scalar("frames_transmitted")
        self.frames_received = self.stats.scalar("frames_received")
        self.tx_bytes = self.stats.scalar("tx_bytes")
        self.rx_bytes = self.stats.scalar("rx_bytes")
        self.frames_dropped = self.stats.scalar(
            "frames_dropped", "loopback frames with no RX buffer posted"
        )

    # -- functional descriptor side-channel -----------------------------------------
    def post_tx_descriptor(self, descriptor_addr: int, buffer_addr: int,
                           length: int) -> None:
        """Driver-side: a TX descriptor now sits at ``descriptor_addr``
        describing ``length`` bytes at ``buffer_addr``.  Transmission
        starts when the driver writes TDT."""
        if length < 1:
            raise ValueError("cannot transmit an empty frame")
        self._tx_ring.append((descriptor_addr, buffer_addr, length))

    def post_rx_buffer(self, descriptor_addr: int, buffer_addr: int,
                       capacity: int) -> None:
        """Driver-side: an RX descriptor/buffer is available."""
        self._rx_ring.append((descriptor_addr, buffer_addr, capacity))

    # -- register file ---------------------------------------------------------------
    def mmio_read(self, bar: int, offset: int, size: int) -> int:
        if offset == REG_ICR:
            value = self._regs[REG_ICR]
            self._regs[REG_ICR] = 0  # read-to-clear
            return value
        return self._regs.get(offset, 0)

    def mmio_write(self, bar: int, offset: int, size: int, value: int) -> None:
        if offset == REG_IMS:
            self._regs[REG_IMS] |= value
            return
        if offset == REG_IMC:
            self._regs[REG_IMS] &= ~value
            return
        if offset == REG_TDT:
            self._regs[REG_TDT] = value
            self._maybe_start_tx()
            return
        if offset in self._regs:
            self._regs[offset] = value

    # -- TX path ------------------------------------------------------------------------
    def _maybe_start_tx(self) -> None:
        if self._tx_busy or not self._tx_ring:
            return
        self._tx_busy = True
        desc_addr, buf_addr, length = self._tx_ring.popleft()
        # 1. DMA-read the descriptor.
        fetch = self.dma.read(desc_addr, DESCRIPTOR_BYTES)
        fetch.on_complete(
            lambda __: self._tx_fetch_buffer(desc_addr, buf_addr, length)
        )

    def _tx_fetch_buffer(self, desc_addr: int, buf_addr: int, length: int) -> None:
        # 2. DMA-read the packet payload.
        payload = self.dma.read(buf_addr, length)
        payload.on_complete(
            lambda __: self.schedule(
                self.tx_process_latency,
                lambda: self._tx_writeback(desc_addr, buf_addr, length),
                name="tx_process",
            )
        )

    def _tx_writeback(self, desc_addr: int, buf_addr: int, length: int) -> None:
        # 3. Write the descriptor back with the done bit set.
        writeback = self.dma.write(desc_addr, DESCRIPTOR_BYTES)
        writeback.on_complete(
            lambda __: self._tx_complete(buf_addr, length)
        )

    def _tx_complete(self, buf_addr: int, length: int) -> None:
        self.frames_transmitted.inc()
        self.tx_bytes.inc(length)
        self._signal_interrupt(ICR_TXDW)
        if self._regs[REG_CTRL] & CTRL_LOOPBACK:
            self.schedule(
                self.loopback_wire_latency,
                lambda: self._rx_deliver(length),
                name="loopback",
            )
        self._tx_busy = False
        self._maybe_start_tx()

    # -- RX path -------------------------------------------------------------------------
    def _rx_deliver(self, length: int) -> None:
        if not self._rx_ring:
            self.frames_dropped.inc()
            return
        desc_addr, buf_addr, capacity = self._rx_ring.popleft()
        length = min(length, capacity)
        data = self.dma.write(buf_addr, length)
        data.on_complete(
            lambda __: self._rx_writeback(desc_addr, length)
        )

    def _rx_writeback(self, desc_addr: int, length: int) -> None:
        writeback = self.dma.write(desc_addr, DESCRIPTOR_BYTES)
        writeback.on_complete(lambda __: self._rx_complete(length))

    def _rx_complete(self, length: int) -> None:
        self.frames_received.inc()
        self.rx_bytes.inc(length)
        self._signal_interrupt(ICR_RXT0)

    # -- interrupts -----------------------------------------------------------------------
    def _signal_interrupt(self, cause: int) -> None:
        self._regs[REG_ICR] |= cause
        if self._regs[REG_IMS] & cause:
            self.raise_interrupt()
