"""A classic shared PCI bus (the Section II-A baseline).

Everything PCI-Express was designed to replace, modelled so the
PCI-vs-PCIe ablation has a real baseline:

* one **shared parallel bus**, 32 bits wide, clocked at 33 or 66 MHz;
* **no split transactions** — a master holds the bus through
  arbitration, the address phase, the target's wait states and the data
  phases.  If the target cannot supply the data within
  ``max_wait_states`` cycles it signals a *retry*: the master releases
  the bus and retries the whole transaction later, while the target
  completes it in the background (PCI's *delayed transactions*) — the
  mechanism behind the bus's notorious ~50 % efficiency;
* at most 12 electrical loads (devices) per bus;
* FIFO arbitration (a fair-enough stand-in for the central arbiter).

Masters attach through :meth:`attach_master`; targets through
:meth:`attach_target` with the address ranges they claim.
"""

import math
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.mem.addr import AddrRange
from repro.mem.packet import Packet
from repro.mem.port import MasterPort, PortError, SlavePort
from repro.sim import ticks
from repro.sim.simobject import SimObject, Simulator

MAX_PCI_LOADS = 12


class _Transaction:
    __slots__ = ("pkt", "src", "issued", "retries")

    def __init__(self, pkt: Packet, src: SlavePort):
        self.pkt = pkt
        self.src = src
        self.issued = False  # request already forwarded to the target
        self.retries = 0


class PciBus(SimObject):
    """See module docstring.

    Args:
        clock_mhz: 33 or 66.
        width_bytes: data bus width (4 for 32-bit PCI).
        arbitration_cycles: bus cycles to win arbitration.
        max_wait_states: cycles a target may insert before it must
            signal retry.
        queue_depth: transactions a master may have pending with the
            arbiter before being refused.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "pci_bus",
        parent: Optional[SimObject] = None,
        clock_mhz: int = 33,
        width_bytes: int = 4,
        arbitration_cycles: int = 2,
        max_wait_states: int = 8,
        queue_depth: int = 4,
    ):
        super().__init__(sim, name, parent)
        if clock_mhz not in (33, 66):
            raise ValueError("PCI buses run at 33 or 66 MHz")
        self.period = ticks.from_frequency_hz(clock_mhz * 1e6)
        self.width_bytes = width_bytes
        self.arbitration_cycles = arbitration_cycles
        self.max_wait_states = max_wait_states
        self.queue_depth = queue_depth

        self._masters: List[SlavePort] = []
        self._targets: List[MasterPort] = []
        self._target_ranges: Dict[MasterPort, Callable[[], List[AddrRange]]] = {}
        self._queue: Deque[_Transaction] = deque()
        self._busy = False
        # Completions that arrived from targets while the bus had
        # already disconnected the master (delayed transactions).
        self._completions: Dict[int, Packet] = {}
        self._waiting_completion: Dict[int, _Transaction] = {}

        self.transactions = self.stats.scalar("transactions", "completed transfers")
        self.retry_cycles = self.stats.scalar(
            "retry_cycles", "transactions bounced with target-retry"
        )
        self.busy_ticks = self.stats.scalar("busy_ticks", "ticks the bus was held")
        self.stats.formula(
            "efficiency",
            lambda: (self.transactions.value() or 0)
            and self._useful_ticks / max(1, self.busy_ticks.value()),
            "fraction of held bus time spent moving data",
        )
        self._useful_ticks = 0

    # -- wiring ------------------------------------------------------------
    def _check_loads(self) -> None:
        if len(self._masters) + len(self._targets) >= MAX_PCI_LOADS:
            raise PortError(
                f"{self.full_name}: a PCI bus supports at most "
                f"{MAX_PCI_LOADS} electrical loads"
            )

    def attach_master(self, name: str) -> SlavePort:
        """A port for a bus-mastering device to send requests into."""
        self._check_loads()
        port = SlavePort(self, name)
        port.recv_timing_req = lambda pkt, port=port: self._recv_request(port, pkt)
        port.recv_resp_retry = lambda: None  # masters always accept here
        self._masters.append(port)
        return port

    def attach_target(
        self, name: str,
        ranges: Optional[Callable[[], List[AddrRange]]] = None,
    ) -> MasterPort:
        """A port toward a target device; ``ranges`` overrides the
        peer's advertised address ranges when given."""
        self._check_loads()
        port = MasterPort(self, name)
        port.recv_timing_resp = lambda pkt: self._recv_completion(pkt)
        port.recv_req_retry = lambda: None
        self._targets.append(port)
        if ranges is not None:
            self._target_ranges[port] = ranges
        return port

    # -- arbitration -------------------------------------------------------------
    def _recv_request(self, src: SlavePort, pkt: Packet) -> bool:
        pending = sum(1 for t in self._queue if t.src is src)
        if pending >= self.queue_depth:
            return False
        self._queue.append(_Transaction(pkt, src))
        self._kick()
        return True

    def _kick(self) -> None:
        self._issue_retries()
        if self._busy or not self._queue:
            return
        self._busy = True
        transaction = self._queue.popleft()
        self.schedule(self.arbitration_cycles * self.period,
                      lambda: self._address_phase(transaction), name="arb")

    def _issue_retries(self) -> None:
        for port in self._masters:
            if port.retry_owed:
                pending = sum(1 for t in self._queue if t.src is port)
                if pending < self.queue_depth:
                    port.send_retry_req()

    # -- transaction phases ----------------------------------------------------------
    def _find_target(self, addr: int) -> MasterPort:
        for port in self._targets:
            ranges_fn = self._target_ranges.get(port)
            ranges = ranges_fn() if ranges_fn else (
                port.peer.get_ranges() if port.peer else []
            )
            if any(addr in rng for rng in ranges):
                return port
        raise PortError(f"{self.full_name}: no target claims {addr:#x}")

    def _address_phase(self, transaction: _Transaction) -> None:
        start = self.curtick
        if not transaction.issued:
            target = self._find_target(transaction.pkt.addr)
            transaction.issued = True
            if transaction.pkt.needs_response:
                self._waiting_completion[transaction.pkt.req_id] = transaction
            accepted = target.send_timing_req(transaction.pkt)
            if not accepted:
                # Treat like a target-retry; the target owes us a port
                # retry we ignore — we re-arbitrate on a timer instead.
                transaction.issued = False
                self._waiting_completion.pop(transaction.pkt.req_id, None)
                self._bounce(transaction, start)
                return
        if not transaction.pkt.needs_response:
            # Posted write: data phases immediately after the address.
            self._data_phases(transaction, start, transaction.pkt)
            return
        completion = self._completions.pop(transaction.pkt.req_id, None)
        if completion is not None:
            self._data_phases(transaction, start, completion)
            return
        # Hold the bus in wait states until the deadline.
        deadline = self.max_wait_states * self.period
        self.schedule(self.period + deadline,
                      lambda: self._deadline(transaction, start), name="waits")

    def _deadline(self, transaction: _Transaction, start: int) -> None:
        completion = self._completions.pop(transaction.pkt.req_id, None)
        if completion is not None:
            self._data_phases(transaction, start, completion)
        else:
            self._bounce(transaction, start)

    def _bounce(self, transaction: _Transaction, start: int) -> None:
        """Target retry: release the bus, re-queue the master."""
        transaction.retries += 1
        self.retry_cycles.inc()
        self.busy_ticks.inc(self.curtick - start)
        self._queue.append(transaction)
        self._busy = False
        # Re-arbitrate after a polite masterhood gap.
        self.schedule(self.period, self._kick, name="rearb")

    def _data_phases(self, transaction: _Transaction, start: int,
                     completion: Optional[Packet]) -> None:
        pkt = transaction.pkt
        data_cycles = max(1, math.ceil(pkt.size / self.width_bytes))
        duration = (self.curtick - start) + (1 + data_cycles) * self.period
        useful = data_cycles * self.period

        def finish():
            self.busy_ticks.inc(duration)
            self._useful_ticks += useful
            self.transactions.inc()
            if completion is not None and pkt.needs_response:
                transaction.src.send_timing_resp(completion)
            self._busy = False
            self._kick()

        self.schedule((1 + data_cycles) * self.period, finish, name="data")

    # -- completions from targets ----------------------------------------------------
    def _recv_completion(self, pkt: Packet) -> bool:
        transaction = self._waiting_completion.pop(pkt.req_id, None)
        if transaction is None:
            return True  # stale
        self._completions[pkt.req_id] = pkt
        return True
