"""The PCI Host (gem5's functional host-to-PCI bridge).

The PCI Host claims the entire PCI configuration window and services
configuration accesses using the Enhanced Configuration Access Mechanism
(ECAM): address = base + (bus << 20) + (device << 15) + (function << 12)
+ register, giving 4 KB of configuration registers per function.

Configuration routing is *structural*, like real hardware: the host owns
bus 0 (the internal root complex bus), each bridge function (a VP2P in
the root complex or a switch port) owns the child bus behind it, and a
configuration cycle for bus N is forwarded down a bridge only when N
lies within that bridge's [secondary, subordinate] registers.  Devices
behind a bridge are therefore *unreachable* until the enumeration
software programs bus numbers into the bridge — exactly the behaviour
the depth-first enumeration algorithm depends on.

Reads of unpopulated addresses return all-ones: in the PCI-Express
protocol a configuration response of all 1s represents an access to a
non-existent device.

Accesses are served both functionally (direct calls — what the
enumeration software and drivers use; gem5's PCI Host is likewise a
functional model outside the timed PCIe datapath) and as timed packets
through a slave port claiming the ECAM window.
"""

from typing import Dict, Iterator, List, Optional, Tuple

from repro.mem.addr import AddrRange
from repro.mem.packet import MemCmd, Packet
from repro.mem.port import PacketQueue, SlavePort
from repro.pci.header import PciBridgeFunction, PciFunction
from repro.sim import ticks
from repro.sim.simobject import SimObject, Simulator

Bdf = Tuple[int, int, int]
Slot = Tuple[int, int]  # (device, function)


class ConfigBus:
    """One logical PCI bus: functions by (device, function) slot, plus
    the child bus behind each bridge function."""

    def __init__(self, name: str = "bus"):
        self.name = name
        self._functions: Dict[Slot, PciFunction] = {}
        self._children: Dict[Slot, "ConfigBus"] = {}

    def add_function(self, device: int, function: int, model: PciFunction) -> None:
        if not (0 <= device <= 31 and 0 <= function <= 7):
            raise ValueError(f"invalid slot {device}.{function}")
        slot = (device, function)
        if slot in self._functions:
            raise ValueError(f"slot {device}.{function} on {self.name} already populated")
        self._functions[slot] = model

    def add_bridge(
        self, device: int, function: int, model: PciBridgeFunction,
        child_name: str = ""
    ) -> "ConfigBus":
        """Install a bridge function; returns the child bus behind it."""
        if not isinstance(model, PciBridgeFunction):
            raise TypeError(f"add_bridge requires a bridge function, got {model!r}")
        self.add_function(device, function, model)
        child = ConfigBus(child_name or f"{self.name}.{device}.{function}")
        self._children[(device, function)] = child
        return child

    def function_at(self, device: int, function: int) -> Optional[PciFunction]:
        return self._functions.get((device, function))

    def child_behind(self, device: int, function: int) -> Optional["ConfigBus"]:
        return self._children.get((device, function))

    def bridges(self) -> Iterator[Tuple[Slot, PciBridgeFunction, "ConfigBus"]]:
        for slot, child in self._children.items():
            model = self._functions[slot]
            assert isinstance(model, PciBridgeFunction)
            yield slot, model, child

    def walk(self) -> Iterator[Tuple["ConfigBus", Slot, PciFunction]]:
        """Every (bus, slot, function) in this subtree, structure order."""
        for slot, model in sorted(self._functions.items()):
            yield self, slot, model
        for slot, child in sorted(self._children.items()):
            yield from child.walk()


class PciHost(SimObject):
    """Owner of the ECAM configuration window and the config-bus tree.

    Args:
        ecam_base: base address of the configuration window
            (0x30000000 on the Vexpress_GEM5_V1 platform).
        ecam_size: window size (256 MB covers 256 buses).
        config_latency: per-access latency of the timed interface.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "pci_host",
        parent: Optional[SimObject] = None,
        ecam_base: int = 0x30000000,
        ecam_size: int = 0x10000000,
        config_latency: int = ticks.from_ns(100),
    ):
        super().__init__(sim, name, parent)
        self.ecam_range = AddrRange(ecam_base, ecam_size)
        self.config_latency = config_latency
        self.root_bus = ConfigBus("bus0")

        self.port = SlavePort(
            self,
            "port",
            recv_timing_req=self._recv_config_packet,
            recv_resp_retry=lambda: self._respq.retry(),
            ranges=[self.ecam_range],
        )
        self._respq = PacketQueue(self, "respq", self.port.send_timing_resp, 16)

        self.config_reads = self.stats.scalar("config_reads")
        self.config_writes = self.stats.scalar("config_writes")
        self.missed_accesses = self.stats.scalar(
            "missed_accesses", "accesses to unpopulated bus/device/function"
        )

    # -- structural routing ----------------------------------------------------
    def _resolve(self, bus: int, device: int, function: int) -> Optional[PciFunction]:
        return self._resolve_on(self.root_bus, 0, bus, device, function)

    def _resolve_on(
        self, cbus: ConfigBus, cbus_num: int, bus: int, device: int, function: int
    ) -> Optional[PciFunction]:
        if bus == cbus_num:
            return cbus.function_at(device, function)
        for __, bridge, child in cbus.bridges():
            # An unconfigured bridge (secondary == 0) forwards nothing;
            # only bus 0 — the root bus itself — may be numbered 0.
            if bridge.secondary_bus == 0:
                continue
            if bridge.bus_in_range(bus):
                return self._resolve_on(child, bridge.secondary_bus, bus, device, function)
        return None

    def function_at(self, bus: int, device: int, function: int = 0) -> Optional[PciFunction]:
        return self._resolve(bus, device, function)

    def all_functions(self) -> List[PciFunction]:
        return [model for __, __, model in self.root_bus.walk()]

    # -- functional configuration access ------------------------------------------
    def config_read(self, bus: int, device: int, function: int,
                    offset: int, size: int = 4) -> int:
        model = self._resolve(bus, device, function)
        if model is None:
            self.missed_accesses.inc()
            return (1 << (8 * size)) - 1  # all-ones: no device
        self.config_reads.inc()
        return model.config_read(offset, size)

    def config_write(self, bus: int, device: int, function: int,
                     offset: int, value: int, size: int = 4) -> None:
        model = self._resolve(bus, device, function)
        if model is None:
            self.missed_accesses.inc()
            return  # writes to nowhere are dropped
        self.config_writes.inc()
        model.config_write(offset, value, size)

    # -- ECAM decode ------------------------------------------------------------
    def decode(self, addr: int) -> Tuple[int, int, int, int]:
        """Split an ECAM address into (bus, device, function, register)."""
        offset = self.ecam_range.offset(addr)
        return (
            (offset >> 20) & 0xFF,
            (offset >> 15) & 0x1F,
            (offset >> 12) & 0x7,
            offset & 0xFFF,
        )

    def encode(self, bus: int, device: int, function: int, register: int = 0) -> int:
        """ECAM address of a register — the inverse of :meth:`decode`."""
        return (
            self.ecam_range.start
            + (bus << 20)
            + (device << 15)
            + (function << 12)
            + register
        )

    # -- timed packet interface -----------------------------------------------
    def _recv_config_packet(self, pkt: Packet) -> bool:
        if self._respq.full:
            return False
        bus, device, function, register = self.decode(pkt.addr)
        if pkt.cmd in (MemCmd.CONFIG_READ_REQ, MemCmd.READ_REQ):
            value = self.config_read(bus, device, function, register, pkt.size)
            data = value.to_bytes(pkt.size, "little")
            self._respq.push(pkt.make_response(data), self.config_latency)
        elif pkt.cmd in (MemCmd.CONFIG_WRITE_REQ, MemCmd.WRITE_REQ):
            value = int.from_bytes(pkt.data or bytes(pkt.size), "little")
            self.config_write(bus, device, function, register, value, pkt.size)
            self._respq.push(pkt.make_response(), self.config_latency)
        else:
            raise ValueError(f"PCI host cannot service {pkt!r}")
        return True
