"""PCI configuration headers.

:class:`PciEndpointFunction` implements the type-0 endpoint header (R1
of the paper's Figure 4) with size-probing BARs; :class:`PciBridgeFunction`
implements the type-1 PCI-to-PCI bridge header of Figure 7 — the header
the paper builds for each virtual PCI-to-PCI bridge (VP2P) in the root
complex and switch.  Both chain capability structures through the
capability pointer.

All register semantics are bit-accurate where software depends on them:
BAR size probes (write all-ones, read back the size mask), bridge
window decode (mem windows in 1 MB granules, 32-bit I/O windows using
the upper-16 registers, as required by the platform's I/O window at
0x2F000000), and command-register enable bits.
"""

from typing import List, Optional

from repro.mem.addr import AddrRange
from repro.pci.capabilities import Capability
from repro.pci.config import ConfigSpace

# Standard header register offsets.
VENDOR_ID = 0x00
DEVICE_ID = 0x02
COMMAND = 0x04
STATUS = 0x06
REVISION_ID = 0x08
CLASS_CODE = 0x09
CACHE_LINE_SIZE = 0x0C
LATENCY_TIMER = 0x0D
HEADER_TYPE = 0x0E
BIST = 0x0F
BAR0 = 0x10
CAPABILITY_POINTER = 0x34
INTERRUPT_LINE = 0x3C
INTERRUPT_PIN = 0x3D

# Type-1 specific offsets (Figure 7).
PRIMARY_BUS = 0x18
SECONDARY_BUS = 0x19
SUBORDINATE_BUS = 0x1A
SECONDARY_LATENCY_TIMER = 0x1B
IO_BASE = 0x1C
IO_LIMIT = 0x1D
SECONDARY_STATUS = 0x1E
MEMORY_BASE = 0x20
MEMORY_LIMIT = 0x22
PREFETCH_BASE = 0x24
PREFETCH_LIMIT = 0x26
PREFETCH_BASE_UPPER32 = 0x28
PREFETCH_LIMIT_UPPER32 = 0x2C
IO_BASE_UPPER16 = 0x30
IO_LIMIT_UPPER16 = 0x32
BRIDGE_CONTROL = 0x3E

# Command register bits.
CMD_IO_SPACE = 1 << 0
CMD_MEM_SPACE = 1 << 1
CMD_BUS_MASTER = 1 << 2

# Status register bits.
STATUS_CAP_LIST = 1 << 4

INVALID_VENDOR = 0xFFFF


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class Bar:
    """A base address register.

    Args:
        size: aperture size in bytes (power of two, minimum 16 for
            memory and 4 for I/O) or 0 for an unimplemented BAR.
        io: True for an I/O-space BAR, False for memory-space.
        prefetchable: memory-space prefetchable bit.
    """

    def __init__(self, size: int, io: bool = False, prefetchable: bool = False):
        if size and not _is_power_of_two(size):
            raise ValueError(f"BAR size must be a power of two, got {size}")
        minimum = 4 if io else 16
        if size and size < minimum:
            raise ValueError(f"BAR size {size} below architectural minimum {minimum}")
        self.size = size
        self.io = io
        self.prefetchable = prefetchable
        # Current value of the register's address bits.
        self.addr = 0

    @property
    def type_bits(self) -> int:
        if self.io:
            return 0x1
        return 0x8 if self.prefetchable else 0x0

    @property
    def addr_mask(self) -> int:
        """Which register bits hold the (aligned) address."""
        if not self.size:
            return 0
        return (~(self.size - 1)) & 0xFFFFFFFF

    def register_value(self) -> int:
        return (self.addr & self.addr_mask) | self.type_bits if self.size else 0

    def range(self) -> Optional[AddrRange]:
        if not self.size or not self.addr:
            return None
        return AddrRange(self.addr, self.size)


class PciFunction:
    """Common header machinery for endpoints and bridges.

    A function is identified by (bus, device, function) once the
    enumeration software assigns bus numbers; models register with the
    :class:`~repro.pci.host.PciHost` under that address.
    """

    header_type_value = 0x00

    def __init__(
        self,
        vendor_id: int,
        device_id: int,
        class_code: int = 0,
        revision: int = 0,
    ):
        self.config = ConfigSpace()
        self._capabilities: List[Capability] = []
        self._cap_offsets: List[int] = []
        self._next_cap_offset = 0x40
        config = self.config
        config.init_field(VENDOR_ID, 2, vendor_id)
        config.init_field(DEVICE_ID, 2, device_id)
        config.init_field(COMMAND, 2, 0x0000, writable_mask=0x0147)
        config.init_field(STATUS, 2, 0x0000)
        config.init_field(REVISION_ID, 1, revision)
        config.init_field(CLASS_CODE, 3, class_code)
        config.init_field(CACHE_LINE_SIZE, 1, 0, writable_mask=0xFF)
        config.init_field(LATENCY_TIMER, 1, 0, writable_mask=0xFF)
        config.init_field(HEADER_TYPE, 1, self.header_type_value)
        config.init_field(BIST, 1, 0)
        config.init_field(CAPABILITY_POINTER, 1, 0)
        config.init_field(INTERRUPT_LINE, 1, 0xFF, writable_mask=0xFF)
        config.init_field(INTERRUPT_PIN, 1, 0x01)  # INTA#

    # -- identity -------------------------------------------------------------
    @property
    def vendor_id(self) -> int:
        return self.config.read(VENDOR_ID, 2)

    @property
    def device_id(self) -> int:
        return self.config.read(DEVICE_ID, 2)

    @property
    def is_bridge(self) -> bool:
        return (self.config.read(HEADER_TYPE, 1) & 0x7F) == 0x01

    # -- command register ---------------------------------------------------------
    @property
    def command(self) -> int:
        return self.config.read(COMMAND, 2)

    @property
    def io_enabled(self) -> bool:
        return bool(self.command & CMD_IO_SPACE)

    @property
    def memory_enabled(self) -> bool:
        return bool(self.command & CMD_MEM_SPACE)

    @property
    def bus_master_enabled(self) -> bool:
        return bool(self.command & CMD_BUS_MASTER)

    # -- interrupts --------------------------------------------------------------
    @property
    def interrupt_line(self) -> int:
        return self.config.read(INTERRUPT_LINE, 1)

    # -- capabilities --------------------------------------------------------------
    def add_capability(self, cap: Capability, offset: Optional[int] = None) -> int:
        """Append ``cap`` to the capability chain; returns its offset.

        The first capability's offset lands in the header's capability
        pointer and sets the status-register capabilities bit (the paper
        notes all bits of the VP2P status register are 0 except bit 4,
        indicating a PCI-Express capability structure is implemented).
        """
        if offset is None:
            offset = self._next_cap_offset
        if offset % 4 != 0:
            raise ValueError(f"capability offset {offset:#x} must be dword-aligned")
        if offset + cap.length > 0x100:
            raise ValueError("capability overflows the PCI-compatible region")
        cap.install(self.config, offset, next_ptr=0)
        if self._capabilities:
            # Patch the previous capability's next pointer to us.
            prev_offset = self._cap_offsets[-1]
            self.config.set_raw(prev_offset + 1, 1, offset)
        else:
            self.config.set_raw(CAPABILITY_POINTER, 1, offset)
            self.config.set_raw(STATUS, 2, self.config.read(STATUS, 2) | STATUS_CAP_LIST)
        self._capabilities.append(cap)
        self._cap_offsets.append(offset)
        self._next_cap_offset = max(self._next_cap_offset, offset + ((cap.length + 3) & ~3))
        return offset

    def walk_capabilities(self) -> List[tuple]:
        """Follow the chain; returns [(cap_id, offset), ...] like a driver."""
        out = []
        offset = self.config.read(CAPABILITY_POINTER, 1)
        seen = set()
        while offset and offset not in seen:
            seen.add(offset)
            cap_id = self.config.read(offset, 1)
            out.append((cap_id, offset))
            offset = self.config.read(offset + 1, 1)
        return out

    def find_capability(self, cap_id: int) -> Optional[int]:
        for found_id, offset in self.walk_capabilities():
            if found_id == cap_id:
                return offset
        return None

    # -- software access ----------------------------------------------------------
    def config_read(self, offset: int, size: int = 4) -> int:
        return self.config.read(offset, size)

    def config_write(self, offset: int, value: int, size: int = 4) -> None:
        self.config.write(offset, value, size)


class PciEndpointFunction(PciFunction):
    """A type-0 (endpoint) function with up to six BARs."""

    header_type_value = 0x00

    def __init__(
        self,
        vendor_id: int,
        device_id: int,
        bars: Optional[List[Bar]] = None,
        class_code: int = 0,
        revision: int = 0,
        subsystem_vendor_id: int = 0,
        subsystem_id: int = 0,
    ):
        super().__init__(vendor_id, device_id, class_code, revision)
        bars = list(bars or [])
        if len(bars) > 6:
            raise ValueError(f"an endpoint has at most 6 BARs, got {len(bars)}")
        while len(bars) < 6:
            bars.append(Bar(0))
        self.bars = bars
        for i, bar in enumerate(self.bars):
            offset = BAR0 + 4 * i
            self.config.init_field(offset, 4, bar.type_bits if bar.size else 0,
                                   writable_mask=0xFFFFFFFF if bar.size else 0)
            if bar.size:
                self.config.add_write_hook(
                    offset, 4,
                    lambda off, sz, val, i=i: self._bar_written(i),
                )
        self.config.init_field(0x2C, 2, subsystem_vendor_id)
        self.config.init_field(0x2E, 2, subsystem_id)
        self.config.init_field(0x30, 4, 0)  # expansion ROM: none

    def _bar_written(self, index: int) -> None:
        """Apply BAR semantics: address bits only, type bits read-only.

        A size probe (software writing all-ones) reads back as the size
        mask because the low address bits cannot be set.
        """
        bar = self.bars[index]
        offset = BAR0 + 4 * index
        raw = self.config.read(offset, 4)
        bar.addr = raw & bar.addr_mask
        self.config.set_raw(offset, 4, bar.register_value())

    def bar_ranges(self, require_enable: bool = True) -> List[AddrRange]:
        """Address ranges of all programmed BARs, honouring the command
        register enable bits when ``require_enable``."""
        out = []
        for bar in self.bars:
            rng = bar.range()
            if rng is None:
                continue
            if require_enable:
                if bar.io and not self.io_enabled:
                    continue
                if not bar.io and not self.memory_enabled:
                    continue
            out.append(rng)
        return out


class PciBridgeFunction(PciFunction):
    """A type-1 (PCI-to-PCI bridge) function — the VP2P header of Figure 7."""

    header_type_value = 0x01

    def __init__(
        self,
        vendor_id: int,
        device_id: int,
        class_code: int = 0x060400,  # PCI-to-PCI bridge
        revision: int = 0,
    ):
        super().__init__(vendor_id, device_id, class_code, revision)
        config = self.config
        # Bridges in this model carry no BARs of their own (the paper
        # sets them to 0: "the VP2P does not implement memory-mapped
        # registers of its own").
        config.init_field(BAR0, 4, 0)
        config.init_field(BAR0 + 4, 4, 0)
        config.init_field(PRIMARY_BUS, 1, 0, writable_mask=0xFF)
        config.init_field(SECONDARY_BUS, 1, 0, writable_mask=0xFF)
        config.init_field(SUBORDINATE_BUS, 1, 0, writable_mask=0xFF)
        config.init_field(SECONDARY_LATENCY_TIMER, 1, 0)
        # 32-bit I/O window: low nibble 0x1 advertises 32-bit decode,
        # required because the platform's I/O space sits at 0x2F000000.
        config.init_field(IO_BASE, 1, 0x01, writable_mask=0xF0)
        config.init_field(IO_LIMIT, 1, 0x01, writable_mask=0xF0)
        config.init_field(SECONDARY_STATUS, 2, 0)
        config.init_field(MEMORY_BASE, 2, 0x0000, writable_mask=0xFFF0)
        config.init_field(MEMORY_LIMIT, 2, 0x0000, writable_mask=0xFFF0)
        # Prefetchable window unimplemented (reads as zero, not writable).
        config.init_field(PREFETCH_BASE, 2, 0x0000)
        config.init_field(PREFETCH_LIMIT, 2, 0x0000)
        config.init_field(PREFETCH_BASE_UPPER32, 4, 0)
        config.init_field(PREFETCH_LIMIT_UPPER32, 4, 0)
        config.init_field(IO_BASE_UPPER16, 2, 0x0000, writable_mask=0xFFFF)
        config.init_field(IO_LIMIT_UPPER16, 2, 0x0000, writable_mask=0xFFFF)
        config.init_field(BRIDGE_CONTROL, 2, 0x0000, writable_mask=0x0FFF)
        # A fresh bridge decodes nothing: mem base > mem limit.
        self.set_memory_window(None)
        self.set_io_window(None)
        # Decoded routing state (windows + bus range), rebuilt whenever
        # the config space's generation moves — see _route_state().
        self._route_cache: Optional[tuple] = None

    # -- bus numbers ---------------------------------------------------------
    @property
    def primary_bus(self) -> int:
        return self.config.read(PRIMARY_BUS, 1)

    @property
    def secondary_bus(self) -> int:
        return self.config.read(SECONDARY_BUS, 1)

    @property
    def subordinate_bus(self) -> int:
        return self.config.read(SUBORDINATE_BUS, 1)

    def bus_in_range(self, bus: int) -> bool:
        """True if ``bus`` lies in [secondary, subordinate] — the test
        both configuration forwarding and the paper's response routing
        use."""
        return self.secondary_bus <= bus <= self.subordinate_bus

    # -- windows -----------------------------------------------------------------
    @property
    def memory_window(self) -> Optional[AddrRange]:
        """The non-prefetchable memory window, or None when closed."""
        base = (self.config.read(MEMORY_BASE, 2) & 0xFFF0) << 16
        limit_reg = self.config.read(MEMORY_LIMIT, 2) & 0xFFF0
        limit = (limit_reg << 16) | 0xFFFFF
        if base > limit:
            return None
        return AddrRange(base, end=limit + 1)

    def set_memory_window(self, window: Optional[AddrRange]) -> None:
        """Device-side helper mirroring what enumeration software does
        with config writes; also used directly in tests."""
        if window is None:
            self.config.set_raw(MEMORY_BASE, 2, 0xFFF0)
            self.config.set_raw(MEMORY_LIMIT, 2, 0x0000)
            return
        if window.start % 0x100000 or window.end % 0x100000:
            raise ValueError("memory window must be 1MB aligned")
        self.config.set_raw(MEMORY_BASE, 2, (window.start >> 16) & 0xFFF0)
        self.config.set_raw(MEMORY_LIMIT, 2, ((window.end - 1) >> 16) & 0xFFF0)

    @property
    def io_window(self) -> Optional[AddrRange]:
        """The (32-bit) I/O window, or None when closed."""
        base = ((self.config.read(IO_BASE, 1) & 0xF0) << 8) | (
            self.config.read(IO_BASE_UPPER16, 2) << 16
        )
        limit = (
            ((self.config.read(IO_LIMIT, 1) & 0xF0) << 8)
            | (self.config.read(IO_LIMIT_UPPER16, 2) << 16)
            | 0xFFF
        )
        if base > limit:
            return None
        return AddrRange(base, end=limit + 1)

    def set_io_window(self, window: Optional[AddrRange]) -> None:
        if window is None:
            self.config.set_raw(IO_BASE, 1, 0xF1)
            self.config.set_raw(IO_BASE_UPPER16, 2, 0xFFFF)
            self.config.set_raw(IO_LIMIT, 1, 0x01)
            self.config.set_raw(IO_LIMIT_UPPER16, 2, 0x0000)
            return
        if window.start % 0x1000 or window.end % 0x1000:
            raise ValueError("I/O window must be 4KB aligned")
        self.config.set_raw(IO_BASE, 1, ((window.start >> 8) & 0xF0) | 0x01)
        self.config.set_raw(IO_BASE_UPPER16, 2, window.start >> 16)
        self.config.set_raw(IO_LIMIT, 1, (((window.end - 1) >> 8) & 0xF0) | 0x01)
        self.config.set_raw(IO_LIMIT_UPPER16, 2, (window.end - 1) >> 16)

    def forwarding_ranges(self) -> List[AddrRange]:
        """Ranges this bridge forwards from its primary to secondary
        side: the union of its open windows (honouring the command
        register's memory/I/O enables)."""
        out = []
        if self.memory_enabled and self.memory_window is not None:
            out.append(self.memory_window)
        if self.io_enabled and self.io_window is not None:
            out.append(self.io_window)
        return out

    def _route_state(self) -> tuple:
        """``(generation, ((start, end), ...), secondary, subordinate)``.

        The switch routes every TLP through :meth:`forwards` /
        :meth:`routes_bus`, but the registers behind them only change
        during enumeration — so the decoded form is cached and keyed by
        the config space's mutation counter rather than re-read from
        raw bytes per packet.
        """
        gen = self.config.generation
        cache = self._route_cache
        if cache is not None and cache[0] == gen:
            return cache
        ranges = tuple(
            (rng.start, rng.end) for rng in self.forwarding_ranges()
        )
        cache = (gen, ranges, self.secondary_bus, self.subordinate_bus)
        self._route_cache = cache
        return cache

    def forwards(self, addr: int) -> bool:
        for start, end in self._route_state()[1]:
            if start <= addr < end:
                return True
        return False

    def routes_bus(self, bus: int) -> bool:
        """:meth:`bus_in_range` with the unconfigured-bridge guard the
        response-routing path needs (secondary still 0 routes nothing,
        because only the root bus itself is numbered 0)."""
        _, _, secondary, subordinate = self._route_state()
        return secondary != 0 and secondary <= bus <= subordinate
