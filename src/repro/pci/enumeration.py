"""The enumeration software.

The part of the BIOS / kernel that discovers devices, assigns bus
numbers, sizes and places BARs, programs bridge windows, and hands out
interrupt lines.  It talks to the hardware exclusively through the PCI
Host's configuration interface — it has no privileged view of the
models, so every register semantic it depends on (all-ones for absent
devices, BAR size probes, bridge forwarding by [secondary, subordinate])
is exercised for real.

The algorithm is the classic depth-first scan the paper describes:

1. probe vendor IDs on bus 0;
2. on finding a bridge (header type 1), assign the next bus number as
   its secondary bus, open its subordinate register to 0xFF, recurse
   into the new bus, then clamp subordinate to the highest bus found;
3. on finding an endpoint (header type 0), size each BAR by writing
   all-ones and reading back the size mask;
4. afterwards, walk the discovered tree allocating memory/I/O space
   depth-first so that each bridge's devices occupy a contiguous,
   1 MB/4 KB-aligned window, program the windows, and set the command
   registers (memory/I/O decode + bus mastering for DMA).
"""

from typing import List, Optional

from repro.mem.addr import AddrRange
from repro.pci import header as hdr
from repro.pci.host import PciHost


class EnumerationError(RuntimeError):
    """The bus scan hit something inconsistent (bad header, overflow...)."""


class _Allocator:
    """A bump allocator over one address window."""

    def __init__(self, window: AddrRange, name: str):
        self.window = window
        self.name = name
        self._next = window.start

    def align(self, alignment: int) -> int:
        self._next = -(-self._next // alignment) * alignment
        return self._next

    def take(self, size: int, alignment: Optional[int] = None) -> int:
        addr = self.align(alignment or size)
        if addr + size > self.window.end:
            raise EnumerationError(
                f"{self.name} space exhausted: need {size:#x} at {addr:#x}, "
                f"window ends at {self.window.end:#x}"
            )
        self._next = addr + size
        return addr


class FoundBar:
    """One implemented BAR discovered by a size probe."""

    def __init__(self, index: int, size: int, io: bool, prefetchable: bool):
        self.index = index
        self.size = size
        self.io = io
        self.prefetchable = prefetchable
        self.assigned: Optional[AddrRange] = None

    def __repr__(self) -> str:
        space = "io" if self.io else "mem"
        return f"<FoundBar {self.index} {space} size={self.size:#x} at={self.assigned}>"


class FoundDevice:
    """A discovered function: endpoint or bridge, with its subtree."""

    def __init__(self, bus: int, device: int, function: int,
                 vendor_id: int, device_id: int, is_bridge: bool):
        self.bus = bus
        self.device = device
        self.function = function
        self.vendor_id = vendor_id
        self.device_id = device_id
        self.is_bridge = is_bridge
        self.bars: List[FoundBar] = []
        self.children: List["FoundDevice"] = []
        self.secondary_bus: Optional[int] = None
        self.subordinate_bus: Optional[int] = None
        self.interrupt_line: Optional[int] = None
        self.capabilities: List[tuple] = []

    @property
    def bdf(self) -> tuple:
        return (self.bus, self.device, self.function)

    def endpoints(self) -> List["FoundDevice"]:
        """All endpoint functions in this subtree (self included)."""
        if not self.is_bridge:
            return [self]
        out: List[FoundDevice] = []
        for child in self.children:
            out.extend(child.endpoints())
        return out

    def __repr__(self) -> str:
        kind = "bridge" if self.is_bridge else "endpoint"
        return (
            f"<{kind} {self.bus:02x}:{self.device:02x}.{self.function} "
            f"{self.vendor_id:04x}:{self.device_id:04x}>"
        )


class Enumerator:
    """Runs the depth-first scan and resource assignment.

    Args:
        host: the PCI host whose configuration interface to use.
        mem_window: platform MMIO window for device memory BARs
            (Vexpress_GEM5_V1: 1 GB at 0x40000000).
        io_window: platform I/O window (16 MB at 0x2F000000).
        irq_base: first legacy interrupt line to hand out.
    """

    BRIDGE_WINDOW_MEM_ALIGN = 0x100000  # 1 MB granularity (type-1 decode)
    BRIDGE_WINDOW_IO_ALIGN = 0x1000  # 4 KB granularity

    def __init__(
        self,
        host: PciHost,
        mem_window: AddrRange = AddrRange(0x40000000, 0x40000000),
        io_window: AddrRange = AddrRange(0x2F000000, 0x01000000),
        irq_base: int = 32,
    ):
        self.host = host
        self.mem_alloc = _Allocator(mem_window, "memory")
        self.io_alloc = _Allocator(io_window, "I/O")
        self._next_bus = 1
        self._next_irq = irq_base
        self.roots: List[FoundDevice] = []

    # -- config shorthand -------------------------------------------------------
    def _cr(self, bdf, offset, size=4):
        return self.host.config_read(*bdf, offset, size)

    def _cw(self, bdf, offset, value, size=4):
        self.host.config_write(*bdf, offset, value, size)

    # -- the scan ----------------------------------------------------------------
    def enumerate(self) -> List[FoundDevice]:
        """Scan, assign, program.  Returns the device tree under bus 0."""
        self.roots = self._scan_bus(0)
        for node in self.roots:
            self._assign(node)
        return self.roots

    def _scan_bus(self, bus: int) -> List[FoundDevice]:
        found: List[FoundDevice] = []
        for device in range(32):
            vendor = self._cr((bus, device, 0), hdr.VENDOR_ID, 2)
            if vendor == hdr.INVALID_VENDOR:
                continue
            header_type = self._cr((bus, device, 0), hdr.HEADER_TYPE, 1)
            n_functions = 8 if header_type & 0x80 else 1
            for function in range(n_functions):
                bdf = (bus, device, function)
                vendor = self._cr(bdf, hdr.VENDOR_ID, 2)
                if vendor == hdr.INVALID_VENDOR:
                    continue
                found.append(self._probe_function(bdf))
        return found

    def _probe_function(self, bdf) -> FoundDevice:
        bus, device, function = bdf
        vendor = self._cr(bdf, hdr.VENDOR_ID, 2)
        device_id = self._cr(bdf, hdr.DEVICE_ID, 2)
        header_type = self._cr(bdf, hdr.HEADER_TYPE, 1) & 0x7F
        if header_type not in (0x00, 0x01):
            raise EnumerationError(
                f"device {bus:02x}:{device:02x}.{function} has unsupported "
                f"header type {header_type:#x}"
            )
        node = FoundDevice(bus, device, function, vendor, device_id,
                           is_bridge=header_type == 0x01)
        node.capabilities = self._walk_capabilities(bdf)
        if node.is_bridge:
            self._descend_bridge(node)
        else:
            node.bars = self._probe_bars(bdf)
        return node

    def _descend_bridge(self, node: FoundDevice) -> None:
        bdf = node.bdf
        secondary = self._next_bus
        if secondary > 0xFF:
            raise EnumerationError("ran out of bus numbers")
        self._next_bus += 1
        self._cw(bdf, hdr.PRIMARY_BUS, node.bus, 1)
        self._cw(bdf, hdr.SECONDARY_BUS, secondary, 1)
        # Open the subordinate register so config cycles reach any depth
        # of the yet-unscanned subtree.
        self._cw(bdf, hdr.SUBORDINATE_BUS, 0xFF, 1)
        node.secondary_bus = secondary
        node.children = self._scan_bus(secondary)
        node.subordinate_bus = self._next_bus - 1
        self._cw(bdf, hdr.SUBORDINATE_BUS, node.subordinate_bus, 1)

    def _probe_bars(self, bdf) -> List[FoundBar]:
        # Disable decode while probing so a half-programmed BAR cannot
        # claim live traffic.
        command = self._cr(bdf, hdr.COMMAND, 2)
        self._cw(bdf, hdr.COMMAND, command & ~(hdr.CMD_IO_SPACE | hdr.CMD_MEM_SPACE), 2)
        bars: List[FoundBar] = []
        for index in range(6):
            offset = hdr.BAR0 + 4 * index
            original = self._cr(bdf, offset, 4)
            self._cw(bdf, offset, 0xFFFFFFFF, 4)
            probed = self._cr(bdf, offset, 4)
            self._cw(bdf, offset, original, 4)
            if probed == 0:
                continue  # unimplemented
            io = bool(probed & 0x1)
            mask = 0xFFFFFFFC if io else 0xFFFFFFF0
            size = ((~(probed & mask)) & 0xFFFFFFFF) + 1
            prefetchable = bool(probed & 0x8) and not io
            bars.append(FoundBar(index, size, io, prefetchable))
        self._cw(bdf, hdr.COMMAND, command, 2)
        return bars

    def _walk_capabilities(self, bdf) -> List[tuple]:
        status = self._cr(bdf, hdr.STATUS, 2)
        if not status & hdr.STATUS_CAP_LIST:
            return []
        out = []
        offset = self._cr(bdf, hdr.CAPABILITY_POINTER, 1)
        seen = set()
        while offset and offset not in seen:
            seen.add(offset)
            cap_id = self._cr(bdf, offset, 1)
            out.append((cap_id, offset))
            offset = self._cr(bdf, offset + 1, 1)
        return out

    # -- resource assignment ---------------------------------------------------
    def _assign(self, node: FoundDevice) -> None:
        if node.is_bridge:
            self._assign_bridge(node)
        else:
            self._assign_endpoint(node)

    def _assign_endpoint(self, node: FoundDevice) -> None:
        bdf = node.bdf
        command = self._cr(bdf, hdr.COMMAND, 2)
        for bar in node.bars:
            alloc = self.io_alloc if bar.io else self.mem_alloc
            addr = alloc.take(bar.size)
            self._cw(bdf, hdr.BAR0 + 4 * bar.index, addr, 4)
            bar.assigned = AddrRange(addr, bar.size)
            command |= hdr.CMD_IO_SPACE if bar.io else hdr.CMD_MEM_SPACE
        command |= hdr.CMD_BUS_MASTER  # allow the device to DMA
        self._cw(bdf, hdr.COMMAND, command, 2)
        node.interrupt_line = self._next_irq
        self._next_irq += 1
        self._cw(bdf, hdr.INTERRUPT_LINE, node.interrupt_line, 1)

    def _assign_bridge(self, node: FoundDevice) -> None:
        bdf = node.bdf
        mem_start = self.mem_alloc.align(self.BRIDGE_WINDOW_MEM_ALIGN)
        io_start = self.io_alloc.align(self.BRIDGE_WINDOW_IO_ALIGN)
        for child in node.children:
            self._assign(child)
        mem_end = self.mem_alloc.align(self.BRIDGE_WINDOW_MEM_ALIGN)
        io_end = self.io_alloc.align(self.BRIDGE_WINDOW_IO_ALIGN)

        command = self._cr(bdf, hdr.COMMAND, 2)
        if mem_end > mem_start:
            self._cw(bdf, hdr.MEMORY_BASE, (mem_start >> 16) & 0xFFF0, 2)
            self._cw(bdf, hdr.MEMORY_LIMIT, ((mem_end - 1) >> 16) & 0xFFF0, 2)
            command |= hdr.CMD_MEM_SPACE
        else:
            self._cw(bdf, hdr.MEMORY_BASE, 0xFFF0, 2)
            self._cw(bdf, hdr.MEMORY_LIMIT, 0x0000, 2)
        if io_end > io_start:
            self._cw(bdf, hdr.IO_BASE, ((io_start >> 8) & 0xF0) | 0x01, 1)
            self._cw(bdf, hdr.IO_BASE_UPPER16, io_start >> 16, 2)
            self._cw(bdf, hdr.IO_LIMIT, (((io_end - 1) >> 8) & 0xF0) | 0x01, 1)
            self._cw(bdf, hdr.IO_LIMIT_UPPER16, (io_end - 1) >> 16, 2)
            command |= hdr.CMD_IO_SPACE
        else:
            self._cw(bdf, hdr.IO_BASE, 0xF1, 1)
            self._cw(bdf, hdr.IO_BASE_UPPER16, 0xFFFF, 2)
            self._cw(bdf, hdr.IO_LIMIT, 0x01, 1)
            self._cw(bdf, hdr.IO_LIMIT_UPPER16, 0x0000, 2)
        # Forward transactions secondary->primary (DMA) as well.
        command |= hdr.CMD_BUS_MASTER
        self._cw(bdf, hdr.COMMAND, command, 2)

    # -- reporting -----------------------------------------------------------------
    def all_devices(self) -> List[FoundDevice]:
        out: List[FoundDevice] = []

        def visit(node: FoundDevice) -> None:
            out.append(node)
            for child in node.children:
                visit(child)

        for root in self.roots:
            visit(root)
        return out

    def find(self, vendor_id: int, device_id: int) -> List[FoundDevice]:
        return [
            node
            for node in self.all_devices()
            if node.vendor_id == vendor_id and node.device_id == device_id
        ]

    def tree_text(self) -> str:
        """An lspci-like rendering of the discovered tree."""
        lines: List[str] = []

        def visit(node: FoundDevice, depth: int) -> None:
            pad = "  " * depth
            kind = "bridge" if node.is_bridge else "endpoint"
            extra = ""
            if node.is_bridge:
                extra = f" [sec={node.secondary_bus} sub={node.subordinate_bus}]"
            lines.append(
                f"{pad}{node.bus:02x}:{node.device:02x}.{node.function} "
                f"{kind} {node.vendor_id:04x}:{node.device_id:04x}{extra}"
            )
            for bar in node.bars:
                lines.append(f"{pad}  BAR{bar.index}: {bar.assigned}")
            for child in node.children:
                visit(child, depth + 1)

        for root in self.roots:
            visit(root, 0)
        return "\n".join(lines)
