"""PCI / PCI-Express configuration machinery.

Everything the enumeration software and device drivers touch:

* :mod:`repro.pci.config` — the per-function 4 KB configuration space
  with byte-granular write masks;
* :mod:`repro.pci.header` — type-0 (endpoint) and type-1 (bridge)
  configuration headers, including BAR size-probing semantics;
* :mod:`repro.pci.capabilities` — PM, MSI, MSI-X and PCI-Express
  capability structures chained through the capability pointer;
* :mod:`repro.pci.host` — gem5's PCI Host: the ECAM window owner that
  functionally services configuration accesses;
* :mod:`repro.pci.enumeration` — the BIOS/kernel enumeration software:
  depth-first bus scan, bus-number assignment, BAR sizing and
  allocation, bridge-window programming;
* :mod:`repro.pci.bus` — a classic shared PCI bus model (Section II
  background; used as an ablation baseline).
"""

from repro.pci.config import ConfigSpace
from repro.pci.header import Bar, PciFunction, PciBridgeFunction, PciEndpointFunction
from repro.pci.capabilities import (
    Capability,
    PowerManagementCapability,
    MsiCapability,
    MsixCapability,
    PcieCapability,
    PciePortType,
)
from repro.pci.host import PciHost
from repro.pci.enumeration import Enumerator, EnumerationError

__all__ = [
    "ConfigSpace",
    "Bar",
    "PciFunction",
    "PciBridgeFunction",
    "PciEndpointFunction",
    "Capability",
    "PowerManagementCapability",
    "MsiCapability",
    "MsixCapability",
    "PcieCapability",
    "PciePortType",
    "PciHost",
    "Enumerator",
    "EnumerationError",
]
