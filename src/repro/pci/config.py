"""The per-function configuration space.

A PCI function exposes 256 bytes of configuration registers; a
PCI-Express function extends that to 4 KB (regions R1+R2+R3 of the
paper's Figure 4).  The space is modelled as raw little-endian bytes
plus a per-byte *write mask*: software writes only land on writable
bits, exactly like hardware RW/RO register fields.

Special side-effects (BAR size probing, command-register decoding) are
layered on top via *write hooks* registered for byte ranges.
"""

from typing import Callable, Dict, List, Optional, Tuple

PCI_CONFIG_SIZE = 256
PCIE_CONFIG_SIZE = 4096


class ConfigSpace:
    """Raw little-endian configuration bytes with write masks and hooks."""

    def __init__(self, size: int = PCIE_CONFIG_SIZE):
        if size not in (PCI_CONFIG_SIZE, PCIE_CONFIG_SIZE):
            raise ValueError(f"config space must be 256 or 4096 bytes, got {size}")
        self.size = size
        self._data = bytearray(size)
        self._wmask = bytearray(size)
        #: Bumped on every mutation (device- or software-side).  Callers
        #: that decode registers on hot paths (bridge window routing)
        #: cache the decoded form keyed by this counter, so the cache
        #: invalidates itself on any config write without the decoder
        #: having to know which offsets matter.
        self.generation = 0
        # (start, end, hook) — hook(offset, size, value) runs after a
        # software write touching [start, end) has been applied.
        self._write_hooks: List[Tuple[int, int, Callable[[int, int, int], None]]] = []

    # -- bounds ------------------------------------------------------------
    def _check(self, offset: int, size: int) -> None:
        if not 1 <= size <= 8:
            raise ValueError(f"config access size must be 1..8 bytes, got {size}")
        if offset < 0 or offset + size > self.size:
            raise ValueError(
                f"config access [{offset:#x}, {offset + size:#x}) out of bounds"
            )

    # -- device-side initialisation ------------------------------------------
    def init_field(self, offset: int, size: int, value: int, writable_mask: int = 0) -> None:
        """Set a register's reset value and which of its bits software
        may write.  Used by device models when building their headers."""
        self._check(offset, size)
        self.generation += 1
        for i in range(size):
            self._data[offset + i] = (value >> (8 * i)) & 0xFF
            self._wmask[offset + i] = (writable_mask >> (8 * i)) & 0xFF

    def set_raw(self, offset: int, size: int, value: int) -> None:
        """Device-side write ignoring write masks (status updates etc.)."""
        self._check(offset, size)
        self.generation += 1
        for i in range(size):
            self._data[offset + i] = (value >> (8 * i)) & 0xFF

    def add_write_hook(
        self, offset: int, size: int, hook: Callable[[int, int, int], None]
    ) -> None:
        """Run ``hook(offset, size, value)`` after software writes that
        touch any byte of ``[offset, offset+size)``."""
        self._write_hooks.append((offset, offset + size, hook))

    # -- software-side access ------------------------------------------------
    def read(self, offset: int, size: int = 4) -> int:
        self._check(offset, size)
        return int.from_bytes(self._data[offset : offset + size], "little")

    def write(self, offset: int, value: int, size: int = 4) -> None:
        """A software configuration write: lands only on writable bits,
        then triggers any hooks covering the written bytes."""
        self._check(offset, size)
        self.generation += 1
        for i in range(size):
            byte = (value >> (8 * i)) & 0xFF
            mask = self._wmask[offset + i]
            self._data[offset + i] = (self._data[offset + i] & ~mask) | (byte & mask)
        for start, end, hook in self._write_hooks:
            if offset < end and start < offset + size:
                hook(offset, size, value)

    # -- debugging -------------------------------------------------------------
    def hexdump(self, length: int = 64) -> str:
        """First ``length`` bytes, 16 per line, for debugging."""
        lines = []
        for base in range(0, min(length, self.size), 16):
            chunk = self._data[base : base + 16]
            lines.append(f"{base:03x}: " + " ".join(f"{b:02x}" for b in chunk))
        return "\n".join(lines)
