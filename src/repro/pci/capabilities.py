"""PCI / PCI-Express capability structures.

Capability structures live in the PCI-compatible region of the
configuration space (R2 in the paper's Figure 4) and are chained through
their *Next Cap Ptr* bytes starting from the header's capability
pointer.  The paper's NIC model implements, in order, Power Management →
MSI → PCI-Express → MSI-X — with everything except the PCI-Express
structure *disabled* so that the e1000e driver falls back to a legacy
interrupt — and its VP2P bridges implement the PCI-Express structure at
offset 0xD8 presenting themselves as root/switch ports.

Each capability knows its id, its length, which registers it exposes,
and which bits software may write.
"""

import enum
from typing import Optional

from repro.pci.config import ConfigSpace

CAP_ID_POWER_MANAGEMENT = 0x01
CAP_ID_MSI = 0x05
CAP_ID_PCIE = 0x10
CAP_ID_MSIX = 0x11


class PciePortType(enum.IntEnum):
    """Device/port type field of the PCI-Express capabilities register."""

    ENDPOINT = 0x0
    LEGACY_ENDPOINT = 0x1
    ROOT_PORT = 0x4
    UPSTREAM_SWITCH_PORT = 0x5
    DOWNSTREAM_SWITCH_PORT = 0x6


class Capability:
    """Base class: a chained structure of ``length`` bytes."""

    cap_id = 0x00
    length = 4

    def install(self, config: ConfigSpace, offset: int, next_ptr: int) -> None:
        """Write this capability's registers at ``offset``; chain to
        ``next_ptr`` (0 terminates the list)."""
        config.init_field(offset + 0, 1, self.cap_id)
        config.init_field(offset + 1, 1, next_ptr)
        self._install_body(config, offset)

    def _install_body(self, config: ConfigSpace, offset: int) -> None:
        raise NotImplementedError


class PowerManagementCapability(Capability):
    """Power management (id 0x01), presented but disabled.

    The PMC advertises no PME support and the PMCSR power-state field is
    read-only at D0, so a driver can find the capability but cannot use
    it — matching how the paper neutralises PM in gem5.
    """

    cap_id = CAP_ID_POWER_MANAGEMENT
    length = 8

    def _install_body(self, config: ConfigSpace, offset: int) -> None:
        # PMC: version 3 (PCI PM 1.2), no PME from any state.
        config.init_field(offset + 2, 2, 0x0003, writable_mask=0x0000)
        # PMCSR: stuck at D0, nothing writable.
        config.init_field(offset + 4, 2, 0x0000, writable_mask=0x0000)
        config.init_field(offset + 6, 2, 0x0000)


class MsiCapability(Capability):
    """Message-signaled interrupts (id 0x05).

    By default presented but *disabled*: the MSI-enable bit (Message
    Control bit 0) is read-only zero, which is what forces the driver
    down the legacy-INTx path in the paper.  With ``functional=True``
    the enable bit and the address/data registers become writable —
    the extension the paper lists as future work ("A message is a
    posted request that is mainly used for implementing MSI"), letting
    a device raise interrupts as posted memory writes.
    """

    cap_id = CAP_ID_MSI
    length = 14

    # Register offsets within the capability, for drivers and devices.
    CONTROL = 2
    ADDRESS = 4
    DATA = 12
    ENABLE_BIT = 0x0001

    def __init__(self, functional: bool = False):
        self.functional = functional

    def _install_body(self, config: ConfigSpace, offset: int) -> None:
        control_mask = self.ENABLE_BIT if self.functional else 0x0000
        rw = 0xFFFFFFFF if self.functional else 0x0000_0000
        # Message Control: 64-bit capable, one message.
        config.init_field(offset + self.CONTROL, 2, 0x0080,
                          writable_mask=control_mask)
        config.init_field(offset + self.ADDRESS, 4, 0x0000_0000, writable_mask=rw)
        config.init_field(offset + 8, 4, 0x0000_0000)  # address upper
        config.init_field(offset + self.DATA, 2, 0x0000,
                          writable_mask=0xFFFF if self.functional else 0x0000)


class MsixCapability(Capability):
    """MSI-X (id 0x11), presented but disabled (enable bit RO zero)."""

    cap_id = CAP_ID_MSIX
    length = 12

    def __init__(self, table_size: int = 1):
        if not 1 <= table_size <= 2048:
            raise ValueError(f"MSI-X table size must be 1..2048, got {table_size}")
        self.table_size = table_size

    def _install_body(self, config: ConfigSpace, offset: int) -> None:
        # Message Control: table size N-1 encoded, enable (bit 15) RO 0.
        config.init_field(offset + 2, 2, self.table_size - 1, writable_mask=0x0000)
        config.init_field(offset + 4, 4, 0x0000_0000)  # table offset/BIR
        config.init_field(offset + 8, 4, 0x0000_0800)  # PBA offset/BIR


class PcieCapability(Capability):
    """The PCI-Express capability structure (id 0x10) of Figure 5.

    Register groups per the paper: C1 (capabilities/device/link) is
    implemented by every PCI-Express function; C2 (slot) only by ports
    connected to a slot; C3 (root) only by root ports.  We always lay
    out the full structure and zero the groups that do not apply.

    Args:
        port_type: the device/port type advertised to software.
        max_link_speed: 1 = 2.5 GT/s (Gen 1), 2 = 5 GT/s (Gen 2),
            3 = 8 GT/s (Gen 3).
        max_link_width: lanes (x1 .. x32).
        slot_implemented: advertise an attached slot (C2 group valid).
    """

    cap_id = CAP_ID_PCIE
    length = 0x24

    def __init__(
        self,
        port_type: PciePortType = PciePortType.ENDPOINT,
        max_link_speed: int = 2,
        max_link_width: int = 1,
        slot_implemented: bool = False,
    ):
        if max_link_speed not in (1, 2, 3):
            raise ValueError(f"link speed code must be 1/2/3, got {max_link_speed}")
        if max_link_width not in (1, 2, 4, 8, 12, 16, 32):
            raise ValueError(f"invalid link width x{max_link_width}")
        self.port_type = PciePortType(port_type)
        self.max_link_speed = max_link_speed
        self.max_link_width = max_link_width
        self.slot_implemented = slot_implemented

    def _install_body(self, config: ConfigSpace, offset: int) -> None:
        # PCIe Capabilities Register: version 2, port type, slot bit.
        caps = 0x2 | (int(self.port_type) << 4)
        if self.slot_implemented:
            caps |= 1 << 8
        config.init_field(offset + 0x02, 2, caps)
        # Device Capabilities: max payload supported = 128B (code 0).
        config.init_field(offset + 0x04, 4, 0x0000_0000)
        # Device Control (writable) / Device Status.
        config.init_field(offset + 0x08, 2, 0x0000, writable_mask=0xFFFF)
        config.init_field(offset + 0x0A, 2, 0x0000)
        # Link Capabilities: speed + width.
        link_caps = self.max_link_speed | (self.max_link_width << 4)
        config.init_field(offset + 0x0C, 4, link_caps)
        # Link Control (writable) / Link Status (negotiated = max).
        config.init_field(offset + 0x10, 2, 0x0000, writable_mask=0xFFFF)
        link_status = self.max_link_speed | (self.max_link_width << 4)
        config.init_field(offset + 0x12, 2, link_status)
        # Slot Capabilities / Control / Status (C2).
        config.init_field(offset + 0x14, 4, 0x0000_0000)
        slot_ctl_mask = 0xFFFF if self.slot_implemented else 0x0000
        config.init_field(offset + 0x18, 2, 0x0000, writable_mask=slot_ctl_mask)
        config.init_field(offset + 0x1A, 2, 0x0000)
        # Root Control / Root Status (C3).
        is_root = self.port_type is PciePortType.ROOT_PORT
        config.init_field(offset + 0x1C, 2, 0x0000, writable_mask=0xFFFF if is_root else 0)
        config.init_field(offset + 0x20, 4, 0x0000_0000)
