"""The structured error raised (or recorded) on a protocol violation.

An :class:`InvariantViolation` is deliberately more than an assert: it
carries the *rule* that fired, the dotted path of the component it
fired on, the simulated tick, a human-readable detail string, and the
most recent trace events the checker's ring buffer captured — enough
to reconstruct the protocol exchange that led to the violation without
re-running the simulation under a full trace sink.
"""

from typing import List, Optional, Sequence


class InvariantViolation(RuntimeError):
    """A machine-checked protocol rule was broken.

    Attributes:
        rule: dotted rule identifier (``"link.replay_deadlock"``,
            ``"port.resp_conservation"``, ``"eventq.time_monotonic"``…).
        component: full dotted name of the component the rule fired on.
        tick: simulated tick at which the violation was observed.
        detail: human-readable description of what went wrong.
        context: the most recent trace events (oldest first) captured by
            the checker's ring buffer, or an empty list when tracing was
            unavailable.
    """

    #: How many trailing context events :meth:`__str__` renders.
    CONTEXT_LINES = 10

    def __init__(self, rule: str, component: str, tick: int, detail: str,
                 context: Optional[Sequence[dict]] = None):
        self.rule = rule
        self.component = component
        self.tick = tick
        self.detail = detail
        self.context: List[dict] = list(context or [])
        super().__init__(self.__str__())

    def __str__(self) -> str:
        lines = [
            f"invariant {self.rule!r} violated by {self.component} "
            f"at tick {self.tick}: {self.detail}"
        ]
        if self.context:
            tail = self.context[-self.CONTEXT_LINES:]
            lines.append(f"last {len(tail)} trace events:")
            for event in tail:
                t = event.get("t")
                comp = event.get("comp")
                ev = event.get("ev")
                rest = {k: v for k, v in event.items()
                        if k not in ("t", "cat", "comp", "ev")}
                lines.append(f"  t={t} {comp} {ev} {rest}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<InvariantViolation {self.rule!r} comp={self.component!r} "
                f"tick={self.tick}>")
