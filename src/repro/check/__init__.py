"""Runtime protocol-invariant checking.

The paper's simplified data-link layer — replay buffers, ACK/NAK
coalescing, timeout recovery — is stateful protocol code where silent
divergence hides.  This package machine-checks the protocol rules at
runtime so refactors and performance work are guarded by invariants,
not only by golden traces:

* :mod:`repro.check.checker` — the :class:`InvariantChecker` hooked
  into the event queue, the timing-port protocol, and the PCIe link
  layer (zero overhead while disabled);
* :mod:`repro.check.violation` — the structured
  :class:`InvariantViolation` error carrying component path, tick, and
  recent trace context.

Enable per simulator (``Simulator(check=True)``), per process
(``REPRO_CHECK=on``), per harness run (``--check``), or ad hoc
(``sim.checker.enable()``).
"""

from repro.check.checker import InvariantChecker
from repro.check.violation import InvariantViolation

__all__ = ["InvariantChecker", "InvariantViolation"]
