"""The runtime invariant checker.

Every :class:`~repro.sim.simobject.Simulator` owns one
:class:`InvariantChecker`, created disabled.  Instrumented hot paths —
the event-queue dispatch loop, the timing-port protocol, and the PCIe
link layer — cache the checker reference at construction and guard
each hook on ``if ck.enabled:``, exactly the zero-overhead-when-
disabled pattern the tracer uses.  Enabling the checker (the ``check=``
knob on ``Simulator``, the ``REPRO_CHECK`` environment variable, or
``sim.checker.enable()``) turns those hooks into machine-checked
protocol rules:

* **Event queue** — dispatch ticks never move backwards
  (``eventq.time_monotonic``).
* **Timing ports** — while a port has a refusal outstanding it may only
  re-send the refused packet, never a new one
  (``port.req_while_retry_owed`` / ``port.resp_while_retry_owed``);
  a retry is only issued when one is owed (``port.double_retry``);
  and responses accepted across a port pair never exceed the
  response-needing requests accepted across it
  (``port.resp_conservation``).
* **Link layer** — sending sequence numbers increase by exactly one per
  new TLP (``link.send_seq``); deliveries bump the receiving sequence
  number by exactly one (``link.recv_seq``); the replay buffer never
  exceeds ``replay_buffer_size`` (``link.replay_buffer_overflow``);
  an ACK/NAK never acknowledges a sequence number that was never sent
  (``link.ack_unsent_seq``); a replay timeout always leaves the timer
  armed while TLPs remain unacknowledged (``link.timeout_unarmed``).
* **Flow control** — a transmitter never consumes more credits of a
  class than its peer advertised (``link.fc_overconsume``); an accepted
  TLP always has a free slot of its class in the receive buffer — a
  non-posted flood can never eat completion slots
  (``link.fc_rx_overflow``); received UpdateFC credit limits are
  monotone (``link.fc_limit_regressed``).
* **Quiescence** — when the event queue drains, every link interface
  must be idle: a non-empty replay buffer with no scheduled replay
  event is a deadlock (``link.replay_deadlock``); stuck input, receive
  or DLLP queues are flagged too (``link.stuck_input_queue`` /
  ``link.stuck_rx_buffer`` / ``link.stuck_dllp_queue``); and every
  credit consumed must map to a drained peer buffer slot — no credit
  may leak (``link.fc_credit_leak``).

Violations are :class:`~repro.check.violation.InvariantViolation`
instances carrying component path, tick, and the most recent trace
events from :mod:`repro.obs` (the checker attaches a small ring sink to
the simulator's tracer while enabled).  By default the first violation
raises; ``record_only=True`` collects instead, for tests that assert on
``checker.violations``.
"""

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.check.violation import InvariantViolation

__all__ = ["InvariantChecker"]

#: Human-readable flow-control class names, indexed by flow-class int.
_FLOW_NAMES = ("posted", "non-posted", "completion")


class _RingSink:
    """A bounded trace sink holding the most recent events for context.

    Deliberately duck-typed rather than a
    :class:`repro.obs.trace.TraceSink` subclass: ``repro.obs``'s package
    init imports ``repro.sim``, which imports this module — subclassing
    would close an import cycle.  The tracer only ever calls
    ``record``/``close``.
    """

    def __init__(self, maxlen: int):
        self.events: Deque[dict] = deque(maxlen=maxlen)

    def record(self, event: dict) -> None:
        """Append one event, evicting the oldest beyond ``maxlen``."""
        self.events.append(event)

    def close(self) -> None:
        """Nothing to flush; the ring lives in memory."""


def _resolve_port(sim, full_name: str):
    """Find the timing port named ``full_name`` on a rebuilt simulator.

    Ports are not SimObjects, so the registry resolves their owner
    (everything before the last dot) and the port is found by scanning
    the owner's attributes for a bound port carrying the same full
    name.  Duck-typed to avoid importing :mod:`repro.mem.port`, which
    imports this module transitively.
    """
    owner_name, _, _leaf = full_name.rpartition(".")
    owner = sim.find(owner_name)
    if owner is None:
        return None

    def _matches(value) -> bool:
        return (getattr(value, "owner", None) is owner
                and getattr(value, "full_name", None) == full_name)

    # Ports live either as direct attributes (devices, link interfaces)
    # or inside list attributes (crossbars keep _slave_ports /
    # _master_ports lists); scan one level of both.
    for value in vars(owner).values():
        if _matches(value):
            return value
        if isinstance(value, list):
            for item in value:
                if _matches(item):
                    return item
    return None


class _PairLedger:
    """Request/response accounting for one bound master/slave pair."""

    __slots__ = ("reqs", "need_resp", "resps")

    def __init__(self):
        self.reqs = 0
        self.need_resp = 0
        self.resps = 0


class _LinkLedger:
    """Per-interface sequence-number bookkeeping."""

    __slots__ = ("last_sent_seq", "last_delivered_seq")

    def __init__(self):
        self.last_sent_seq = -1
        self.last_delivered_seq = -1


class InvariantChecker:
    """Pluggable runtime protocol-rule checker for one simulator.

    Args:
        sim: the owning :class:`~repro.sim.simobject.Simulator`.
        context_events: size of the ring buffer of recent trace events
            attached while the checker is enabled (0 disables context
            capture).
        record_only: when True, violations are appended to
            :attr:`violations` instead of raised — the mode campaign
            summaries and negative tests use.
    """

    def __init__(self, sim, context_events: int = 64,
                 record_only: bool = False):
        self.sim = sim
        self.enabled = False
        self.record_only = record_only
        self.context_events = context_events
        self.violations: List[InvariantViolation] = []
        self._ring: Optional[_RingSink] = None
        self._last_dispatch_tick = 0
        # One ledger per bound master/slave pair, keyed by the master
        # port; refused-packet records keyed by the re-sending port.
        self._pairs: Dict[object, _PairLedger] = {}
        self._pending_req: Dict[object, object] = {}
        self._pending_resp: Dict[object, object] = {}
        # Link interfaces register at construction for the quiescence
        # watchdog and carry their sequence ledgers here.
        self._link_ifaces: List[object] = []
        self._links: Dict[object, _LinkLedger] = {}

    # -- lifecycle ---------------------------------------------------------
    def enable(self) -> "InvariantChecker":
        """Arm every hook; attach the context ring to the tracer."""
        if self.enabled:
            return self
        self.enabled = True
        if self.context_events and self._ring is None:
            self._ring = _RingSink(self.context_events)
            self.sim.tracer.attach(self._ring)
        return self

    def disable(self) -> "InvariantChecker":
        """Disarm the hooks and detach the context ring."""
        if not self.enabled:
            return self
        self.enabled = False
        if self._ring is not None and self._ring in self.sim.tracer.sinks:
            self.sim.tracer.detach(self._ring)
        self._ring = None
        return self

    def recent_events(self) -> List[dict]:
        """The captured trace context, oldest first (may be empty)."""
        return list(self._ring.events) if self._ring is not None else []

    def _violate(self, rule: str, component: str, detail: str) -> None:
        """Record one violation; raise it unless in record-only mode."""
        violation = InvariantViolation(
            rule=rule, component=component, tick=self.sim.curtick,
            detail=detail, context=self.recent_events(),
        )
        self.violations.append(violation)
        if not self.record_only:
            raise violation

    # -- event queue -------------------------------------------------------
    def on_dispatch(self, when: int, event) -> None:
        """Called per dispatched event: ticks must never move backwards."""
        if when < self._last_dispatch_tick:
            self._violate(
                "eventq.time_monotonic", self.sim.eventq.name,
                f"event {event.name!r} dispatched at tick {when} after "
                f"tick {self._last_dispatch_tick} had already fired",
            )
        self._last_dispatch_tick = when

    # -- timing-port protocol ----------------------------------------------
    def pre_send_req(self, master, pkt) -> None:
        """Before a master sends: only the refused packet may be re-sent."""
        pending = self._pending_req.get(master)
        if pending is not None and pending is not pkt:
            self._violate(
                "port.req_while_retry_owed", master.full_name,
                f"sent new request {pkt!r} while the peer still owes a "
                f"retry for refused request {pending!r}",
            )

    def post_send_req(self, master, pkt, accepted: bool) -> None:
        """After a master sent: track refusals and pair accounting."""
        if accepted:
            self._pending_req.pop(master, None)
            ledger = self._pairs.get(master)
            if ledger is None:
                ledger = self._pairs[master] = _PairLedger()
            ledger.reqs += 1
            if pkt.needs_response:
                ledger.need_resp += 1
        else:
            self._pending_req[master] = pkt

    def pre_send_resp(self, slave, pkt) -> None:
        """Before a slave responds: only the refused response re-sends."""
        pending = self._pending_resp.get(slave)
        if pending is not None and pending is not pkt:
            self._violate(
                "port.resp_while_retry_owed", slave.full_name,
                f"sent new response {pkt!r} while the peer still owes a "
                f"retry for refused response {pending!r}",
            )

    def post_send_resp(self, slave, pkt, accepted: bool) -> None:
        """After a slave responded: refusal tracking + conservation."""
        if accepted:
            self._pending_resp.pop(slave, None)
            ledger = self._pairs.get(slave.peer)
            if ledger is None:
                ledger = self._pairs[slave.peer] = _PairLedger()
            ledger.resps += 1
            if ledger.resps > ledger.need_resp:
                self._violate(
                    "port.resp_conservation", slave.full_name,
                    f"accepted response #{ledger.resps} ({pkt!r}) exceeds "
                    f"the {ledger.need_resp} response-needing requests "
                    f"accepted across this port pair",
                )
        else:
            self._pending_resp[slave] = pkt

    def on_retry_req(self, slave) -> None:
        """A slave issues a request retry: one must actually be owed."""
        if not slave._req_retry_owed:
            self._violate(
                "port.double_retry", slave.full_name,
                "issued a request retry when none was owed",
            )
        self._pending_req.pop(slave.peer, None)

    def on_retry_resp(self, master) -> None:
        """A master issues a response retry: one must actually be owed."""
        if not master._resp_retry_owed:
            self._violate(
                "port.double_retry", master.full_name,
                "issued a response retry when none was owed",
            )
        self._pending_resp.pop(master.peer, None)

    # -- link layer --------------------------------------------------------
    def register_link_interface(self, iface) -> None:
        """Link interfaces self-register for the quiescence watchdog."""
        self._link_ifaces.append(iface)

    def _link_ledger(self, iface) -> _LinkLedger:
        ledger = self._links.get(iface)
        if ledger is None:
            ledger = self._links[iface] = _LinkLedger()
        return ledger

    def link_tlp_queued(self, iface, ppkt) -> None:
        """A new TLP entered the replay buffer: seq, occupancy and
        credit-consumption rules."""
        ledger = self._link_ledger(iface)
        if ppkt.seq != ledger.last_sent_seq + 1:
            self._violate(
                "link.send_seq", iface.full_name,
                f"new TLP carries seq {ppkt.seq}, expected "
                f"{ledger.last_sent_seq + 1}",
            )
        ledger.last_sent_seq = ppkt.seq
        if len(iface.replay_buffer) > iface.replay_buffer_size:
            self._violate(
                "link.replay_buffer_overflow", iface.full_name,
                f"replay buffer holds {len(iface.replay_buffer)} TLPs, "
                f"size is {iface.replay_buffer_size}",
            )
        fc = iface.fc
        cls = ppkt.tlp.flow_class
        if fc.tx_consumed[cls] > fc.tx_limit[cls]:
            self._violate(
                "link.fc_overconsume", iface.full_name,
                f"consumed {fc.tx_consumed[cls]} "
                f"{_FLOW_NAMES[cls]} credits but the peer only ever "
                f"advertised {fc.tx_limit[cls]}",
            )

    def link_tlp_delivered(self, iface, ppkt) -> None:
        """A TLP was accepted: receiving seq advances by exactly one and
        its flow-control class must have a free receive-buffer slot —
        credit gating at the sender guarantees it, so an overflow here
        means a class borrowed another's buffers."""
        ledger = self._link_ledger(iface)
        if ppkt.seq != ledger.last_delivered_seq + 1:
            self._violate(
                "link.recv_seq", iface.full_name,
                f"delivered TLP carries seq {ppkt.seq}, expected "
                f"{ledger.last_delivered_seq + 1}",
            )
        ledger.last_delivered_seq = ppkt.seq
        fc = iface.fc
        cls = ppkt.tlp.flow_class
        if fc.rx_held[cls] >= fc.rx_capacity[cls]:
            self._violate(
                "link.fc_rx_overflow", iface.full_name,
                f"accepted a {_FLOW_NAMES[cls]} TLP with all "
                f"{fc.rx_capacity[cls]} {_FLOW_NAMES[cls]} receive-buffer "
                f"slots already occupied",
            )

    def link_dllp_received(self, iface, ppkt) -> None:
        """A DLLP arrived: an ACK/NAK may not acknowledge an unsent TLP,
        an UpdateFC may not regress the cumulative credit limit."""
        from repro.pcie.pkt import FLOW_CLASS_FOR_DLLP

        cls = FLOW_CLASS_FOR_DLLP.get(ppkt.dllp_type)
        if cls is not None:
            # Limits we emitted are monotone (coalescing keeps the max)
            # and the wire is in-order, so a regression means the peer's
            # ledger or the coalescing logic broke.  Equality is legal:
            # the FC watchdog re-requests the current limit.
            if ppkt.seq < iface.fc.tx_limit[cls]:
                self._violate(
                    "link.fc_limit_regressed", iface.full_name,
                    f"UpdateFC lowers the {_FLOW_NAMES[cls]} credit limit "
                    f"to {ppkt.seq} from {iface.fc.tx_limit[cls]}",
                )
            return
        if ppkt.seq >= iface.send_seq:
            self._violate(
                "link.ack_unsent_seq", iface.full_name,
                f"{ppkt.dllp_type.value.upper()} acknowledges seq "
                f"{ppkt.seq} but only {iface.send_seq} TLPs were ever "
                f"sent (highest seq {iface.send_seq - 1})",
            )

    def link_timeout(self, iface) -> None:
        """After a replay timeout: the timer must stay armed while TLPs
        remain unacknowledged, or the replay machinery can wedge."""
        if iface.replay_buffer and not iface._replay_event.scheduled:
            self._violate(
                "link.timeout_unarmed", iface.full_name,
                f"replay timeout left {len(iface.replay_buffer)} TLPs "
                f"unacknowledged with no replay timer scheduled",
            )

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpoint the ledgers, keyed by component path.

        Pair ledgers key on master-port objects and link ledgers on
        interface objects; both serialise by ``full_name`` so a rebuilt
        twin simulator can re-attach them.  Refused-packet records
        (``_pending_req``/``_pending_resp``) hold live packets and must
        be empty — a checkpoint is only taken at a describable boundary,
        where no retry is owed.
        """
        if self._pending_req or self._pending_resp:
            from repro.sim.checkpoint import CheckpointError

            stuck = [port.full_name for port in self._pending_req] + \
                    [port.full_name for port in self._pending_resp]
            raise CheckpointError(
                f"cannot checkpoint mid-retry: ports still owe retries "
                f"for refused packets: {stuck}")
        return {
            "last_dispatch_tick": self._last_dispatch_tick,
            "pairs": {
                port.full_name: [ledger.reqs, ledger.need_resp, ledger.resps]
                for port, ledger in self._pairs.items()
            },
            "links": {
                iface.full_name: [ledger.last_sent_seq,
                                  ledger.last_delivered_seq]
                for iface, ledger in self._links.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Re-key and install captured ledgers onto this simulator.

        Component paths resolve through the simulator's object registry;
        master ports resolve by scanning the owning object's attributes
        for the port of the recorded leaf name.
        """
        from repro.sim.checkpoint import CheckpointError

        self._last_dispatch_tick = state["last_dispatch_tick"]
        self._pairs = {}
        for full_name, (reqs, need_resp, resps) in state["pairs"].items():
            port = _resolve_port(self.sim, full_name)
            if port is None:
                raise CheckpointError(
                    f"checkpoint names port {full_name!r} but the rebuilt "
                    f"system has no such port")
            ledger = _PairLedger()
            ledger.reqs, ledger.need_resp, ledger.resps = \
                reqs, need_resp, resps
            self._pairs[port] = ledger
        self._links = {}
        for full_name, (sent, delivered) in state["links"].items():
            iface = self.sim.find(full_name)
            if iface is None:
                raise CheckpointError(
                    f"checkpoint names link interface {full_name!r} but "
                    f"the rebuilt system has no such object")
            ledger = _LinkLedger()
            ledger.last_sent_seq = sent
            ledger.last_delivered_seq = delivered
            self._links[iface] = ledger

    # -- quiescence watchdog ----------------------------------------------
    def check_quiescence(self) -> None:
        """The event queue drained: every link interface must be idle.

        Called by :meth:`Simulator.run` when a run ends with an empty
        queue.  A non-empty replay buffer at quiescence means no event
        can ever drain it — the deadlock the watchdog exists to catch.
        """
        for iface in self._link_ifaces:
            if iface.replay_buffer:
                armed = iface._replay_event.scheduled
                self._violate(
                    "link.replay_deadlock", iface.full_name,
                    f"event queue is empty but the replay buffer still "
                    f"holds {len(iface.replay_buffer)} unacknowledged "
                    f"TLP(s) (seqs "
                    f"{[p.seq for p in iface.replay_buffer]}) and the "
                    f"replay timer is {'armed' if armed else 'not armed'}",
                )
            if iface._in_req or iface._in_cpl:
                self._violate(
                    "link.stuck_input_queue", iface.full_name,
                    f"event queue is empty but "
                    f"{len(iface._in_req) + len(iface._in_cpl)} "
                    f"TLP(s) from the component were never transmitted",
                )
            if iface._rx_req or iface._rx_cpl:
                self._violate(
                    "link.stuck_rx_buffer", iface.full_name,
                    f"event queue is empty but "
                    f"{len(iface._rx_req) + len(iface._rx_cpl)} received "
                    f"TLP(s) were never drained into the component",
                )
            if iface.dllp_queue:
                self._violate(
                    "link.stuck_dllp_queue", iface.full_name,
                    f"event queue is empty but {len(iface.dllp_queue)} "
                    f"DLLP(s) were never transmitted",
                )
            fc, peer_fc = iface.fc, iface.peer.fc
            for cls in (0, 1, 2):
                outstanding = (peer_fc.rx_drained[cls]
                               + peer_fc.rx_held[cls])
                if fc.tx_consumed[cls] != outstanding:
                    self._violate(
                        "link.fc_credit_leak", iface.full_name,
                        f"at quiescence {fc.tx_consumed[cls]} "
                        f"{_FLOW_NAMES[cls]} credits were consumed but the "
                        f"peer accounts for {outstanding} "
                        f"(drained {peer_fc.rx_drained[cls]}, still held "
                        f"{peer_fc.rx_held[cls]})",
                    )

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"<InvariantChecker {state} "
                f"violations={len(self.violations)}>")
