"""TLP-lifecycle tracing.

The simulator's end-of-run statistics say *how much* replaying,
refusing and buffering happened; a trace says *when and to whom*.  A
:class:`Tracer` hangs off every :class:`~repro.sim.simobject.Simulator`
and is disabled until a :class:`TraceSink` is attached, so the hot
paths pay only a single attribute load and branch
(``if trc.enabled:``) when tracing is off.

Trace events are flat dicts with a handful of reserved keys:

* ``t`` — the tick the event was observed at;
* ``cat`` — a coarse category (``link``, ``engine``, ``xbar``,
  ``cache``, ``mem``, ``eventq``) used for filtering;
* ``comp`` — the full dotted name of the emitting component;
* ``ev`` — the event kind (``tlp_tx``, ``dllp_rx``, ``ingress``, …);

plus free-form event fields (``tlp``, ``seq``, ``replay``, ``pool``…).
TLP identity in a trace is a *tracer-local* dense id, allocated the
first time a packet's ``req_id`` is seen: packet ids come from a
process-global counter, so remapping them is what makes traces from two
fresh :class:`Simulator` instances byte-identical (the golden-trace
regression suite depends on this).

Serialization is canonical — sorted keys, no whitespace — so that two
runs producing the same events produce the same *bytes*.
"""

import json
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Union

#: Bumped whenever the event vocabulary or the reserved keys change in a
#: way consumers could notice.  Policy: additive fields do not bump the
#: version; renames, removals and semantic changes do.
TRACE_SCHEMA = "repro-trace/1"


def encode_event(event: dict) -> str:
    """Canonical single-line JSON encoding of one trace event."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def encode_header(meta: Optional[dict] = None) -> str:
    """The first line of every serialized trace."""
    header = {"schema": TRACE_SCHEMA}
    if meta:
        header["meta"] = meta
    return encode_event(header)


class TraceSink:
    """Where trace events go.  Subclasses override :meth:`record`."""

    def record(self, event: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources.  Idempotent."""


class MemorySink(TraceSink):
    """Keeps events as dicts in memory — the test-suite workhorse."""

    def __init__(self):
        self.events: List[dict] = []

    def record(self, event: dict) -> None:
        self.events.append(event)

    def to_jsonl(self, meta: Optional[dict] = None) -> str:
        """The exact text a :class:`JsonlSink` would have produced."""
        lines = [encode_header(meta)]
        lines.extend(encode_event(ev) for ev in self.events)
        return "\n".join(lines) + "\n"


class JsonlSink(TraceSink):
    """Streams one canonical JSON object per line to a file.

    Accepts either a path (opened and owned by the sink) or an open
    text-mode file object (flushed but not closed by :meth:`close`).
    """

    def __init__(self, target: Union[str, TextIO],
                 meta: Optional[dict] = None):
        if isinstance(target, str):
            self._fh: TextIO = open(target, "w")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self._fh.write(encode_header(meta) + "\n")

    def record(self, event: dict) -> None:
        self._fh.write(encode_event(event) + "\n")

    def close(self) -> None:
        if self._fh is None:
            return
        self._fh.flush()
        if self._owns:
            self._fh.close()
        self._fh = None


class ChromeTraceSink(TraceSink):
    """Collects events in the Chrome ``trace_event`` format.

    :meth:`write` produces a JSON document loadable by
    ``chrome://tracing`` and Perfetto.  Every trace event becomes a
    thread-scoped instant event on a per-component "thread"; numeric
    occupancy fields (``pool``, ``inflight``, ``qlen``) additionally
    become counter tracks so queue depths render as area charts.
    """

    #: Event fields rendered as counter tracks.
    COUNTER_FIELDS = ("pool", "inflight", "qlen")

    def __init__(self):
        self._events: List[dict] = []
        self._tids: Dict[str, int] = {}

    def _tid(self, comp: str) -> int:
        tid = self._tids.get(comp)
        if tid is None:
            tid = self._tids[comp] = len(self._tids)
        return tid

    def record(self, event: dict) -> None:
        comp = event["comp"]
        ts = event["t"] / 1e6  # ticks are picoseconds; ts is microseconds
        args = {k: v for k, v in event.items()
                if k not in ("t", "cat", "comp", "ev")}
        self._events.append({
            "name": event["ev"], "cat": event["cat"], "ph": "i", "s": "t",
            "ts": ts, "pid": 0, "tid": self._tid(comp), "args": args,
        })
        for field in self.COUNTER_FIELDS:
            if field in event:
                self._events.append({
                    "name": f"{comp}.{field}", "cat": event["cat"],
                    "ph": "C", "ts": ts, "pid": 0,
                    "args": {field: event[field]},
                })

    def document(self) -> dict:
        metadata = [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
             "args": {"name": comp}}
            for comp, tid in self._tids.items()
        ]
        return {
            "traceEvents": metadata + self._events,
            "displayTimeUnit": "ns",
            "otherData": {"schema": TRACE_SCHEMA},
        }

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.document(), fh, sort_keys=True)


class Tracer:
    """The per-:class:`Simulator` trace-point multiplexer.

    Disabled (``enabled`` False) until a sink is attached; every
    instrumented hot path guards its :meth:`emit` call on ``enabled``,
    which is the whole zero-overhead-when-disabled story.  Components
    cache their simulator's tracer at construction, so a Simulator's
    tracer instance is never replaced — only attached to or detached
    from.

    Args:
        categories: when not None, only events whose ``cat`` is in this
            collection are recorded (``eventq`` dispatch tracing is loud;
            most consumers want only ``link``/``engine``).
    """

    def __init__(self, categories: Optional[Iterable[str]] = None):
        self.sinks: List[TraceSink] = []
        self.enabled = False
        self.categories = frozenset(categories) if categories is not None else None
        self._tlp_ids: Dict[int, int] = {}
        self._next_tlp_id = 0

    # -- sink management ---------------------------------------------------
    def attach(self, sink: TraceSink) -> TraceSink:
        self.sinks.append(sink)
        self.enabled = True
        return sink

    def detach(self, sink: TraceSink) -> None:
        self.sinks.remove(sink)
        self.enabled = bool(self.sinks)

    def close(self) -> None:
        """Close every sink and disable tracing."""
        for sink in self.sinks:
            sink.close()
        self.sinks.clear()
        self.enabled = False

    # -- identity ----------------------------------------------------------
    def tlp_id(self, req_id: int) -> int:
        """Dense, run-local id for a packet (see module docstring).

        Allocation uses an explicit counter rather than ``len(dict)``
        so a checkpoint can carry the counter forward without carrying
        the ``req_id`` mapping: a restored process's packets get fresh
        process-global ``req_id`` values, so stale mapping keys could
        otherwise collide with them and hand out old ids.
        """
        tid = self._tlp_ids.get(req_id)
        if tid is None:
            tid = self._tlp_ids[req_id] = self._next_tlp_id
            self._next_tlp_id += 1
        return tid

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> dict:
        """The sequence counter a restored run must continue from."""
        return {"next_tlp_id": self._next_tlp_id}

    def load_state_dict(self, state: dict) -> None:
        """Continue dense-id allocation where the captured run stopped.

        The ``req_id -> tlp_id`` mapping itself is deliberately dropped:
        it keys on process-global packet ids that a restored process
        re-allocates from scratch (see :meth:`tlp_id`)."""
        self._tlp_ids = {}
        self._next_tlp_id = state["next_tlp_id"]

    # -- emission ----------------------------------------------------------
    def emit(self, t: int, cat: str, comp: str, ev: str, **fields) -> None:
        if self.categories is not None and cat not in self.categories:
            return
        event = {"t": t, "cat": cat, "comp": comp, "ev": ev}
        event.update(fields)
        for sink in self.sinks:
            sink.record(event)


def load_trace(source: Union[str, Iterable[str]]):
    """Parse a JSONL trace into ``(header, events)``.

    ``source`` is a path or an iterable of lines (e.g. an open file or
    ``MemorySink.to_jsonl().splitlines()``).
    """
    if isinstance(source, str):
        with open(source) as fh:
            lines = fh.read().splitlines()
    else:
        lines = [line for line in source]
    lines = [line for line in lines if line.strip()]
    if not lines:
        raise ValueError("empty trace")
    header = json.loads(lines[0])
    if "schema" not in header:
        raise ValueError("trace has no schema header line")
    if header["schema"] != TRACE_SCHEMA:
        raise ValueError(
            f"unsupported trace schema {header['schema']!r} "
            f"(this reader understands {TRACE_SCHEMA!r})"
        )
    events = [json.loads(line) for line in lines[1:]]
    return header, events
