"""Observability: TLP-lifecycle tracing and structured stats export.

See :mod:`repro.obs.trace` for the tracer/sink machinery and
:mod:`repro.obs.stats_export` for the typed statistics document.
"""

from repro.obs.stats_export import STATS_SCHEMA, export_stats, write_stats_json
from repro.obs.trace import (
    TRACE_SCHEMA,
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    Tracer,
    TraceSink,
    encode_event,
    encode_header,
    load_trace,
)

__all__ = [
    "STATS_SCHEMA",
    "TRACE_SCHEMA",
    "ChromeTraceSink",
    "JsonlSink",
    "MemorySink",
    "Tracer",
    "TraceSink",
    "encode_event",
    "encode_header",
    "export_stats",
    "load_trace",
    "write_stats_json",
]
