"""Structured statistics export.

:func:`StatGroup.dump` flattens the stats tree into ``{name: value}``,
which is fine for eyeballing but loses types, descriptions and the
distribution moments.  :func:`export_stats` instead walks the registry
and emits every :class:`Scalar` / :class:`Average` /
:class:`Distribution` / :class:`Formula` as a typed record in a
schema-versioned JSON document, alongside the configuration knobs of
every component that publishes them (links, routing engines) — enough
to interpret a stats file without the run that produced it.
"""

import json
from typing import Dict, Optional

from repro.sim.stats import (Average, Distribution, Formula, Quantiles,
                             Scalar, Stat)

#: Versioning policy mirrors the trace schema: additive keys keep the
#: version; renames, removals and semantic changes bump it.
STATS_SCHEMA = "repro-stats/1"


def _stat_record(stat: Stat) -> dict:
    record: dict = {"desc": stat.desc}
    if isinstance(stat, Scalar):
        record["type"] = "scalar"
        record["value"] = stat.value()
    elif isinstance(stat, Distribution):
        record["type"] = "distribution"
        record.update(
            count=stat.count,
            mean=stat.mean,
            stddev=stat.stddev,
            min=stat.minimum if stat.minimum is not None else 0,
            max=stat.maximum if stat.maximum is not None else 0,
        )
    elif isinstance(stat, Quantiles):
        record["type"] = "quantiles"
        record.update(
            count=stat.count,
            mean=stat.mean,
            min=stat.minimum if stat.minimum is not None else 0,
            max=stat.maximum if stat.maximum is not None else 0,
            percentiles={label: stat.percentile(fraction)
                         for label, fraction in stat.points},
        )
    elif isinstance(stat, Average):
        record["type"] = "average"
        record["value"] = stat.value()
        record["count"] = stat.count
    elif isinstance(stat, Formula):
        record["type"] = "formula"
        record["value"] = stat.value()
    else:  # future stat kinds degrade to their scalar view
        record["type"] = type(stat).__name__.lower()
        record["value"] = stat.value()
    return record


def export_stats(sim, meta: Optional[dict] = None) -> dict:
    """Export a simulator's whole stats registry as a typed document.

    Args:
        sim: the :class:`~repro.sim.simobject.Simulator` to export.
        meta: free-form run metadata recorded verbatim (workload name,
            knob settings, …).  Keep it JSON-serializable.
    """
    stats: Dict[str, dict] = {}
    for full_name, stat in sim.stats.walk():
        stats[full_name] = _stat_record(stat)
    components: Dict[str, dict] = {}
    for obj in sim.objects:
        config = getattr(obj, "config_dict", None)
        if config is not None:
            components[obj.full_name] = config()
    doc = {
        "schema": STATS_SCHEMA,
        "curtick": sim.curtick,
        "events_processed": sim.eventq.events_processed,
        "stats": stats,
        "components": components,
    }
    if meta:
        doc["meta"] = meta
    return doc


def write_stats_json(sim, path: str, meta: Optional[dict] = None) -> str:
    """Serialize :func:`export_stats` to ``path`` (canonical form:
    sorted keys, stable float repr)."""
    with open(path, "w") as fh:
        json.dump(export_stats(sim, meta), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
