"""Experiment orchestration: sweeps, caching, and parallel fan-out.

The paper's payoff is design-space exploration — sweeping link width,
replay-buffer depth, port buffering, and root-complex latency over the
same deterministic model.  This package makes that exploration a
first-class interface:

* :mod:`repro.exp.spec` — declare a :class:`Sweep` of independent,
  JSON-parameterised :class:`SweepPoint` simulations;
* :mod:`repro.exp.cache` — memoise point results on disk, keyed by a
  canonical hash of (runner, params, schema version);
* :mod:`repro.exp.engine` — run a sweep through the cache and a
  ``multiprocessing`` pool, merging results in declaration order so
  parallel output is byte-identical to serial;
* :mod:`repro.exp.points` — the library's standard point runners
  (``dd`` on the validation fabric, MMIO on the NIC topology, the
  classic-PCI baseline);
* :mod:`repro.exp.bench` — per-run wall-clock records
  (``BENCH_sweeps.json``).

Quick taste::

    from repro.exp import Sweep, SweepEngine

    sweep = Sweep("widths")
    for width in (1, 2, 4, 8):
        sweep.add(f"x{width}", "repro.exp.points:dd_point",
                  block_bytes=1 << 20,
                  root_link_width=width, device_link_width=width)
    result = SweepEngine(cache_dir=".sweep-cache").run(sweep, workers=4)
    print(result.summary())
    print(result.results["x8"]["throughput_gbps"])
"""

from repro.exp.bench import append_record, load_records
from repro.exp.cache import (
    RESULT_SCHEMA_VERSION,
    ResultCache,
    cache_key,
    canonical_json,
)
from repro.exp.engine import SweepEngine, SweepResult, default_workers
from repro.exp.spec import Sweep, SweepPoint, resolve_runner, runner_path

__all__ = [
    "Sweep",
    "SweepPoint",
    "SweepEngine",
    "SweepResult",
    "ResultCache",
    "RESULT_SCHEMA_VERSION",
    "cache_key",
    "canonical_json",
    "append_record",
    "load_records",
    "default_workers",
    "resolve_runner",
    "runner_path",
]
