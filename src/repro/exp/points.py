"""Library-level sweep-point runners.

These are the functions sweep points reference by dotted path
(``"repro.exp.points:dd_point"``).  Each builds a fresh system, runs
one workload to completion, and returns a flat, canonical-JSON-safe
metrics dict — no tracing, no file output, no shared state — so a
point is exactly as reproducible from its parameters as the cache
assumes.

Parameters are deliberately restricted to JSON-safe scalars: PCIe
generations travel as their enum *name* (``"GEN3"``), latencies as
nanosecond integers with a ``_ns`` suffix, and tick quantities (such
as ``service_interval`` or ``startup_overhead``) as plain tick ints.
"""

from typing import Any, Dict, Optional

from repro.analysis.report import link_replay_stats
from repro.pcie.timing import PcieGen
from repro.sim import ticks
from repro.system.topology import (
    build_classic_pci_system,
    build_nic_system,
    build_system,
    build_validation_system,
)
from repro.workloads.dd import DdWorkload
from repro.workloads.mmio import MmioReadBench
from repro.workloads.scenarios import Scenario, run_scenario

__all__ = ["dd_point", "dd_prefix", "mmio_point", "classic_pci_point",
           "stress_point", "scenario_point"]

#: Guard against wedged simulations when a point runs unattended in a
#: worker process; matches the benchmark harness's historical bound.
_MAX_EVENTS = 500_000_000


def _system_kwargs(gen: Optional[str], switch_latency_ns: Optional[int],
                   rc_latency_ns: Optional[int],
                   extra: Dict[str, Any]) -> Dict[str, Any]:
    """Translate JSON-safe sweep params into topology-builder kwargs."""
    kwargs = dict(extra)
    if gen is not None:
        kwargs["gen"] = PcieGen[gen]
    if switch_latency_ns is not None:
        kwargs["switch_latency"] = ticks.from_ns(switch_latency_ns)
    if rc_latency_ns is not None:
        kwargs["rc_latency"] = ticks.from_ns(rc_latency_ns)
    return kwargs


def _build_dd_system(gen: Optional[str], switch_latency_ns: Optional[int],
                     rc_latency_ns: Optional[int],
                     topology: Optional[Dict[str, Any]],
                     device: Optional[str], system_kwargs: Dict[str, Any]):
    """Build the machine a dd point (or prefix) runs on.

    Shared by :func:`dd_point` and :func:`dd_prefix` so a forked point
    rebuilds *exactly* the system its checkpoint was captured on.
    Returns ``(system, driver, disk, link)``.
    """
    if topology is not None:
        if gen is not None or switch_latency_ns is not None \
                or rc_latency_ns is not None:
            raise ValueError(
                "topology= is a complete machine description; it cannot be "
                "combined with the validation-builder knobs "
                "gen/switch_latency_ns/rc_latency_ns")
        check = system_kwargs.pop("check", None)
        if system_kwargs:
            raise ValueError(
                f"topology= cannot be combined with builder kwargs "
                f"{sorted(system_kwargs)}; set them inside the spec")
        system = build_system(topology, check=check)
    else:
        kwargs = _system_kwargs(gen, switch_latency_ns, rc_latency_ns,
                                system_kwargs)
        system = build_validation_system(**kwargs)
    if device is not None:
        driver = system.drivers[device]
        disk, link = driver.device, system.links[device]
    else:
        driver, disk, link = system.disk_driver, system.disk, system.disk_link
        if driver is None:
            raise ValueError("topology has no unambiguous disk; "
                             "name the target with device=")
    return system, driver, disk, link


def dd_point(block_bytes: int, startup_overhead: int = 0,
             gen: Optional[str] = None,
             switch_latency_ns: Optional[int] = None,
             rc_latency_ns: Optional[int] = None,
             topology: Optional[Dict[str, Any]] = None,
             device: Optional[str] = None,
             warm_blocks: int = 0,
             warm_block_bytes: int = 0,
             resume_from: Optional[Dict[str, Any]] = None,
             **system_kwargs: Any) -> Dict[str, float]:
    """Run one ``dd`` transfer — on the paper's validation topology by
    default, or on any machine a serialised topology spec describes.

    Args:
        block_bytes: bytes transferred by the single ``dd`` block.
        startup_overhead: dd's fixed software startup cost, in ticks.
        gen: PCIe generation name (``"GEN1"``/``"GEN2"``/``"GEN3"``), or
            None for the topology default.
        switch_latency_ns: switch store-and-forward latency in ns, or
            None for the default.
        rc_latency_ns: root-complex latency in ns, or None for the
            default.
        topology: a :meth:`repro.system.spec.TopologySpec.to_dict`
            document to build instead of the validation topology.  The
            whole document lands in the point's parameters, so the
            result cache keys on the canonical serialisation of the
            exact machine.  Mutually exclusive with the
            validation-builder knobs (``gen``, ``switch_latency_ns``,
            ``rc_latency_ns``, ``**system_kwargs``).
        device: instance name of the disk ``dd`` targets (its link
            shares the name); None uses the topology's sole disk.
        warm_blocks / warm_block_bytes: when ``warm_blocks > 0`` and
            ``resume_from`` is None, run a warm-up ``dd`` of
            ``warm_blocks`` blocks of ``warm_block_bytes`` bytes to
            completion before the measured block — the cold (tick-0)
            equivalent of resuming from a :func:`dd_prefix` checkpoint
            with the same warm parameters.
        resume_from: a checkpoint document captured by
            :func:`dd_prefix` on the *same* system parameters; the
            point rebuilds the machine, restores the snapshot and runs
            only the measured block.  Injected by the sweep engine for
            points declaring a prefix — never place it in sweep params
            yourself (the cache must key on ``resume_digest`` instead).
        **system_kwargs: further JSON-safe keyword arguments passed to
            :func:`repro.system.topology.build_validation_system`
            (``root_link_width``, ``replay_buffer_size``, ``check``,
            ...); with ``topology=`` only ``check`` is accepted.

    Returns:
        Flat metrics dict: dd-level and transfer-level throughput,
        replay fraction, credit-stall ticks, timeout and TLP counts,
        and device-level per-sector throughput — everything Figures
        9(a–d) and the device-level check consume.
    """
    system, driver, disk, link = _build_dd_system(
        gen, switch_latency_ns, rc_latency_ns, topology, device,
        system_kwargs)
    if resume_from is not None:
        system.sim.restore(resume_from)
    elif warm_blocks > 0:
        warm = DdWorkload(system.kernel, driver, warm_block_bytes,
                          count=warm_blocks)
        warm_process = system.kernel.spawn("dd", warm.run())
        system.run(max_events=_MAX_EVENTS)
        if not warm_process.done:
            raise RuntimeError("warm-up dd did not finish — "
                               "simulation wedged?")
    dd = DdWorkload(system.kernel, driver, block_bytes,
                    startup_overhead=startup_overhead)
    process = system.kernel.spawn("dd", dd.run())
    system.run(max_events=_MAX_EVENTS)
    if not process.done:
        raise RuntimeError("dd did not finish — simulation wedged?")
    stats = link_replay_stats(link)
    sector_mean = disk.sector_transfer_ticks.mean
    return {
        "throughput_gbps": dd.result.throughput_gbps,
        "transfer_gbps": dd.result.transfer_gbps,
        "replay_fraction": stats["replay_fraction"],
        "fc_stall_ticks": stats["fc_stall_ticks"],
        "timeouts": stats["timeouts"],
        "tlps_sent": stats["tlps_sent"],
        "device_level_gbps": (
            disk.sector_size * 8 / ticks.to_ns(sector_mean)
            if sector_mean
            else 0.0
        ),
    }


def dd_prefix(warm_blocks: int, warm_block_bytes: int,
              gen: Optional[str] = None,
              switch_latency_ns: Optional[int] = None,
              rc_latency_ns: Optional[int] = None,
              topology: Optional[Dict[str, Any]] = None,
              device: Optional[str] = None,
              **system_kwargs: Any) -> Dict[str, Any]:
    """Simulate a dd warm-up phase and return its checkpoint document.

    This is the *prefix runner* paired with :func:`dd_point`: a sweep
    point declares ``prefix={"runner": "repro.exp.points:dd_prefix",
    "params": {...}}`` with the same system parameters as the point,
    and the engine runs this once per distinct parameter set, feeding
    the snapshot to every declaring point as ``resume_from``.

    Args:
        warm_blocks: number of warm-up dd blocks to run to completion.
        warm_block_bytes: bytes per warm-up block.
        gen / switch_latency_ns / rc_latency_ns / topology / device /
            **system_kwargs: identical meaning to :func:`dd_point` —
            the forked point must rebuild exactly this machine.

    Returns:
        The checkpoint document from :func:`repro.sim.checkpoint.capture`
        at software quiescence (the event queue is empty, so every
        pending-event describability rule is trivially satisfied).
    """
    if warm_blocks < 1:
        raise ValueError("dd_prefix needs warm_blocks >= 1; a zero-length "
                         "prefix has nothing to checkpoint")
    system, driver, _disk, _link = _build_dd_system(
        gen, switch_latency_ns, rc_latency_ns, topology, device,
        system_kwargs)
    warm = DdWorkload(system.kernel, driver, warm_block_bytes,
                      count=warm_blocks)
    warm_process = system.kernel.spawn("dd", warm.run())
    system.run(max_events=_MAX_EVENTS)
    if not warm_process.done:
        raise RuntimeError("warm-up dd did not finish — simulation wedged?")
    return system.sim.checkpoint()


def mmio_point(rc_latency_ns: int, iterations: int = 50,
               **system_kwargs: Any) -> Dict[str, float]:
    """Measure mean 4-byte MMIO read latency on the Table II topology.

    Args:
        rc_latency_ns: root-complex latency in nanoseconds (the swept
            knob of Table II).
        iterations: timed MMIO reads to average over.
        **system_kwargs: further JSON-safe keyword arguments for
            :func:`repro.system.topology.build_nic_system`.

    Returns:
        ``{"mmio_read_ns": <mean latency in ns>}``.
    """
    system = build_nic_system(rc_latency=ticks.from_ns(rc_latency_ns),
                              **system_kwargs)
    bench = MmioReadBench(system.kernel, system.nic_driver.bar0 + 0x8,
                          iterations=iterations)
    process = system.kernel.spawn("mmio", bench.run())
    system.run()
    if not process.done:
        raise RuntimeError("MMIO bench did not finish")
    return {"mmio_read_ns": bench.mean_latency_ns}


def classic_pci_point(block_bytes: int, startup_overhead: int = 0,
                      check: bool = False) -> Dict[str, float]:
    """Run one ``dd`` transfer on the classic shared-PCI-bus baseline.

    Used by the PCI-vs-PCIe ablation; returns only dd-level throughput
    because the classic bus has no link layer to report on.  ``check``
    arms the runtime invariant checker (``--check`` in the harness).
    """
    system = build_classic_pci_system(check=check)
    dd = DdWorkload(system.kernel, system.disk_driver, block_bytes,
                    startup_overhead=startup_overhead)
    process = system.kernel.spawn("dd", dd.run())
    system.run(max_events=_MAX_EVENTS)
    if not process.done:
        raise RuntimeError("dd did not finish — simulation wedged?")
    return {"throughput_gbps": dd.result.throughput_gbps}


def stress_point(block_bytes: int, error_rate: float,
                 dllp_error_rate: float, replay_buffer_size: int,
                 input_queue_size: int, error_seed: int = 0x5EED,
                 check: bool = True,
                 **system_kwargs: Any) -> Dict[str, float]:
    """One point of the fault-injection stress campaign.

    Builds the validation topology with deterministic error injection
    on both links, arms the invariant checker in *record* mode, runs a
    single ``dd`` transfer, and reports whether the transfer completed
    and how many protocol invariants were violated along the way.  A
    healthy link layer completes every configuration in the campaign
    grid with ``violations == 0`` — that pair of assertions is the
    campaign's entire point.

    Args:
        block_bytes: bytes moved by the single ``dd`` block (the
            campaign uses a small block so the whole grid stays cheap).
        error_rate: fraction of received TLPs corrupted (NAK path).
        dllp_error_rate: fraction of received ACK/NAK DLLPs corrupted
            (silently discarded; recovery via replay timeout).
        replay_buffer_size: unacknowledged-TLP bound per interface.
        input_queue_size: component-facing input buffer per interface.
        error_seed: base seed of the per-interface corruption RNGs.
        check: arm the checker (kept as a knob so ``--check`` composes).
        **system_kwargs: further JSON-safe topology kwargs.

    Returns:
        ``completed``/``violations`` plus link-recovery metrics
        (replay fraction, timeouts, corruption counts).
    """
    system = build_validation_system(
        error_rate=error_rate, dllp_error_rate=dllp_error_rate,
        replay_buffer_size=replay_buffer_size,
        input_queue_size=input_queue_size, error_seed=error_seed,
        check=check, **system_kwargs,
    )
    # Record-only: a campaign point reports every violation it saw
    # rather than dying on the first, so one sweep run characterises
    # the whole grid.
    system.sim.checker.record_only = True
    dd = DdWorkload(system.kernel, system.disk_driver, block_bytes)
    process = system.kernel.spawn("dd", dd.run())
    system.run(max_events=_MAX_EVENTS)
    stats = link_replay_stats(system.disk_link)
    ifaces = [system.disk_link.upstream_if, system.disk_link.downstream_if]
    return {
        "completed": 1.0 if process.done else 0.0,
        "violations": float(len(system.sim.checker.violations)),
        "violated_rules": sorted({v.rule for v in system.sim.checker.violations}),
        "throughput_gbps": dd.result.throughput_gbps if process.done else 0.0,
        "replay_fraction": stats["replay_fraction"],
        "timeouts": stats["timeouts"],
        "tlps_corrupted": sum(i.corrupted.value() for i in ifaces),
        "dllps_corrupted": sum(i.dllp_corrupted.value() for i in ifaces),
    }


def scenario_point(scenario: Dict[str, Any],
                   check: Optional[bool] = None) -> Dict[str, Any]:
    """Run one multi-flow traffic scenario as a sweep point.

    Args:
        scenario: a :meth:`repro.workloads.scenarios.Scenario.to_dict`
            document (topology + flows).  The whole document lands in
            the point's parameters, so the result cache keys on the
            canonical serialisation of the exact experiment.
        check: arm the invariant checker in record mode (None defers to
            ``REPRO_CHECK``; the harness's ``--check`` sets True).

    Returns:
        ``completed``/``violations`` (the stress-gate pair), the
        Jain's-fairness-index and total throughput, plus per-flow
        ``<flow>_gbps``/``<flow>_share``/``<flow>_p99_ns``/
        ``<flow>_bytes`` flattened for table rendering.
    """
    system, engine = run_scenario(Scenario.from_dict(scenario), check=check,
                                  max_events=_MAX_EVENTS)
    results = engine.results()
    out: Dict[str, Any] = {
        "completed": 1.0 if results["completed"] else 0.0,
        "violations": float(len(system.sim.checker.violations)),
        "violated_rules": sorted(
            {v.rule for v in system.sim.checker.violations}),
        "fairness_index": results["fairness_index"],
        "total_gbps": results["total_gbps"],
    }
    for name, record in results["flows"].items():
        out[f"{name}_gbps"] = record["throughput_gbps"]
        out[f"{name}_share"] = record["share"]
        out[f"{name}_p99_ns"] = record["p99_ns"]
        out[f"{name}_bytes"] = record["bytes"]
    return out
