"""Wall-clock records for sweep runs (``BENCH_sweeps.json``).

Simulation *results* are deterministic and cached; how long they took
to produce is not, and that trajectory is worth keeping — it is the
evidence that parallel fan-out and caching actually pay.  Each
:meth:`repro.exp.engine.SweepEngine.run` appends one record here with
per-point and total wall-clock times plus the cache hit/miss split.

The file is a JSON list of records, rewritten atomically on every
append so a killed run never leaves a truncated file.
"""

import json
import os
import tempfile
import time
from typing import Any, Dict, List

__all__ = ["append_record", "load_records"]


def load_records(path: str) -> List[Dict[str, Any]]:
    """Read the record list at ``path``; missing/corrupt files → []."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            records = json.load(fh)
    except (OSError, ValueError):
        return []
    return records if isinstance(records, list) else []


def append_record(path: str, record: Dict[str, Any]) -> Dict[str, Any]:
    """Append one run record to the list at ``path`` (atomically).

    A ``timestamp`` (Unix seconds) is stamped onto the record if the
    caller did not provide one.  Returns the stored record.
    """
    record = dict(record)
    record.setdefault("timestamp", round(time.time(), 3))
    records = load_records(path)
    records.append(record)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(records, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return record
