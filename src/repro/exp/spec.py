"""Sweep specifications.

A *sweep* is the unit of design-space exploration in this repository:
an ordered collection of named *points*, each of which is one fully
specified, independent simulation (one bar of a paper figure).  Points
are declared, not executed — :mod:`repro.exp.engine` decides whether a
point is served from the on-disk cache, run in-process, or fanned out
to a worker process.

Two representation rules keep sweeps cacheable and parallelisable:

* a point's *runner* is referenced by dotted path (``"pkg.mod:func"``),
  never by closure, so worker processes started with the ``spawn``
  method can import it and so the cache key names it stably;
* a point's *params* must be canonical-JSON-safe (dict/list/str/int/
  float/bool/None), so the cache key is a stable hash and results are
  reproducible from the spec alone.
"""

from typing import Any, Callable, Dict, Iterator, List, Optional, Union

__all__ = ["SweepPoint", "Sweep", "runner_path", "resolve_runner"]


def runner_path(func: Callable) -> str:
    """Return the importable ``"module:qualname"`` path of ``func``.

    Raises:
        ValueError: if ``func`` is a lambda, a local function, or
            otherwise not importable by dotted path (worker processes
            and the cache key both need a stable, importable name).
    """
    module = getattr(func, "__module__", None)
    qualname = getattr(func, "__qualname__", None)
    if not module or not qualname or "<" in qualname or "." in qualname:
        raise ValueError(
            f"sweep runners must be importable module-level functions, "
            f"got {func!r}"
        )
    return f"{module}:{qualname}"


def resolve_runner(path: str) -> Callable:
    """Import and return the runner named by a ``"module:func"`` path."""
    module_name, _, func_name = path.partition(":")
    if not module_name or not func_name:
        raise ValueError(f"malformed runner path {path!r}; want 'module:func'")
    import importlib

    module = importlib.import_module(module_name)
    try:
        return getattr(module, func_name)
    except AttributeError:
        raise ValueError(f"{module_name!r} has no runner {func_name!r}") from None


def _check_json_safe(value: Any, where: str) -> None:
    """Reject values that would not survive a canonical-JSON round trip."""
    if value is None or isinstance(value, (str, bool, int)):
        return
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"{where}: non-finite float {value!r} is not cacheable")
        return
    if isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _check_json_safe(item, f"{where}[{i}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise ValueError(f"{where}: dict keys must be str, got {key!r}")
            _check_json_safe(item, f"{where}[{key!r}]")
        return
    raise ValueError(
        f"{where}: {type(value).__name__} is not canonical-JSON-safe; "
        f"pass enums as their .name and tick quantities as ints"
    )


class SweepPoint:
    """One fully specified simulation inside a sweep.

    Attributes:
        key: the point's label inside the sweep (e.g. ``"x8/128MB"``);
            unique within its sweep and used as the merge key.
        runner: dotted ``"module:func"`` path of the function that runs
            the point.  The function is called as ``func(**params)`` and
            must return a canonical-JSON-safe value.
        params: keyword arguments for the runner; canonical-JSON-safe.
        prefix: optional shared-prefix declaration,
            ``{"runner": "module:func", "params": {...}}``.  The prefix
            runner simulates the common warm-up once and returns a
            checkpoint document; the engine forks every point declaring
            the same prefix from that snapshot (passed to the point
            runner as ``resume_from``) and folds the checkpoint digest
            into the point's cache key as ``resume_digest``.
    """

    __slots__ = ("key", "runner", "params", "prefix")

    def __init__(self, key: str, runner: Union[str, Callable],
                 params: Optional[Dict[str, Any]] = None,
                 prefix: Optional[Dict[str, Any]] = None):
        if not key:
            raise ValueError("sweep point key must be non-empty")
        self.key = key
        self.runner = runner if isinstance(runner, str) else runner_path(runner)
        self.params = dict(params or {})
        _check_json_safe(self.params, f"point {key!r} params")
        if prefix is not None:
            if not isinstance(prefix, dict) or "runner" not in prefix:
                raise ValueError(
                    f"point {key!r} prefix must be a dict with a 'runner' "
                    f"entry, got {prefix!r}")
            runner_ref = prefix["runner"]
            prefix = {
                "runner": (runner_ref if isinstance(runner_ref, str)
                           else runner_path(runner_ref)),
                "params": dict(prefix.get("params") or {}),
            }
            _check_json_safe(prefix["params"], f"point {key!r} prefix params")
        self.prefix = prefix

    def __repr__(self) -> str:
        return f"<SweepPoint {self.key!r} runner={self.runner}>"


class Sweep:
    """An ordered, named collection of :class:`SweepPoint` objects.

    The declaration order of points is the canonical merge order: the
    engine returns results keyed and ordered exactly as points were
    added, regardless of how many workers ran them, which is what makes
    parallel output byte-identical to serial output.
    """

    def __init__(self, name: str):
        if not name:
            raise ValueError("sweep name must be non-empty")
        self.name = name
        self._points: List[SweepPoint] = []
        self._keys = set()

    def add(self, key: str, runner: Union[str, Callable],
            prefix: Optional[Dict[str, Any]] = None,
            **params: Any) -> SweepPoint:
        """Append a point; ``key`` must be unique within the sweep.

        ``prefix`` declares a shared simulation prefix (see
        :class:`SweepPoint`); because it is a reserved keyword here,
        point runners cannot take a parameter of that name through
        :meth:`add`.
        """
        if key in self._keys:
            raise ValueError(f"duplicate sweep point key {key!r} in {self.name!r}")
        point = SweepPoint(key, runner, params, prefix=prefix)
        self._points.append(point)
        self._keys.add(key)
        return point

    @property
    def points(self) -> List[SweepPoint]:
        """The points in declaration (= merge) order."""
        return list(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self._points)

    def __repr__(self) -> str:
        return f"<Sweep {self.name!r} points={len(self._points)}>"
