"""Config-keyed, on-disk result cache for sweep points.

Every simulation in this repository is deterministic: the same
configuration always produces the same metrics.  That makes sweep
results safely memoisable — the only things a cache key must capture
are *what was run* (the runner path and its parameters) and *which
version of the model ran it* (the schema version, bumped whenever a
code change alters simulation results).

Entries are single JSON files named by the SHA-256 of the canonical
key document, stored flat under the cache root.  Each file embeds the
full key document alongside the result, so a hash collision or a
half-written file is detected on read and treated as a miss (the entry
is re-run and rewritten — a corrupted cache can cost time, never
correctness).  Writes are atomic (tmp file + ``os.replace``) so a
killed run cannot leave a truncated entry that parses.
"""

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

__all__ = ["RESULT_SCHEMA_VERSION", "cache_key", "canonical_json", "ResultCache"]

#: Version of the "result schema": the mapping from (runner, params) to
#: simulation output.  Bump this whenever a code change alters what any
#: sweep point returns (timing model fixes, new metrics, calibration
#: changes) so stale cache entries are invalidated everywhere at once.
RESULT_SCHEMA_VERSION = 1


def canonical_json(doc: Any) -> str:
    """Serialise ``doc`` to canonical JSON: sorted keys, no whitespace.

    Canonical form is what both the cache key hash and the byte-identity
    guarantee rest on — two structurally equal documents always produce
    the same bytes.
    """
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def cache_key(runner: str, params: Dict[str, Any],
              schema_version: int = RESULT_SCHEMA_VERSION) -> "tuple[str, dict]":
    """Build the cache key for one sweep point.

    Returns:
        ``(digest, key_doc)``: the SHA-256 hex digest naming the entry
        file, and the canonical key document embedded in the entry for
        verification on read.
    """
    key_doc = {
        "schema": schema_version,
        "runner": runner,
        "params": params,
    }
    digest = hashlib.sha256(canonical_json(key_doc).encode("utf-8")).hexdigest()
    return digest, key_doc


class ResultCache:
    """A directory of memoised sweep-point results.

    Args:
        root: directory holding the entry files; created on first write.

    Attributes:
        hits: number of :meth:`get` calls served from disk.
        misses: number of :meth:`get` calls that found nothing usable
            (absent, unreadable, corrupt, or key-mismatched entries all
            count as misses).
    """

    def __init__(self, root: str):
        self.root = root
        self.hits = 0
        self.misses = 0

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, f"{digest}.json")

    def get(self, digest: str, key_doc: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Look up an entry; return its envelope or None on any miss.

        The envelope is ``{"key": ..., "result": ..., "elapsed_s": ...}``.
        A file that is missing, fails to parse, or whose embedded key
        does not exactly match ``key_doc`` is a miss; corrupt files are
        deleted so the re-run's write starts clean.
        """
        path = self._path(digest)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            if os.path.exists(path):
                # Parsed-garbage case: drop the corrupt file.
                try:
                    os.unlink(path)
                except OSError:
                    pass
            self.misses += 1
            return None
        if not isinstance(entry, dict) or entry.get("key") != key_doc:
            try:
                os.unlink(path)
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, digest: str, key_doc: Dict[str, Any], result: Any,
            elapsed_s: float) -> str:
        """Atomically write one entry; returns the entry path."""
        os.makedirs(self.root, exist_ok=True)
        path = self._path(digest)
        entry = {"key": key_doc, "result": result, "elapsed_s": elapsed_s}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __repr__(self) -> str:
        return f"<ResultCache {self.root!r} hits={self.hits} misses={self.misses}>"
