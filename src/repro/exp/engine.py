"""The sweep engine: cache-aware, parallel, deterministically merged.

Every sweep point is an independent deterministic simulation, so a
sweep is embarrassingly parallel.  The engine exploits that in three
layers:

1. **Cache** — each point's result is looked up in a
   :class:`repro.exp.cache.ResultCache` keyed by the canonical hash of
   (runner, params, schema version); hits skip simulation entirely.
2. **Fan-out** — cache misses are executed across a
   ``multiprocessing`` pool (``spawn`` start method, so workers are
   clean interpreters with no inherited simulator state).  With
   ``workers <= 1`` misses run in-process, which is also the fallback
   when there is only one miss to run.
3. **Merge** — results are assembled strictly in the sweep's point
   declaration order and normalised through a canonical-JSON round
   trip, so the merged output is byte-identical no matter how many
   workers produced it and whether any point came from cache.

Points may additionally declare a **shared prefix** (see
:class:`repro.exp.spec.SweepPoint`): the engine simulates each distinct
prefix once, checkpoints it (:mod:`repro.sim.checkpoint`), and forks
every declaring point from the snapshot — the warm-up cost is paid once
per prefix instead of once per point.  The checkpoint digest is folded
into each forked point's cache key (``resume_digest``), so results
forked from different prefix states never collide in the cache, and the
checkpoint itself is cached like any other result keyed on the prefix's
(runner, params).

Wall-clock accounting (per point and total) is appended to a
``BENCH_sweeps.json`` record when the engine has a bench path.
"""

import json
import multiprocessing
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.exp import bench as bench_mod
from repro.exp.cache import (
    RESULT_SCHEMA_VERSION,
    ResultCache,
    cache_key,
    canonical_json,
)
from repro.exp.spec import Sweep, resolve_runner
from repro.sim.checkpoint import checkpoint_digest

__all__ = ["SweepEngine", "SweepResult", "default_workers"]

#: Environment variable consulted for the default worker count.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


def default_workers() -> int:
    """Worker count to use when the caller does not choose one.

    Reads :data:`WORKERS_ENV` (``REPRO_SWEEP_WORKERS``); defaults to 1
    (serial) because sweeps inside the test suite should not silently
    fork pools on small CI machines.
    """
    value = os.environ.get(WORKERS_ENV, "").strip()
    if not value:
        return 1
    try:
        workers = int(value)
    except ValueError:
        raise ValueError(f"{WORKERS_ENV}={value!r} is not an integer") from None
    if workers < 1:
        raise ValueError(f"{WORKERS_ENV} must be >= 1, got {workers}")
    return workers


def _normalise(result: Any) -> Any:
    """Round-trip a result through canonical JSON.

    Fresh results pass through here before being returned or cached, so
    a point served from cache is structurally indistinguishable from a
    freshly simulated one (int-vs-float identity, key order, tuples
    collapsed to lists) — the byte-identity guarantee depends on it.
    """
    return json.loads(canonical_json(result))


def _execute_point(payload: Tuple[str, Dict[str, Any]]) -> Tuple[Any, float]:
    """Worker entry point: run one (runner_path, params) sweep point.

    Module-level so ``spawn`` workers can import it; returns the
    normalised result and the point's wall-clock seconds.
    """
    runner_path, params = payload
    runner = resolve_runner(runner_path)
    start = time.perf_counter()
    result = runner(**params)
    elapsed = time.perf_counter() - start
    return _normalise(result), elapsed


class SweepResult:
    """The outcome of one :meth:`SweepEngine.run`.

    Attributes:
        name: the sweep's name.
        results: ``{point key: result}`` in point declaration order;
            this mapping is what callers persist, and it is identical
            bytes-for-bytes across serial, parallel, and cached runs.
        cached: ``{point key: bool}`` — True where the point was served
            from the result cache.
        per_point_s: ``{point key: wall seconds}`` (0.0 for cache hits).
        total_wall_s: wall-clock seconds for the whole run.
        workers: worker processes used for this run's misses.
        record: the record appended to ``BENCH_sweeps.json`` (also
            built when no bench path is configured).
    """

    def __init__(self, name: str, results: Dict[str, Any],
                 cached: Dict[str, bool], per_point_s: Dict[str, float],
                 total_wall_s: float, workers: int,
                 record: Dict[str, Any]):
        self.name = name
        self.results = results
        self.cached = cached
        self.per_point_s = per_point_s
        self.total_wall_s = total_wall_s
        self.workers = workers
        self.record = record

    @property
    def cache_hits(self) -> int:
        """Number of points served from cache in this run."""
        return sum(1 for hit in self.cached.values() if hit)

    def summary(self) -> str:
        """One human line: points, cache split, workers, wall-clock."""
        total = len(self.results)
        hits = self.cache_hits
        return (f"sweep {self.name!r}: {total} points "
                f"({hits} cached, {total - hits} simulated) "
                f"with {self.workers} worker(s) in {self.total_wall_s:.2f}s")

    def __repr__(self) -> str:
        return f"<SweepResult {self.summary()}>"


class SweepEngine:
    """Runs :class:`repro.exp.spec.Sweep` objects; see the module doc.

    Args:
        cache_dir: directory for the result cache, or None to disable
            caching (every point simulates every run).
        bench_path: path of the ``BENCH_sweeps.json`` record file, or
            None to skip wall-clock persistence.
        workers: default worker count for :meth:`run`; None defers to
            :func:`default_workers` (the ``REPRO_SWEEP_WORKERS``
            environment variable, else serial).
        schema_version: cache schema version; tests override this to
            exercise invalidation, everything else should leave it at
            :data:`repro.exp.cache.RESULT_SCHEMA_VERSION`.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 bench_path: Optional[str] = None,
                 workers: Optional[int] = None,
                 schema_version: int = RESULT_SCHEMA_VERSION):
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.bench_path = bench_path
        self.workers = workers
        self.schema_version = schema_version

    def run(self, sweep: Sweep, workers: Optional[int] = None) -> SweepResult:
        """Run every point of ``sweep``; see the module doc for phases.

        Args:
            sweep: the sweep to run.
            workers: worker processes for this run's cache misses
                (overrides the engine default for this call only).

        Returns:
            A :class:`SweepResult` with results merged in point order.
        """
        nworkers = workers if workers is not None else (
            self.workers if self.workers is not None else default_workers())
        if nworkers < 1:
            raise ValueError(f"workers must be >= 1, got {nworkers}")
        start = time.perf_counter()

        points = sweep.points
        # Shared-prefix pass: simulate each distinct prefix once (or
        # fetch its checkpoint from cache); points declaring a prefix
        # fork from the snapshot instead of re-simulating the warm-up.
        prefixes: Dict[str, Tuple[Any, str]] = {}
        prefix_meta: Dict[str, Dict[str, Any]] = {}
        for point in points:
            if point.prefix is None:
                continue
            prefix_key = canonical_json(point.prefix)
            if prefix_key in prefixes:
                continue
            snapshot, digest, elapsed, was_cached = \
                self._materialise_prefix(point.prefix)
            prefixes[prefix_key] = (snapshot, digest)
            prefix_meta[digest[:16]] = {
                "runner": point.prefix["runner"],
                "cached": was_cached,
                "wall_s": round(elapsed, 6),
            }

        results: Dict[str, Any] = {}
        cached: Dict[str, bool] = {}
        per_point_s: Dict[str, float] = {}
        misses: List[int] = []
        keys = []
        exec_params: List[Dict[str, Any]] = []
        for index, point in enumerate(points):
            if point.prefix is not None:
                snapshot, prefix_digest = prefixes[canonical_json(point.prefix)]
                # The cache key carries the checkpoint's digest, never
                # the snapshot itself: a point forked from a different
                # prefix state must miss, and cache entries stay small.
                key_params = dict(point.params)
                key_params["resume_digest"] = prefix_digest
                run_params = dict(point.params)
                run_params["resume_from"] = snapshot
            else:
                key_params = run_params = point.params
            exec_params.append(run_params)
            digest, key_doc = cache_key(point.runner, key_params,
                                        self.schema_version)
            keys.append((digest, key_doc))
            entry = self.cache.get(digest, key_doc) if self.cache else None
            if entry is not None:
                results[point.key] = entry["result"]
                cached[point.key] = True
                per_point_s[point.key] = 0.0
            else:
                misses.append(index)

        if misses:
            payloads = [(points[i].runner, exec_params[i]) for i in misses]
            if nworkers > 1 and len(misses) > 1:
                ctx = multiprocessing.get_context("spawn")
                with ctx.Pool(processes=min(nworkers, len(misses))) as pool:
                    outcomes = pool.map(_execute_point, payloads, chunksize=1)
            else:
                outcomes = [_execute_point(payload) for payload in payloads]
            for index, (result, elapsed) in zip(misses, outcomes):
                point = points[index]
                results[point.key] = result
                cached[point.key] = False
                per_point_s[point.key] = round(elapsed, 6)
                if self.cache:
                    digest, key_doc = keys[index]
                    self.cache.put(digest, key_doc, result, elapsed)

        # Re-assemble in declaration order: dict insertion order above
        # follows cache-hit-then-miss, not the sweep order.
        ordered = {p.key: results[p.key] for p in points}
        cached = {p.key: cached[p.key] for p in points}
        per_point_s = {p.key: per_point_s[p.key] for p in points}

        total_wall_s = round(time.perf_counter() - start, 6)
        from repro.sim.backend import default_backend_name

        record = {
            "sweep": sweep.name,
            # The engine the run executed on.  Recorded for wall-clock
            # forensics only: backends produce byte-identical results,
            # so the backend name deliberately stays out of cache keys.
            "backend": default_backend_name(),
            "points": len(points),
            "cache_hits": sum(1 for hit in cached.values() if hit),
            "simulated": len(misses),
            "workers": nworkers,
            "schema_version": self.schema_version,
            "total_wall_s": total_wall_s,
            "per_point_s": per_point_s,
        }
        if prefix_meta:
            record["prefixes"] = prefix_meta
        if self.bench_path:
            record = bench_mod.append_record(self.bench_path, record)
        return SweepResult(sweep.name, ordered, cached, per_point_s,
                           total_wall_s, nworkers, record)

    def _materialise_prefix(self, prefix: Dict[str, Any]):
        """Produce one shared prefix's checkpoint snapshot.

        The snapshot is cached exactly like a point result, keyed on the
        prefix's (runner, params): re-running a sweep re-uses the cached
        checkpoint instead of re-simulating the warm-up.  The snapshot
        is normalised through canonical JSON before digesting so a fresh
        simulation and a cache hit yield the same digest — and therefore
        the same downstream point cache keys.

        Returns:
            ``(snapshot, digest, wall_seconds, was_cached)``.
        """
        digest, key_doc = cache_key(prefix["runner"], prefix["params"],
                                    self.schema_version)
        entry = self.cache.get(digest, key_doc) if self.cache else None
        if entry is not None:
            snapshot = entry["result"]
            return snapshot, checkpoint_digest(snapshot), 0.0, True
        runner = resolve_runner(prefix["runner"])
        started = time.perf_counter()
        snapshot = _normalise(runner(**prefix["params"]))
        elapsed = time.perf_counter() - started
        if self.cache:
            self.cache.put(digest, key_doc, snapshot, elapsed)
        return snapshot, checkpoint_digest(snapshot), round(elapsed, 6), False
