"""Tables and series in the shape the paper reports them.

The benchmark harness uses these to print each figure/table as rows
(one per x-axis point, one column per series), which is also what
EXPERIMENTS.md records.
"""

from typing import Dict, List, Optional, Sequence


class Series:
    """One line of a figure: a name plus y-values keyed by x."""

    def __init__(self, name: str, points: Optional[Dict] = None):
        self.name = name
        self.points: Dict = dict(points or {})

    def add(self, x, y) -> None:
        self.points[x] = y

    def __getitem__(self, x):
        return self.points[x]

    def xs(self) -> List:
        return sorted(self.points)


class Table:
    """A figure/table: several series over a shared x-axis."""

    def __init__(self, title: str, x_label: str, y_label: str):
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.series: List[Series] = []

    def new_series(self, name: str) -> Series:
        series = Series(name)
        self.series.append(series)
        return series

    def xs(self) -> List:
        out = []
        for series in self.series:
            for x in series.points:
                if x not in out:
                    out.append(x)
        return sorted(out)

    def render(self, fmt: str = "{:.3f}") -> str:
        return format_table(self, fmt)


def format_table(table: Table, fmt: str = "{:.3f}") -> str:
    """Fixed-width text rendering of a :class:`Table`."""
    headers = [table.x_label] + [s.name for s in table.series]
    rows = []
    for x in table.xs():
        row = [str(x)]
        for series in table.series:
            value = series.points.get(x)
            row.append(fmt.format(value) if value is not None else "-")
        rows.append(row)
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        f"# {table.title}  ({table.y_label})",
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def link_replay_stats(link) -> Dict[str, float]:
    """Replay/timeout statistics of a link's upstream-bound interface
    (the disk-to-switch direction the paper instruments)."""
    interface = link.downstream_if
    sent = interface.tlps_sent.value()
    replays = interface.tlp_replays.value()
    total = sent + replays
    return {
        "tlps_sent": sent,
        "replays": replays,
        "timeouts": interface.timeouts.value(),
        "replay_fraction": replays / total if total else 0.0,
        "delivery_refused": interface.peer.delivery_refused.value(),
    }
