"""Tables and series in the shape the paper reports them.

The benchmark harness uses these to print each figure/table as rows
(one per x-axis point, one column per series), which is also what
EXPERIMENTS.md records.

This module also holds the trace-analysis side of the observability
layer: :func:`trace_latency_breakdown` turns a JSONL TLP-lifecycle
trace (:mod:`repro.obs.trace`) into a per-TLP attribution of where time
went — on the wire, waiting for replays, or resident in root-complex /
switch port buffers — and :func:`reconcile_trace_with_link` checks the
trace-derived event counts against a live link's statistics.
"""

import math
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.workloads.traffic import jain_fairness  # noqa: F401 (re-export)


class Series:
    """One line of a figure: a name plus y-values keyed by x."""

    def __init__(self, name: str, points: Optional[Dict] = None):
        self.name = name
        self.points: Dict = dict(points or {})

    def add(self, x, y) -> None:
        self.points[x] = y

    def __getitem__(self, x):
        return self.points[x]

    def xs(self) -> List:
        return sorted(self.points)


class Table:
    """A figure/table: several series over a shared x-axis."""

    def __init__(self, title: str, x_label: str, y_label: str):
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.series: List[Series] = []

    def new_series(self, name: str) -> Series:
        series = Series(name)
        self.series.append(series)
        return series

    def xs(self) -> List:
        out = []
        for series in self.series:
            for x in series.points:
                if x not in out:
                    out.append(x)
        return sorted(out)

    def render(self, fmt: str = "{:.3f}") -> str:
        return format_table(self, fmt)


def format_table(table: Table, fmt: str = "{:.3f}") -> str:
    """Fixed-width text rendering of a :class:`Table`."""
    headers = [table.x_label] + [s.name for s in table.series]
    rows = []
    for x in table.xs():
        row = [str(x)]
        for series in table.series:
            value = series.points.get(x)
            row.append(fmt.format(value) if value is not None else "-")
        rows.append(row)
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        f"# {table.title}  ({table.y_label})",
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


#: Schema of :func:`trace_latency_breakdown`'s result.  Additive keys
#: keep the version; renames/removals/semantic changes bump it.
LATENCY_SCHEMA = "repro-latency/1"

#: Link-interface statistics reconciled against trace-derived counts,
#: mapped to the trace events that count them.
_RECONCILED_STATS = {
    "acks_sent": ("dllp_tx", "ack"),
    "naks_sent": ("dllp_tx", "nak"),
    "replays": ("tlp_tx_replay", None),
    "delivery_refused": ("tlp_refused", None),
    "timeouts": ("replay_timeout", None),
}


def _tlp_key(tlp: int, resp: bool) -> str:
    return f"{tlp}/{'resp' if resp else 'req'}"


def trace_latency_breakdown(
    trace: Union[str, Iterable[str], List[dict]],
) -> dict:
    """Per-TLP latency attribution from a lifecycle trace.

    ``trace`` is a path to a JSONL trace, an iterable of its lines, or
    an already-parsed event list (``MemorySink.events``).

    A TLP's journey decomposes into *link traversals* (first ``tlp_tx``
    at an interface until ``tlp_deliver`` at its peer; time between the
    first and last transmission is replay/recovery, the remainder is
    serialization and flight) and *engine residencies* (``ingress`` to
    ``egress`` of a root-complex or switch port).  Requests and
    responses of one transaction share a tracer-local TLP id and are
    kept apart by the ``resp`` flag.

    Returns a dict with:

    * ``tlps`` — per-TLP records keyed ``"<id>/req"`` / ``"<id>/resp"``
      with ``link_ticks``, ``replay_ticks``, ``serialization_ticks``,
      ``engine_ticks``, ``replays``, ``refusals`` and ``traversals``;
    * ``totals`` — the same fields summed, plus ``tlps`` and
      ``unresolved`` (transmissions never delivered — wasted
      retransmissions of already-delivered TLPs, or in-flight at trace
      end);
    * ``event_counts`` — per-component counters of the link events the
      statistics track, for reconciliation;
    * ``engine_residency`` — per-component queueing summary
      (``count``/``ticks``/``max``) of the engine residencies, so the
      queueing delay at a shared uplink's ports reads directly off the
      trace.
    """
    if isinstance(trace, str) or (trace and isinstance(trace, list)
                                  and isinstance(trace[0], str)):
        from repro.obs.trace import load_trace

        __, events = load_trace(trace)
    elif trace and isinstance(trace, list) and isinstance(trace[0], dict):
        events = trace
    else:
        events = list(trace)

    tlps: Dict[str, dict] = {}
    counts: Dict[str, Dict[str, int]] = {}
    # Open link traversals / engine residencies, keyed by TLP identity.
    open_tx: Dict[str, dict] = {}
    open_ingress: Dict[tuple, int] = {}
    residency: Dict[str, Dict[str, int]] = {}
    unresolved = 0

    def record(key: str) -> dict:
        rec = tlps.get(key)
        if rec is None:
            rec = tlps[key] = {
                "first_seen": None, "delivered": None,
                "link_ticks": 0, "replay_ticks": 0,
                "serialization_ticks": 0, "engine_ticks": 0,
                "replays": 0, "refusals": 0, "traversals": 0,
            }
        return rec

    def bump(comp: str, what: str) -> None:
        comp_counts = counts.setdefault(comp, {})
        comp_counts[what] = comp_counts.get(what, 0) + 1

    for event in events:
        cat = event.get("cat")
        ev = event["ev"]
        t = event["t"]
        comp = event["comp"]
        if cat == "link":
            if ev == "tlp_tx":
                key = _tlp_key(event["tlp"], event.get("resp", False))
                rec = record(key)
                if rec["first_seen"] is None:
                    rec["first_seen"] = t
                if event.get("replay"):
                    rec["replays"] += 1
                    bump(comp, "tlp_tx_replay")
                traversal = open_tx.get(key)
                if traversal is None:
                    open_tx[key] = {"first": t, "last": t, "comp": comp}
                else:
                    traversal["last"] = t
            elif ev == "tlp_deliver":
                key = _tlp_key(event["tlp"], event.get("resp", False))
                rec = record(key)
                rec["delivered"] = t
                traversal = open_tx.pop(key, None)
                if traversal is not None:
                    rec["traversals"] += 1
                    rec["link_ticks"] += t - traversal["first"]
                    rec["replay_ticks"] += traversal["last"] - traversal["first"]
                    rec["serialization_ticks"] += t - traversal["last"]
            elif ev == "tlp_refused":
                # Refusal events carry no direction flag; charge the
                # side with an open traversal (a request and its
                # response are never in flight on a link at once).
                for resp in (False, True):
                    key = _tlp_key(event["tlp"], resp)
                    if key in open_tx:
                        record(key)["refusals"] += 1
                        break
                else:
                    record(_tlp_key(event["tlp"], False))["refusals"] += 1
                bump(comp, "tlp_refused")
            elif ev == "dllp_tx":
                bump(comp, "dllp_tx_" + event["kind"])
            elif ev == "replay_timeout":
                bump(comp, "replay_timeout")
            elif ev in ("tlp_corrupt", "tlp_out_of_seq", "dllp_corrupt",
                        "dllp_rx"):
                bump(comp, ev)
        elif cat == "engine":
            if ev == "ingress":
                open_ingress[(event["tlp"], event.get("resp", False), comp)] = t
            elif ev == "egress":
                start = open_ingress.pop(
                    (event["tlp"], event.get("resp", False), comp), None
                )
                if start is not None:
                    key = _tlp_key(event["tlp"], event.get("resp", False))
                    record(key)["engine_ticks"] += t - start
                    summary = residency.setdefault(
                        comp, {"count": 0, "ticks": 0, "max": 0})
                    summary["count"] += 1
                    summary["ticks"] += t - start
                    summary["max"] = max(summary["max"], t - start)

    unresolved = len(open_tx) + len(open_ingress)
    totals = {
        "tlps": len(tlps),
        "link_ticks": sum(r["link_ticks"] for r in tlps.values()),
        "replay_ticks": sum(r["replay_ticks"] for r in tlps.values()),
        "serialization_ticks": sum(
            r["serialization_ticks"] for r in tlps.values()
        ),
        "engine_ticks": sum(r["engine_ticks"] for r in tlps.values()),
        "replays": sum(r["replays"] for r in tlps.values()),
        "refusals": sum(r["refusals"] for r in tlps.values()),
        "unresolved": unresolved,
    }
    return {
        "schema": LATENCY_SCHEMA,
        "tlps": tlps,
        "totals": totals,
        "event_counts": counts,
        "engine_residency": residency,
    }


def reconcile_trace_with_link(breakdown: dict, link) -> Dict[str, dict]:
    """Compare a breakdown's event counts against a link's statistics.

    Returns ``{interface_full_name: {stat: {"stat": v, "trace": v}}}``
    for every reconciled counter of both interfaces.  The two columns
    agree exactly when the trace covered the whole run — this is the
    acceptance check the golden suite automates.
    """
    out: Dict[str, dict] = {}
    for interface in (link.upstream_if, link.downstream_if):
        comp_counts = breakdown["event_counts"].get(interface.full_name, {})
        stats = {
            "acks_sent": interface.acks_sent.value(),
            "naks_sent": interface.naks_sent.value(),
            "replays": interface.tlp_replays.value(),
            "delivery_refused": interface.delivery_refused.value(),
            "timeouts": interface.timeouts.value(),
        }
        entry = {}
        for stat_name, (ev, kind) in _RECONCILED_STATS.items():
            trace_name = f"dllp_tx_{kind}" if kind else ev
            entry[stat_name] = {
                "stat": stats[stat_name],
                "trace": comp_counts.get(trace_name, 0),
            }
        out[interface.full_name] = entry
    return out


def format_latency_breakdown(breakdown: dict) -> str:
    """Human-readable one-screen summary of a latency breakdown."""
    totals = breakdown["totals"]
    lines = [
        f"# TLP latency breakdown ({totals['tlps']} TLP journeys)",
        f"link total        : {totals['link_ticks']} ticks",
        f"  replay/recovery : {totals['replay_ticks']} ticks",
        f"  serialization   : {totals['serialization_ticks']} ticks",
        f"port buffers      : {totals['engine_ticks']} ticks",
        f"replayed tx       : {totals['replays']}",
        f"refused deliveries: {totals['refusals']}",
        f"unresolved        : {totals['unresolved']}",
    ]
    return "\n".join(lines)


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over ``samples`` (0.0 when empty) — the
    same definition :class:`repro.sim.stats.Quantiles` uses, for ad-hoc
    analysis of raw sample lists."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(max(1, math.ceil(fraction * len(ordered))), len(ordered))
    return ordered[rank - 1]


def flow_table(results: dict) -> Table:
    """Render a traffic engine's :meth:`results
    <repro.workloads.traffic.TrafficEngine.results>` as a per-flow
    :class:`Table` (one row per flow, throughput/share/tails as
    columns)."""
    table = Table("per-flow traffic", "flow", "throughput and tail latency")
    columns = {
        "gbps": "throughput_gbps",
        "share": "share",
        "p50_us": "p50_ns",
        "p99_us": "p99_ns",
        "p999_us": "p999_ns",
    }
    series = {label: table.new_series(label) for label in columns}
    for name, record in sorted(results["flows"].items()):
        for label, field in columns.items():
            value = record[field]
            if label.endswith("_us"):
                value = value / 1000.0
            series[label].add(name, value)
    return table


def link_replay_stats(link) -> Dict[str, float]:
    """Replay/timeout and credit-stall statistics of a link's
    upstream-bound interface (the disk-to-switch direction the paper
    instruments).

    ``fc_stall_ticks`` sums the per-class credit-starvation clocks:
    with credit-based flow control, congestion backpressure shows up
    here (the transmitter waits for UpdateFC) rather than as replay
    storms, which are reserved for actual transmission errors.
    """
    interface = link.downstream_if
    sent = interface.tlps_sent.value()
    replays = interface.tlp_replays.value()
    total = sent + replays
    fc = interface.fc
    return {
        "tlps_sent": sent,
        "replays": replays,
        "timeouts": interface.timeouts.value(),
        "replay_fraction": replays / total if total else 0.0,
        "delivery_refused": interface.peer.delivery_refused.value(),
        "fc_stall_ticks": float(fc.stall_ticks[0] + fc.stall_ticks[1]
                                + fc.stall_ticks[2]),
    }
