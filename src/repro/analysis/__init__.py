"""Result extraction and reporting helpers for the benchmarks."""

from repro.analysis.report import Series, Table, format_table, link_replay_stats

__all__ = ["Series", "Table", "format_table", "link_replay_stats"]
