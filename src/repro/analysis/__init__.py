"""Result extraction and reporting helpers for the benchmarks."""

from repro.analysis.report import (Series, Table, flow_table, format_table,
                                   jain_fairness, link_replay_stats,
                                   percentile)

__all__ = ["Series", "Table", "flow_table", "format_table", "jain_fairness",
           "link_replay_stats", "percentile"]
