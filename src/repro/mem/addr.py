"""Address ranges.

An :class:`AddrRange` is a half-open interval ``[start, end)`` of
physical addresses.  Crossbars, bridges and PCI bridge windows all route
by address range, so ranges support containment, overlap and union
queries.
"""

from typing import Iterable, List


class AddrRange:
    """A half-open physical address interval ``[start, end)``."""

    __slots__ = ("start", "end")

    def __init__(self, start: int, size: int = 0, end: int = None):
        if end is None:
            end = start + size
        if end < start:
            raise ValueError(f"range end {end:#x} below start {start:#x}")
        self.start = start
        self.end = end

    @property
    def size(self) -> int:
        return self.end - self.start

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def contains_range(self, other: "AddrRange") -> bool:
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "AddrRange") -> bool:
        return self.start < other.end and other.start < self.end

    def offset(self, addr: int) -> int:
        """Offset of ``addr`` from the start of the range."""
        if not self.contains(addr):
            raise ValueError(f"{addr:#x} not in {self}")
        return addr - self.start

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AddrRange)
            and self.start == other.start
            and self.end == other.end
        )

    def __hash__(self) -> int:
        return hash((self.start, self.end))

    def __contains__(self, addr: int) -> bool:
        return self.contains(addr)

    def __repr__(self) -> str:
        return f"AddrRange({self.start:#x}, end={self.end:#x})"


def union_span(ranges: Iterable[AddrRange]) -> AddrRange:
    """The smallest single range covering every input range.

    PCI bridge windows are single contiguous [base, limit] pairs, so the
    enumeration software computes spans like this when programming a
    bridge that has several devices downstream.
    """
    ranges = list(ranges)
    if not ranges:
        raise ValueError("cannot span an empty range list")
    return AddrRange(min(r.start for r in ranges), end=max(r.end for r in ranges))


def disjoint(ranges: Iterable[AddrRange]) -> bool:
    """True if no two ranges overlap."""
    ordered: List[AddrRange] = sorted(ranges, key=lambda r: r.start)
    for left, right in zip(ordered, ordered[1:]):
        if left.overlaps(right):
            return False
    return True
