"""Memory packets.

gem5 represents every memory/I/O transaction as a packet; the paper's
PCI-Express model reuses those packets as its transaction-layer packets
(TLPs) rather than defining a new type, and we do the same.  A
:class:`Packet` carries a command, address, size, optional payload
bytes, a requestor identity, and — added by the paper — a ``pci_bus_num``
field (initialised to −1) used by the root complex and switches to route
responses back to the requesting PCI bus.
"""

import enum
import itertools
from typing import Optional


class MemCmd(enum.Enum):
    """Packet command.  Read requests and write responses carry no
    payload; write requests and read responses carry ``size`` bytes."""

    READ_REQ = enum.auto()
    READ_RESP = enum.auto()
    WRITE_REQ = enum.auto()
    WRITE_RESP = enum.auto()
    # Configuration-space accesses (ECAM window).
    CONFIG_READ_REQ = enum.auto()
    CONFIG_READ_RESP = enum.auto()
    CONFIG_WRITE_REQ = enum.auto()
    CONFIG_WRITE_RESP = enum.auto()
    # A posted message (e.g. an MSI write): a request with no response.
    MESSAGE = enum.auto()

    @property
    def is_request(self) -> bool:
        return self._is_request

    @property
    def is_response(self) -> bool:
        return self._is_response

    @property
    def is_read(self) -> bool:
        return self._is_read

    @property
    def is_write(self) -> bool:
        return self._is_write

    @property
    def is_config(self) -> bool:
        return self._is_config

    @property
    def needs_response(self) -> bool:
        """True for non-posted requests."""
        return self._needs_response

    @property
    def response_command(self) -> "MemCmd":
        try:
            return _RESPONSE_FOR[self]
        except KeyError:
            raise ValueError(f"{self} has no response command") from None


_RESPONSE_FOR = {
    MemCmd.READ_REQ: MemCmd.READ_RESP,
    MemCmd.WRITE_REQ: MemCmd.WRITE_RESP,
    MemCmd.CONFIG_READ_REQ: MemCmd.CONFIG_READ_RESP,
    MemCmd.CONFIG_WRITE_REQ: MemCmd.CONFIG_WRITE_RESP,
}
_REQUESTS = frozenset(_RESPONSE_FOR)
_RESPONSES = frozenset(_RESPONSE_FOR.values())

# Stamp plain per-member booleans once at import.  The command
# classification runs per packet on the link/crossbar hot paths, and
# ``self in frozenset`` hashes the enum on every call — hundreds of
# thousands of times per run in the benchmark profiles.
for _cmd in MemCmd:
    _cmd._is_request = _cmd in _REQUESTS or _cmd is MemCmd.MESSAGE
    _cmd._is_response = _cmd in _RESPONSES
    _cmd._is_read = _cmd in (
        MemCmd.READ_REQ,
        MemCmd.READ_RESP,
        MemCmd.CONFIG_READ_REQ,
        MemCmd.CONFIG_READ_RESP,
    )
    _cmd._is_write = _cmd in (
        MemCmd.WRITE_REQ,
        MemCmd.WRITE_RESP,
        MemCmd.CONFIG_WRITE_REQ,
        MemCmd.CONFIG_WRITE_RESP,
        MemCmd.MESSAGE,
    )
    _cmd._is_config = _cmd in (
        MemCmd.CONFIG_READ_REQ,
        MemCmd.CONFIG_READ_RESP,
        MemCmd.CONFIG_WRITE_REQ,
        MemCmd.CONFIG_WRITE_RESP,
    )
    _cmd._needs_response = _cmd in _REQUESTS
    # Commands that carry ``size`` payload bytes on the wire.
    _cmd._carries_payload = _cmd in (
        MemCmd.WRITE_REQ,
        MemCmd.READ_RESP,
        MemCmd.MESSAGE,
        MemCmd.CONFIG_WRITE_REQ,
        MemCmd.CONFIG_READ_RESP,
    )
del _cmd

# PCI-Express flow-control classes, as plain ints so this module needs
# nothing from ``repro.pcie`` (which imports *us*).  The authoritative
# enum view lives in :mod:`repro.pcie.fc` with identical values.
FLOW_P = 0  # posted: memory writes, messages (no completion expected)
FLOW_NP = 1  # non-posted: memory reads, config accesses
FLOW_CPL = 2  # completions: every *_RESP command

# Flow class follows the command's wire format, not whether this model
# happens to complete it: memory writes and messages ride posted
# credits even though the model's writes expect a WRITE_RESP (the
# paper does not post writes), reads and config accesses ride
# non-posted credits, and every response is a completion.
_FLOW_FOR = {
    MemCmd.READ_REQ: FLOW_NP,
    MemCmd.WRITE_REQ: FLOW_P,
    MemCmd.CONFIG_READ_REQ: FLOW_NP,
    MemCmd.CONFIG_WRITE_REQ: FLOW_NP,
    MemCmd.MESSAGE: FLOW_P,
}
for _cmd in MemCmd:
    _cmd._flow_class = FLOW_CPL if _cmd._is_response else _FLOW_FOR[_cmd]
del _cmd

_packet_ids = itertools.count()


class Packet:
    """A memory/I/O transaction travelling through the system.

    Attributes:
        cmd: the :class:`MemCmd`.
        addr: target physical address.
        size: transfer size in bytes.
        data: payload bytes, present only on packets whose command
            carries data.
        requestor: name of the originating component (for statistics and
            debugging; PCI-Express completers route responses by
            ``pci_bus_num``, not by this).
        req_id: transaction identity.  A response produced by
            :meth:`make_response` keeps its request's ``req_id``, which
            components use to correlate the two.
        pci_bus_num: the paper's addition to the gem5 packet class —
            the secondary bus number of the first PCI-Express port the
            request entered, −1 until stamped.
        posted: when True the request expects no response (the paper's
            model does *not* post writes; the flag exists for the
            posted-write ablation and MSI messages).
        is_request / is_response / is_read / is_write / needs_response:
            command-classification flags, stamped once at construction
            (``cmd`` never changes afterwards) so the per-hop checks on
            the link and crossbar paths are plain slot reads.
        payload_size: bytes of payload this packet carries on a wire.
            Per the paper: "The maximum TLP payload size is 0 for a read
            request or a write response and is cache line size for a
            write request or read response."
        flow_class: PCI-Express flow-control class — :data:`FLOW_P`
            (memory writes, messages), :data:`FLOW_NP` (reads, config
            accesses) or :data:`FLOW_CPL` (completions) — stamped at
            construction; :class:`repro.pcie.fc.FlowClass` is the enum
            view with identical values.
    """

    __slots__ = (
        "cmd",
        "addr",
        "size",
        "data",
        "requestor",
        "req_id",
        "pci_bus_num",
        "posted",
        "create_tick",
        "_annotations",
        # Command/flow flags, stamped once in __init__.  ``cmd`` (and
        # ``posted``, which is derived from it) never changes after
        # construction, and plain slot reads keep the per-hop
        # classification checks off the enum-hashing path.
        "is_request",
        "is_response",
        "is_read",
        "is_write",
        "needs_response",
        "payload_size",
        "flow_class",
    )

    def __init__(
        self,
        cmd: MemCmd,
        addr: int,
        size: int,
        data: Optional[bytes] = None,
        requestor: str = "",
        req_id: Optional[int] = None,
        create_tick: int = 0,
    ):
        if size < 0:
            raise ValueError(f"packet size must be non-negative, got {size}")
        if cmd is MemCmd.WRITE_REQ and data is not None and len(data) != size:
            raise ValueError(
                f"write payload length {len(data)} does not match size {size}"
            )
        self.cmd = cmd
        self.addr = addr
        self.size = size
        self.data = data
        self.requestor = requestor
        self.req_id = next(_packet_ids) if req_id is None else req_id
        self.pci_bus_num = -1
        self.posted = cmd is MemCmd.MESSAGE
        self.create_tick = create_tick
        self.is_request = cmd._is_request
        self.is_response = cmd._is_response
        self.is_read = cmd._is_read
        self.is_write = cmd._is_write
        self.needs_response = cmd._needs_response and not self.posted
        self.payload_size = size if cmd._carries_payload else 0
        self.flow_class = cmd._flow_class
        # Free-form per-component scratch space (e.g. measured
        # latencies).  Allocated lazily: most TLPs are never annotated,
        # and the per-packet empty dict was measurable churn in the
        # benchmark profiles.
        self._annotations: Optional[dict] = None

    # -- convenience -------------------------------------------------------
    @property
    def annotations(self) -> dict:
        """Per-component scratch dict, created on first access."""
        ann = self._annotations
        if ann is None:
            ann = self._annotations = {}
        return ann

    def make_response(self, data: Optional[bytes] = None) -> "Packet":
        """Build the matching response packet (same id, same bus number)."""
        if not self.needs_response:
            raise ValueError(f"{self} does not need a response")
        if self.cmd.is_read and data is None:
            data = bytes(self.size)
        response = Packet(
            cmd=self.cmd.response_command,
            addr=self.addr,
            size=self.size,
            data=data,
            requestor=self.requestor,
            req_id=self.req_id,
            create_tick=self.create_tick,
        )
        response.pci_bus_num = self.pci_bus_num
        return response

    def __repr__(self) -> str:
        return (
            f"<Packet #{self.req_id} {self.cmd.name} addr={self.addr:#x} "
            f"size={self.size} bus={self.pci_bus_num}>"
        )
