"""Timing ports and the retry protocol.

gem5 components exchange packets through paired master/slave ports:

* a **master port** sends requests and receives responses;
* a **slave port** receives requests and sends responses.

Transfers use the *timing* protocol: ``send_timing_req``/``send_timing_resp``
hand the packet to the peer, whose handler returns ``True`` if accepted.
A ``False`` means "busy": the sender must hold the packet and wait for
the peer to call back with a retry (``send_retry_req``/``send_retry_resp``),
after which the sender tries again.  All buffer backpressure in the
simulated system — including the PCI-Express port-buffer and replay
behaviour studied in the paper — flows through this mechanism.

Handlers are supplied as callables at construction (explicit wiring
beats name-magic when a component owns several ports of the same kind).

:class:`PacketQueue` is the shared building block for bounded,
latency-tagged output buffers: the gem5 bridge, the root complex and the
switch ports are all queues of this kind.
"""

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.mem.addr import AddrRange
from repro.mem.packet import Packet
from repro.sim.eventq import Event
from repro.sim.simobject import SimObject
from repro.sim.stats import StatGroup


class PortError(RuntimeError):
    """Protocol violation on a port (unbound peer, double retry, ...)."""


class Port:
    """Base for master/slave ports: a named endpoint bound to a peer."""

    def __init__(self, owner: SimObject, name: str):
        self.owner = owner
        self.name = name
        self.peer: Optional["Port"] = None
        # Cached like SimObject.tracer: one attribute load and an
        # ``enabled`` branch is all the protocol hot path pays while the
        # invariant checker is off.
        self.checker = owner.sim.checker

    @property
    def full_name(self) -> str:
        return f"{self.owner.full_name}.{self.name}"

    @property
    def bound(self) -> bool:
        return self.peer is not None

    def _bind_peer(self, peer: "Port") -> None:
        if self.peer is not None:
            raise PortError(f"{self.full_name} is already bound to {self.peer.full_name}")
        self.peer = peer

    def __repr__(self) -> str:
        peer = self.peer.full_name if self.peer else None
        return f"<{type(self).__name__} {self.full_name} peer={peer}>"


def _unwired(kind: str, port: Port) -> Callable:
    def handler(*_args, **_kwargs):
        raise PortError(f"{port.full_name} has no {kind} handler wired")

    return handler


class MasterPort(Port):
    """Sends requests downstream; receives responses.

    Args:
        recv_timing_resp: ``f(pkt) -> bool`` called when the peer slave
            sends a response here.
        recv_req_retry: ``f()`` called when the peer slave, having
            previously refused a request, can accept again.
    """

    def __init__(
        self,
        owner: SimObject,
        name: str,
        recv_timing_resp: Optional[Callable[[Packet], bool]] = None,
        recv_req_retry: Optional[Callable[[], None]] = None,
    ):
        super().__init__(owner, name)
        self.recv_timing_resp = recv_timing_resp or _unwired("recv_timing_resp", self)
        self.recv_req_retry = recv_req_retry or _unwired("recv_req_retry", self)
        # True while the peer owes this port a request retry.
        self.waiting_for_req_retry = False
        # True while this port owes the peer a response retry.
        self._resp_retry_owed = False

    def bind(self, slave: "SlavePort") -> None:
        """Bind this master port to a slave port (and vice versa)."""
        if not isinstance(slave, SlavePort):
            raise TypeError(f"can only bind MasterPort to SlavePort, got {slave!r}")
        self._bind_peer(slave)
        slave._bind_peer(self)

    # -- sending requests ----------------------------------------------------
    def send_timing_req(self, pkt: Packet) -> bool:
        if self.peer is None:
            raise PortError(f"{self.full_name} is unbound")
        if not pkt.is_request:
            raise PortError(f"{self.full_name} asked to send non-request {pkt!r}")
        ck = self.checker
        if ck.enabled:
            ck.pre_send_req(self, pkt)
        accepted = self.peer.recv_timing_req(pkt)
        if not accepted:
            self.waiting_for_req_retry = True
            self.peer._req_retry_owed = True
        if ck.enabled:
            ck.post_send_req(self, pkt, accepted)
        return accepted

    # -- response-side flow control -------------------------------------------
    def _handle_resp(self, pkt: Packet) -> bool:
        accepted = self.recv_timing_resp(pkt)
        if not accepted:
            self._resp_retry_owed = True
        return accepted

    def send_retry_resp(self) -> None:
        """Tell the peer slave to retry a previously-refused response."""
        if self.peer is None:
            raise PortError(f"{self.full_name} is unbound")
        ck = self.checker
        if ck.enabled:
            ck.on_retry_resp(self)
        if not self._resp_retry_owed:
            raise PortError(f"{self.full_name} owes no response retry")
        self._resp_retry_owed = False
        self.peer.waiting_for_resp_retry = False
        self.peer.recv_resp_retry()

    @property
    def resp_retry_owed(self) -> bool:
        """True while this port owes its peer a response retry — the
        public mirror of :attr:`SlavePort.retry_owed` for the response
        direction, so owners never reach into ``_resp_retry_owed``."""
        return self._resp_retry_owed


class SlavePort(Port):
    """Receives requests; sends responses upstream.

    Args:
        recv_timing_req: ``f(pkt) -> bool`` called when the peer master
            sends a request here.
        recv_resp_retry: ``f()`` called when the peer master, having
            previously refused a response, can accept again.
        ranges: address ranges this port claims (used by crossbars when
            routing; may be empty for point-to-point wiring).
    """

    def __init__(
        self,
        owner: SimObject,
        name: str,
        recv_timing_req: Optional[Callable[[Packet], bool]] = None,
        recv_resp_retry: Optional[Callable[[], None]] = None,
        ranges: Optional[List[AddrRange]] = None,
    ):
        super().__init__(owner, name)
        self.recv_timing_req = recv_timing_req or _unwired("recv_timing_req", self)
        self.recv_resp_retry = recv_resp_retry or _unwired("recv_resp_retry", self)
        self._ranges: List[AddrRange] = list(ranges or [])
        # True while the peer owes this port a response retry.
        self.waiting_for_resp_retry = False
        # True while this port owes the peer a request retry.
        self._req_retry_owed = False

    def bind(self, master: MasterPort) -> None:
        master.bind(self)

    # -- address ranges --------------------------------------------------------
    def get_ranges(self) -> List[AddrRange]:
        """Address ranges claimed by the component behind this port.

        Components with dynamic ranges (PCI bridges whose windows the
        enumeration software programs at boot) override or replace this.
        """
        return list(self._ranges)

    def set_ranges(self, ranges: List[AddrRange]) -> None:
        self._ranges = list(ranges)

    # -- sending responses -------------------------------------------------------
    def send_timing_resp(self, pkt: Packet) -> bool:
        if self.peer is None:
            raise PortError(f"{self.full_name} is unbound")
        if not pkt.is_response:
            raise PortError(f"{self.full_name} asked to send non-response {pkt!r}")
        ck = self.checker
        if ck.enabled:
            ck.pre_send_resp(self, pkt)
        accepted = self.peer._handle_resp(pkt)
        if not accepted:
            self.waiting_for_resp_retry = True
        if ck.enabled:
            ck.post_send_resp(self, pkt, accepted)
        return accepted

    # -- request-side flow control --------------------------------------------
    def send_retry_req(self) -> None:
        """Tell the peer master to retry a previously-refused request."""
        if self.peer is None:
            raise PortError(f"{self.full_name} is unbound")
        ck = self.checker
        if ck.enabled:
            ck.on_retry_req(self)
        if not self._req_retry_owed:
            raise PortError(f"{self.full_name} owes no request retry")
        self._req_retry_owed = False
        self.peer.waiting_for_req_retry = False
        self.peer.recv_req_retry()

    @property
    def retry_owed(self) -> bool:
        return self._req_retry_owed


class _DrainEvent(Event):
    """Recycled drain trigger for one :class:`PacketQueue`.

    The queue's ``_drain_scheduled`` flag guarantees at most one
    outstanding drain, so a single recycled instance per queue replaces
    the per-drain callback event the queue used to allocate — this is
    the single hottest event in the crossbar/DRAM/bridge/iocache paths.
    """

    __slots__ = ("queue",)

    def __init__(self, queue: "PacketQueue"):
        super().__init__(name=f"{queue.name}.drain")
        self.queue = queue

    def process(self) -> None:
        """Run the owning queue's drain loop."""
        self.queue._drain()


class PacketQueue:
    """A bounded FIFO that drains packets into a send function.

    Each entry is tagged with a *ready tick* — the earliest time it may
    be sent — which is how fixed component latencies (bridge delay,
    root-complex processing, switch store-and-forward) are modelled.
    When the send function refuses (peer busy), draining pauses until
    :meth:`retry` is called.

    ``on_space_freed`` fires whenever an entry leaves the queue; owners
    use it to issue upstream retries after having refused a packet
    because the queue was full.
    """

    def __init__(
        self,
        owner: SimObject,
        name: str,
        send_fn: Callable[[Packet], bool],
        capacity: int,
    ):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.owner = owner
        self.name = name
        self.send_fn = send_fn
        self.capacity = capacity
        self.eventq = owner.eventq
        self._entries: Deque[Tuple[int, Packet]] = deque()
        self._waiting_retry = False
        self._drain_scheduled = False
        self._drain_event = _DrainEvent(self)
        self.on_space_freed: Optional[Callable[[], None]] = None
        # Per-packet variant of on_space_freed, called with the packet
        # that just left the queue (for owners tracking slot accounting
        # by packet identity).
        self.on_packet_sent: Optional[Callable[[Packet], None]] = None
        # Statistics.
        self.stats = owner.stats.add_child(StatGroup(name))
        self.sent = self.stats.scalar("sent", "packets drained from this queue")
        self.refused = self.stats.scalar("refused", "push attempts refused because full")
        self.occupancy = self.stats.average("occupancy", "queue length sampled at push")

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, pkt: Packet, delay: int = 0) -> bool:
        """Append ``pkt``, sendable ``delay`` ticks from now.

        Returns False (and drops nothing) when the queue is full.
        """
        entries = self._entries
        if len(entries) >= self.capacity:
            self.refused.inc()
            return False
        self.occupancy.sample(len(entries))
        ready = self.eventq.curtick + delay
        entries.append((ready, pkt))
        if not self._drain_scheduled and not self._waiting_retry:
            self._schedule_drain()
        return True

    def retry(self) -> None:
        """The peer can accept again: resume draining."""
        self._waiting_retry = False
        self._schedule_drain()

    def _schedule_drain(self) -> None:
        if self._drain_scheduled or self._waiting_retry or not self._entries:
            return
        eventq = self.eventq
        ready = self._entries[0][0]
        now = eventq.curtick
        self._drain_scheduled = True
        eventq.schedule(self._drain_event, ready if ready > now else now)

    def _drain(self) -> None:
        self._drain_scheduled = False
        # Loop invariants hoisted: curtick cannot move inside the loop
        # (time only advances in the event-queue drain), and the deque
        # object is never replaced — send_fn/callbacks that push more
        # work mutate it in place, which the loop condition observes.
        entries = self._entries
        now = self.eventq.curtick
        send_fn = self.send_fn
        sent = self.sent
        while entries and not self._waiting_retry:
            ready, pkt = entries[0]
            if ready > now:
                self._schedule_drain()
                return
            if not send_fn(pkt):
                self._waiting_retry = True
                return
            entries.popleft()
            sent.inc()
            if self.on_packet_sent is not None:
                self.on_packet_sent(pkt)
            if self.on_space_freed is not None:
                self.on_space_freed()
