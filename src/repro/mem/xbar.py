"""Crossbars.

gem5 connects on-chip devices, caches and memory through a coherent
crossbar (*MemBus*) and off-chip devices through a non-coherent one
(*IOBus*).  Both are modelled here: requests are routed to the master
port whose peer claims the packet's address, with a per-destination
*layer* that serializes transfers (header cycles plus payload
serialization at the crossbar width), and bounded per-port queues that
exert backpressure through the port retry protocol.

Responses are routed back to the slave port the request entered on,
tracked by request id.  Routing consults the peer ports' address ranges
*at routing time*, so windows programmed by the PCI enumeration software
after construction take effect immediately, exactly as in gem5 when a
bridge changes its ranges.
"""

import math
from typing import Dict, List, Optional

from repro.mem.addr import AddrRange
from repro.mem.packet import Packet
from repro.mem.port import MasterPort, PacketQueue, PortError, SlavePort
from repro.sim.simobject import SimObject, Simulator


class NoncoherentXBar(SimObject):
    """A non-coherent crossbar (gem5's IOBus flavour).

    Args:
        frontend_latency: ticks to make the forwarding decision.
        forward_latency: ticks to move a packet between ports.
        width: bytes moved per tick of serialization (payload crossing
            time is ``ceil(payload / width)`` ticks).  The default is
            wide enough that the crossbar never bottlenecks a PCIe link,
            matching the role MemBus/IOBus play in the paper's setup.
        queue_depth: per-destination buffered packets before refusing.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        parent: Optional[SimObject] = None,
        frontend_latency: int = 1_000,
        forward_latency: int = 1_000,
        width: int = 16,
        queue_depth: int = 4,
    ):
        super().__init__(sim, name, parent)
        self.frontend_latency = frontend_latency
        self.forward_latency = forward_latency
        self.width = width
        self.queue_depth = queue_depth

        self._slave_ports: List[SlavePort] = []
        self._master_ports: List[MasterPort] = []
        self._req_queues: Dict[MasterPort, PacketQueue] = {}
        self._resp_queues: Dict[SlavePort, PacketQueue] = {}
        # Layer occupancy: earliest tick each direction of each port is free.
        self._req_layer_free: Dict[MasterPort, int] = {}
        self._resp_layer_free: Dict[SlavePort, int] = {}
        # Response routing: request id -> slave port it entered on.
        self._resp_route: Dict[int, SlavePort] = {}
        self._default_port: Optional[MasterPort] = None

        self.pkt_count = self.stats.scalar("pkt_count", "packets routed")
        self.bytes_moved = self.stats.scalar("bytes_moved", "payload bytes routed")
        self.retries = self.stats.scalar("retries", "requests refused (layer/queue busy)")

    # -- wiring ------------------------------------------------------------
    def attach_master(self, name: str) -> SlavePort:
        """Create a slave port for an upstream master device to bind to."""
        port = SlavePort(self, name)
        port.recv_timing_req = lambda pkt, port=port: self._recv_request(port, pkt)
        port.recv_resp_retry = lambda port=port: self._resp_queues[port].retry()
        self._slave_ports.append(port)
        queue = PacketQueue(
            self, f"{name}_respq", lambda pkt, port=port: port.send_timing_resp(pkt), self.queue_depth
        )
        queue.on_space_freed = self._kick_waiting_responders
        self._resp_queues[port] = queue
        self._resp_layer_free[port] = 0
        return port

    def attach_slave(self, name: str) -> MasterPort:
        """Create a master port for a downstream slave device to bind to."""
        port = MasterPort(self, name)
        port.recv_timing_resp = lambda pkt, port=port: self._recv_response(port, pkt)
        port.recv_req_retry = lambda port=port: self._req_queues[port].retry()
        self._master_ports.append(port)
        queue = PacketQueue(
            self, f"{name}_reqq", lambda pkt, port=port: port.send_timing_req(pkt), self.queue_depth
        )
        queue.on_space_freed = self._kick_waiting_requesters
        self._req_queues[port] = queue
        self._req_layer_free[port] = 0
        return port

    def set_default_port(self, port: MasterPort) -> None:
        """Requests matching no claimed range go to this port."""
        if port not in self._master_ports:
            raise ValueError(f"{port!r} is not one of this crossbar's master ports")
        self._default_port = port

    # -- routing -----------------------------------------------------------
    def _find_destination(self, addr: int) -> Optional[MasterPort]:
        for port in self._master_ports:
            if port.peer is None:
                continue
            for rng in port.peer.get_ranges():
                if addr in rng:
                    return port
        return self._default_port

    def _occupancy(self, pkt: Packet) -> int:
        return self.frontend_latency + math.ceil(pkt.payload_size / self.width)

    def _recv_request(self, src: SlavePort, pkt: Packet) -> bool:
        dest = self._find_destination(pkt.addr)
        if dest is None:
            raise PortError(
                f"{self.full_name}: no port claims address {pkt.addr:#x} for {pkt!r}"
            )
        queue = self._req_queues[dest]
        if queue.full:
            self.retries.inc()
            return False
        now = self.eventq.curtick
        start = max(now, self._req_layer_free[dest])
        occupancy = self._occupancy(pkt)
        self._req_layer_free[dest] = start + occupancy
        delay = (start - now) + occupancy + self.forward_latency
        accepted = queue.push(pkt, delay)
        assert accepted, "queue.full checked above"
        if pkt.needs_response:
            self._resp_route[pkt.req_id] = src
        self.pkt_count.inc()
        self.bytes_moved.inc(pkt.payload_size)
        trc = self.tracer
        if trc.enabled:
            trc.emit(now, "xbar", self.full_name, "req_route",
                     tlp=trc.tlp_id(pkt.req_id), qlen=len(queue))
        return True

    def _recv_response(self, src: MasterPort, pkt: Packet) -> bool:
        try:
            dest = self._resp_route[pkt.req_id]
        except KeyError:
            raise PortError(
                f"{self.full_name}: response {pkt!r} matches no outstanding request"
            ) from None
        queue = self._resp_queues[dest]
        if queue.full:
            self.retries.inc()
            return False
        del self._resp_route[pkt.req_id]
        now = self.eventq.curtick
        start = max(now, self._resp_layer_free[dest])
        occupancy = self._occupancy(pkt)
        self._resp_layer_free[dest] = start + occupancy
        accepted = queue.push(pkt, (start - now) + occupancy + self.forward_latency)
        assert accepted
        self.pkt_count.inc()
        self.bytes_moved.inc(pkt.payload_size)
        trc = self.tracer
        if trc.enabled:
            trc.emit(now, "xbar", self.full_name, "resp_route",
                     tlp=trc.tlp_id(pkt.req_id), qlen=len(queue))
        return True

    # -- retry fan-out -------------------------------------------------------
    def _kick_waiting_requesters(self) -> None:
        for port in self._slave_ports:
            if port.retry_owed:
                port.send_retry_req()

    def _kick_waiting_responders(self) -> None:
        for port in self._master_ports:
            if port._resp_retry_owed:
                port.send_retry_resp()

    @property
    def outstanding_responses(self) -> int:
        return len(self._resp_route)


class CoherentXBar(NoncoherentXBar):
    """The MemBus flavour.

    The real gem5 coherent crossbar adds snoop traffic between caches.
    Our systems have a single cache (the IOCache) and an abstract
    processor, so no snoop traffic would ever be generated; timing-wise
    the coherent crossbar then behaves exactly like the non-coherent one
    with its own latencies.  The subclass exists so topologies read like
    the paper's Figure 3 and so a future multi-cache model has a seam to
    add snooping.
    """
