"""Memory-system substrate.

The Python stand-in for gem5's memory system: packets
(:mod:`repro.mem.packet`), the timing-port protocol with retries
(:mod:`repro.mem.port`), address ranges (:mod:`repro.mem.addr`),
crossbars (:mod:`repro.mem.xbar`), the MemBus↔IOBus bridge
(:mod:`repro.mem.bridge`), a DMA-coherency IOCache
(:mod:`repro.mem.iocache`) and a simple DRAM controller
(:mod:`repro.mem.dram`).

Everything the paper's PCI-Express model touches in gem5 is reproduced
here with the same semantics — in particular the *retry* flow control
(a receiver may refuse a packet and later call back with a retry),
which is what makes buffer backpressure, and therefore the paper's
x8-link collapse, emerge naturally.
"""

from repro.mem.addr import AddrRange
from repro.mem.packet import MemCmd, Packet
from repro.mem.port import MasterPort, SlavePort, PacketQueue
from repro.mem.xbar import NoncoherentXBar, CoherentXBar
from repro.mem.bridge import Bridge
from repro.mem.dram import SimpleMemory
from repro.mem.iocache import IOCache

__all__ = [
    "AddrRange",
    "MemCmd",
    "Packet",
    "MasterPort",
    "SlavePort",
    "PacketQueue",
    "NoncoherentXBar",
    "CoherentXBar",
    "Bridge",
    "SimpleMemory",
    "IOCache",
]
