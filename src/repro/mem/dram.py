"""A simple DRAM controller.

Equivalent to gem5's ``SimpleMemory``: every access completes after a
fixed latency plus a bandwidth-limited serialization term, with a
bounded number of outstanding accesses.  The paper's evaluation needs
memory to be fast enough that the PCI-Express interconnect is the
bottleneck — with DDR4-class parameters it always is — but the
bandwidth term matters for ablations that widen the PCIe side.
"""

import math
from typing import List, Optional

from repro.mem.addr import AddrRange
from repro.mem.packet import Packet
from repro.mem.port import PacketQueue, SlavePort
from repro.sim import ticks
from repro.sim.simobject import SimObject, Simulator


class SimpleMemory(SimObject):
    """Fixed-latency, bandwidth-limited memory.

    Args:
        range_: the address range this memory services.
        latency: access latency in ticks (default 30 ns, DDR4-ish).
        bandwidth: bytes per tick of service rate (default ~19.2 GB/s,
            one DDR4-2400 channel).  ``0`` disables the limit.
        max_outstanding: accesses buffered before refusing.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        range_: AddrRange,
        parent: Optional[SimObject] = None,
        latency: int = ticks.from_ns(30),
        bandwidth: float = 19.2e9 / ticks.S,
        max_outstanding: int = 32,
    ):
        super().__init__(sim, name, parent)
        self.range = range_
        self.latency = latency
        self.bandwidth = bandwidth
        self.max_outstanding = max_outstanding
        self._in_flight = 0
        self._next_free = 0

        self.port = SlavePort(
            self,
            "port",
            recv_timing_req=self._recv_request,
            recv_resp_retry=lambda: self._resp_queue.retry(),
            ranges=[range_],
        )
        self._resp_queue = PacketQueue(
            self, "respq", self._send_response, max_outstanding
        )

        self.reads = self.stats.scalar("reads", "read requests serviced")
        self.writes = self.stats.scalar("writes", "write requests serviced")
        self.bytes_read = self.stats.scalar("bytes_read")
        self.bytes_written = self.stats.scalar("bytes_written")

    def _serialization(self, pkt: Packet) -> int:
        if self.bandwidth <= 0:
            return 0
        return math.ceil(pkt.size / self.bandwidth)

    def _recv_request(self, pkt: Packet) -> bool:
        if self._in_flight >= self.max_outstanding:
            return False
        if pkt.is_read:
            self.reads.inc()
            self.bytes_read.inc(pkt.size)
        else:
            self.writes.inc()
            self.bytes_written.inc(pkt.size)
        trc = self.tracer
        if trc.enabled:
            trc.emit(self.curtick, "mem", self.full_name,
                     "read" if pkt.is_read else "write",
                     tlp=trc.tlp_id(pkt.req_id), size=pkt.size,
                     inflight=self._in_flight)
        if not pkt.needs_response:
            return True
        self._in_flight += 1
        now = self.eventq.curtick
        start = max(now, self._next_free)
        service = self._serialization(pkt)
        self._next_free = start + service
        done = (start - now) + service + self.latency
        response = pkt.make_response()
        pushed = self._resp_queue.push(response, done)
        assert pushed, "in-flight bound matches queue capacity"
        return True

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> dict:
        """The bandwidth-serialization horizon.

        In-flight accesses hold live packets in the response queue, so a
        checkpoint is only valid while the controller is idle.
        """
        if self._in_flight:
            from repro.sim.checkpoint import CheckpointError

            raise CheckpointError(
                f"{self.full_name} has {self._in_flight} access(es) in "
                f"flight; checkpoints require an idle memory controller")
        return {"next_free": self._next_free}

    def load_state_dict(self, state: dict) -> None:
        """Restore the serialization horizon onto this rebuilt memory."""
        self._next_free = state["next_free"]

    def _send_response(self, pkt: Packet) -> bool:
        if not self.port.send_timing_resp(pkt):
            return False
        self._in_flight -= 1
        if self.port.retry_owed:
            self.port.send_retry_req()
        return True
