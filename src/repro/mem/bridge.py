"""The gem5 bridge.

A bridge joins two crossbars: it is a slave on one side (accepting
requests destined for its configured address ranges) and a master on the
other.  Requests and responses traverse bounded queues with a fixed
delay; full queues refuse packets, pushing backpressure into the port
retry protocol.

The paper: "We use the gem5 bridge model and build a root complex and a
PCI-Express switch model upon that."  The root complex and switch in
:mod:`repro.pcie` reuse the same queue mechanics via
:class:`~repro.mem.port.PacketQueue` — including its recycled drain
event, so forwarding a packet allocates no per-packet event or closure
anywhere on the bridge path.
"""

from typing import List, Optional

from repro.mem.addr import AddrRange
from repro.mem.packet import Packet
from repro.mem.port import MasterPort, PacketQueue, SlavePort
from repro.sim.simobject import SimObject, Simulator


class Bridge(SimObject):
    """A one-way request / one-way response bridge between two buses.

    Args:
        delay: forwarding latency in ticks, applied to each direction.
        req_queue_size: bounded request buffer entries.
        resp_queue_size: bounded response buffer entries.
        ranges: address ranges the slave side claims (what lies beyond
            the bridge).  May be re-set later — e.g. after PCI
            enumeration assigns device apertures.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        parent: Optional[SimObject] = None,
        delay: int = 50_000,
        req_queue_size: int = 16,
        resp_queue_size: int = 16,
        ranges: Optional[List[AddrRange]] = None,
    ):
        super().__init__(sim, name, parent)
        self.delay = delay

        self.slave_port = SlavePort(
            self,
            "slave",
            recv_timing_req=self._recv_request,
            recv_resp_retry=lambda: self._resp_queue.retry(),
            ranges=ranges or [],
        )
        self.master_port = MasterPort(
            self,
            "master",
            recv_timing_resp=self._recv_response,
            recv_req_retry=lambda: self._req_queue.retry(),
        )
        self._req_queue = PacketQueue(
            self, "reqq", self.master_port.send_timing_req, req_queue_size
        )
        self._req_queue.on_space_freed = self._maybe_retry_requests
        self._resp_queue = PacketQueue(
            self, "respq", self.slave_port.send_timing_resp, resp_queue_size
        )
        self._resp_queue.on_space_freed = self._maybe_retry_responses

        self.forwarded = self.stats.scalar("forwarded", "requests forwarded")

    def set_ranges(self, ranges: List[AddrRange]) -> None:
        self.slave_port.set_ranges(ranges)

    def _recv_request(self, pkt: Packet) -> bool:
        if not self._req_queue.push(pkt, self.delay):
            return False
        self.forwarded.inc()
        return True

    def _recv_response(self, pkt: Packet) -> bool:
        return self._resp_queue.push(pkt, self.delay)

    def _maybe_retry_requests(self) -> None:
        if self.slave_port.retry_owed:
            self.slave_port.send_retry_req()

    def _maybe_retry_responses(self) -> None:
        if self.master_port._resp_retry_owed:
            self.master_port.send_retry_resp()
