"""The IOCache.

gem5 places a small cache between the IO world and the memory bus: it
keeps DMA accesses coherent with the processor caches and acts as a
bandwidth buffer between connections of different widths.  The paper's
root complex sends all DMA-generated memory requests through an IOCache
before they reach the MemBus (Figure 6).

The model is a set-associative, write-back, write-allocate cache with
LRU replacement:

* **read hit** — respond after ``hit_latency``;
* **read miss** — forward a line fill to memory, respond when it
  returns (one MSHR per outstanding miss, bounded);
* **full-line write** — allocate without fetching (DMA streams write
  whole cache lines), mark dirty, respond after ``hit_latency``;
* **partial write** — write-through: forward to memory and respond when
  memory acknowledges;
* **dirty eviction** — emit a writeback through a bounded writeback
  buffer; a full buffer stalls new allocations (backpressure).
"""

from collections import OrderedDict
from typing import Dict, Optional

from repro.mem.packet import MemCmd, Packet
from repro.mem.port import MasterPort, PacketQueue, SlavePort
from repro.sim import ticks
from repro.sim.simobject import SimObject, Simulator


class _Line:
    __slots__ = ("tag", "dirty")

    def __init__(self, tag: int, dirty: bool):
        self.tag = tag
        self.dirty = dirty


class IOCache(SimObject):
    """A small DMA-coherency cache (gem5's IOCache).

    Args:
        size: capacity in bytes (gem5 default is tiny: 1 KiB).
        line_size: cache line size in bytes.
        assoc: set associativity.
        hit_latency: ticks from acceptance to response on a hit.
        lookup_latency: ticks consumed before a miss is forwarded.
        mshrs: maximum outstanding misses.
        writeback_entries: bounded dirty-eviction buffer.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        parent: Optional[SimObject] = None,
        size: int = 1024,
        line_size: int = 64,
        assoc: int = 4,
        hit_latency: int = ticks.from_ns(5),
        lookup_latency: int = ticks.from_ns(2),
        mshrs: int = 16,
        writeback_entries: int = 8,
    ):
        super().__init__(sim, name, parent)
        if size % (line_size * assoc) != 0:
            raise ValueError("size must be a multiple of line_size * assoc")
        self.line_size = line_size
        self.assoc = assoc
        self.num_sets = size // (line_size * assoc)
        self.hit_latency = hit_latency
        self.lookup_latency = lookup_latency
        self.mshrs = mshrs

        # sets[index] maps tag -> _Line, ordered by recency (LRU first).
        self._sets: Dict[int, OrderedDict] = {
            i: OrderedDict() for i in range(self.num_sets)
        }
        # Outstanding misses / write-throughs keyed by forwarded req id.
        self._outstanding: Dict[int, Packet] = {}
        self._writebacks_in_flight = 0
        self._writeback_entries = writeback_entries

        self.cpu_side = SlavePort(
            self,
            "cpu_side",
            recv_timing_req=self._recv_request,
            recv_resp_retry=lambda: self._resp_queue.retry(),
        )
        self.mem_side = MasterPort(
            self,
            "mem_side",
            recv_timing_resp=self._recv_mem_response,
            recv_req_retry=lambda: self._mem_queue.retry(),
        )
        self._resp_queue = PacketQueue(
            self, "respq", self.cpu_side.send_timing_resp, mshrs + writeback_entries
        )
        self._resp_queue.on_space_freed = self._maybe_retry_cpu
        self._mem_queue = PacketQueue(
            self, "memq", self.mem_side.send_timing_req, mshrs + writeback_entries
        )
        self._mem_queue.on_space_freed = self._maybe_retry_cpu

        self.hits = self.stats.scalar("hits")
        self.misses = self.stats.scalar("misses")
        self.writebacks = self.stats.scalar("writebacks")
        self.allocations = self.stats.scalar("allocations")

    # -- geometry ------------------------------------------------------------
    def _index_tag(self, addr: int):
        line = addr // self.line_size
        return line % self.num_sets, line // self.num_sets

    def _is_full_line(self, pkt: Packet) -> bool:
        return pkt.size >= self.line_size and pkt.addr % self.line_size == 0

    def _trace_access(self, pkt: Packet, ev: str) -> None:
        trc = self.tracer
        if trc.enabled:
            trc.emit(self.eventq.curtick, "cache", self.full_name, ev,
                     tlp=trc.tlp_id(pkt.req_id),
                     inflight=len(self._outstanding))

    # -- request path ----------------------------------------------------------
    def _recv_request(self, pkt: Packet) -> bool:
        if pkt.is_read:
            return self._handle_read(pkt)
        return self._handle_write(pkt)

    def _handle_read(self, pkt: Packet) -> bool:
        index, tag = self._index_tag(pkt.addr)
        cache_set = self._sets[index]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            self.hits.inc()
            self._trace_access(pkt, "read_hit")
            return self._resp_queue.push(pkt.make_response(), self.hit_latency)
        if len(self._outstanding) >= self.mshrs or self._mem_queue.full:
            return False
        self.misses.inc()
        self._outstanding[pkt.req_id] = pkt
        self._trace_access(pkt, "read_miss")
        pushed = self._mem_queue.push(pkt, self.lookup_latency)
        assert pushed
        return True

    def _handle_write(self, pkt: Packet) -> bool:
        index, tag = self._index_tag(pkt.addr)
        cache_set = self._sets[index]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            cache_set[tag].dirty = True
            self.hits.inc()
            self._trace_access(pkt, "write_hit")
            return self._respond_to_write(pkt, self.hit_latency)
        if self._is_full_line(pkt):
            # Allocate without fetching; may need a writeback slot.
            if not self._can_allocate(cache_set):
                return False
            if self._resp_queue.full:
                return False
            self._allocate(cache_set, tag, dirty=True)
            self.allocations.inc()
            self._trace_access(pkt, "write_alloc")
            return self._respond_to_write(pkt, self.hit_latency)
        # Posted partial write (an MSI message): forward and forget.
        # Nothing will ever acknowledge it, so holding an MSHR would
        # leak the slot and wedge all DMA after ``mshrs`` interrupts.
        if not pkt.needs_response:
            if self._mem_queue.full:
                return False
            self.misses.inc()
            self._trace_access(pkt, "write_through")
            pushed = self._mem_queue.push(pkt, self.lookup_latency)
            assert pushed
            return True
        # Partial write: write-through, respond on memory's ack.
        if len(self._outstanding) >= self.mshrs or self._mem_queue.full:
            return False
        self.misses.inc()
        self._outstanding[pkt.req_id] = pkt
        self._trace_access(pkt, "write_through")
        pushed = self._mem_queue.push(pkt, self.lookup_latency)
        assert pushed
        return True

    def _respond_to_write(self, pkt: Packet, delay: int) -> bool:
        if not pkt.needs_response:
            return True
        return self._resp_queue.push(pkt.make_response(), delay)

    # -- allocation / eviction ---------------------------------------------------
    def _can_allocate(self, cache_set: OrderedDict) -> bool:
        if len(cache_set) < self.assoc:
            return True
        victim = next(iter(cache_set.values()))
        if not victim.dirty:
            return True
        return (
            self._writebacks_in_flight < self._writeback_entries
            and not self._mem_queue.full
        )

    def _allocate(self, cache_set: OrderedDict, tag: int, dirty: bool) -> None:
        if len(cache_set) >= self.assoc:
            victim_tag, victim = cache_set.popitem(last=False)
            if victim.dirty:
                self._emit_writeback(victim_tag, cache_set)
        cache_set[tag] = _Line(tag, dirty)

    def _emit_writeback(self, tag: int, cache_set: OrderedDict) -> None:
        # Reconstruct the victim line address from its tag and set index.
        index = next(i for i, s in self._sets.items() if s is cache_set)
        addr = (tag * self.num_sets + index) * self.line_size
        writeback = Packet(
            MemCmd.WRITE_REQ,
            addr,
            self.line_size,
            data=bytes(self.line_size),
            requestor=self.full_name,
            create_tick=self.eventq.curtick,
        )
        self._writebacks_in_flight += 1
        self.writebacks.inc()
        self._outstanding[writeback.req_id] = writeback
        self._trace_access(writeback, "writeback")
        pushed = self._mem_queue.push(writeback, self.lookup_latency)
        assert pushed, "_can_allocate reserved a slot"

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> dict:
        """Cache contents: per-set ``[tag, dirty]`` pairs in LRU order.

        Tag arrays persist across quiescence and determine every future
        hit/miss, so they must be captured exactly — including the LRU
        recency ordering, which JSON lists preserve.  Outstanding misses
        and writebacks hold live packets, so a busy cache refuses to
        checkpoint.
        """
        if self._outstanding or self._writebacks_in_flight:
            from repro.sim.checkpoint import CheckpointError

            raise CheckpointError(
                f"{self.full_name} has {len(self._outstanding)} outstanding "
                f"miss(es) and {self._writebacks_in_flight} writeback(s) in "
                f"flight; checkpoints require an idle cache")
        return {
            "sets": {
                str(index): [[line.tag, line.dirty] for line in lines.values()]
                for index, lines in self._sets.items() if lines
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Repopulate the tag arrays captured by :meth:`state_dict`."""
        for lines in self._sets.values():
            lines.clear()
        for index, entries in state["sets"].items():
            cache_set = self._sets[int(index)]
            for tag, dirty in entries:
                cache_set[tag] = _Line(tag, dirty)

    # -- response path -----------------------------------------------------------
    def _recv_mem_response(self, pkt: Packet) -> bool:
        original = self._outstanding.get(pkt.req_id)
        if original is None:
            return True  # stale (shouldn't happen, but don't wedge the bus)
        if original.requestor == self.full_name:
            # Writeback acknowledgement.
            del self._outstanding[pkt.req_id]
            self._writebacks_in_flight -= 1
            self._maybe_retry_cpu()
            return True
        if self._resp_queue.full:
            return False
        del self._outstanding[pkt.req_id]
        if original.is_read:
            index, tag = self._index_tag(original.addr)
            cache_set = self._sets[index]
            if tag not in cache_set and self._can_allocate(cache_set):
                self._allocate(cache_set, tag, dirty=False)
                self.allocations.inc()
        pushed = self._resp_queue.push(pkt, 0)
        assert pushed
        self._maybe_retry_cpu()
        return True

    def _maybe_retry_cpu(self) -> None:
        if self.cpu_side.retry_owed:
            self.cpu_side.send_retry_req()
        # A full response queue also refuses memory-side responses; now
        # that space freed, let the memory bus re-deliver them.
        if self.mem_side.resp_retry_owed and not self._resp_queue.full:
            self.mem_side.send_retry_resp()
