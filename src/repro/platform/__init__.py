"""Platform definitions (the Vexpress_GEM5_V1 address map)."""

from repro.platform.addrmap import AddressMap, VEXPRESS_GEM5_V1

__all__ = ["AddressMap", "VEXPRESS_GEM5_V1"]
