"""The platform address map.

The paper tests on gem5's ARM ``Vexpress_GEM5_V1`` machine type, which
assigns:

* 256 MB at ``0x30000000`` for the PCI configuration space (ECAM),
* 16 MB at ``0x2F000000`` for the PCI I/O space,
* 1 GB at ``0x40000000`` for the PCI memory (MMIO) space,
* DRAM from 2 GB upward (to 512 GB).

Because all PCI windows sit below 2 GB, devices use 32-bit BARs.
"""

from repro.mem.addr import AddrRange


class AddressMap:
    """The physical address windows of a platform."""

    def __init__(
        self,
        pci_config: AddrRange,
        pci_io: AddrRange,
        pci_mem: AddrRange,
        dram: AddrRange,
    ):
        for a, b in (
            (pci_config, pci_io),
            (pci_config, pci_mem),
            (pci_config, dram),
            (pci_io, pci_mem),
            (pci_io, dram),
            (pci_mem, dram),
        ):
            if a.overlaps(b):
                raise ValueError(f"address windows overlap: {a} and {b}")
        self.pci_config = pci_config
        self.pci_io = pci_io
        self.pci_mem = pci_mem
        self.dram = dram

    def classify(self, addr: int) -> str:
        """Which window an address falls in ('config'/'io'/'mem'/'dram'
        or 'unmapped')."""
        if addr in self.pci_config:
            return "config"
        if addr in self.pci_io:
            return "io"
        if addr in self.pci_mem:
            return "mem"
        if addr in self.dram:
            return "dram"
        return "unmapped"


VEXPRESS_GEM5_V1 = AddressMap(
    pci_config=AddrRange(0x30000000, 0x10000000),
    pci_io=AddrRange(0x2F000000, 0x01000000),
    pci_mem=AddrRange(0x40000000, 0x40000000),
    # The full map runs to 512 GB; 4 GB of modelled DRAM is ample for
    # every experiment while keeping addresses small.
    dram=AddrRange(0x80000000, 0x100000000),
)
