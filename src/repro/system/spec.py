"""Declarative topology specifications.

A :class:`TopologySpec` is a pure-data tree describing one complete
machine: the root complex, arbitrarily deep and arbitrarily fanned
switch hierarchies, per-edge PCI-Express link parameters, and any mix
of devices.  :func:`repro.system.topology.build_system` turns a spec
into an assembled, booted :class:`~repro.system.topology.PcieSystem`;
the four historical builders (``build_validation_system`` and friends)
are now thin wrappers over specs produced by the constructors at the
bottom of this module.

Specs are deliberately restricted to canonical-JSON-safe values —
strings, ints, floats, bools, None — so that:

* a spec round-trips losslessly through :meth:`TopologySpec.to_json` /
  :meth:`TopologySpec.from_json` (a sweep point, a trace artifact and a
  bug report can all *name the exact machine* they ran on);
* :meth:`TopologySpec.canonical` is a stable byte string, so the sweep
  result cache (:mod:`repro.exp.cache`) keys on the full machine shape
  whenever a point carries a ``topology=`` parameter;
* :meth:`TopologySpec.digest` gives a short content hash for artifact
  names and report headers.

The grammar (see ARCHITECTURE.md "Topology" for a walked example)::

    TopologySpec := { kind: "pcie", root_complex, children: [Node...],
                      enable_msi }
                  | ClassicPciSpec { kind: "classic_pci", clock_mhz,
                                     device }
    Node         := SwitchSpec { name, link: LinkSpec, latency,
                                 buffer_size, service_interval,
                                 datapath_scope, num_ports,
                                 children: [Node...] }
                  | DeviceSpec { kind: "disk"|"nic"|"accel", name,
                                 link: LinkSpec, params: {...} }

Every node hangs off its parent (a root port, or a switch downstream
port) through its own :class:`LinkSpec`, so a fabric can mix
generations, widths and replay/port-buffer settings per edge.  Tick
quantities (latencies, service intervals) are stored as plain tick
ints, exactly as the builder keyword arguments always were; PCIe
generations travel as their enum *name* (``"GEN2"``).

Instance names are the unique identity of every component end-to-end:
they become the :class:`~repro.sim.simobject.SimObject` names (and thus
the statistics keys, trace component paths and checker-violation
components) and the keys of ``PcieSystem.devices`` / ``.links`` /
``.switches`` / ``.drivers``.  Unnamed nodes are auto-named
(``disk0``, ``nic1``, ``switch0``, ...); duplicate names are a
:class:`SpecError` at validation time — the singleton-``"disk"``-key
collision of the historical builders cannot be expressed any more.
"""

import hashlib
import json
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.sim import ticks

__all__ = [
    "SpecError",
    "LinkSpec",
    "DeviceSpec",
    "SwitchSpec",
    "TopologySpec",
    "ClassicPciSpec",
    "validation_spec",
    "nic_spec",
    "dual_device_spec",
    "classic_pci_spec",
    "deep_hierarchy_spec",
    "spec_from_dict",
]

#: Device kinds a :class:`DeviceSpec` may name.  The model/driver
#: classes behind each kind live in :data:`repro.system.topology.DEVICE_KINDS`
#: (the spec layer stays pure data and imports no models).
DEVICE_KIND_NAMES = ("disk", "nic", "accel")

#: PCIe generation names accepted by :class:`LinkSpec` (the
#: :class:`repro.pcie.timing.PcieGen` members).
GEN_NAMES = ("GEN1", "GEN2", "GEN3")


class SpecError(ValueError):
    """An inconsistent or inexpressible topology specification."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise SpecError(message)


class LinkSpec:
    """Parameters of one PCI-Express link (one edge of the tree).

    Args:
        name: the link's instance name; the assembled
            :class:`~repro.pcie.link.PcieLink` is called
            ``f"{name}_link"`` and keyed as ``name`` in
            ``PcieSystem.links``.  Defaults to the downstream node's
            name.
        gen: PCIe generation *name* (``"GEN1"``/``"GEN2"``/``"GEN3"``).
        width: lane count.
        replay_buffer_size: unacknowledged-TLP bound per interface.
        ack_policy: ``"immediate"`` or ``"timer"``.
        input_queue_size: component-facing input buffer per interface.
        p_credits / np_credits / cpl_credits: per-class receive-buffer
            slots (posted / non-posted / completion flow-control
            credits) each interface advertises at link-up; the defaults
            (6/6/4) reproduce the 16-slot aggregate capacity of the
            pre-split shared pool.
        error_rate: fraction of received TLPs corrupted (NAK path).
        dllp_error_rate: fraction of DLLPs corrupted.
        error_seed: base seed of the per-interface corruption RNGs.
        propagation_delay: flight time in ticks added after
            serialization.
        max_payload: MaxPayloadSize fed to the replay-timer formula.
        replay_timeout: explicit replay-timeout override in ticks, or
            None for the spec formula.
        ack_period: explicit ACK-timer override in ticks, or None for
            the spec formula.
    """

    FIELDS = (
        "name", "gen", "width", "replay_buffer_size", "ack_policy",
        "input_queue_size", "p_credits", "np_credits", "cpl_credits",
        "error_rate", "dllp_error_rate", "error_seed",
        "propagation_delay", "max_payload", "replay_timeout", "ack_period",
    )

    def __init__(
        self,
        name: Optional[str] = None,
        gen: str = "GEN2",
        width: int = 1,
        replay_buffer_size: int = 4,
        ack_policy: str = "timer",
        input_queue_size: int = 2,
        p_credits: int = 6,
        np_credits: int = 6,
        cpl_credits: int = 4,
        error_rate: float = 0.0,
        dllp_error_rate: float = 0.0,
        error_seed: int = 0x5EED,
        propagation_delay: int = ticks.from_ns(4),
        max_payload: int = 64,
        replay_timeout: Optional[int] = None,
        ack_period: Optional[int] = None,
    ):
        self.name = name
        self.gen = gen
        self.width = width
        self.replay_buffer_size = replay_buffer_size
        self.ack_policy = ack_policy
        self.input_queue_size = input_queue_size
        self.p_credits = p_credits
        self.np_credits = np_credits
        self.cpl_credits = cpl_credits
        self.error_rate = error_rate
        self.dllp_error_rate = dllp_error_rate
        self.error_seed = error_seed
        self.propagation_delay = propagation_delay
        self.max_payload = max_payload
        self.replay_timeout = replay_timeout
        self.ack_period = ack_period

    def validate(self) -> None:
        """Range-check every field (name uniqueness is checked tree-wide)."""
        _require(self.gen in GEN_NAMES,
                 f"link {self.name!r}: unknown generation {self.gen!r} "
                 f"(expected one of {GEN_NAMES})")
        _require(self.width >= 1, f"link {self.name!r}: width must be >= 1")
        _require(self.replay_buffer_size >= 1,
                 f"link {self.name!r}: replay buffer must hold >= 1 TLP")
        _require(self.ack_policy in ("timer", "immediate"),
                 f"link {self.name!r}: unknown ack policy {self.ack_policy!r}")
        _require(self.input_queue_size >= 1,
                 f"link {self.name!r}: input queue must hold >= 1 TLP")
        for field in ("p_credits", "np_credits", "cpl_credits"):
            _require(getattr(self, field) >= 1,
                     f"link {self.name!r}: {field} must be >= 1 "
                     "(every flow-control class needs a credit)")

    def to_dict(self) -> Dict[str, Any]:
        """The link as a canonical-JSON-safe mapping (all fields, always)."""
        return {field: getattr(self, field) for field in self.FIELDS}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "LinkSpec":
        """Rebuild a :class:`LinkSpec` from :meth:`to_dict` output."""
        unknown = set(doc) - set(cls.FIELDS)
        _require(not unknown, f"link spec has unknown fields {sorted(unknown)}")
        return cls(**doc)

    def __repr__(self) -> str:
        return f"<LinkSpec {self.name!r} {self.gen} x{self.width}>"


class DeviceSpec:
    """One endpoint device hanging off a root port or switch port.

    Args:
        kind: ``"disk"`` (the IDE-like storage device), ``"nic"``
            (the 8254x-pcie NIC) or ``"accel"`` (the DMA copy
            accelerator).
        name: unique instance name; auto-assigned (``disk0``, ``nic0``,
            ...) when omitted.
        link: the :class:`LinkSpec` of the edge to the parent port
            (defaults to a Gen 2 x1 link named after the device).
        params: extra keyword arguments for the device model
            constructor (``access_latency``, ``posted_writes``,
            ``msi_functional``, ... — canonical-JSON-safe values only).
    """

    def __init__(self, kind: str, name: Optional[str] = None,
                 link: Optional[LinkSpec] = None,
                 params: Optional[Dict[str, Any]] = None):
        self.kind = kind
        self.name = name
        self.link = link or LinkSpec()
        self.params = dict(params or {})

    def validate(self) -> None:
        """Check the device kind and its link."""
        _require(self.kind in DEVICE_KIND_NAMES,
                 f"device {self.name!r}: unknown kind {self.kind!r} "
                 f"(expected one of {DEVICE_KIND_NAMES})")
        self.link.validate()

    def to_dict(self) -> Dict[str, Any]:
        """The device as a canonical-JSON-safe mapping."""
        return {
            "node": "device",
            "kind": self.kind,
            "name": self.name,
            "link": self.link.to_dict(),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "DeviceSpec":
        """Rebuild a :class:`DeviceSpec` from :meth:`to_dict` output."""
        _require(doc.get("node", "device") == "device",
                 f"expected a device node, got {doc.get('node')!r}")
        return cls(
            kind=doc["kind"],
            name=doc.get("name"),
            link=LinkSpec.from_dict(doc.get("link", {})),
            params=doc.get("params"),
        )

    def __repr__(self) -> str:
        return f"<DeviceSpec {self.kind} {self.name!r}>"


class SwitchSpec:
    """One PCI-Express switch and the subtree behind its ports.

    Args:
        name: unique instance name; auto-assigned (``switch0``, ...)
            when omitted.
        link: the :class:`LinkSpec` of the upstream edge toward the
            parent port.
        children: the nodes (devices or further switches) behind the
            downstream ports, in port order.
        latency: store-and-forward processing latency in ticks.
        buffer_size: per-port packet-slot pool.
        service_interval: per-packet datapath admission interval.
        datapath_scope: ``"port"`` or ``"engine"``.
        num_ports: downstream port count; defaults to ``len(children)``
            (ports beyond the children stay unwired, like the paper's
            validation switch with its second, empty port).
    """

    def __init__(
        self,
        name: Optional[str] = None,
        link: Optional[LinkSpec] = None,
        children: Optional[List[Union["SwitchSpec", DeviceSpec]]] = None,
        latency: int = ticks.from_ns(150),
        buffer_size: int = 16,
        service_interval: int = ticks.from_ns(42),
        datapath_scope: str = "port",
        num_ports: Optional[int] = None,
    ):
        self.name = name
        self.link = link or LinkSpec()
        self.children = list(children or [])
        self.latency = latency
        self.buffer_size = buffer_size
        self.service_interval = service_interval
        self.datapath_scope = datapath_scope
        self.num_ports = num_ports

    @property
    def effective_num_ports(self) -> int:
        """Downstream ports actually built: ``num_ports`` or fan-out."""
        return self.num_ports if self.num_ports is not None else max(
            len(self.children), 1)

    def validate(self) -> None:
        """Check the switch knobs, its link, and recurse into children."""
        _require(self.datapath_scope in ("port", "engine"),
                 f"switch {self.name!r}: unknown datapath scope "
                 f"{self.datapath_scope!r}")
        _require(self.buffer_size >= 2,
                 f"switch {self.name!r}: port buffers need >= 2 slots")
        _require(self.effective_num_ports >= len(self.children),
                 f"switch {self.name!r}: {len(self.children)} children do "
                 f"not fit {self.effective_num_ports} downstream ports")
        self.link.validate()
        for child in self.children:
            child.validate()

    def to_dict(self) -> Dict[str, Any]:
        """The switch subtree as a canonical-JSON-safe mapping."""
        return {
            "node": "switch",
            "name": self.name,
            "link": self.link.to_dict(),
            "latency": self.latency,
            "buffer_size": self.buffer_size,
            "service_interval": self.service_interval,
            "datapath_scope": self.datapath_scope,
            "num_ports": self.num_ports,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "SwitchSpec":
        """Rebuild a :class:`SwitchSpec` subtree from :meth:`to_dict`."""
        _require(doc.get("node") == "switch",
                 f"expected a switch node, got {doc.get('node')!r}")
        kwargs = {key: doc[key] for key in
                  ("latency", "buffer_size", "service_interval",
                   "datapath_scope", "num_ports") if key in doc}
        return cls(
            name=doc.get("name"),
            link=LinkSpec.from_dict(doc.get("link", {})),
            children=[_node_from_dict(child)
                      for child in doc.get("children", [])],
            **kwargs,
        )

    def __repr__(self) -> str:
        return (f"<SwitchSpec {self.name!r} ports={self.effective_num_ports} "
                f"children={len(self.children)}>")


def _node_from_dict(doc: Dict[str, Any]) -> Union[SwitchSpec, DeviceSpec]:
    """Dispatch a serialized tree node to its spec class."""
    node = doc.get("node", "device")
    if node == "switch":
        return SwitchSpec.from_dict(doc)
    if node == "device":
        return DeviceSpec.from_dict(doc)
    raise SpecError(f"unknown topology node kind {node!r}")


class TopologySpec:
    """A complete PCI-Express machine as one declarative tree.

    Args:
        children: the nodes behind the root ports, in root-port order.
        rc_latency: root-complex processing latency in ticks.
        rc_buffer_size: root-complex per-port packet-slot pool.
        rc_service_interval: root-complex datapath admission interval.
        rc_datapath_scope: ``"port"`` or ``"engine"``.
        num_root_ports: root ports to build; defaults to fan-out (the
            paper's model implements three, which the legacy specs
            request explicitly).
        enable_msi: attach the platform MSI doorbell and mark every
            device's MSI capability functional-capable.
        name: optional label recorded in serialisations (reports,
            artifact metadata); never used for component naming.
    """

    kind = "pcie"

    def __init__(
        self,
        children: Optional[List[Union[SwitchSpec, DeviceSpec]]] = None,
        rc_latency: int = ticks.from_ns(150),
        rc_buffer_size: int = 16,
        rc_service_interval: int = ticks.from_ns(42),
        rc_datapath_scope: str = "port",
        num_root_ports: Optional[int] = None,
        enable_msi: bool = False,
        name: Optional[str] = None,
    ):
        self.children = list(children or [])
        self.rc_latency = rc_latency
        self.rc_buffer_size = rc_buffer_size
        self.rc_service_interval = rc_service_interval
        self.rc_datapath_scope = rc_datapath_scope
        self.num_root_ports = num_root_ports
        self.enable_msi = enable_msi
        self.name = name

    # -- structure -----------------------------------------------------------
    @property
    def effective_num_root_ports(self) -> int:
        """Root ports actually built: ``num_root_ports`` or fan-out."""
        return self.num_root_ports if self.num_root_ports is not None else max(
            len(self.children), 1)

    def walk(self) -> Iterator[Union[SwitchSpec, DeviceSpec]]:
        """Every node of the tree, depth-first in port order — the same
        order enumeration discovers them."""

        def visit(node):
            yield node
            if isinstance(node, SwitchSpec):
                for child in node.children:
                    yield from visit(child)

        for child in self.children:
            yield from visit(child)

    def devices(self) -> List[DeviceSpec]:
        """Every device node, in discovery order."""
        return [n for n in self.walk() if isinstance(n, DeviceSpec)]

    def switches(self) -> List[SwitchSpec]:
        """Every switch node, in discovery order."""
        return [n for n in self.walk() if isinstance(n, SwitchSpec)]

    # -- naming & validation -------------------------------------------------
    def finalize(self) -> "TopologySpec":
        """Auto-name unnamed nodes and links, then :meth:`validate`.

        Devices are named ``{kind}{i}`` with a per-kind counter,
        switches ``switch{j}``; an unnamed link takes its downstream
        node's name.  Counters skip names already taken explicitly, so
        mixing explicit and automatic names stays collision-free.
        Returns ``self`` for chaining.
        """
        taken = {node.name for node in self.walk() if node.name}
        counters: Dict[str, int] = {}

        def next_name(prefix: str) -> str:
            i = counters.get(prefix, 0)
            while f"{prefix}{i}" in taken:
                i += 1
            counters[prefix] = i + 1
            taken.add(f"{prefix}{i}")
            return f"{prefix}{i}"

        for node in self.walk():
            if node.name is None:
                prefix = node.kind if isinstance(node, DeviceSpec) else "switch"
                node.name = next_name(prefix)
            if node.link.name is None:
                node.link.name = node.name
        self.validate()
        return self

    def validate(self) -> None:
        """Whole-tree consistency: knob ranges plus global name/link
        uniqueness (the end-to-end identity guarantee)."""
        _require(self.rc_datapath_scope in ("port", "engine"),
                 f"root complex: unknown datapath scope "
                 f"{self.rc_datapath_scope!r}")
        _require(self.rc_buffer_size >= 2,
                 "root complex: port buffers need >= 2 slots")
        _require(self.children, "a topology needs at least one node")
        _require(self.effective_num_root_ports >= len(self.children),
                 f"{len(self.children)} root-port children do not fit "
                 f"{self.effective_num_root_ports} root ports")
        node_names: set = set()
        link_names: set = set()
        for node in self.walk():
            node.validate()
            _require(node.name is not None,
                     f"{node!r} is unnamed; call finalize() first")
            _require(node.name not in node_names,
                     f"duplicate instance name {node.name!r}: every switch "
                     f"and device needs a unique name (stats, traces and "
                     f"checker violations key on it)")
            node_names.add(node.name)
            _require(node.link.name is not None,
                     f"{node!r}: link is unnamed; call finalize() first")
            _require(node.link.name not in link_names,
                     f"duplicate link name {node.link.name!r}")
            link_names.add(node.link.name)

    # -- serialisation -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The whole machine as a canonical-JSON-safe document."""
        return {
            "kind": self.kind,
            "name": self.name,
            "root_complex": {
                "latency": self.rc_latency,
                "buffer_size": self.rc_buffer_size,
                "service_interval": self.rc_service_interval,
                "datapath_scope": self.rc_datapath_scope,
                "num_root_ports": self.num_root_ports,
            },
            "enable_msi": self.enable_msi,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TopologySpec":
        """Rebuild (and finalize) a spec from :meth:`to_dict` output."""
        _require(doc.get("kind", "pcie") == "pcie",
                 f"expected kind 'pcie', got {doc.get('kind')!r} "
                 f"(classic PCI specs load via spec_from_dict)")
        rc = doc.get("root_complex", {})
        kwargs = {f"rc_{key}": rc[key] for key in
                  ("latency", "buffer_size", "service_interval",
                   "datapath_scope") if key in rc}
        return cls(
            children=[_node_from_dict(child)
                      for child in doc.get("children", [])],
            num_root_ports=rc.get("num_root_ports"),
            enable_msi=doc.get("enable_msi", False),
            name=doc.get("name"),
            **kwargs,
        ).finalize()

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialise to JSON text (pretty by default; artifacts diff
        nicely)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TopologySpec":
        """Parse :meth:`to_json` output back into a finalized spec."""
        return cls.from_dict(json.loads(text))

    def canonical(self) -> str:
        """Canonical JSON (sorted keys, no whitespace) — the stable
        byte string cache keys and byte-identity guarantees rest on."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """Short SHA-256 prefix of :meth:`canonical` — names the exact
        machine in artifact metadata and bug reports."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()[:12]

    def __repr__(self) -> str:
        return (f"<TopologySpec devices={len(self.devices())} "
                f"switches={len(self.switches())} digest={self.digest()}>")


class ClassicPciSpec:
    """The pre-PCI-Express baseline: one disk on a classic shared bus.

    Args:
        clock_mhz: shared-bus clock (33 or 66 in practice).
        device: the disk's :class:`DeviceSpec`; its link is ignored
            (a shared bus has no PCI-Express links) and only
            ``kind="disk"`` is routable on the classic fabric.
    """

    kind = "classic_pci"

    def __init__(self, clock_mhz: int = 33,
                 device: Optional[DeviceSpec] = None):
        self.clock_mhz = clock_mhz
        self.device = device or DeviceSpec("disk", name="disk")

    def finalize(self) -> "ClassicPciSpec":
        """Name the device (default ``disk``) and validate."""
        if self.device.name is None:
            self.device.name = "disk"
        self.validate()
        return self

    def validate(self) -> None:
        """The classic bus models exactly one bus-master disk."""
        _require(self.clock_mhz > 0, "classic PCI: clock must be positive")
        _require(self.device.kind == "disk",
                 "classic PCI supports only the disk device")

    def to_dict(self) -> Dict[str, Any]:
        """The baseline machine as a canonical-JSON-safe document."""
        return {
            "kind": self.kind,
            "clock_mhz": self.clock_mhz,
            "device": {
                "node": "device",
                "kind": self.device.kind,
                "name": self.device.name,
                "params": dict(self.device.params),
            },
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ClassicPciSpec":
        """Rebuild (and finalize) a baseline spec from :meth:`to_dict`."""
        _require(doc.get("kind") == "classic_pci",
                 f"expected kind 'classic_pci', got {doc.get('kind')!r}")
        device = doc.get("device", {})
        return cls(
            clock_mhz=doc.get("clock_mhz", 33),
            device=DeviceSpec(kind=device.get("kind", "disk"),
                              name=device.get("name"),
                              params=device.get("params")),
        ).finalize()

    def canonical(self) -> str:
        """Canonical JSON of the baseline spec."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """Short SHA-256 prefix of :meth:`canonical`."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()[:12]

    def __repr__(self) -> str:
        return f"<ClassicPciSpec {self.clock_mhz} MHz>"


def spec_from_dict(doc: Dict[str, Any]) -> Union[TopologySpec, ClassicPciSpec]:
    """Load either spec kind from a serialized document."""
    kind = doc.get("kind", "pcie")
    if kind == "pcie":
        return TopologySpec.from_dict(doc)
    if kind == "classic_pci":
        return ClassicPciSpec.from_dict(doc)
    raise SpecError(f"unknown topology spec kind {kind!r}")


# ---------------------------------------------------------------------------
# Named spec constructors: the four legacy machines, plus the
# deep-hierarchy exploration family.
# ---------------------------------------------------------------------------


def validation_spec(
    gen: str = "GEN2",
    root_link_width: int = 4,
    device_link_width: int = 1,
    rc_latency: int = ticks.from_ns(150),
    switch_latency: int = ticks.from_ns(150),
    buffer_size: int = 16,
    replay_buffer_size: int = 4,
    service_interval: int = ticks.from_ns(42),
    datapath_scope: str = "port",
    ack_policy: str = "immediate",
    error_rate: float = 0.0,
    dllp_error_rate: float = 0.0,
    input_queue_size: int = 2,
    error_seed: int = 0x5EED,
    posted_writes: bool = False,
    disk_access_latency: int = ticks.from_us(1),
    enable_msi: bool = False,
) -> TopologySpec:
    """The paper's validation topology (Section VI-A) as a spec:
    root complex ──x4── switch ──x1── IDE disk, every Figure-9 knob a
    parameter.  ``build_validation_system`` is a thin wrapper over this.
    """
    link_common = dict(
        gen=gen, replay_buffer_size=replay_buffer_size, ack_policy=ack_policy,
        error_rate=error_rate, dllp_error_rate=dllp_error_rate,
        input_queue_size=input_queue_size, error_seed=error_seed,
    )
    disk = DeviceSpec(
        "disk", name="disk",
        link=LinkSpec(name="disk", width=device_link_width, **link_common),
        params=dict(access_latency=disk_access_latency,
                    posted_writes=posted_writes,
                    msi_functional=enable_msi),
    )
    switch = SwitchSpec(
        name="switch", children=[disk], num_ports=2,
        link=LinkSpec(name="root", width=root_link_width, **link_common),
        latency=switch_latency, buffer_size=buffer_size,
        service_interval=service_interval, datapath_scope=datapath_scope,
    )
    return TopologySpec(
        children=[switch], rc_latency=rc_latency, rc_buffer_size=buffer_size,
        rc_service_interval=service_interval,
        rc_datapath_scope=datapath_scope, num_root_ports=3,
        enable_msi=enable_msi, name="validation",
    ).finalize()


def nic_spec(
    gen: str = "GEN2",
    link_width: int = 1,
    rc_latency: int = ticks.from_ns(150),
    buffer_size: int = 16,
    replay_buffer_size: int = 4,
    service_interval: int = ticks.from_ns(42),
    datapath_scope: str = "port",
    ack_policy: str = "immediate",
    enable_msi: bool = False,
) -> TopologySpec:
    """The Table II topology as a spec: a NIC directly on a root port."""
    nic = DeviceSpec(
        "nic", name="nic",
        link=LinkSpec(name="nic", gen=gen, width=link_width,
                      replay_buffer_size=replay_buffer_size,
                      ack_policy=ack_policy),
        params=dict(msi_functional=enable_msi),
    )
    return TopologySpec(
        children=[nic], rc_latency=rc_latency, rc_buffer_size=buffer_size,
        rc_service_interval=service_interval,
        rc_datapath_scope=datapath_scope, num_root_ports=3,
        enable_msi=enable_msi, name="nic",
    ).finalize()


def dual_device_spec(
    gen: str = "GEN2",
    root_link_width: int = 4,
    device_link_width: int = 1,
    rc_latency: int = ticks.from_ns(150),
    switch_latency: int = ticks.from_ns(150),
    buffer_size: int = 16,
    replay_buffer_size: int = 4,
    service_interval: int = ticks.from_ns(42),
    datapath_scope: str = "port",
    ack_policy: str = "immediate",
) -> TopologySpec:
    """The examples' richer machine as a spec: disk on switch port 0,
    NIC on port 1, sharing the root link."""
    link_common = dict(gen=gen, width=device_link_width,
                       replay_buffer_size=replay_buffer_size,
                       ack_policy=ack_policy)
    disk = DeviceSpec("disk", name="disk",
                      link=LinkSpec(name="disk", **link_common))
    nic = DeviceSpec("nic", name="nic",
                     link=LinkSpec(name="nic", **link_common))
    switch = SwitchSpec(
        name="switch", children=[disk, nic], num_ports=2,
        link=LinkSpec(name="root", gen=gen, width=root_link_width,
                      replay_buffer_size=replay_buffer_size,
                      ack_policy=ack_policy),
        latency=switch_latency, buffer_size=buffer_size,
        service_interval=service_interval, datapath_scope=datapath_scope,
    )
    return TopologySpec(
        children=[switch], rc_latency=rc_latency, rc_buffer_size=buffer_size,
        rc_service_interval=service_interval,
        rc_datapath_scope=datapath_scope, num_root_ports=3,
        name="dual_device",
    ).finalize()


def classic_pci_spec(
    clock_mhz: int = 33,
    disk_access_latency: int = ticks.from_us(1),
) -> ClassicPciSpec:
    """The classic shared-PCI-bus baseline (Section II-A) as a spec."""
    return ClassicPciSpec(
        clock_mhz=clock_mhz,
        device=DeviceSpec("disk", name="disk",
                          params=dict(access_latency=disk_access_latency)),
    ).finalize()


def deep_hierarchy_spec(
    depth: int,
    fanout: int,
    gen: str = "GEN2",
    width: int = 1,
    root_link_width: int = 4,
    device_kind: str = "disk",
    switch_latency: int = ticks.from_ns(150),
    buffer_size: int = 16,
    replay_buffer_size: int = 4,
    service_interval: int = ticks.from_ns(42),
    ack_policy: str = "immediate",
    enable_msi: bool = False,
) -> TopologySpec:
    """A switch spine of ``depth`` levels with ``fanout`` devices each.

    Level ``d`` is a switch named ``sw{d}`` carrying ``fanout`` devices
    (``sw{d}_{kind}{i}``) on its first ports; every non-leaf switch has
    one extra downstream port chaining to the next level, so the
    deepest devices sit behind ``depth`` store-and-forward hops.  Total
    devices: ``depth * fanout`` (depth 4 × fan-out 4 = 16 devices, the
    acceptance machine of the deep-hierarchy exploration).

    Inter-switch links inherit ``root_link_width``; device links use
    ``width`` — a heterogeneous fabric by construction.

    Args:
        depth: switch-chain length (>= 1).
        fanout: devices per switch (>= 1).
        gen: PCIe generation name for every link.
        width: device-link lane count.
        root_link_width: lane count of the root and inter-switch links.
        device_kind: ``"disk"`` or ``"nic"`` for every endpoint.
        switch_latency: per-switch store-and-forward latency (ticks).
        buffer_size: port buffers, switches and root complex alike.
        replay_buffer_size: per-link replay buffer.
        service_interval: datapath admission interval (ticks).
        ack_policy: link ACK policy.
        enable_msi: deliver device interrupts as MSI memory writes
            through the fabric (required by the partitioned-parallel
            backend) instead of legacy INTx wires.
    """
    _require(depth >= 1, "deep hierarchy needs depth >= 1")
    _require(fanout >= 1, "deep hierarchy needs fanout >= 1")
    link_common = dict(gen=gen, replay_buffer_size=replay_buffer_size,
                       ack_policy=ack_policy)

    def build_level(level: int) -> SwitchSpec:
        children: List[Union[SwitchSpec, DeviceSpec]] = [
            DeviceSpec(
                device_kind, name=f"sw{level}_{device_kind}{i}",
                link=LinkSpec(name=f"sw{level}_{device_kind}{i}",
                              width=width, **link_common),
            )
            for i in range(fanout)
        ]
        if level < depth:
            children.append(build_level(level + 1))
        return SwitchSpec(
            name=f"sw{level}", children=children,
            link=LinkSpec(name=f"sw{level}", width=root_link_width,
                          **link_common),
            latency=switch_latency, buffer_size=buffer_size,
            service_interval=service_interval,
        )

    return TopologySpec(
        children=[build_level(1)],
        rc_buffer_size=buffer_size, rc_service_interval=service_interval,
        enable_msi=enable_msi,
        name=f"deep_hierarchy_d{depth}_f{fanout}",
    ).finalize()
