"""Full-system assembly."""

from repro.system.topology import (
    PcieSystem,
    build_validation_system,
    build_nic_system,
    build_dual_device_system,
    build_classic_pci_system,
)

__all__ = [
    "PcieSystem",
    "build_validation_system",
    "build_nic_system",
    "build_dual_device_system",
    "build_classic_pci_system",
]
