"""Full-system assembly: declarative topology specs and the builder."""

from repro.system.spec import (
    ClassicPciSpec,
    DeviceSpec,
    LinkSpec,
    SpecError,
    SwitchSpec,
    TopologySpec,
    classic_pci_spec,
    deep_hierarchy_spec,
    dual_device_spec,
    nic_spec,
    spec_from_dict,
    validation_spec,
)
from repro.system.topology import (
    AmbiguousDeviceError,
    PcieSystem,
    build_system,
    build_validation_system,
    build_nic_system,
    build_dual_device_system,
    build_classic_pci_system,
)

__all__ = [
    "AmbiguousDeviceError",
    "PcieSystem",
    "build_system",
    "build_validation_system",
    "build_nic_system",
    "build_dual_device_system",
    "build_classic_pci_system",
    "TopologySpec",
    "ClassicPciSpec",
    "SwitchSpec",
    "DeviceSpec",
    "LinkSpec",
    "SpecError",
    "spec_from_dict",
    "validation_spec",
    "nic_spec",
    "dual_device_spec",
    "classic_pci_spec",
    "deep_hierarchy_spec",
]
