"""Topology builders.

Each builder assembles the full machine of the paper's Figures 3 and 6 —
processor, MemBus, DRAM, IOCache, PCI host, root complex, PCI-Express
links, optional switch, devices, kernel, drivers — boots it (PCI
enumeration) and binds drivers, returning a :class:`PcieSystem` with
handles to every component.

``build_validation_system`` reproduces the paper's validation topology:

    root complex ──Gen2 x4── switch ──Gen2 x1── IDE disk

with the root-complex latency fixed at 150 ns, switch latency 150 ns,
port buffers of 16 packets and replay buffers of 4 — every one of those
knobs is a keyword argument because the paper's Figure 9 sweeps them.
"""

from typing import Dict, List, Optional

from repro.devices.disk import IdeDisk
from repro.devices.nic import Nic8254xPcie
from repro.drivers.e1000e import E1000eDriver
from repro.drivers.ide import IdeDiskDriver
from repro.kernel.kernel import KernelConfig, OsKernel
from repro.mem.dram import SimpleMemory
from repro.mem.iocache import IOCache
from repro.mem.xbar import CoherentXBar
from repro.pci.host import PciHost
from repro.pcie.link import PcieLink
from repro.pcie.root_complex import RootComplex
from repro.pcie.switch import PcieSwitch
from repro.pcie.timing import PcieGen
from repro.platform.addrmap import VEXPRESS_GEM5_V1, AddressMap
from repro.sim import ticks
from repro.sim.simobject import SimObject, Simulator


class PcieSystem:
    """Handles to an assembled, booted system."""

    def __init__(self, sim: Simulator, addrmap: AddressMap):
        self.sim = sim
        self.addrmap = addrmap
        self.membus: Optional[CoherentXBar] = None
        self.dram: Optional[SimpleMemory] = None
        self.iocache: Optional[IOCache] = None
        self.host: Optional[PciHost] = None
        self.kernel: Optional[OsKernel] = None
        self.root_complex: Optional[RootComplex] = None
        self.switch: Optional[PcieSwitch] = None
        self.links: Dict[str, PcieLink] = {}
        self.devices: Dict[str, object] = {}
        self.drivers: Dict[str, object] = {}
        self.found_devices = []

    # -- conveniences -------------------------------------------------------
    @property
    def disk(self) -> Optional[IdeDisk]:
        return self.devices.get("disk")

    @property
    def nic(self) -> Optional[Nic8254xPcie]:
        return self.devices.get("nic")

    @property
    def disk_driver(self) -> Optional[IdeDiskDriver]:
        return self.drivers.get("disk")

    @property
    def nic_driver(self) -> Optional[E1000eDriver]:
        return self.drivers.get("nic")

    @property
    def disk_link(self) -> Optional[PcieLink]:
        return self.links.get("disk")

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        return self.sim.run(until=until, max_events=max_events)

    def stats(self) -> dict:
        return self.sim.dump_stats()


def _build_core(sim: Simulator, addrmap: AddressMap,
                kernel_config: Optional[KernelConfig]) -> PcieSystem:
    """The common substrate: MemBus + DRAM + IOCache + host + kernel."""
    system = PcieSystem(sim, addrmap)
    system.membus = CoherentXBar(
        sim, "membus",
        frontend_latency=ticks.from_ns(1),
        forward_latency=ticks.from_ns(1),
        width=64,
        queue_depth=16,
    )
    system.dram = SimpleMemory(sim, "dram", addrmap.dram)
    system.dram.port.bind(system.membus.attach_slave("dram_side"))
    system.host = PciHost(sim, ecam_base=addrmap.pci_config.start,
                          ecam_size=addrmap.pci_config.size)
    system.host.port.bind(system.membus.attach_slave("pci_host_side"))
    system.kernel = OsKernel(sim, config=kernel_config)
    system.kernel.cpu.port.bind(system.membus.attach_master("cpu"))
    system.iocache = IOCache(sim, "iocache")
    system.iocache.mem_side.bind(system.membus.attach_master("iocache_side"))
    return system


def _attach_msi_doorbell(system: PcieSystem) -> None:
    """Give the platform an MSI doorbell (the extension path): devices
    whose MSI capability the driver enables interrupt by posting memory
    writes here instead of wiggling INTx."""
    from repro.kernel.interrupts import MsiDoorbell

    doorbell = MsiDoorbell(system.sim, intc=system.kernel.intc)
    doorbell.port.bind(system.membus.attach_slave("msi_doorbell_side"))
    system.devices["msi_doorbell"] = doorbell
    system.kernel.msi_target_addr = doorbell.range.start


def _attach_root_complex(system: PcieSystem, root_complex: RootComplex) -> None:
    root_complex.upstream_slave.bind(system.membus.attach_slave("rc_side"))
    root_complex.upstream_master.bind(system.iocache.cpu_side)
    system.root_complex = root_complex


def _connect_link(link: PcieLink, upstream_port, device=None, switch=None) -> None:
    """Wire a link between an RC/switch port (upstream end) and either a
    device or a switch upstream port (downstream end)."""
    upstream_port.master_port.bind(link.upstream_if.slave_port)
    link.upstream_if.master_port.bind(upstream_port.slave_port)
    if device is not None:
        link.downstream_if.master_port.bind(device.pio_port)
        device.dma_port.bind(link.downstream_if.slave_port)
    elif switch is not None:
        link.downstream_if.master_port.bind(switch.upstream_slave)
        switch.upstream_master.bind(link.downstream_if.slave_port)
    else:
        raise ValueError("link needs a device or a switch at its downstream end")


def _boot_and_bind(system: PcieSystem, driver_specs: List[tuple]) -> None:
    """Enumerate, then bind (name, driver, device_model) triples."""
    kernel = system.kernel
    system.found_devices = kernel.boot(
        system.host,
        mem_window=system.addrmap.pci_mem,
        io_window=system.addrmap.pci_io,
    )
    device_map = {}
    for node in kernel.enumerator.all_devices():
        if node.is_bridge:
            continue
        for __, __, model in driver_specs:
            if system.host.function_at(*node.bdf) is model.function:
                device_map[node.bdf] = model
    kernel.bind_drivers([drv for __, drv, __ in driver_specs], device_map)
    for name, driver, model in driver_specs:
        system.drivers[name] = driver
        model.intc = kernel.intc


def build_validation_system(
    sim: Optional[Simulator] = None,
    addrmap: AddressMap = VEXPRESS_GEM5_V1,
    gen: PcieGen = PcieGen.GEN2,
    root_link_width: int = 4,
    device_link_width: int = 1,
    rc_latency: int = ticks.from_ns(150),
    switch_latency: int = ticks.from_ns(150),
    buffer_size: int = 16,
    replay_buffer_size: int = 4,
    service_interval: int = ticks.from_ns(42),
    datapath_scope: str = "port",
    ack_policy: str = "immediate",
    error_rate: float = 0.0,
    dllp_error_rate: float = 0.0,
    input_queue_size: int = 2,
    error_seed: int = 0x5EED,
    posted_writes: bool = False,
    disk_access_latency: int = ticks.from_us(1),
    enable_msi: bool = False,
    kernel_config: Optional[KernelConfig] = None,
    check: Optional[bool] = None,
) -> PcieSystem:
    """The paper's validation topology (Section VI-A).

    "We instantiate a PCI-Express switch, connect it to a root complex
    root port with a Gen 2 x4 link and attach the IDE disk to one of
    the switch downstream ports using a Gen 2 x1 link."

    ``input_queue_size`` and ``error_seed`` feed both links (the
    fault-injection stress campaign sweeps them); ``check`` arms the
    runtime invariant checker on the freshly built simulator (ignored
    when an existing ``sim`` is supplied).
    """
    sim = sim or Simulator(check=check)
    system = _build_core(sim, addrmap, kernel_config)

    root_complex = RootComplex(
        sim, num_root_ports=3,
        latency=rc_latency, buffer_size=buffer_size,
        service_interval=service_interval, datapath_scope=datapath_scope,
        link_speed=gen.speed_code, link_width=root_link_width,
    )
    _attach_root_complex(system, root_complex)

    switch = PcieSwitch(
        sim, num_downstream_ports=2,
        latency=switch_latency, buffer_size=buffer_size,
        service_interval=service_interval, datapath_scope=datapath_scope,
        link_speed=gen.speed_code, link_width=device_link_width,
    )
    system.switch = switch

    root_link = PcieLink(
        sim, "root_link", gen=gen, width=root_link_width,
        replay_buffer_size=replay_buffer_size, ack_policy=ack_policy,
        error_rate=error_rate, dllp_error_rate=dllp_error_rate,
        input_queue_size=input_queue_size, error_seed=error_seed,
    )
    _connect_link(root_link, root_complex.root_ports[0], switch=switch)
    system.links["root"] = root_link

    if enable_msi:
        _attach_msi_doorbell(system)
    disk = IdeDisk(sim, access_latency=disk_access_latency,
                   posted_writes=posted_writes, msi_functional=enable_msi)
    system.devices["disk"] = disk
    disk_link = PcieLink(
        sim, "disk_link", gen=gen, width=device_link_width,
        replay_buffer_size=replay_buffer_size, ack_policy=ack_policy,
        error_rate=error_rate, dllp_error_rate=dllp_error_rate,
        input_queue_size=input_queue_size, error_seed=error_seed,
    )
    _connect_link(disk_link, switch.downstream_ports[0], device=disk)
    system.links["disk"] = disk_link

    # Configuration-space tree: root ports on bus 0, the switch behind
    # root port 0, the disk behind switch downstream port 0.
    rp_buses = root_complex.register_with_host(system.host)
    down_buses = switch.register_with_host(rp_buses[0])
    down_buses[0].add_function(0, 0, disk.function)

    _boot_and_bind(system, [("disk", IdeDiskDriver(), disk)])
    return system


def build_nic_system(
    sim: Optional[Simulator] = None,
    addrmap: AddressMap = VEXPRESS_GEM5_V1,
    gen: PcieGen = PcieGen.GEN2,
    link_width: int = 1,
    rc_latency: int = ticks.from_ns(150),
    buffer_size: int = 16,
    replay_buffer_size: int = 4,
    service_interval: int = ticks.from_ns(42),
    datapath_scope: str = "port",
    ack_policy: str = "immediate",
    enable_msi: bool = False,
    kernel_config: Optional[KernelConfig] = None,
    check: Optional[bool] = None,
) -> PcieSystem:
    """The Table II topology: a NIC directly on a root port, with the
    root-complex latency swept."""
    sim = sim or Simulator(check=check)
    system = _build_core(sim, addrmap, kernel_config)

    root_complex = RootComplex(
        sim, num_root_ports=3,
        latency=rc_latency, buffer_size=buffer_size,
        service_interval=service_interval, datapath_scope=datapath_scope,
        link_speed=gen.speed_code, link_width=link_width,
    )
    _attach_root_complex(system, root_complex)

    if enable_msi:
        _attach_msi_doorbell(system)
    nic = Nic8254xPcie(sim, msi_functional=enable_msi)
    system.devices["nic"] = nic
    nic_link = PcieLink(sim, "nic_link", gen=gen, width=link_width,
                        replay_buffer_size=replay_buffer_size,
                        ack_policy=ack_policy)
    _connect_link(nic_link, root_complex.root_ports[0], device=nic)
    system.links["nic"] = nic_link

    rp_buses = root_complex.register_with_host(system.host)
    rp_buses[0].add_function(0, 0, nic.function)

    _boot_and_bind(system, [("nic", E1000eDriver(), nic)])
    return system


def build_dual_device_system(
    sim: Optional[Simulator] = None,
    addrmap: AddressMap = VEXPRESS_GEM5_V1,
    gen: PcieGen = PcieGen.GEN2,
    root_link_width: int = 4,
    device_link_width: int = 1,
    rc_latency: int = ticks.from_ns(150),
    switch_latency: int = ticks.from_ns(150),
    buffer_size: int = 16,
    replay_buffer_size: int = 4,
    service_interval: int = ticks.from_ns(42),
    datapath_scope: str = "port",
    ack_policy: str = "immediate",
    kernel_config: Optional[KernelConfig] = None,
) -> PcieSystem:
    """A richer topology for the examples: the disk behind switch port 0
    and the NIC behind switch port 1, sharing the root link."""
    sim = sim or Simulator()
    system = _build_core(sim, addrmap, kernel_config)

    root_complex = RootComplex(
        sim, num_root_ports=3,
        latency=rc_latency, buffer_size=buffer_size,
        service_interval=service_interval, datapath_scope=datapath_scope,
        link_speed=gen.speed_code, link_width=root_link_width,
    )
    _attach_root_complex(system, root_complex)

    switch = PcieSwitch(
        sim, num_downstream_ports=2,
        latency=switch_latency, buffer_size=buffer_size,
        service_interval=service_interval, datapath_scope=datapath_scope,
        link_speed=gen.speed_code, link_width=device_link_width,
    )
    system.switch = switch
    root_link = PcieLink(sim, "root_link", gen=gen, width=root_link_width,
                         replay_buffer_size=replay_buffer_size,
                         ack_policy=ack_policy)
    _connect_link(root_link, root_complex.root_ports[0], switch=switch)
    system.links["root"] = root_link

    disk = IdeDisk(sim)
    nic = Nic8254xPcie(sim)
    system.devices["disk"] = disk
    system.devices["nic"] = nic
    disk_link = PcieLink(sim, "disk_link", gen=gen, width=device_link_width,
                         replay_buffer_size=replay_buffer_size,
                         ack_policy=ack_policy)
    nic_link = PcieLink(sim, "nic_link", gen=gen, width=device_link_width,
                        replay_buffer_size=replay_buffer_size,
                        ack_policy=ack_policy)
    _connect_link(disk_link, switch.downstream_ports[0], device=disk)
    _connect_link(nic_link, switch.downstream_ports[1], device=nic)
    system.links["disk"] = disk_link
    system.links["nic"] = nic_link

    rp_buses = root_complex.register_with_host(system.host)
    down_buses = switch.register_with_host(rp_buses[0])
    down_buses[0].add_function(0, 0, disk.function)
    down_buses[1].add_function(0, 0, nic.function)

    _boot_and_bind(
        system,
        [("disk", IdeDiskDriver(), disk), ("nic", E1000eDriver(), nic)],
    )
    return system


def build_classic_pci_system(
    sim: Optional[Simulator] = None,
    addrmap: AddressMap = VEXPRESS_GEM5_V1,
    clock_mhz: int = 33,
    disk_access_latency: int = ticks.from_us(1),
    kernel_config: Optional[KernelConfig] = None,
    check: Optional[bool] = None,
) -> PcieSystem:
    """The pre-PCI-Express baseline: the same IDE-like disk on a classic
    shared PCI bus (Section II-A) instead of the PCI-Express fabric.

    CPU requests cross a host bridge onto the shared bus; the disk's DMA
    masters the same bus toward memory (through the IOCache).  Useful
    only for the PCI-vs-PCIe ablation — everything else in the paper
    assumes the PCI-Express fabric.
    """
    from repro.mem.bridge import Bridge
    from repro.pci.bus import PciBus

    sim = sim or Simulator(check=check)
    system = _build_core(sim, addrmap, kernel_config)

    bus = PciBus(sim, clock_mhz=clock_mhz)
    system.devices["pci_bus"] = bus

    disk = IdeDisk(sim, access_latency=disk_access_latency)
    system.devices["disk"] = disk

    # CPU -> membus -> host bridge -> shared bus -> disk PIO.
    host_bridge = Bridge(sim, "host_bridge", delay=ticks.from_ns(100))
    host_bridge.slave_port.get_ranges = lambda: disk.function.bar_ranges(
        require_enable=False
    )
    host_bridge.slave_port.bind(system.membus.attach_slave("host_bridge_side"))
    host_bridge.master_port.bind(bus.attach_master("host_bridge"))
    bus.attach_target("disk_side").bind(disk.pio_port)

    # Disk DMA -> shared bus -> memory target -> IOCache -> membus.
    disk.dma_port.bind(bus.attach_master("disk_dma"))
    bus.attach_target(
        "memory_side", ranges=lambda: [addrmap.dram]
    ).bind(system.iocache.cpu_side)

    system.host.root_bus.add_function(1, 0, disk.function)
    _boot_and_bind(system, [("disk", IdeDiskDriver(), disk)])
    return system
