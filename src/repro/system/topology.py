"""Generic, spec-driven system assembly.

:func:`build_system` turns a declarative :class:`~repro.system.spec.TopologySpec`
tree — root complex, arbitrarily deep/fanned switch hierarchies,
per-link PCI-Express parameters, any mix of devices — into a fully
assembled machine of the paper's Figures 3 and 6: processor, MemBus,
DRAM, IOCache, PCI host, root complex, links, switches, devices,
kernel, drivers.  It then boots the kernel (PCI enumeration walks the
same tree through the virtual P2P bridges), binds drivers, and returns
a :class:`PcieSystem` with handles to every component keyed by the
spec's instance names.

The four historical builders (``build_validation_system``,
``build_nic_system``, ``build_dual_device_system``,
``build_classic_pci_system``) remain as thin wrappers over the spec
constructors in :mod:`repro.system.spec` — wire-compatible, same
component names, byte-identical traces and sweep payloads.

``build_validation_system`` reproduces the paper's validation topology:

    root complex ──Gen2 x4── switch ──Gen2 x1── IDE disk

with the root-complex latency fixed at 150 ns, switch latency 150 ns,
port buffers of 16 packets and replay buffers of 4 — every one of those
knobs is a keyword argument because the paper's Figure 9 sweeps them.
"""

from typing import Dict, List, Optional, Union

from repro.devices.accel import DmaAccelerator
from repro.devices.disk import IdeDisk
from repro.devices.nic import Nic8254xPcie
from repro.drivers.accel import DmaAccelDriver
from repro.drivers.e1000e import E1000eDriver
from repro.drivers.ide import IdeDiskDriver
from repro.kernel.kernel import KernelConfig, OsKernel
from repro.mem.dram import SimpleMemory
from repro.mem.iocache import IOCache
from repro.mem.xbar import CoherentXBar
from repro.pci.host import PciHost
from repro.pcie.link import PcieLink
from repro.pcie.root_complex import RootComplex
from repro.pcie.switch import PcieSwitch
from repro.pcie.timing import PcieGen
from repro.platform.addrmap import VEXPRESS_GEM5_V1, AddressMap
from repro.sim import ticks
from repro.sim.simobject import SimObject, Simulator
from repro.system.spec import (ClassicPciSpec, DeviceSpec, LinkSpec, SpecError,
                               SwitchSpec, TopologySpec, classic_pci_spec,
                               dual_device_spec, nic_spec, spec_from_dict,
                               validation_spec)

#: Device model and driver classes behind each :class:`DeviceSpec` kind.
#: The spec layer names kinds; this registry is the single place the
#: names meet classes, so a new device model is one entry here plus a
#: kind name in :data:`repro.system.spec.DEVICE_KIND_NAMES`.
DEVICE_KINDS = {
    "disk": (IdeDisk, IdeDiskDriver),
    "nic": (Nic8254xPcie, E1000eDriver),
    "accel": (DmaAccelerator, DmaAccelDriver),
}


class AmbiguousDeviceError(LookupError):
    """A singular convenience (``system.disk``, ``system.nic``, ...)
    was used on a fabric with several devices of that kind — name the
    one you mean via ``system.devices[name]`` / ``system.drivers[name]``
    (or ``device=`` in sweep points)."""


class PcieSystem:
    """Handles to an assembled, booted system.

    ``devices``/``links``/``switches``/``drivers`` are keyed by the
    spec's unique instance names; ``spec`` records the topology the
    machine was built from (None for hand-assembled systems).
    """

    def __init__(self, sim: Simulator, addrmap: AddressMap):
        self.sim = sim
        self.addrmap = addrmap
        self.membus: Optional[CoherentXBar] = None
        self.dram: Optional[SimpleMemory] = None
        self.iocache: Optional[IOCache] = None
        self.host: Optional[PciHost] = None
        self.kernel: Optional[OsKernel] = None
        self.root_complex: Optional[RootComplex] = None
        self.switch: Optional[PcieSwitch] = None
        self.switches: Dict[str, PcieSwitch] = {}
        self.links: Dict[str, PcieLink] = {}
        self.devices: Dict[str, object] = {}
        self.drivers: Dict[str, object] = {}
        self.msi_doorbell = None
        self.spec: Optional[Union[TopologySpec, ClassicPciSpec]] = None
        self.found_devices = []

    # -- conveniences -------------------------------------------------------
    def _sole_device(self, cls, kind: str):
        """The unique device instance of ``cls`` — None when the fabric
        has no such device, :class:`AmbiguousDeviceError` when it has
        several (silently picking one would misdirect every stat and
        request that follows)."""
        found = sorted(
            (name for name, d in self.devices.items() if isinstance(d, cls)))
        if len(found) > 1:
            raise AmbiguousDeviceError(
                f"system.{kind} is ambiguous: this fabric has "
                f"{len(found)} {kind} devices ({', '.join(found)}); "
                f"name the one you mean via system.devices[name] / "
                f"system.drivers[name] (or device= in sweep points)")
        return self.devices[found[0]] if found else None

    def _device_name(self, model) -> Optional[str]:
        for name, device in self.devices.items():
            if device is model:
                return name
        return None

    @property
    def disk(self) -> Optional[IdeDisk]:
        """The disk — by its classic ``"disk"`` name, else the sole
        :class:`IdeDisk` instance (None when absent,
        :class:`AmbiguousDeviceError` when there are several)."""
        return self.devices.get("disk") or self._sole_device(IdeDisk, "disk")

    @property
    def nic(self) -> Optional[Nic8254xPcie]:
        """The NIC — by name, else the sole instance (None when absent,
        :class:`AmbiguousDeviceError` when there are several)."""
        return self.devices.get("nic") or self._sole_device(
            Nic8254xPcie, "nic")

    @property
    def accel(self) -> Optional[DmaAccelerator]:
        """The accelerator — by its ``"accel"`` name, else the sole
        instance (None when absent, :class:`AmbiguousDeviceError` when
        there are several)."""
        return self.devices.get("accel") or self._sole_device(
            DmaAccelerator, "accel")

    @property
    def disk_driver(self) -> Optional[IdeDiskDriver]:
        """Driver of :attr:`disk` (None without an unambiguous disk)."""
        disk = self.disk
        return self.drivers.get(self._device_name(disk)) if disk else None

    @property
    def nic_driver(self) -> Optional[E1000eDriver]:
        """Driver of :attr:`nic` (None without an unambiguous NIC)."""
        nic = self.nic
        return self.drivers.get(self._device_name(nic)) if nic else None

    @property
    def accel_driver(self) -> Optional[DmaAccelDriver]:
        """Driver of :attr:`accel` (None without an unambiguous accel)."""
        accel = self.accel
        return self.drivers.get(self._device_name(accel)) if accel else None

    @property
    def disk_link(self) -> Optional[PcieLink]:
        """Link of :attr:`disk` — every device's link shares its name."""
        disk = self.disk
        return self.links.get(self._device_name(disk)) if disk else None

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drive the simulator (see :meth:`repro.sim.simobject.Simulator.run`)."""
        return self.sim.run(until=until, max_events=max_events)

    def stats(self) -> dict:
        """Flat dotted-name statistics dump of the whole machine."""
        return self.sim.dump_stats()


def _build_core(sim: Simulator, addrmap: AddressMap,
                kernel_config: Optional[KernelConfig]) -> PcieSystem:
    """The common substrate: MemBus + DRAM + IOCache + host + kernel."""
    system = PcieSystem(sim, addrmap)
    system.membus = CoherentXBar(
        sim, "membus",
        frontend_latency=ticks.from_ns(1),
        forward_latency=ticks.from_ns(1),
        width=64,
        queue_depth=16,
    )
    system.dram = SimpleMemory(sim, "dram", addrmap.dram)
    system.dram.port.bind(system.membus.attach_slave("dram_side"))
    system.host = PciHost(sim, ecam_base=addrmap.pci_config.start,
                          ecam_size=addrmap.pci_config.size)
    system.host.port.bind(system.membus.attach_slave("pci_host_side"))
    system.kernel = OsKernel(sim, config=kernel_config)
    system.kernel.cpu.port.bind(system.membus.attach_master("cpu"))
    system.iocache = IOCache(sim, "iocache")
    system.iocache.mem_side.bind(system.membus.attach_master("iocache_side"))
    return system


def _attach_msi_doorbell(system: PcieSystem) -> None:
    """Give the platform an MSI doorbell (the extension path): devices
    whose MSI capability the driver enables interrupt by posting memory
    writes here instead of wiggling INTx."""
    from repro.kernel.interrupts import MsiDoorbell

    doorbell = MsiDoorbell(system.sim, intc=system.kernel.intc)
    doorbell.port.bind(system.membus.attach_slave("msi_doorbell_side"))
    system.msi_doorbell = doorbell
    system.kernel.msi_target_addr = doorbell.range.start


def _attach_root_complex(system: PcieSystem, root_complex: RootComplex) -> None:
    root_complex.upstream_slave.bind(system.membus.attach_slave("rc_side"))
    root_complex.upstream_master.bind(system.iocache.cpu_side)
    system.root_complex = root_complex


def _connect_link(link: PcieLink, upstream_port, device=None, switch=None) -> None:
    """Wire a link between an RC/switch port (upstream end) and either a
    device or a switch upstream port (downstream end)."""
    upstream_port.master_port.bind(link.upstream_if.slave_port)
    link.upstream_if.master_port.bind(upstream_port.slave_port)
    if device is not None:
        link.downstream_if.master_port.bind(device.pio_port)
        device.dma_port.bind(link.downstream_if.slave_port)
    elif switch is not None:
        link.downstream_if.master_port.bind(switch.upstream_slave)
        switch.upstream_master.bind(link.downstream_if.slave_port)
    else:
        raise ValueError("link needs a device or a switch at its downstream end")


def _boot_and_bind(system: PcieSystem, driver_specs: List[tuple]) -> None:
    """Enumerate, then bind (name, driver, device_model) triples.

    The name→driver mapping in ``system.drivers`` is made by model
    identity (``driver.device``), not list position, so it stays correct
    however the kernel's first-match binding pairs drivers with multiple
    same-kind devices.
    """
    kernel = system.kernel
    system.found_devices = kernel.boot(
        system.host,
        mem_window=system.addrmap.pci_mem,
        io_window=system.addrmap.pci_io,
    )
    device_map = {}
    models = {id(model): (name, model) for name, __, model in driver_specs}
    for node in kernel.enumerator.all_devices():
        if node.is_bridge:
            continue
        for __, __, model in driver_specs:
            if system.host.function_at(*node.bdf) is model.function:
                device_map[node.bdf] = model
    kernel.bind_drivers([drv for __, drv, __ in driver_specs], device_map)
    for __, driver, __ in driver_specs:
        if not driver.bound:
            raise RuntimeError(
                f"{type(driver).__name__} found no device to bind")
        name, model = models[id(driver.device)]
        system.drivers[name] = driver
        model.intc = kernel.intc


# ---------------------------------------------------------------------------
# The generic, spec-driven builder.
# ---------------------------------------------------------------------------


def _advertised_link(node: Union[TopologySpec, SwitchSpec]) -> LinkSpec:
    """The LinkSpec whose gen/width an engine's VP2P bridges advertise.

    Mirrors the historical builders: the root complex advertised its
    root link, the switch its device links — i.e. the first child's
    edge.  A childless switch falls back to its own uplink.
    """
    if node.children:
        return node.children[0].link
    return node.link  # only reachable for SwitchSpec


def _build_link(sim: Simulator, link: LinkSpec) -> PcieLink:
    """Instantiate one :class:`PcieLink` named ``{link.name}_link``."""
    extra = {}
    if link.replay_timeout is not None:
        extra["replay_timeout"] = link.replay_timeout
    if link.ack_period is not None:
        extra["ack_period"] = link.ack_period
    return PcieLink(
        sim, f"{link.name}_link", gen=PcieGen[link.gen], width=link.width,
        propagation_delay=link.propagation_delay,
        replay_buffer_size=link.replay_buffer_size,
        max_payload=link.max_payload, ack_policy=link.ack_policy,
        input_queue_size=link.input_queue_size,
        p_credits=link.p_credits, np_credits=link.np_credits,
        cpl_credits=link.cpl_credits, error_rate=link.error_rate,
        dllp_error_rate=link.dllp_error_rate, error_seed=link.error_seed,
        **extra,
    )


def _build_subtree(sim: Simulator, system: PcieSystem,
                   node: Union[SwitchSpec, DeviceSpec], upstream_port,
                   enable_msi: bool) -> None:
    """Instantiate and wire one spec node (and, for switches, the whole
    subtree behind it) below ``upstream_port``."""
    if isinstance(node, DeviceSpec):
        model_cls, __ = DEVICE_KINDS[node.kind]
        params = dict(node.params)
        if enable_msi:
            params.setdefault("msi_functional", True)
        device = model_cls(sim, name=node.name, **params)
        system.devices[node.name] = device
        link = _build_link(sim, node.link)
        _connect_link(link, upstream_port, device=device)
        system.links[node.link.name] = link
        return

    advert = _advertised_link(node)
    switch = PcieSwitch(
        sim, name=node.name,
        num_downstream_ports=node.effective_num_ports,
        latency=node.latency, buffer_size=node.buffer_size,
        service_interval=node.service_interval,
        datapath_scope=node.datapath_scope,
        link_speed=PcieGen[advert.gen].speed_code, link_width=advert.width,
    )
    system.switches[node.name] = switch
    if system.switch is None:
        system.switch = switch
    link = _build_link(sim, node.link)
    _connect_link(link, upstream_port, switch=switch)
    system.links[node.link.name] = link
    for i, child in enumerate(node.children):
        _build_subtree(sim, system, child, switch.downstream_ports[i],
                       enable_msi)


def _register_subtree(system: PcieSystem,
                      node: Union[SwitchSpec, DeviceSpec], parent_bus) -> None:
    """Install one node's configuration-space presence on ``parent_bus``
    (recursing through switch-internal buses), mirroring the physical
    wiring laid down by :func:`_build_subtree`."""
    if isinstance(node, DeviceSpec):
        parent_bus.add_function(0, 0, system.devices[node.name].function)
        return
    down_buses = system.switches[node.name].register_with_host(parent_bus)
    for i, child in enumerate(node.children):
        _register_subtree(system, child, down_buses[i])


def _build_pcie_from_spec(spec: TopologySpec, sim: Simulator,
                          addrmap: AddressMap,
                          kernel_config: Optional[KernelConfig]) -> PcieSystem:
    """Assemble, boot and bind a PCI-Express machine from a spec tree."""
    spec.validate()
    system = _build_core(sim, addrmap, kernel_config)
    system.spec = spec
    # The partitioned-parallel engine (repro.sim.partition) needs the
    # built system and its spec to plan subtree cuts at run time.
    sim.pcie_system = system

    advert = _advertised_link(spec)
    root_complex = RootComplex(
        sim, num_root_ports=spec.effective_num_root_ports,
        latency=spec.rc_latency, buffer_size=spec.rc_buffer_size,
        service_interval=spec.rc_service_interval,
        datapath_scope=spec.rc_datapath_scope,
        link_speed=PcieGen[advert.gen].speed_code, link_width=advert.width,
    )
    _attach_root_complex(system, root_complex)
    if spec.enable_msi:
        _attach_msi_doorbell(system)

    for i, child in enumerate(spec.children):
        _build_subtree(sim, system, child, root_complex.root_ports[i],
                       spec.enable_msi)

    # Configuration-space tree: root ports on bus 0, each subtree behind
    # its root port, in spec (= physical wiring = discovery) order.
    rp_buses = root_complex.register_with_host(system.host)
    for i, child in enumerate(spec.children):
        _register_subtree(system, child, rp_buses[i])

    driver_specs = []
    for device in spec.devices():
        __, driver_cls = DEVICE_KINDS[device.kind]
        driver_specs.append(
            (device.name, driver_cls(), system.devices[device.name]))
    _boot_and_bind(system, driver_specs)
    return system


def _build_classic_from_spec(spec: ClassicPciSpec, sim: Simulator,
                             addrmap: AddressMap,
                             kernel_config: Optional[KernelConfig]) -> PcieSystem:
    """Assemble the classic shared-PCI-bus baseline from a spec.

    CPU requests cross a host bridge onto the shared bus; the disk's DMA
    masters the same bus toward memory (through the IOCache).  Useful
    only for the PCI-vs-PCIe ablation — everything else in the paper
    assumes the PCI-Express fabric.
    """
    from repro.mem.bridge import Bridge
    from repro.pci.bus import PciBus

    spec.validate()
    system = _build_core(sim, addrmap, kernel_config)
    system.spec = spec
    sim.pcie_system = system

    bus = PciBus(sim, clock_mhz=spec.clock_mhz)
    system.devices["pci_bus"] = bus

    model_cls, driver_cls = DEVICE_KINDS[spec.device.kind]
    disk = model_cls(sim, name=spec.device.name, **spec.device.params)
    system.devices[spec.device.name] = disk

    # CPU -> membus -> host bridge -> shared bus -> disk PIO.
    host_bridge = Bridge(sim, "host_bridge", delay=ticks.from_ns(100))
    host_bridge.slave_port.get_ranges = lambda: disk.function.bar_ranges(
        require_enable=False
    )
    host_bridge.slave_port.bind(system.membus.attach_slave("host_bridge_side"))
    host_bridge.master_port.bind(bus.attach_master("host_bridge"))
    bus.attach_target(f"{spec.device.name}_side").bind(disk.pio_port)

    # Disk DMA -> shared bus -> memory target -> IOCache -> membus.
    disk.dma_port.bind(bus.attach_master(f"{spec.device.name}_dma"))
    bus.attach_target(
        "memory_side", ranges=lambda: [addrmap.dram]
    ).bind(system.iocache.cpu_side)

    system.host.root_bus.add_function(1, 0, disk.function)
    _boot_and_bind(system, [(spec.device.name, driver_cls(), disk)])
    return system


def build_system(
    spec: Union[TopologySpec, ClassicPciSpec, dict],
    sim: Optional[Simulator] = None,
    addrmap: AddressMap = VEXPRESS_GEM5_V1,
    kernel_config: Optional[KernelConfig] = None,
    check: Optional[bool] = None,
    partitions: Optional[int] = None,
) -> PcieSystem:
    """Build, boot and bind any machine a topology spec can describe.

    Args:
        spec: a :class:`~repro.system.spec.TopologySpec`, a
            :class:`~repro.system.spec.ClassicPciSpec`, or either's
            :meth:`to_dict`/JSON document form.
        sim: an existing simulator to build into (a fresh one is created
            otherwise).
        addrmap: the platform address map.
        kernel_config: kernel timing/behaviour knobs.
        check: arm the runtime invariant checker on the freshly built
            simulator (ignored when ``sim`` is supplied); None defers to
            the ``REPRO_CHECK`` environment variable.
        partitions: partition-count hint for the ``parallel`` backend
            (see :mod:`repro.sim.partition`); None defers to the
            ``REPRO_PARTITIONS`` environment variable.  Ignored by
            single-process backends.

    Returns:
        A :class:`PcieSystem` whose ``devices``/``links``/``switches``/
        ``drivers`` mappings are keyed by the spec's instance names and
        whose ``spec`` attribute records the topology built.
    """
    if isinstance(spec, dict):
        spec = spec_from_dict(spec)
    sim = sim or Simulator(check=check)
    if partitions is not None:
        sim.partition_hint = partitions
    if isinstance(spec, ClassicPciSpec):
        return _build_classic_from_spec(spec, sim, addrmap, kernel_config)
    if isinstance(spec, TopologySpec):
        return _build_pcie_from_spec(spec, sim, addrmap, kernel_config)
    raise SpecError(f"cannot build a system from {type(spec).__name__}")


# ---------------------------------------------------------------------------
# The historical builders, now thin wrappers over specs.
# ---------------------------------------------------------------------------


def build_validation_system(
    sim: Optional[Simulator] = None,
    addrmap: AddressMap = VEXPRESS_GEM5_V1,
    gen: PcieGen = PcieGen.GEN2,
    root_link_width: int = 4,
    device_link_width: int = 1,
    rc_latency: int = ticks.from_ns(150),
    switch_latency: int = ticks.from_ns(150),
    buffer_size: int = 16,
    replay_buffer_size: int = 4,
    service_interval: int = ticks.from_ns(42),
    datapath_scope: str = "port",
    ack_policy: str = "immediate",
    error_rate: float = 0.0,
    dllp_error_rate: float = 0.0,
    input_queue_size: int = 2,
    error_seed: int = 0x5EED,
    posted_writes: bool = False,
    disk_access_latency: int = ticks.from_us(1),
    enable_msi: bool = False,
    kernel_config: Optional[KernelConfig] = None,
    check: Optional[bool] = None,
) -> PcieSystem:
    """The paper's validation topology (Section VI-A).

    "We instantiate a PCI-Express switch, connect it to a root complex
    root port with a Gen 2 x4 link and attach the IDE disk to one of
    the switch downstream ports using a Gen 2 x1 link."

    ``input_queue_size`` and ``error_seed`` feed both links (the
    fault-injection stress campaign sweeps them); ``check`` arms the
    runtime invariant checker on the freshly built simulator (ignored
    when an existing ``sim`` is supplied).
    """
    spec = validation_spec(
        gen=gen.name, root_link_width=root_link_width,
        device_link_width=device_link_width, rc_latency=rc_latency,
        switch_latency=switch_latency, buffer_size=buffer_size,
        replay_buffer_size=replay_buffer_size,
        service_interval=service_interval, datapath_scope=datapath_scope,
        ack_policy=ack_policy, error_rate=error_rate,
        dllp_error_rate=dllp_error_rate, input_queue_size=input_queue_size,
        error_seed=error_seed, posted_writes=posted_writes,
        disk_access_latency=disk_access_latency, enable_msi=enable_msi,
    )
    return build_system(spec, sim=sim, addrmap=addrmap,
                        kernel_config=kernel_config, check=check)


def build_nic_system(
    sim: Optional[Simulator] = None,
    addrmap: AddressMap = VEXPRESS_GEM5_V1,
    gen: PcieGen = PcieGen.GEN2,
    link_width: int = 1,
    rc_latency: int = ticks.from_ns(150),
    buffer_size: int = 16,
    replay_buffer_size: int = 4,
    service_interval: int = ticks.from_ns(42),
    datapath_scope: str = "port",
    ack_policy: str = "immediate",
    enable_msi: bool = False,
    kernel_config: Optional[KernelConfig] = None,
    check: Optional[bool] = None,
) -> PcieSystem:
    """The Table II topology: a NIC directly on a root port, with the
    root-complex latency swept."""
    spec = nic_spec(
        gen=gen.name, link_width=link_width, rc_latency=rc_latency,
        buffer_size=buffer_size, replay_buffer_size=replay_buffer_size,
        service_interval=service_interval, datapath_scope=datapath_scope,
        ack_policy=ack_policy, enable_msi=enable_msi,
    )
    return build_system(spec, sim=sim, addrmap=addrmap,
                        kernel_config=kernel_config, check=check)


def build_dual_device_system(
    sim: Optional[Simulator] = None,
    addrmap: AddressMap = VEXPRESS_GEM5_V1,
    gen: PcieGen = PcieGen.GEN2,
    root_link_width: int = 4,
    device_link_width: int = 1,
    rc_latency: int = ticks.from_ns(150),
    switch_latency: int = ticks.from_ns(150),
    buffer_size: int = 16,
    replay_buffer_size: int = 4,
    service_interval: int = ticks.from_ns(42),
    datapath_scope: str = "port",
    ack_policy: str = "immediate",
    kernel_config: Optional[KernelConfig] = None,
) -> PcieSystem:
    """A richer topology for the examples: the disk behind switch port 0
    and the NIC behind switch port 1, sharing the root link."""
    spec = dual_device_spec(
        gen=gen.name, root_link_width=root_link_width,
        device_link_width=device_link_width, rc_latency=rc_latency,
        switch_latency=switch_latency, buffer_size=buffer_size,
        replay_buffer_size=replay_buffer_size,
        service_interval=service_interval, datapath_scope=datapath_scope,
        ack_policy=ack_policy,
    )
    return build_system(spec, sim=sim, addrmap=addrmap,
                        kernel_config=kernel_config)


def build_classic_pci_system(
    sim: Optional[Simulator] = None,
    addrmap: AddressMap = VEXPRESS_GEM5_V1,
    clock_mhz: int = 33,
    disk_access_latency: int = ticks.from_us(1),
    kernel_config: Optional[KernelConfig] = None,
    check: Optional[bool] = None,
) -> PcieSystem:
    """The pre-PCI-Express baseline: the same IDE-like disk on a classic
    shared PCI bus (Section II-A) instead of the PCI-Express fabric."""
    spec = classic_pci_spec(clock_mhz=clock_mhz,
                            disk_access_latency=disk_access_latency)
    return build_system(spec, sim=sim, addrmap=addrmap,
                        kernel_config=kernel_config, check=check)
