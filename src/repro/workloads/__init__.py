"""Workload models: the software the paper's evaluation runs, plus the
multi-flow traffic engine and scenario library for contention studies."""

from repro.workloads.dd import DdWorkload, DdResult
from repro.workloads.mmio import MmioReadBench
from repro.workloads.traffic import (FLOW_KINDS, FlowSpec, TrafficEngine,
                                     TrafficError, jain_fairness)
from repro.workloads.scenarios import SCENARIOS, Scenario, run_scenario

__all__ = ["DdWorkload", "DdResult", "MmioReadBench", "FLOW_KINDS",
           "FlowSpec", "TrafficEngine", "TrafficError", "jain_fairness",
           "SCENARIOS", "Scenario", "run_scenario"]
