"""Workload models: the software the paper's evaluation runs."""

from repro.workloads.dd import DdWorkload, DdResult
from repro.workloads.mmio import MmioReadBench

__all__ = ["DdWorkload", "DdResult", "MmioReadBench"]
