"""The ``dd`` workload.

The paper benchmarks with ``dd`` reading a single block (64–512 MB)
from the storage device into ``/dev/zero`` with direct I/O — a simple
I/O-intensive program that floods the device with sequential reads, so
when the device's internal bandwidth exceeds the link's, the
PCI-Express interconnect is the measured bottleneck.

The model: a fixed startup cost (process exec, ``open(O_DIRECT)``,
buffer setup — the fixed software cost whose amortisation makes
throughput grow with block size), then one synchronous block-layer read
of the whole block, then the throughput report.  Writing to
``/dev/zero`` costs nothing, as on a real machine.

Simulating the paper's half-gigabyte blocks packet-by-packet in Python
is needlessly slow; benchmarks instead scale block size and startup cost
down by a common factor, which leaves the throughput-vs-blocksize curve
unchanged (both the numerator and the fixed term shrink together).
"""

from typing import Optional

from repro.sim import ticks
from repro.sim.process import Delay


class DdResult:
    """What ``dd`` prints at the end: bytes moved and the elapsed time."""

    def __init__(self, nbytes: int, elapsed_ticks: int, transfer_ticks: int):
        self.nbytes = nbytes
        self.elapsed_ticks = elapsed_ticks
        self.transfer_ticks = transfer_ticks

    @property
    def throughput_gbps(self) -> float:
        """End-to-end throughput including startup — what dd reports."""
        return self.nbytes * 8 / ticks.to_ns(self.elapsed_ticks)

    @property
    def transfer_gbps(self) -> float:
        """Throughput of the transfer phase alone."""
        return self.nbytes * 8 / ticks.to_ns(self.transfer_ticks)

    def __repr__(self) -> str:
        mb = self.nbytes / (1 << 20)
        return (
            f"<DdResult {mb:.0f}MB in {ticks.to_ms(self.elapsed_ticks):.2f}ms "
            f"= {self.throughput_gbps:.2f} Gbps>"
        )


class DdWorkload:
    """``dd if=/dev/disk of=/dev/zero bs=<block_size> count=1 iflag=direct``.

    Args:
        kernel: the OS kernel (supplies the block layer).
        driver: the bound block-device driver.
        block_size: bytes per block.
        count: blocks to copy (the paper uses 1).
        buffer_addr: DRAM address of the direct-I/O buffer.
        startup_overhead: fixed software cost before the transfer.
    """

    def __init__(
        self,
        kernel,
        driver,
        block_size: int,
        count: int = 1,
        buffer_addr: int = 0x9000_0000,
        startup_overhead: int = ticks.from_us(500),
    ):
        sector = driver.sector_size
        if block_size % sector:
            raise ValueError(f"block size must be a multiple of {sector}-byte sectors")
        self.kernel = kernel
        self.driver = driver
        self.block_size = block_size
        self.count = count
        self.buffer_addr = buffer_addr
        self.startup_overhead = startup_overhead
        self.result: Optional[DdResult] = None

    def run(self):
        """The process generator: spawn with ``kernel.spawn``."""
        start = self.kernel.curtick
        yield Delay(self.startup_overhead)
        transfer_start = self.kernel.curtick
        sectors_per_block = self.block_size // self.driver.sector_size
        for block in range(self.count):
            yield from self.kernel.block_layer.read(
                self.driver,
                lba=block * sectors_per_block,
                n_sectors=sectors_per_block,
                buffer_addr=self.buffer_addr,
            )
        now = self.kernel.curtick
        self.result = DdResult(
            nbytes=self.block_size * self.count,
            elapsed_ticks=now - start,
            transfer_ticks=now - transfer_start,
        )
        return self.result
