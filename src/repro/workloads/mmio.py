"""The MMIO-latency kernel module (Table II).

The paper: "We create a kernel module and measure the time taken to
access a location in the NIC memory space" — a 4-byte MMIO read,
repeated while sweeping the root-complex latency.  This is that kernel
module: it issues ``iterations`` dependent 4-byte reads of a device
register and records each round-trip time.
"""

from typing import List, Optional

from repro.sim import ticks


class MmioReadBench:
    """Measure 4-byte MMIO read latency from a kernel process.

    Args:
        kernel: the OS kernel (supplies the processor).
        addr: register address to read (e.g. NIC BAR0 + STATUS).
        iterations: dependent reads to issue.
    """

    def __init__(self, kernel, addr: int, iterations: int = 100):
        if iterations < 1:
            raise ValueError("need at least one iteration")
        self.kernel = kernel
        self.addr = addr
        self.iterations = iterations
        self.latencies_ticks: List[int] = []

    def run(self):
        """The process generator: spawn with ``kernel.spawn``."""
        cpu = self.kernel.cpu
        for __ in range(self.iterations):
            start = self.kernel.curtick
            yield from cpu.timed_read(self.addr, 4)
            self.latencies_ticks.append(self.kernel.curtick - start)
        return self.latencies_ticks

    @property
    def mean_latency_ns(self) -> Optional[float]:
        if not self.latencies_ticks:
            return None
        return ticks.to_ns(sum(self.latencies_ticks)) / len(self.latencies_ticks)
