"""Named, JSON-describable multi-flow scenarios.

A :class:`Scenario` pairs a :class:`~repro.system.spec.TopologySpec`
with a list of :class:`~repro.workloads.traffic.FlowSpec` flows under a
stable name, and serializes to canonical JSON exactly like a topology
spec — so a sweep point, a trace artifact and a bug report can all
name *the complete experiment* (machine + traffic) they ran, and the
sweep result cache keys on it.

The library (:data:`SCENARIOS`) holds the canonical contention studies:

* ``fanout_contention`` — N equal ``dd`` readers behind one shared
  Gen2 x1 switch uplink (the fairness benchmark; widening the uplink
  is the canonical relief experiment);
* ``mixed_rw`` — a reader, a writer and an MMIO latency probe sharing
  one root port;
* ``irq_storm`` — a ``dd`` reader with a NIC spraying MSIs at the CPU;
* ``nic_loopback`` — two NICs streaming loopback frames side by side;
* ``accel_fanout`` — two DMA copy accelerators saturating a shared
  uplink from the third device kind.

Run one from Python (:func:`run_scenario`) or the command line::

    python -m repro.workloads.scenarios --list
    python -m repro.workloads.scenarios fanout_contention --check
    python -m repro.workloads.scenarios --all --check

The CLI exits non-zero if any flow fails to complete or (with
``--check`` or ``REPRO_CHECK=on``) any protocol invariant is violated —
which is what the CI ``scenario-smoke`` job gates on.
"""

import argparse
import hashlib
import json
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim import ticks
from repro.sim.simobject import Simulator
from repro.system.spec import DeviceSpec, LinkSpec, SwitchSpec, TopologySpec
from repro.system.topology import build_system
from repro.workloads.traffic import FlowSpec, TrafficEngine, TrafficError

#: Trace categories scenario runs record when given a sink: the TLP
#: lifecycle, same vocabulary as the golden traces.
TRACE_CATEGORIES = ("link", "engine")


class Scenario:
    """A named (topology, flows) pair; pure data, like the specs.

    Args:
        name: stable scenario name (cache keys, artifact names).
        topology: the fabric to build (finalized
            :class:`~repro.system.spec.TopologySpec`).
        flows: the traffic to drive through it.
        description: one human-readable line.
    """

    def __init__(self, name: str, topology: TopologySpec,
                 flows: Sequence[FlowSpec], description: str = ""):
        if not name:
            raise TrafficError("scenario name must be non-empty")
        if not flows:
            raise TrafficError(f"scenario {name!r} has no flows")
        self.name = name
        self.topology = topology
        self.flows: List[FlowSpec] = list(flows)
        self.description = description

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The whole experiment as a canonical-JSON-safe document."""
        return {
            "name": self.name,
            "description": self.description,
            "topology": self.topology.to_dict(),
            "flows": [flow.to_dict() for flow in self.flows],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`."""
        if "name" not in doc or "topology" not in doc or "flows" not in doc:
            raise TrafficError("scenario document requires name, topology "
                               "and flows")
        return cls(
            name=doc["name"],
            topology=TopologySpec.from_dict(doc["topology"]),
            flows=[FlowSpec.from_dict(flow) for flow in doc["flows"]],
            description=doc.get("description", ""),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialise to JSON text (pretty by default)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse :meth:`to_json` output back."""
        return cls.from_dict(json.loads(text))

    def canonical(self) -> str:
        """Canonical JSON (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """Short SHA-256 prefix of :meth:`canonical`."""
        return hashlib.sha256(
            self.canonical().encode("utf-8")).hexdigest()[:12]

    def __repr__(self) -> str:
        return (f"<Scenario {self.name!r} flows={len(self.flows)} "
                f"digest={self.digest()}>")


# -- library builders -------------------------------------------------------

def fanout_contention(
    fanout: int = 4,
    uplink_width: int = 1,
    gen: str = "GEN2",
    requests: int = 8,
    block_bytes: int = 8192,
    error_rate: float = 0.0,
    dllp_error_rate: float = 0.0,
    seed: int = 1,
) -> Scenario:
    """``fanout`` equal ``dd`` readers on sibling disks behind one
    shared uplink — the canonical fairness experiment.

    The fabric is depth 2: a x4 trunk to the top switch, then the
    contended ``uplink`` (Gen 2, ``uplink_width`` lanes) down to a leaf
    switch fanning out to the disks on x4 device links, so the uplink
    is the only bottleneck.  Error rates apply to the uplink (the
    stress-campaign point injects there).
    """
    disks = [
        DeviceSpec("disk", name=f"disk{i}",
                   link=LinkSpec(name=f"disk{i}", gen=gen, width=4))
        for i in range(fanout)
    ]
    topology = TopologySpec(children=[
        SwitchSpec(name="sw_top",
                   link=LinkSpec(name="trunk", gen=gen, width=4),
                   children=[
                       SwitchSpec(name="sw_leaf",
                                  link=LinkSpec(name="uplink", gen=gen,
                                                width=uplink_width,
                                                error_rate=error_rate,
                                                dllp_error_rate=dllp_error_rate),
                                  children=disks),
                   ]),
    ]).finalize()
    flows = [
        FlowSpec(name=f"reader{i}", kind="dd_read", device=f"disk{i}",
                 requests=requests, bytes_per_request=block_bytes,
                 seed=seed + i)
        for i in range(fanout)
    ]
    return Scenario(
        "fanout_contention", topology, flows,
        f"{fanout} equal dd readers contending at a Gen2 "
        f"x{uplink_width} uplink")


def mixed_rw(requests: int = 6, block_bytes: int = 8192,
             seed: int = 1) -> Scenario:
    """A ``dd`` reader, a ``dd`` writer and an MMIO latency probe
    sharing one x1 root uplink (read/write/completion TLPs mixed on
    one edge)."""
    topology = TopologySpec(children=[
        SwitchSpec(name="switch",
                   link=LinkSpec(name="root_uplink", gen="GEN2", width=1),
                   children=[
                       DeviceSpec("disk", name="disk_r",
                                  link=LinkSpec(name="disk_r", gen="GEN2",
                                                width=1)),
                       DeviceSpec("disk", name="disk_w",
                                  link=LinkSpec(name="disk_w", gen="GEN2",
                                                width=1)),
                   ]),
    ]).finalize()
    flows = [
        FlowSpec(name="reader", kind="dd_read", device="disk_r",
                 requests=requests, bytes_per_request=block_bytes,
                 seed=seed),
        FlowSpec(name="writer", kind="dd_write", device="disk_w",
                 requests=requests, bytes_per_request=block_bytes,
                 seed=seed + 1),
        FlowSpec(name="probe", kind="mmio_read", device="disk_r",
                 requests=requests * 2, gap=ticks.from_us(20),
                 seed=seed + 2),
    ]
    return Scenario("mixed_rw", topology, flows,
                    "reader + writer + MMIO probe on one x1 root uplink")


def irq_storm(requests: int = 4, block_bytes: int = 8192,
              storm_interrupts: int = 40, seed: int = 1) -> Scenario:
    """A ``dd`` reader racing a NIC that sprays jittered MSI writes at
    the CPU through the shared root port (MSI is enabled fabric-wide,
    so every interrupt is a posted memory write on the wires)."""
    topology = TopologySpec(
        enable_msi=True,
        children=[
            SwitchSpec(name="switch",
                       link=LinkSpec(name="root_uplink", gen="GEN2",
                                     width=1),
                       children=[
                           DeviceSpec("disk", name="disk",
                                      link=LinkSpec(name="disk", gen="GEN2",
                                                    width=1)),
                           DeviceSpec("nic", name="nic",
                                      link=LinkSpec(name="nic", gen="GEN2",
                                                    width=1)),
                       ]),
        ]).finalize()
    flows = [
        FlowSpec(name="reader", kind="dd_read", device="disk",
                 requests=requests, bytes_per_request=block_bytes,
                 seed=seed),
        FlowSpec(name="storm", kind="irq_storm", device="nic",
                 requests=storm_interrupts, gap=ticks.from_us(2),
                 jitter=0.5, seed=seed + 1),
    ]
    return Scenario("irq_storm", topology, flows,
                    "dd reader racing an MSI interrupt storm")


def nic_loopback(frames: int = 6, frame_bytes: int = 1500,
                 seed: int = 1) -> Scenario:
    """Two NICs streaming MAC-loopback frames side by side behind one
    switch (every frame is a TX DMA read plus an RX DMA write)."""
    topology = TopologySpec(children=[
        SwitchSpec(name="switch",
                   link=LinkSpec(name="root_uplink", gen="GEN2", width=2),
                   children=[
                       DeviceSpec("nic", name=f"nic{i}",
                                  link=LinkSpec(name=f"nic{i}", gen="GEN2",
                                                width=1))
                       for i in range(2)
                   ]),
    ]).finalize()
    flows = [
        FlowSpec(name=f"stream{i}", kind="nic_tx", device=f"nic{i}",
                 requests=frames, bytes_per_request=frame_bytes,
                 loopback=True, seed=seed + i)
        for i in range(2)
    ]
    return Scenario("nic_loopback", topology, flows,
                    "two NICs streaming loopback frames side by side")


def accel_fanout(copies: int = 4, copy_bytes: int = 16384,
                 seed: int = 1) -> Scenario:
    """Two DMA copy accelerators (the third device kind) fanning DMA
    read+write bursts through a shared x2 uplink.

    The accelerators run at their device-default DMA depth.  This
    scenario used to pin ``dma_outstanding: 8`` to dodge the shared
    buffer pool's request livelock; per-class flow-control credits
    (see ARCHITECTURE.md, "Flow control & ordering") removed the need.
    """
    topology = TopologySpec(children=[
        SwitchSpec(name="switch",
                   link=LinkSpec(name="root_uplink", gen="GEN2", width=2),
                   children=[
                       DeviceSpec("accel", name=f"accel{i}",
                                  link=LinkSpec(name=f"accel{i}", gen="GEN2",
                                                width=1))
                       for i in range(2)
                   ]),
    ]).finalize()
    flows = [
        FlowSpec(name=f"copier{i}", kind="accel_copy", device=f"accel{i}",
                 requests=copies, bytes_per_request=copy_bytes,
                 seed=seed + i)
        for i in range(2)
    ]
    return Scenario("accel_fanout", topology, flows,
                    "two DMA copy accelerators sharing an uplink")


def np_storm(writers: int = 2, requests: int = 4, block_bytes: int = 16384,
             seed: int = 1) -> Scenario:
    """Concurrent unthrottled ``dd`` writers — a non-posted DMA read
    storm at the disks' default DMA depth (64 outstanding each).

    This is the exact configuration that used to livelock the fabric
    when ports kept a single shared buffer pool (known deviation #4,
    retired): the writers' DMA reads filled every buffer on the path
    and the completions they waited on had nowhere to land.  With
    per-class credits (see ARCHITECTURE.md, "Flow control & ordering")
    a non-posted flood can exhaust only the NP partition, completions
    always have a dedicated path, and the storm completes.  The
    scenario stays in the library as the credit-starvation regression:
    it must finish checker-armed with zero violations, unpinned.
    """
    topology = TopologySpec(children=[
        SwitchSpec(name="switch",
                   link=LinkSpec(name="root_uplink", gen="GEN2", width=1),
                   children=[
                       DeviceSpec("disk", name=f"disk{i}",
                                  link=LinkSpec(name=f"disk{i}", gen="GEN2",
                                                width=1))
                       for i in range(writers)
                   ]),
    ]).finalize()
    flows = [
        FlowSpec(name=f"writer{i}", kind="dd_write", device=f"disk{i}",
                 requests=requests, bytes_per_request=block_bytes,
                 seed=seed + i)
        for i in range(writers)
    ]
    return Scenario(
        "np_storm", topology, flows,
        f"{writers} unthrottled dd writers (non-posted DMA read storm)")


#: The scenario library: stable name -> zero-argument builder.  Every
#: entry must run checker-armed with zero violations (CI's
#: ``scenario-smoke`` job and the test battery enforce it).
SCENARIOS = {
    "fanout_contention": fanout_contention,
    "mixed_rw": mixed_rw,
    "irq_storm": irq_storm,
    "nic_loopback": nic_loopback,
    "accel_fanout": accel_fanout,
    "np_storm": np_storm,
}


def run_scenario(
    scenario: Scenario,
    check: Optional[bool] = None,
    sink=None,
    categories: Sequence[str] = TRACE_CATEGORIES,
    max_events: int = 200_000_000,
) -> Tuple[Any, TrafficEngine]:
    """Build the scenario's fabric, drive its flows to completion, and
    return ``(system, engine)``.

    Args:
        scenario: the scenario to run.
        check: arm the invariant checker (None defers to the
            ``REPRO_CHECK`` environment variable).  Armed runs record
            violations (``system.sim.checker.violations``) instead of
            raising, so callers can assert on the full list.
        sink: optional trace sink attached *after* boot (the trace
            covers traffic, not enumeration), restricted to
            ``categories``.
        max_events: safety valve for runaway scenarios.
    """
    sim = Simulator(check=check)
    if sim.checker.enabled:
        sim.checker.record_only = True
    system = build_system(scenario.topology, sim=sim)
    if sink is not None:
        sim.tracer.categories = frozenset(categories)
        sim.tracer.attach(sink)
    engine = TrafficEngine(system, scenario.flows)
    engine.start()
    system.run(max_events=max_events)
    return system, engine


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: run library scenarios and summarize per-flow results."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.scenarios",
        description="Run multi-flow traffic scenarios from the library.")
    parser.add_argument("names", nargs="*",
                        help="scenario names (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list library scenarios and exit")
    parser.add_argument("--all", action="store_true",
                        help="run every library scenario")
    parser.add_argument("--check", action="store_true",
                        help="arm the protocol-invariant checker")
    args = parser.parse_args(argv)

    if args.list:
        for name, builder in sorted(SCENARIOS.items()):
            scenario = builder()
            print(f"{name:20s} {scenario.description} "
                  f"({len(scenario.flows)} flows, digest {scenario.digest()})")
        return 0

    names = sorted(SCENARIOS) if args.all else list(args.names)
    if not names:
        parser.error("give scenario names, --all, or --list")
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        parser.error(f"unknown scenarios: {unknown} "
                     f"(library: {sorted(SCENARIOS)})")

    failed = False
    for name in names:
        scenario = SCENARIOS[name]()
        system, engine = run_scenario(
            scenario, check=True if args.check else None)
        results = engine.results()
        violations = system.sim.checker.violations
        print(f"== {name} (digest {scenario.digest()}) ==")
        from repro.analysis.report import flow_table, format_table
        print(format_table(flow_table(results)))
        print(f"fairness_index = {results['fairness_index']:.4f}   "
              f"total = {results['total_gbps']:.3f} Gbps   "
              f"completed = {results['completed']}   "
              f"violations = {len(violations)}")
        if not results["completed"]:
            print(f"FAIL: scenario {name!r} did not complete", file=sys.stderr)
            failed = True
        if violations:
            rules = sorted({v.rule for v in violations})
            print(f"FAIL: scenario {name!r} violated invariants: {rules}",
                  file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
