"""Multi-flow traffic engine.

The paper validates its model against single-stream ``dd`` transfers,
but its purpose is *future system exploration* — concurrent initiators
contending at shared switch uplinks.  This module drives N concurrent
**flows** against any :class:`~repro.system.spec.TopologySpec` fabric:

* each flow has its own initiator device, request shape (count, size,
  burst length), pacing (inter-burst gap with seeded jitter) and start
  offset;
* flows interleave deterministically through the hybrid event
  scheduler — same spec, same seeds, same fabric ⇒ byte-identical
  stats and traces;
* per-flow statistics (requests, bytes, and a
  :class:`~repro.sim.stats.Quantiles` of per-request latency) land in
  the simulator's stats tree under ``traffic.<flow>``, so they export
  and golden-compare like any other stat.

Flow kinds map onto the library's initiators:

=============  ====================================================
kind           what one request does
=============  ====================================================
``dd_read``    block-layer read of ``bytes_per_request`` from a disk
``dd_write``   block-layer write of the same shape
``nic_tx``     transmit one frame (optionally loopback to RX)
``mmio_read``  one timed 4-byte register read (latency probe)
``irq_storm``  raise one device interrupt (MSI/INTx pressure)
``accel_copy`` one accelerator memory-to-memory copy
=============  ====================================================

:class:`FlowSpec` is pure data (canonical-JSON-safe like the topology
specs); :class:`TrafficEngine` binds specs to a built
:class:`~repro.system.topology.PcieSystem` and spawns one kernel
process per flow.  The scenario library
(:mod:`repro.workloads.scenarios`) pairs flow lists with topologies
under stable names.
"""

import random
from typing import Any, Dict, List, Optional, Sequence

from repro.sim import ticks
from repro.sim.process import Delay, Process, WaitFor
from repro.sim.simobject import SimObject
from repro.sim.stats import StatGroup

#: Flow kinds the engine can drive (see module docstring table).
FLOW_KINDS = ("dd_read", "dd_write", "nic_tx", "mmio_read", "irq_storm",
              "accel_copy")

#: Kinds that move payload bytes (the denominators of fairness shares).
DATA_KINDS = ("dd_read", "dd_write", "nic_tx", "accel_copy")

#: Base of the per-flow DRAM buffer carve-out (inside the VExpress DRAM
#: range, clear of the kernel's descriptor rings at 0x8100_0000).
BUFFER_BASE = 0x9000_0000
#: Address stride between flow buffers — 16 MB each, disjoint.
BUFFER_STRIDE = 0x0100_0000


class TrafficError(ValueError):
    """An inconsistent flow specification or flow/fabric mismatch."""


class FlowSpec:
    """Declarative description of one traffic flow.

    Args:
        name: unique flow name (becomes the stats child group and the
            kernel process name).
        kind: one of :data:`FLOW_KINDS`.
        device: instance name of the initiator device in the fabric
            (``PcieSystem.devices`` key).
        requests: number of requests the flow issues.
        bytes_per_request: payload bytes per request (data kinds only;
            probes move a fixed 4 bytes, interrupts none).
        gap: inter-burst idle time in ticks (0 = saturating).
        jitter: fractional jitter on ``gap`` — each gap is drawn
            uniformly from ``gap * [1-jitter, 1+jitter]`` using the
            flow's own seeded RNG.
        burst: requests issued back-to-back between gaps.
        seed: seed of the flow's private RNG (jitter draws only, so
            equal seeds never couple two flows' data).
        start_delay: ticks before the flow's first request.
        loopback: ``nic_tx`` only — enable MAC loopback and require
            every transmitted frame to return on RX.
        mmio_offset: ``mmio_read`` only — BAR0 offset probed.
    """

    FIELDS = ("name", "kind", "device", "requests", "bytes_per_request",
              "gap", "jitter", "burst", "seed", "start_delay", "loopback",
              "mmio_offset")

    def __init__(
        self,
        name: str,
        kind: str,
        device: str,
        requests: int = 8,
        bytes_per_request: int = 4096,
        gap: int = 0,
        jitter: float = 0.0,
        burst: int = 1,
        seed: int = 1,
        start_delay: int = 0,
        loopback: bool = False,
        mmio_offset: int = 0x8,
    ):
        self.name = name
        self.kind = kind
        self.device = device
        self.requests = requests
        self.bytes_per_request = bytes_per_request
        self.gap = gap
        self.jitter = jitter
        self.burst = burst
        self.seed = seed
        self.start_delay = start_delay
        self.loopback = loopback
        self.mmio_offset = mmio_offset

    def validate(self) -> None:
        """Check the flow spec in isolation (fabric checks happen when
        the engine binds it)."""
        if not self.name:
            raise TrafficError("flow name must be non-empty")
        if self.kind not in FLOW_KINDS:
            raise TrafficError(f"flow {self.name!r}: unknown kind "
                               f"{self.kind!r} (expected one of {FLOW_KINDS})")
        if not self.device:
            raise TrafficError(f"flow {self.name!r}: device name required")
        if self.requests < 1:
            raise TrafficError(f"flow {self.name!r}: requests must be >= 1")
        if self.bytes_per_request < 1:
            raise TrafficError(
                f"flow {self.name!r}: bytes_per_request must be >= 1")
        if self.gap < 0 or self.start_delay < 0:
            raise TrafficError(
                f"flow {self.name!r}: gap/start_delay must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise TrafficError(
                f"flow {self.name!r}: jitter must be in [0, 1]")
        if self.burst < 1:
            raise TrafficError(f"flow {self.name!r}: burst must be >= 1")
        if self.loopback and self.kind != "nic_tx":
            raise TrafficError(
                f"flow {self.name!r}: loopback is only valid for nic_tx")

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a canonical-JSON-safe dict (all fields, always)."""
        return {field: getattr(self, field) for field in self.FIELDS}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FlowSpec":
        """Inverse of :meth:`to_dict` (missing fields take defaults)."""
        unknown = set(doc) - set(cls.FIELDS)
        if unknown:
            raise TrafficError(f"unknown FlowSpec fields: {sorted(unknown)}")
        if "name" not in doc or "kind" not in doc or "device" not in doc:
            raise TrafficError("FlowSpec requires name, kind and device")
        return cls(**doc)

    def __repr__(self) -> str:
        return f"<FlowSpec {self.kind} {self.name!r} -> {self.device}>"


class _FlowState:
    """Runtime bookkeeping the engine keeps per flow."""

    def __init__(self, spec: FlowSpec, driver, device, stats: StatGroup,
                 buffer_addr: int):
        self.spec = spec
        self.driver = driver
        self.device = device
        self.buffer_addr = buffer_addr
        self.rng = random.Random(spec.seed)
        self.process: Optional[Process] = None
        self.first_issue_tick: Optional[int] = None
        self.last_complete_tick: Optional[int] = None
        self.requests_issued = stats.scalar(
            "requests_issued", "requests handed to the initiator")
        self.requests_completed = stats.scalar(
            "requests_completed", "requests whose completion was observed")
        self.bytes_moved = stats.scalar(
            "bytes_moved", "payload bytes moved by completed requests")
        self.request_ticks = stats.quantiles(
            "request_ticks", "issue-to-completion latency per request")


class TrafficEngine(SimObject):
    """Drive a set of :class:`FlowSpec` flows against a built system.

    Args:
        system: the :class:`~repro.system.topology.PcieSystem` to load.
        flows: flow specs; validated against each other and the fabric
            at construction time, so a bad scenario fails before any
            event runs.
        name: SimObject name (stats prefix).
    """

    #: Kinds that require exclusive ownership of their device (their
    #: drivers hold single-request state; MMIO probes may share).
    EXCLUSIVE_KINDS = ("dd_read", "dd_write", "nic_tx", "irq_storm",
                      "accel_copy")

    def __init__(self, system, flows: Sequence[FlowSpec], name: str = "traffic"):
        # Flow-list shape is checked before the engine registers itself,
        # so a rejected scenario leaves the simulator registry untouched
        # (full names are unique; a corpse would block the next attempt).
        flows = list(flows)
        if not flows:
            raise TrafficError("traffic engine needs at least one flow")
        names = [spec.name for spec in flows]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise TrafficError(f"duplicate flow names: {dupes}")
        super().__init__(system.sim, name)
        self.system = system
        self.flows: List[FlowSpec] = flows
        self._states: Dict[str, _FlowState] = {}
        self._validate_and_bind()

    # -- validation ---------------------------------------------------------
    def _validate_and_bind(self) -> None:
        owners: Dict[str, str] = {}
        for index, spec in enumerate(self.flows):
            spec.validate()
            if spec.device not in self.system.devices:
                raise TrafficError(
                    f"flow {spec.name!r}: no device {spec.device!r} in this "
                    f"fabric (have: {', '.join(sorted(self.system.devices))})")
            device = self.system.devices[spec.device]
            driver = self.system.drivers.get(spec.device)
            self._check_capability(spec, device, driver)
            if spec.kind in self.EXCLUSIVE_KINDS:
                if spec.device in owners:
                    raise TrafficError(
                        f"flows {owners[spec.device]!r} and {spec.name!r} "
                        f"both need exclusive use of device {spec.device!r} "
                        f"(only mmio_read flows may share)")
                owners[spec.device] = spec.name
            stats = self.stats.add_child(StatGroup(spec.name))
            self._states[spec.name] = _FlowState(
                spec, driver, device, stats,
                BUFFER_BASE + index * BUFFER_STRIDE)

    @staticmethod
    def _check_capability(spec: FlowSpec, device, driver) -> None:
        needs = {
            "dd_read": "start_request", "dd_write": "start_request",
            "nic_tx": "transmit", "accel_copy": "start_copy",
            "mmio_read": "bar0",
        }.get(spec.kind)
        if spec.kind == "irq_storm":
            if not hasattr(device, "raise_interrupt"):
                raise TrafficError(
                    f"flow {spec.name!r}: device {spec.device!r} cannot "
                    f"raise interrupts")
            return
        if driver is None or not hasattr(driver, needs):
            raise TrafficError(
                f"flow {spec.name!r}: device {spec.device!r} has no driver "
                f"with {needs!r} — wrong device kind for {spec.kind!r}?")

    # -- execution ----------------------------------------------------------
    def start(self) -> None:
        """Spawn one kernel process per flow (call once, before run)."""
        kernel = self.system.kernel
        for spec in self.flows:
            state = self._states[spec.name]
            if state.process is not None:
                raise TrafficError("traffic engine already started")
            state.process = kernel.spawn(
                f"flow_{spec.name}", self._run_flow(state),
                start_delay=spec.start_delay)

    def _next_gap(self, state: _FlowState) -> int:
        spec = state.spec
        if spec.gap <= 0:
            return 0
        if spec.jitter <= 0.0:
            return spec.gap
        scale = 1.0 - spec.jitter + 2.0 * spec.jitter * state.rng.random()
        return max(0, round(spec.gap * scale))

    def _run_flow(self, state: _FlowState):
        spec = state.spec
        issue = getattr(self, f"_issue_{spec.kind}")
        prepared = yield from self._prepare(state)
        for index in range(spec.requests):
            if index > 0 and index % spec.burst == 0:
                gap = self._next_gap(state)
                if gap > 0:
                    yield Delay(gap)
            if state.first_issue_tick is None:
                state.first_issue_tick = self.curtick
            issued_at = self.curtick
            state.requests_issued.inc()
            moved = yield from issue(state, index, prepared)
            state.request_ticks.sample(self.curtick - issued_at)
            state.requests_completed.inc()
            state.bytes_moved.inc(moved)
            state.last_complete_tick = self.curtick

    def _prepare(self, state: _FlowState):
        """Per-flow one-time setup (NIC bring-up); returns opaque state
        handed to every issue call."""
        if state.spec.kind == "nic_tx":
            yield from state.driver.bring_up()
            if state.spec.loopback:
                yield from state.driver.enable_loopback()
        return None
        yield  # pragma: no cover - makes this a generator when the body is empty

    # Each _issue_* is a generator completing one request and returning
    # the payload bytes it moved.
    def _issue_dd_read(self, state, index, prepared):
        return (yield from self._issue_dd(state, index, is_write=False))

    def _issue_dd_write(self, state, index, prepared):
        return (yield from self._issue_dd(state, index, is_write=True))

    def _issue_dd(self, state, index, is_write):
        kernel = self.system.kernel
        sector = state.driver.sector_size
        n_sectors = max(1, state.spec.bytes_per_request // sector)
        lba = index * n_sectors
        if is_write:
            yield from kernel.block_layer.write(
                state.driver, lba, n_sectors, state.buffer_addr)
        else:
            yield from kernel.block_layer.read(
                state.driver, lba, n_sectors, state.buffer_addr)
        return n_sectors * sector

    def _issue_nic_tx(self, state, index, prepared):
        length = state.spec.bytes_per_request
        rx_done = None
        if state.spec.loopback:
            rx_done = state.driver.post_rx_buffer(
                state.buffer_addr + BUFFER_STRIDE // 2, length)
        tx_done = yield from state.driver.transmit(state.buffer_addr, length)
        yield WaitFor(tx_done)
        if rx_done is not None:
            yield WaitFor(rx_done)
        return length

    def _issue_mmio_read(self, state, index, prepared):
        cpu = self.system.kernel.cpu
        addr = state.driver.bar0 + state.spec.mmio_offset
        yield from cpu.timed_read(addr, 4)
        return 4

    def _issue_irq_storm(self, state, index, prepared):
        state.device.raise_interrupt()
        return 0
        yield  # pragma: no cover - interrupts post asynchronously

    def _issue_accel_copy(self, state, index, prepared):
        nbytes = state.spec.bytes_per_request
        done = yield from state.driver.start_copy(
            state.buffer_addr, state.buffer_addr + BUFFER_STRIDE // 2, nbytes)
        yield WaitFor(done)
        return nbytes

    # -- results ------------------------------------------------------------
    @property
    def completed(self) -> bool:
        """True once every flow's process has run to completion."""
        return all(state.process is not None and state.process.done
                   for state in self._states.values())

    def results(self) -> Dict[str, Any]:
        """Per-flow summary plus the Jain's-fairness-index headline.

        The fairness index is computed over the *throughputs* of the
        data-moving flows (``(Σx)² / (n·Σx²)``: 1.0 = perfectly fair,
        1/n = one flow starves all others); probe and interrupt flows
        are excluded since they move no payload.
        """
        flows: Dict[str, Any] = {}
        data_rates: List[float] = []
        total_gbps = 0.0
        for spec in self.flows:
            state = self._states[spec.name]
            elapsed = 0
            if (state.first_issue_tick is not None
                    and state.last_complete_tick is not None):
                elapsed = state.last_complete_tick - state.first_issue_tick
            nbytes = state.bytes_moved.value()
            gbps = (ticks.bytes_per_tick_to_gbps(nbytes / elapsed)
                    if elapsed > 0 else 0.0)
            latency = state.request_ticks
            flows[spec.name] = {
                "kind": spec.kind,
                "device": spec.device,
                "requests_issued": state.requests_issued.value(),
                "requests_completed": state.requests_completed.value(),
                "bytes": nbytes,
                "elapsed_ticks": elapsed,
                "throughput_gbps": gbps,
                "mean_ns": ticks.to_ns(latency.mean),
                "p50_ns": ticks.to_ns(latency.percentile(0.50)),
                "p99_ns": ticks.to_ns(latency.percentile(0.99)),
                "p999_ns": ticks.to_ns(latency.percentile(0.999)),
            }
            if spec.kind in DATA_KINDS:
                data_rates.append(gbps)
                total_gbps += gbps
        for spec in self.flows:
            record = flows[spec.name]
            record["share"] = (record["throughput_gbps"] / total_gbps
                               if total_gbps > 0 else 0.0)
        return {
            "flows": flows,
            "fairness_index": jain_fairness(data_rates),
            "total_gbps": total_gbps,
            "completed": self.completed,
        }


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` over ``values``.

    1.0 when all values are equal, 1/n when one value dominates; 0.0
    for an empty or all-zero input (no allocation to be fair about).
    """
    values = [float(v) for v in values]
    if not values:
        return 0.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares <= 0.0:
        return 0.0
    return (total * total) / (len(values) * squares)
