"""The e1000e-style NIC driver.

Reproduces the paper's driver-facing behaviour: the module device table
claims device id 0x10D3, the probe walks the capability chain (PM → MSI
→ PCI-Express → MSI-X), attempts MSI-X and MSI — whose enable bits are
read-only zero — and falls back to a legacy interrupt handler.

The data path manages software TX/RX descriptor rings in DRAM: transmit
posts a descriptor and bumps the tail register (one timed MMIO write);
the interrupt handler reads ICR (read-to-clear) and completes waiting
senders/receivers.
"""

from collections import deque
from typing import Deque, Tuple

from repro.devices import nic as hw
from repro.drivers.base import Driver, DriverError
from repro.sim import ticks
from repro.sim.process import Delay, Signal


class E1000eDriver(Driver):
    """NIC driver; see module docstring.

    Args:
        ring_base: DRAM address where the driver lays out its rings.
        ring_entries: descriptors per ring.
        irq_entry_overhead: CPU cost charged at handler entry.
    """

    device_table = [(hw.INTEL_VENDOR_ID, hw.NIC_8254X_PCIE_DEVICE_ID)]

    def __init__(
        self,
        ring_base: int = 0x8100_0000,
        ring_entries: int = 256,
        irq_entry_overhead: int = ticks.from_us(1),
    ):
        super().__init__()
        self.ring_base = ring_base
        self.ring_entries = ring_entries
        self.irq_entry_overhead = irq_entry_overhead
        self.bar0 = 0
        self.interrupt_mode = ""
        self._tx_index = 0
        self._rx_index = 0
        # (signal, frame_number) in issue order.
        self._tx_waiters: Deque[Tuple[Signal, int]] = deque()
        self._rx_waiters: Deque[Signal] = deque()
        self._frames_issued = 0

    # -- ring geometry -------------------------------------------------------
    def _tx_descriptor_addr(self, index: int) -> int:
        return self.ring_base + (index % self.ring_entries) * hw.DESCRIPTOR_BYTES

    def _rx_descriptor_addr(self, index: int) -> int:
        rx_ring = self.ring_base + self.ring_entries * hw.DESCRIPTOR_BYTES
        return rx_ring + (index % self.ring_entries) * hw.DESCRIPTOR_BYTES

    # -- probe ------------------------------------------------------------------
    def probe(self) -> None:
        if self.device is None:
            raise DriverError("e1000e probed without a hardware model")
        self.require_pcie_capability()
        self.interrupt_mode = self.choose_interrupt_mode()
        self.bar0 = self.bar_base(0)
        self.register_interrupt()

    def bring_up(self):
        """Generator: post-probe device initialisation (link check,
        interrupt unmasking) over timed MMIO."""
        resp = yield from self.cpu.timed_read(self.bar0 + hw.REG_STATUS, 4)
        status = self.cpu.read_value(resp)
        if not status & hw.STATUS_LINK_UP:
            raise DriverError("NIC reports link down")
        yield from self.cpu.timed_write(
            self.bar0 + hw.REG_IMS, hw.ICR_TXDW | hw.ICR_RXT0, 4
        )
        return status

    def enable_loopback(self):
        """Generator: set CTRL.LOOPBACK so TX frames return on RX."""
        yield from self.cpu.timed_write(self.bar0 + hw.REG_CTRL, hw.CTRL_LOOPBACK, 4)

    # -- data path -------------------------------------------------------------------
    def transmit(self, buffer_addr: int, length: int):
        """Generator: queue one frame; returns a signal notified when
        the TX-done interrupt covers it."""
        desc_addr = self._tx_descriptor_addr(self._tx_index)
        self._tx_index += 1
        self._frames_issued += 1
        done = Signal(f"tx{self._frames_issued}", latch=True)
        self._tx_waiters.append((done, self._frames_issued))
        self.device.post_tx_descriptor(desc_addr, buffer_addr, length)
        yield from self.cpu.timed_write(self.bar0 + hw.REG_TDT,
                                        self._tx_index % self.ring_entries, 4)
        return done

    def post_rx_buffer(self, buffer_addr: int, capacity: int) -> Signal:
        """Make a receive buffer available; the returned signal notifies
        when a frame lands in it (FIFO order)."""
        desc_addr = self._rx_descriptor_addr(self._rx_index)
        self._rx_index += 1
        done = Signal(f"rx{self._rx_index}", latch=True)
        self._rx_waiters.append(done)
        self.device.post_rx_buffer(desc_addr, buffer_addr, capacity)
        return done

    # -- interrupt handler ------------------------------------------------------------
    def _irq_handler(self):
        yield Delay(self.irq_entry_overhead)
        resp = yield from self.cpu.timed_read(self.bar0 + hw.REG_ICR, 4)
        causes = self.cpu.read_value(resp)
        if causes & hw.ICR_TXDW:
            transmitted = self.device.frames_transmitted.value()
            while self._tx_waiters and self._tx_waiters[0][1] <= transmitted:
                signal, __ = self._tx_waiters.popleft()
                signal.notify()
        if causes & hw.ICR_RXT0:
            received = self.device.frames_received.value()
            completed = self._rx_index - len(self._rx_waiters)
            to_wake = min(len(self._rx_waiters), int(received) - completed)
            for __ in range(max(0, to_wake)):
                self._rx_waiters.popleft().notify()
