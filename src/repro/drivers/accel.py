"""Driver for the DMA copy accelerator.

Mirrors the IDE block driver's shape: program the transfer through
timed MMIO register writes (each a real round trip through the
fabric), kick the command, and complete from the interrupt handler —
one copy in flight at a time, like the hardware's single command slot.
"""

from repro.devices import accel as hw
from repro.drivers.base import Driver, DriverError
from repro.sim import ticks
from repro.sim.process import Delay, Signal


class DmaAccelDriver(Driver):
    """Driver for :class:`repro.devices.accel.DmaAccelerator`.

    Args:
        irq_entry_overhead: CPU cost charged at handler entry (context
            save, IRQ bookkeeping).
    """

    device_table = [(hw.ACCEL_VENDOR_ID, hw.ACCEL_DEVICE_ID)]

    def __init__(self, irq_entry_overhead: int = ticks.from_us(1)):
        super().__init__()
        self.irq_entry_overhead = irq_entry_overhead
        self.bar0 = 0
        self.interrupt_mode = ""
        self._completion: Signal = Signal("accel.completion")
        self._copy_active = False

    # -- probe -------------------------------------------------------------------
    def probe(self) -> None:
        if self.device is None:
            raise DriverError("accel driver probed without a hardware model")
        self.require_pcie_capability()
        self.interrupt_mode = self.choose_interrupt_mode()
        self.bar0 = self.bar_base(0)
        self.register_interrupt()

    # -- copy path (generator: run inside a kernel process) ----------------------
    def start_copy(self, src: int, dst: int, nbytes: int):
        """Program and start one memory-to-memory copy.  Returns the
        completion signal (``yield from`` this, then
        ``yield WaitFor(signal)``)."""
        if self._copy_active:
            raise DriverError("accel driver handles one copy at a time")
        if nbytes < 1:
            raise DriverError("copy must move at least one byte")
        self._copy_active = True
        self._completion = Signal("accel.completion", latch=True)
        cpu = self.cpu
        yield from cpu.timed_write(self.bar0 + hw.REG_SRC, src, 8)
        yield from cpu.timed_write(self.bar0 + hw.REG_DST, dst, 8)
        yield from cpu.timed_write(self.bar0 + hw.REG_NBYTES, nbytes, 8)
        yield from cpu.timed_write(self.bar0 + hw.REG_CMD, hw.CMD_COPY, 4)
        return self._completion

    # -- interrupt handler (generator: spawned by the controller) ---------------------
    def _irq_handler(self):
        yield Delay(self.irq_entry_overhead)
        resp = yield from self.cpu.timed_read(self.bar0 + hw.REG_STATUS, 4)
        status = self.cpu.read_value(resp)
        if not status & hw.STATUS_IRQ:
            return  # spurious (line shared / already handled)
        yield from self.cpu.timed_write(self.bar0 + hw.REG_IRQ_CLEAR, 1, 4)
        error = bool(status & hw.STATUS_ERROR)
        self._copy_active = False
        self._completion.notify({"error": error})
