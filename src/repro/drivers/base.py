"""Driver base class and binding machinery."""

from typing import List, Optional, Tuple

from repro.pci.capabilities import (CAP_ID_MSI, CAP_ID_MSIX, CAP_ID_PCIE,
                                     MsiCapability)
from repro.pci.enumeration import FoundDevice


class DriverError(RuntimeError):
    """Probe or request-level driver failure."""


class Driver:
    """Base class for device drivers.

    Subclasses set :attr:`device_table` and implement :meth:`probe`.
    """

    #: The module device table: (vendor_id, device_id) pairs this driver
    #: claims.
    device_table: List[Tuple[int, int]] = []

    def __init__(self):
        self.kernel = None
        self.found: Optional[FoundDevice] = None
        self.device = None  # the hardware model (functional side-channel)
        self.bound = False

    # -- binding ------------------------------------------------------------
    def matches(self, node: FoundDevice) -> bool:
        return (node.vendor_id, node.device_id) in self.device_table

    def bind(self, kernel, node: FoundDevice, device_model) -> None:
        """Called by the kernel when the module device table matches."""
        if self.bound:
            raise DriverError(f"{type(self).__name__} is already bound")
        self.kernel = kernel
        self.found = node
        self.device = device_model
        self.probe()
        self.bound = True

    def probe(self) -> None:
        raise NotImplementedError

    # -- common helpers -----------------------------------------------------------
    @property
    def host(self):
        return self.kernel.enumerator.host

    @property
    def cpu(self):
        return self.kernel.cpu

    def config_read(self, offset: int, size: int = 4) -> int:
        return self.host.config_read(*self.found.bdf, offset, size)

    def config_write(self, offset: int, value: int, size: int = 4) -> None:
        self.host.config_write(*self.found.bdf, offset, value, size)

    def bar_base(self, index: int) -> int:
        for bar in self.found.bars:
            if bar.index == index:
                if bar.assigned is None:
                    raise DriverError(f"BAR{index} was never assigned an address")
                return bar.assigned.start
        raise DriverError(f"device has no BAR{index}")

    def choose_interrupt_mode(self) -> str:
        """Prefer MSI-X, then MSI, falling back to legacy INTx.

        The paper's capability structures present MSI and MSI-X with
        read-only-zero enable bits, so this always lands on "legacy"
        there — but the selection logic is real: the driver attempts to
        enable each mechanism and checks whether the bit stuck.
        """
        for cap_id, control_bit in ((CAP_ID_MSIX, 1 << 15), (CAP_ID_MSI, 1 << 0)):
            offset = self._find_cap(cap_id)
            if offset is None:
                continue
            control = self.config_read(offset + 2, 2)
            self.config_write(offset + 2, control | control_bit, 2)
            if self.config_read(offset + 2, 2) & control_bit:
                return "msix" if cap_id == CAP_ID_MSIX else "msi"
        return "legacy"

    def _find_cap(self, cap_id: int) -> Optional[int]:
        for found_id, offset in self.found.capabilities:
            if found_id == cap_id:
                return offset
        return None

    def program_msi(self, vector: int) -> None:
        """Point the device's (enabled) MSI capability at the platform
        doorbell with ``vector`` as the message data."""
        if self.kernel.msi_target_addr is None:
            raise DriverError("platform has no MSI doorbell")
        offset = self._find_cap(CAP_ID_MSI)
        if offset is None:
            raise DriverError("device has no MSI capability")
        self.config_write(offset + MsiCapability.ADDRESS,
                          self.kernel.msi_target_addr, 4)
        self.config_write(offset + MsiCapability.DATA, vector, 2)

    def register_interrupt(self) -> None:
        """Common probe tail: program MSI when it stuck, then hook the
        handler to the vector/line either way."""
        vector = self.found.interrupt_line
        if self.interrupt_mode == "msi":
            self.program_msi(vector)
        self.kernel.intc.register(vector, self._irq_handler)

    def _irq_handler(self):
        raise NotImplementedError

    def require_pcie_capability(self) -> int:
        offset = self._find_cap(CAP_ID_PCIE)
        if offset is None:
            raise DriverError(
                f"{type(self).__name__}: device advertises no PCI-Express capability"
            )
        return offset
