"""The storage (IDE-like) block driver.

Talks to :class:`repro.devices.disk.IdeDisk` through timed MMIO: each
request costs four register writes to program the transfer plus the
command write, and the interrupt handler reads the status register and
acknowledges — all real round trips through the PCI-Express fabric, so
driver overhead scales with interconnect latency exactly as on the
paper's machine.
"""

from repro.devices import disk as hw
from repro.drivers.base import Driver, DriverError
from repro.sim import ticks
from repro.sim.process import Delay, Signal


class IdeDiskDriver(Driver):
    """Block driver for the IDE-like disk.

    Args:
        irq_entry_overhead: CPU cost charged at handler entry (context
            save, IRQ bookkeeping).
    """

    device_table = [(hw.IDE_VENDOR_ID, hw.IDE_DEVICE_ID)]

    def __init__(self, irq_entry_overhead: int = ticks.from_us(1)):
        super().__init__()
        self.irq_entry_overhead = irq_entry_overhead
        self.bar0 = 0
        self.interrupt_mode = ""
        self._completion: Signal = Signal("ide.completion")
        self._request_active = False

    @property
    def sector_size(self) -> int:
        return self.device.sector_size if self.device is not None else 4096

    # -- probe -------------------------------------------------------------------
    def probe(self) -> None:
        if self.device is None:
            raise DriverError("IDE driver probed without a hardware model")
        self.require_pcie_capability()
        self.interrupt_mode = self.choose_interrupt_mode()
        self.bar0 = self.bar_base(0)
        self.register_interrupt()

    # -- request path (generator: run inside a kernel process) ----------------------
    def start_request(self, lba: int, n_sectors: int, buffer_addr: int,
                      is_write: bool):
        """Program and start one DMA transfer.  Returns the completion
        signal (``yield from`` this, then ``yield WaitFor(signal)``)."""
        if self._request_active:
            raise DriverError("IDE driver handles one request at a time")
        self._request_active = True
        self._completion = Signal("ide.completion", latch=True)
        cpu = self.cpu
        yield from cpu.timed_write(self.bar0 + hw.REG_LBA, lba, 4)
        yield from cpu.timed_write(self.bar0 + hw.REG_COUNT, n_sectors, 4)
        yield from cpu.timed_write(self.bar0 + hw.REG_BUF_ADDR, buffer_addr, 8)
        command = hw.CMD_WRITE_DMA if is_write else hw.CMD_READ_DMA
        yield from cpu.timed_write(self.bar0 + hw.REG_CMD, command, 4)
        return self._completion

    # -- interrupt handler (generator: spawned by the controller) ---------------------
    def _irq_handler(self):
        yield Delay(self.irq_entry_overhead)
        resp = yield from self.cpu.timed_read(self.bar0 + hw.REG_STATUS, 4)
        status = self.cpu.read_value(resp)
        if not status & hw.STATUS_IRQ:
            return  # spurious (line shared / already handled)
        yield from self.cpu.timed_write(self.bar0 + hw.REG_IRQ_CLEAR, 1, 4)
        error = bool(status & hw.STATUS_ERROR)
        self._request_active = False
        self._completion.notify({"error": error})
