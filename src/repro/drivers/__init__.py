"""Device-driver models.

Drivers expose a *module device table* of (vendor, device) pairs; the
kernel matches discovered endpoints against it and runs the winning
driver's probe, exactly as Linux binds ``e1000e`` to device id 0x10D3 in
the paper.  Driver code runs as kernel processes and touches hardware
only through timed MMIO — so driver overhead shows up in measured I/O
latency the way it does on the paper's simulated machine.
"""

from repro.drivers.accel import DmaAccelDriver
from repro.drivers.base import Driver, DriverError
from repro.drivers.ide import IdeDiskDriver
from repro.drivers.e1000e import E1000eDriver

__all__ = ["Driver", "DriverError", "DmaAccelDriver", "IdeDiskDriver",
           "E1000eDriver"]
