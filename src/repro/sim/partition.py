"""Partitioned-parallel simulation: one worker process per fabric subtree.

The ``parallel`` backend cuts a :class:`~repro.system.spec.TopologySpec`
into per-subtree partitions at PCIe link boundaries and runs each
partition in its own **forked worker process** with its own slice of the
event queue, coupling them only through the cut links' wire channels.
Synchronization is conservative (CMB-style): each boundary link's total
traversal latency — serialization of the smallest packet plus
propagation — is a *lookahead* window ``L``; no partition can influence
a neighbour sooner than ``L`` ticks into the future, so every partition
may safely drain all events strictly below ``min(next event anywhere,
earliest in-flight arrival) + min(L)`` before re-synchronizing.

Identity contract
-----------------
A partitioned run must be **byte-identical** to a single-process
``hybrid`` run: same final stats, same traces, same checkpoint capture.
Three mechanisms deliver this:

* **Boundary deliveries keep their global position.**  The sender-side
  wire hook consumes the sender's local sequence number at send time
  (exactly where the hybrid engine allocates the deliver event's
  sequence) and ships it with the packet.  The receiver re-inserts the
  delivery with a *fractional* sequence number placed between the local
  sequence numbers allocated before and after the send tick, so the
  ``(tick, priority, seq)`` dispatch order within the receiving
  partition matches the hybrid interleaving.
* **Trace events are re-merged in dispatch order.**  While partitioned,
  every process records trace events keyed by a *global* dispatch key;
  the master merges all records with a stable sort and replays dense
  TLP-id allocation over the merged stream, reproducing the hybrid
  trace byte for byte.
* **State is owned, shipped, and merged.**  Every sim object, stat and
  checker ledger belongs to exactly one partition (devices and switches
  to their subtree; each boundary link's halves split at the wire).
  At quiescence the workers ship their owned state and the master loads
  it over its stale copies, so post-run capture/analysis see exactly
  the hybrid end state.

The only synchronous cross-partition call in the model — a stalled
interface's flow-control watchdog poking ``peer._readvertise_credits()``
— is handled by a *hazard* sub-protocol: watchdog deadlines are reported
each round, the window is capped so no watchdog fires mid-drain, and
when one becomes due the master coordinates the fire on the owner and
the credit re-advertisement on the peer at the same tick.

Engagement is deliberately conservative: the engine only takes over for
quiescent-drain runs (``until is None``) of MSI-enabled PCIe fabrics
(legacy INTx is a zero-latency device→kernel call that bypasses the
fabric and therefore cannot be cut); everything else falls back to the
ordinary single-process drain, which is byte-identical by construction.
"""

import heapq
import itertools
import multiprocessing
import os
import traceback
from bisect import bisect_right
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.eventq import CallbackEvent, Event, EventQueue

#: Environment variable carrying the partition-count hint (the harness
#: ``--partitions`` flag exports it; ``build_system(partitions=N)``
#: takes precedence).
PARTITIONS_ENV = "REPRO_PARTITIONS"

#: Spacing of the fractional sequence numbers given to boundary
#: deliveries.  Fractions are dyadic and strictly between 0 and 1, so a
#: delivery sorts after local sequence ``base - 1`` and before ``base``
#: and never *ties* an integer — entry-list comparisons therefore never
#: reach the (unorderable) event object in slot 3.
_FRAC = 2.0 ** -21
_FRAC_LIMIT = (1 << 21) - 1

#: Per-rank offset for the process-global packet-id counter, so request
#: ids allocated in different workers never collide.  Packet ids never
#: surface in compared artifacts (traces carry dense remapped ids).
_PACKET_ID_STRIDE = 1 << 48


class PartitionError(RuntimeError):
    """A partitioned run failed (worker crash, budget, protocol error)."""


class _Abort(Exception):
    """Internal: the master told this worker to die quietly."""


# --------------------------------------------------------------------------
# Event queue
# --------------------------------------------------------------------------


class PartitionEventQueue(EventQueue):
    """An :class:`EventQueue` that can host one partition of a run.

    Outside a partitioned run it behaves exactly like the hybrid queue.
    When activated it additionally

    * logs *sequence watermarks* — ``(first sequence, tick)`` pairs
      recording at which tick each run of sequence numbers was
      allocated — so a local sequence number can be mapped back to its
      insertion tick, and a remote send tick can be mapped to the local
      sequence position it would have occupied;
    * accepts *boundary deliveries* with fractional sequence numbers
      via :meth:`insert_boundary`;
    * exposes :meth:`gmeta_for_key`, the global dispatch key used to
      merge per-partition trace streams deterministically.
    """

    def __init__(self, name: str = "eventq", bucket_bits: int = 20,
                 num_buckets: int = 64):
        super().__init__(name, bucket_bits, num_buckets)
        #: Rank of the partition this queue is driving, None when the
        #: queue is running plain single-process.
        self.partition_rank: Optional[int] = None
        #: ``(when, priority, seq)`` of the entry being dispatched by
        #: the partition engine's drain loop (set before service_one).
        self.current_key: Optional[tuple] = None
        self._n0 = 0
        self._wm_seqs: List[int] = []
        self._wm_ticks: List[int] = []
        self._frac_counters: Dict[int, int] = {}
        self._delivery_meta: Dict[float, tuple] = {}

    # -- partition lifecycle ----------------------------------------------
    def activate_partitioning(self, rank: int, n0: int) -> None:
        """Enter partitioned mode as partition ``rank``.

        ``n0`` is the pre-fork sequence snapshot: sequences below it
        were allocated by the single-process prefix and order globally
        by value; sequences at or above it are partition-local.
        """
        self.partition_rank = rank
        self._n0 = n0
        self._wm_seqs = [self._next_seq]
        self._wm_ticks = [self.curtick]
        self._frac_counters = {}
        self._delivery_meta = {}

    def deactivate_partitioning(self) -> None:
        """Leave partitioned mode (the queue reverts to plain hybrid)."""
        self.partition_rank = None
        self.current_key = None
        self._wm_seqs = []
        self._wm_ticks = []
        self._frac_counters = {}
        self._delivery_meta = {}

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, when: int) -> Event:
        """Schedule an event; in partitioned mode, log seq watermarks."""
        if self.partition_rank is None:
            return super().schedule(event, when)
        if self._wm_ticks[-1] != self.curtick:
            self._wm_seqs.append(self._next_seq)
            self._wm_ticks.append(self.curtick)
        if when < self.curtick:
            raise ValueError(
                f"cannot schedule {event!r} at {when} in the past "
                f"(curtick={self.curtick})"
            )
        if event._entry is not None:
            raise RuntimeError(f"{event!r} is already scheduled")
        event._when = when
        seq = self._next_seq
        self._next_seq = seq + 1
        entry = [when, event.priority, seq, event]
        event._entry = entry
        self._live += 1
        self._place_entry(entry, when)
        return event

    def _place_entry(self, entry: list, when: int) -> None:
        """Tiered placement with a *live-tail* bisect for the active batch.

        The base queue's active-tier insert bisects the whole batch and
        clamps the result to ``_active_pos``.  That is unsafe here: the
        consumed prefix can hold squashed entries with arbitrarily large
        keys (a descheduled replay timer parks a far-future key there),
        and a bisect probing such a key walks left of the clamp, so
        successive inserts stack at ``_active_pos`` in *reverse* order.
        Hybrid interleaves every insert with a dispatch that consumes
        it, masking the hazard; a partition batches many boundary
        inserts (and drain-local schedules) between dispatches and
        would dispatch them out of tick order.  Bounding the bisect to
        the live tail — which is sorted — gives the exact position.
        """
        offset = when - self._wheel_tick
        if offset < 0:
            active = self._active
            lo = self._active_pos
            hi = len(active)
            while lo < hi:
                mid = (lo + hi) // 2
                if entry < active[mid]:
                    hi = mid
                else:
                    lo = mid + 1
            active.insert(lo, entry)
        elif offset < self._span:
            idx = (when >> self._shift) & self._mask
            self._buckets[idx].append(entry)
            self._occupied |= 1 << idx
        else:
            heapq.heappush(self._heap, entry)

    def insertion_tick(self, seq: int) -> int:
        """The tick at which local sequence ``seq`` was allocated."""
        i = bisect_right(self._wm_seqs, seq) - 1
        return self._wm_ticks[i] if i >= 0 else 0

    def _seq_floor(self, send_tick: int) -> int:
        """First local sequence allocated strictly after ``send_tick``.

        A boundary delivery sent at ``send_tick`` must sort after every
        local sequence allocated at or before that tick and before any
        allocated later — exactly where the hybrid engine would have
        placed the deliver event's sequence number.
        """
        j = bisect_right(self._wm_ticks, send_tick)
        if j < len(self._wm_seqs):
            return self._wm_seqs[j]
        return self._next_seq

    def insert_boundary(self, when: int, event: Event, send_tick: int,
                        sender_rank: int, sender_seq: int) -> None:
        """Insert a cross-partition delivery at its global position.

        The entry gets a fractional sequence number just below the
        local sequence floor for ``send_tick``; deliveries sharing a
        floor are sub-ordered by insertion order, which the master
        makes deterministic by routing batches sorted by
        ``(send_tick, sender_rank, sender_seq)``.
        """
        if event._entry is not None:
            raise RuntimeError(f"{event!r} is already scheduled")
        base = self._seq_floor(send_tick)
        k = self._frac_counters.get(base, 0) + 1
        if k > _FRAC_LIMIT:
            raise PartitionError(
                f"more than {_FRAC_LIMIT} boundary deliveries share "
                f"sequence floor {base}")
        self._frac_counters[base] = k
        seq = (base - 1) + k * _FRAC
        self._delivery_meta[seq] = (send_tick, sender_rank, sender_seq)
        event._when = when
        entry = [when, event.priority, seq, event]
        event._entry = entry
        self._live += 1
        self._place_entry(entry, when)

    # -- global dispatch keys ----------------------------------------------
    def gmeta_for_key(self, key: tuple) -> tuple:
        """Global, cross-partition-comparable form of a dispatch key.

        Two stages, all shapes mutually comparable and collision-free:

        * pre-fork events:  ``(when, pri, 0, seq, 0, 0)`` — the global
          sequence number still orders them exactly;
        * post-fork events: ``(when, pri, 1, insertion_tick, rank,
          seq)`` — in a single-process run the clock is globally
          monotone, so the hybrid global sequence order of two events
          equals the order of their allocation ticks.  Boundary
          deliveries use their *send* tick as the insertion tick (the
          tick the hybrid engine allocated the deliver event at) and
          keep their fractional local sequence, so within one
          partition the gmeta order is exactly the dispatch order.

        Equal ``(when, pri, insertion_tick)`` across *different*
        partitions are ordered by rank — a convention the byte-identity
        test battery pins down.
        """
        when, pri, seq = key
        if isinstance(seq, float):
            send_tick = self._delivery_meta[seq][0]
            return (when, pri, 1, send_tick, self.partition_rank, seq)
        if seq < self._n0:
            return (when, pri, 0, seq, 0, 0)
        return (when, pri, 1, self.insertion_tick(seq),
                self.partition_rank, seq)

    def dispatch_gmeta(self) -> tuple:
        """Global key of the event currently being dispatched."""
        return self.gmeta_for_key(self.current_key)


class _BoundaryDeliverEvent(Event):
    """Wire delivery re-materialized on the receiving partition.

    Mirrors ``pcie.link._DeliverEvent`` (same name, same priority, same
    receiver call) but carries an unpickled packet copy and is built
    fresh per message instead of pooled.
    """

    __slots__ = ("receiver", "ppkt")

    def __init__(self, receiver, ppkt):
        super().__init__(name="deliver")
        self.receiver = receiver
        self.ppkt = ppkt

    def process(self) -> None:
        """Hand the packet to the receiving link interface."""
        receiver = self.receiver
        ppkt = self.ppkt
        self.receiver = None
        self.ppkt = None
        receiver.receive_from_link(ppkt)


# --------------------------------------------------------------------------
# Partition plan
# --------------------------------------------------------------------------


class _Cut:
    """One cut link: the boundary between a parent and a child rank."""

    __slots__ = ("cut_id", "link_name", "parent_rank", "child_rank")

    def __init__(self, cut_id, link_name, parent_rank, child_rank):
        self.cut_id = cut_id
        self.link_name = link_name
        self.parent_rank = parent_rank
        self.child_rank = child_rank


class PartitionPlan:
    """Where a topology is cut and which rank owns which subtree.

    Attributes:
        num_partitions: total ranks (master is rank 0).
        cuts: one :class:`_Cut` per boundary link, ordered by cut id.
        node_ranks: spec instance name -> owning rank, for every device
            and switch in the topology.
        link_ranks: spec link name -> rank of the link's child node
            (for non-cut links, the rank owning the whole link).
    """

    def __init__(self, num_partitions, cuts, node_ranks, link_ranks):
        self.num_partitions = num_partitions
        self.cuts = cuts
        self.node_ranks = node_ranks
        self.link_ranks = link_ranks


def plan_partitions(spec, hint: Optional[int] = None) -> PartitionPlan:
    """Cut a finalized ``TopologySpec`` into subtree partitions.

    With no hint, every root-complex downstream port becomes a cut (one
    partition per root subtree plus the core).  With ``hint=N``, the
    ``N - 1`` largest subtrees (ties broken by tree pre-order) are
    split off instead, which handles both wide and deeply nested
    fabrics.  Ranks 1..N-1 are assigned to cuts in pre-order, and every
    node belongs to the nearest cut ancestor (or rank 0).
    """
    edges = []  # (preorder index, node, parent_is_root, subtree size)
    counter = itertools.count()

    def walk(node, parent_is_root):
        """Record this edge and return the node's subtree size."""
        idx = next(counter)
        pos = len(edges)
        edges.append(None)
        size = 1
        for child in getattr(node, "children", None) or ():
            size += walk(child, False)
        edges[pos] = (idx, node, parent_is_root, size)
        return size

    for child in spec.children:
        walk(child, True)

    if hint is None:
        cut_edges = [e for e in edges if e[2]]
    elif hint <= 1:
        cut_edges = []
    else:
        by_size = sorted(edges, key=lambda e: (-e[3], e[0]))
        cut_edges = by_size[:hint - 1]
    cut_edges.sort(key=lambda e: e[0])

    rank_of_node = {id(e[1]): rank
                    for rank, e in enumerate(cut_edges, start=1)}
    cuts = [_Cut(i, e[1].link.name, 0, rank)
            for i, (rank, e) in enumerate(
                zip(range(1, len(cut_edges) + 1), cut_edges))]

    node_ranks: Dict[str, int] = {}
    link_ranks: Dict[str, int] = {}

    def assign(node, rank):
        """Propagate ownership down the tree, switching at cut nodes."""
        here = rank_of_node.get(id(node), rank)
        node_ranks[node.name] = here
        link_ranks[node.link.name] = here
        for child in getattr(node, "children", None) or ():
            assign(child, here)
        return here

    for child in spec.children:
        assign(child, 0)

    # Fix up parent ranks for nested cuts: the parent side of a cut is
    # whatever rank owns the cut node's parent.
    parent_of: Dict[int, int] = {}

    def parents(node, parent_rank):
        """Record each cut node's parent-side rank."""
        here = rank_of_node.get(id(node), parent_rank)
        if id(node) in rank_of_node:
            parent_of[rank_of_node[id(node)]] = parent_rank
        for child in getattr(node, "children", None) or ():
            parents(child, here)

    for child in spec.children:
        parents(child, 0)
    for cut in cuts:
        cut.parent_rank = parent_of[cut.child_rank]

    return PartitionPlan(len(cut_edges) + 1, cuts, node_ranks, link_ranks)


# --------------------------------------------------------------------------
# Trace recording
# --------------------------------------------------------------------------


class _RecordingSink:
    """Per-process trace sink capturing ``(global key, event)`` pairs.

    Installed as the *only* tracer sink while partitioned, with the
    category filter lifted and dense TLP-id allocation bypassed (events
    keep raw packet ids).  The master later merges all processes'
    records in global key order, replays the dense-id allocation, and
    feeds the user's sinks — reproducing the hybrid trace exactly.

    ``keep_all`` is False when the only real consumer is the checker's
    diagnostic ring buffer: then only events needed for id replay
    (TLP-carrying) or passing the user's filter are kept, bounding
    memory on checker-armed runs.
    """

    def __init__(self, queue, user_categories, keep_all):
        self.queue = queue
        self.user_categories = user_categories
        self.keep_all = keep_all
        #: When set, events are keyed by this instead of the queue's
        #: current dispatch key (hazard re-advertisement runs model
        #: code engine-side, outside any local dispatch).
        self.force_key: Optional[tuple] = None
        self.records: List[tuple] = []

    def record(self, event: dict) -> None:
        """Capture one trace event with its global dispatch key."""
        if not (self.keep_all or "tlp" in event
                or (self.user_categories is not None
                    and event["cat"] in self.user_categories)):
            return
        key = self.force_key
        if key is None:
            key = self.queue.dispatch_gmeta()
        self.records.append((key, event))


class _ReadvertiseProxy:
    """Stand-in for a boundary interface's remote peer.

    The flow-control watchdog is the model's only synchronous call
    across a link (``self.peer._readvertise_credits()``); the proxy
    records the request so the engine can route it to the partition
    that actually owns the peer.
    """

    __slots__ = ("engine", "cut_id", "side")

    def __init__(self, engine, cut_id, side):
        self.engine = engine
        self.cut_id = cut_id
        self.side = side

    def _readvertise_credits(self) -> None:
        """Record that the peer interface must re-advertise credits."""
        self.engine._pending_readv.add((self.cut_id, self.side))


# --------------------------------------------------------------------------
# Engine
# --------------------------------------------------------------------------


class _BoundaryLink:
    """Engine-side view of one cut: the built link plus its ranks."""

    __slots__ = ("cut_id", "link", "up_if", "down_if", "up_link",
                 "down_link", "parent_rank", "child_rank", "lookahead")

    def __init__(self, cut_id, link, parent_rank, child_rank, lookahead):
        self.cut_id = cut_id
        self.link = link
        self.up_if = link.upstream_if
        self.down_if = link.downstream_if
        self.up_link = link.up_link
        self.down_link = link.down_link
        self.parent_rank = parent_rank
        self.child_rank = child_rank
        self.lookahead = lookahead

    def rank_of_side(self, side: str) -> int:
        """Owning rank of ``"up_if"`` (parent) or ``"down_if"`` (child)."""
        return self.parent_rank if side == "up_if" else self.child_rank

    def iface(self, side: str):
        """The interface object named by ``side``."""
        return self.up_if if side == "up_if" else self.down_if


def _partition_hint(sim) -> Optional[int]:
    """Resolve the partition-count hint: builder kwarg, then env var."""
    hint = getattr(sim, "partition_hint", None)
    if hint is not None:
        return int(hint)
    raw = os.environ.get(PARTITIONS_ENV, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{PARTITIONS_ENV} must be an integer, got {raw!r}") from None


def run_partitioned(sim, until: Optional[int] = None,
                    max_events: Optional[int] = None) -> int:
    """Entry point for ``Simulator.run`` under a partitioned backend.

    Builds an engine when the run is eligible; otherwise falls back to
    the plain single-process drain (byte-identical by construction).
    """
    engine = _build_engine(sim, until)
    if engine is None:
        return sim.eventq.run(until=until, max_events=max_events)
    return engine.run(max_events)


def _build_engine(sim, until) -> Optional["PartitionEngine"]:
    """Vet a run for partitioned execution; None means fall back.

    The guards are deliberately strict — anything the partitioned
    engine cannot reproduce byte-for-byte runs single-process instead:
    bounded-horizon runs (``until``), non-PCIe or non-MSI fabrics
    (legacy INTx interrupts are synchronous device→kernel calls that
    bypass the fabric), empty queues, missing ``fork`` support, and
    daemonic contexts (sweep pool workers cannot themselves fork).
    """
    if until is not None:
        return None
    queue = sim.eventq
    if not isinstance(queue, PartitionEventQueue):
        return None
    if queue.empty():
        return None
    if multiprocessing.current_process().daemon:
        return None
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    system = getattr(sim, "pcie_system", None)
    if system is None:
        return None
    from repro.system.spec import TopologySpec
    spec = getattr(system, "spec", None)
    if not isinstance(spec, TopologySpec):
        return None
    if not spec.enable_msi:
        return None
    plan = plan_partitions(spec, _partition_hint(sim))
    if plan.num_partitions < 2:
        return None
    engine = PartitionEngine(sim, system, plan)
    if not engine.eligible():
        return None
    return engine


class PartitionEngine:
    """Coordinates one partitioned run: fork, sync rounds, merge.

    The master process *is* partition 0: it forks one worker per extra
    rank (inheriting the fully built simulation), then alternates
    lockstep rounds with them over duplex pipes:

    1. every rank REPORTs its next event tick, outgoing boundary
       messages, and pending watchdog deadlines;
    2. the master routes messages, computes the window bound
       ``E = min(next ticks, in-flight arrivals) + min lookahead``
       (capped below the earliest watchdog deadline), and GRANTs it;
    3. every rank inserts its deliveries and drains strictly below
       ``E``.

    When a watchdog deadline *is* the global minimum, a HAZARD round
    fires it on the owner and applies the credit re-advertisement on
    the peer at the same tick instead.  When every queue is empty and
    nothing is in flight, FINISH makes the workers ship their owned
    state, stats, checker ledgers and trace records for the merge.
    """

    def __init__(self, sim, system, plan):
        self.sim = sim
        self.system = system
        self.plan = plan
        self.queue: PartitionEventQueue = sim.eventq
        self.nparts = plan.num_partitions
        self._cuts: List[_BoundaryLink] = []
        self._lookahead = None
        self._name_ranks: Dict[str, int] = {}
        self._rank_cache: Dict[str, int] = {}
        self._rank = 0
        self._outbox: List[tuple] = []
        self._pending_readv: set = set()
        self._round_dispatched = 0
        self._dispatched_total = 0
        self._over_budget = False
        self._max_events: Optional[int] = None
        self._recorder: Optional[_RecordingSink] = None
        self._saved_sinks = None
        self._saved_categories = None
        self._saved_peers: List[tuple] = []
        self._saved_hooks: List[Any] = []
        self._n0 = 0
        self._e0 = 0
        self._resolve_boundary()

    # -- plan resolution ---------------------------------------------------
    def _resolve_boundary(self) -> None:
        """Map the plan's cuts onto built link objects and name ranks."""
        from repro.pcie.pkt import DLLP_WIRE_BYTES
        links = getattr(self.system, "links", None) or {}
        for cut in self.plan.cuts:
            link = links.get(cut.link_name)
            if link is None:
                return  # leaves self._lookahead None -> ineligible
            lookahead = (link.timing.transmission_ticks(DLLP_WIRE_BYTES)
                         + link.up_link.propagation_delay)
            self._cuts.append(_BoundaryLink(
                cut.cut_id, link, cut.parent_rank, cut.child_rank,
                lookahead))
        if not self._cuts:
            return
        self._lookahead = min(c.lookahead for c in self._cuts)
        self._name_ranks = dict(self.plan.node_ranks)
        # Interior links live wholly in their child node's partition;
        # cut links split at the wire: the parent rank keeps the
        # upstream interface and the parent->child wire half, the child
        # rank gets the downstream interface and the child->parent half.
        for name, link in links.items():
            self._name_ranks[link.full_name] = self.plan.link_ranks[name]
        for cut in self._cuts:
            link_name = cut.link.full_name
            self._name_ranks[link_name] = cut.parent_rank
            self._name_ranks[f"{link_name}.down_if"] = cut.child_rank
            self._name_ranks[f"{link_name}.up_link"] = cut.child_rank

    def eligible(self) -> bool:
        """Final static checks once the boundary table is resolved."""
        if self._lookahead is None or self._lookahead < 1:
            return False
        # Window bounds reach at most one lookahead past the global
        # minimum, so a watchdog armed mid-drain (now + period) can
        # only fire inside the current window if its period is shorter
        # than the lookahead.  Real watchdog periods are ~4 orders of
        # magnitude larger; refuse the degenerate configuration.
        links = getattr(self.system, "links", None) or {}
        for link in links.values():
            if link.fc_watchdog < self._lookahead:
                return False
        return True

    # -- name / event ownership -------------------------------------------
    def _rank_of_name(self, full_name: str) -> int:
        """Owning rank of a dotted object (or stat) name."""
        rank = self._rank_cache.get(full_name)
        if rank is not None:
            return rank
        parts = full_name.split(".")
        rank = 0
        for i in range(len(parts), 0, -1):
            hit = self._name_ranks.get(".".join(parts[:i]))
            if hit is not None:
                rank = hit
                break
        self._rank_cache[full_name] = rank
        return rank

    def _rank_of_event(self, event) -> int:
        """Owning rank of a scheduled event, via its bound sim object."""
        from repro.pcie.link import _DeliverEvent, _TxDoneEvent
        from repro.sim.simobject import SimObject
        obj = None
        if isinstance(event, _TxDoneEvent):
            obj = event.link
        elif isinstance(event, _DeliverEvent):
            obj = event.receiver
        elif isinstance(event, CallbackEvent):
            cb = event._callback
            obj = getattr(cb, "__self__", None)
            if not isinstance(obj, SimObject):
                obj = None
                for cell in getattr(cb, "__closure__", None) or ():
                    try:
                        value = cell.cell_contents
                    except ValueError:
                        continue
                    if isinstance(value, SimObject):
                        obj = value
                        break
        if obj is None:
            return 0
        return self._rank_of_name(obj.full_name)

    # -- pre-fork installation ---------------------------------------------
    def _install_boundary(self) -> None:
        """Patch cut links: wire hooks out, peer proxies in."""
        for cut in self._cuts:
            self._saved_hooks.append((cut.up_link, cut.down_link))
            cut.up_link.remote_delivery = self._make_hook(cut, "up_if")
            cut.down_link.remote_delivery = self._make_hook(cut, "down_if")
            self._saved_peers.append(
                (cut.up_if, cut.up_if.peer, cut.down_if, cut.down_if.peer))
            cut.up_if.peer = _ReadvertiseProxy(self, cut.cut_id, "down_if")
            cut.down_if.peer = _ReadvertiseProxy(self, cut.cut_id, "up_if")

    def _uninstall_boundary(self) -> None:
        """Undo :meth:`_install_boundary` (master side, post-run)."""
        for up_link, down_link in self._saved_hooks:
            up_link.remote_delivery = None
            down_link.remote_delivery = None
        for up_if, up_peer, down_if, down_peer in self._saved_peers:
            up_if.peer = up_peer
            down_if.peer = down_peer
        self._saved_hooks = []
        self._saved_peers = []

    def _make_hook(self, cut: _BoundaryLink, receiver_side: str):
        """Wire-delivery hook: ship the packet instead of scheduling.

        Consumes one local sequence number at send time — the position
        the hybrid engine would have given the deliver event — and
        queues the message for routing at the next sync point.
        """
        dest_rank = cut.rank_of_side(receiver_side)
        cut_id = cut.cut_id
        queue = self.queue

        def hook(ppkt, now, arrival):
            """Capture one boundary send into the outbox."""
            seq = queue._next_seq
            queue._next_seq = seq + 1
            self._outbox.append((dest_rank, cut_id, receiver_side, now,
                                 arrival, self._rank, seq, ppkt))

        return hook

    def _install_recorder(self) -> Optional[_RecordingSink]:
        """Swap the tracer's sinks for a per-process recording sink."""
        tracer = self.sim.tracer
        if not tracer.enabled:
            return None
        from repro.check.checker import _RingSink
        user_sinks = [s for s in tracer.sinks
                      if not isinstance(s, _RingSink)]
        recorder = _RecordingSink(
            self.queue, tracer.categories,
            keep_all=bool(user_sinks) and tracer.categories is None)
        self._saved_sinks = tracer.sinks
        self._saved_categories = tracer.categories
        tracer.sinks = [recorder]
        tracer.categories = None
        # Dense TLP ids are allocated in *emit argument* position, so
        # recorded events must keep raw packet ids; the merge replays
        # allocation over the globally ordered stream instead.
        tracer.tlp_id = lambda raw: raw
        self._recorder = recorder
        return recorder

    def _restore_tracer(self) -> None:
        """Put the tracer back the way the user had it.  Idempotent."""
        if self._saved_sinks is None:
            return
        tracer = self.sim.tracer
        tracer.sinks = self._saved_sinks
        tracer.categories = self._saved_categories
        try:
            del tracer.tlp_id
        except AttributeError:
            pass
        self._saved_sinks = None
        self._saved_categories = None

    # -- per-process setup --------------------------------------------------
    def _setup_local(self, rank: int) -> None:
        """Become partition ``rank``: reseed ids, drop foreign events."""
        self._rank = rank
        self._outbox = []
        self._pending_readv = set()
        self._round_dispatched = 0
        self._dispatched_total = 0
        self._over_budget = False
        self.queue.activate_partitioning(rank, self._n0)
        if rank:
            import repro.mem.packet as packet_mod
            packet_mod._packet_ids = itertools.count(
                rank * _PACKET_ID_STRIDE)
        queue = self.queue
        for entry in queue.live_entries():
            if self._rank_of_event(entry[3]) != rank:
                queue.deschedule(entry[3])

    # -- drain machinery ----------------------------------------------------
    def _drain_below(self, bound: int) -> None:
        """Dispatch every local event strictly below tick ``bound``."""
        queue = self.queue
        budget = self._max_events
        while True:
            entry = queue._peek()
            if entry is None or entry[0] >= bound:
                break
            queue.current_key = (entry[0], entry[1], entry[2])
            queue.service_one()
            self._round_dispatched += 1
            self._dispatched_total += 1
            if budget is not None and self._dispatched_total > budget:
                self._over_budget = True
                break
        queue.current_key = None

    def _scan_hazards(self) -> List[tuple]:
        """Pending watchdog deadlines on boundary interfaces we own."""
        hazards = []
        for cut in self._cuts:
            for side in ("up_if", "down_if"):
                if cut.rank_of_side(side) != self._rank:
                    continue
                ev = cut.iface(side)._fc_watchdog_event
                entry = ev._entry
                if entry is not None:
                    hazards.append((entry[0], self._rank, entry[2],
                                    cut.cut_id, side))
        return hazards

    def _make_report(self) -> dict:
        """Snapshot this partition's state for the master, and reset."""
        report = {
            "next": self.queue.next_tick(),
            "dispatched": self._round_dispatched,
            "outbox": self._outbox,
            "hazards": self._scan_hazards(),
            "over": self._over_budget,
        }
        self._round_dispatched = 0
        self._outbox = []
        return report

    def _insert_batch(self, batch: List[tuple]) -> None:
        """Materialize routed boundary messages as delivery events."""
        queue = self.queue
        cuts = self._cuts
        for (_dest, cut_id, side, send_tick, arrival,
             sender_rank, sender_seq, ppkt) in batch:
            receiver = cuts[cut_id].iface(side)
            event = _BoundaryDeliverEvent(receiver, ppkt)
            queue.insert_boundary(arrival, event, send_tick,
                                  sender_rank, sender_seq)

    # -- hazard sub-protocol -------------------------------------------------
    def _hazard_fire(self, cut: _BoundaryLink, side: str, when: int,
                     seq: int) -> Tuple[bool, Optional[tuple]]:
        """Owner side: drain up to and through the watchdog dispatch.

        Returns whether the watchdog actually poked the (proxied) peer,
        plus the watchdog's global dispatch key for trace attribution.
        Stale deadlines — descheduled or moved by an earlier event in
        the same window — report as not-fired.
        """
        ev = cut.iface(side)._fc_watchdog_event
        entry = ev._entry
        if entry is None or entry[0] != when or entry[2] != seq:
            return False, None
        key = (entry[0], entry[1], entry[2])
        queue = self.queue
        while True:
            head = queue._peek()
            if head is None:
                break
            head_key = (head[0], head[1], head[2])
            if head_key > key:
                break
            queue.current_key = head_key
            queue.service_one()
            self._round_dispatched += 1
            self._dispatched_total += 1
            if head_key == key:
                break
        queue.current_key = None
        peer_side = "down_if" if side == "up_if" else "up_if"
        token = (cut.cut_id, peer_side)
        fired = token in self._pending_readv
        self._pending_readv.discard(token)
        return fired, queue.gmeta_for_key(key) if fired else None

    def _hazard_apply(self, cut: _BoundaryLink, side: str, when: int,
                      gmeta: tuple) -> None:
        """Peer side: re-advertise credits at the watchdog's tick.

        The hybrid engine runs this inside the owner's watchdog
        dispatch; here it runs engine-side on the peer's partition,
        with emitted traces keyed just after the watchdog's own records
        (the appended ``1`` sorts a longer tuple after its prefix).
        """
        self._drain_below(when)
        queue = self.queue
        if queue.curtick < when:
            queue.curtick = when
        recorder = self._recorder
        if recorder is not None:
            recorder.force_key = gmeta + (1,)
        try:
            cut.iface(side)._readvertise_credits()
        finally:
            if recorder is not None:
                recorder.force_key = None

    def _hazard_master(self, conns, items) -> None:
        """Master side of a hazard round: sequence fire/apply pairs."""
        for when, owner_rank, seq, cut_id, side in items:
            cut = self._cuts[cut_id]
            peer_side = "down_if" if side == "up_if" else "up_if"
            peer_rank = cut.rank_of_side(peer_side)
            if owner_rank == 0:
                fired, gmeta = self._hazard_fire(cut, side, when, seq)
            else:
                msg = self._recv(conns[owner_rank - 1], conns)
                if msg[0] != "HFIRE":
                    raise PartitionError(f"expected HFIRE, got {msg[0]}")
                fired, gmeta = msg[1], msg[2]
            if peer_rank == 0:
                if fired:
                    self._hazard_apply(cut, peer_side, when, gmeta)
            else:
                conns[peer_rank - 1].send(("HAPPLY", fired, gmeta))
                msg = self._recv(conns[peer_rank - 1], conns)
                if msg[0] != "HDONE":
                    raise PartitionError(f"expected HDONE, got {msg[0]}")

    def _hazard_participate(self, conn, items) -> None:
        """Worker side of a hazard round (item order mirrors master)."""
        for when, owner_rank, seq, cut_id, side in items:
            cut = self._cuts[cut_id]
            peer_side = "down_if" if side == "up_if" else "up_if"
            peer_rank = cut.rank_of_side(peer_side)
            if owner_rank == self._rank:
                fired, gmeta = self._hazard_fire(cut, side, when, seq)
                conn.send(("HFIRE", fired, gmeta))
            if peer_rank == self._rank:
                msg = conn.recv()
                if msg[0] == "DIE":
                    raise _Abort()
                if msg[0] != "HAPPLY":
                    raise PartitionError(f"expected HAPPLY, got {msg[0]}")
                if msg[1]:
                    self._hazard_apply(cut, peer_side, when, msg[2])
                conn.send(("HDONE",))

    # -- master orchestration ------------------------------------------------
    def run(self, max_events: Optional[int]) -> int:
        """Fork the workers, run the sync protocol, merge, return tick."""
        self._max_events = max_events
        self._install_boundary()
        recorder = self._install_recorder()
        self._n0 = self.queue._next_seq
        self._e0 = self.queue.events_processed
        ctx = multiprocessing.get_context("fork")
        conns = []
        procs = []
        ships = None
        try:
            for rank in range(1, self.nparts):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(target=self._worker_main,
                                   args=(rank, child_conn), daemon=True)
                proc.start()
                child_conn.close()
                conns.append(parent_conn)
                procs.append(proc)
            self._setup_local(0)
            ships = self._coordinate(conns)
        finally:
            for conn in conns:
                try:
                    conn.close()
                except OSError:
                    pass
            for proc in procs:
                proc.join(timeout=10)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5)
            self.queue.deactivate_partitioning()
            self._uninstall_boundary()
            self._restore_tracer()
        self._merge(ships, recorder)
        return self.queue.curtick

    def _recv(self, conn, conns):
        """Receive from one worker, aborting everyone on failure."""
        try:
            msg = conn.recv()
        except EOFError:
            self._die(conns)
            raise PartitionError("partition worker died unexpectedly")
        if msg[0] == "ERR":
            self._die(conns)
            raise PartitionError(f"partition worker failed:\n{msg[1]}")
        return msg

    def _die(self, conns) -> None:
        """Best-effort shutdown broadcast to every worker."""
        for conn in conns:
            try:
                conn.send(("DIE",))
            except OSError:
                pass

    def _coordinate(self, conns) -> List[dict]:
        """The master's lockstep round loop; returns the workers' ships."""
        report = self._make_report()
        total = 0
        while True:
            reports = [report]
            for conn in conns:
                msg = self._recv(conn, conns)
                if msg[0] != "REPORT":
                    self._die(conns)
                    raise PartitionError(f"expected REPORT, got {msg[0]}")
                reports.append(msg[1])
            total += sum(r["dispatched"] for r in reports)
            if (any(r["over"] for r in reports)
                    or (self._max_events is not None
                        and total > self._max_events)):
                self._die(conns)
                raise PartitionError(
                    f"partitioned run exceeded max_events="
                    f"{self._max_events}; the single-process engine "
                    f"would stop silently, but a truncated partitioned "
                    f"run cannot merge coherent state")
            outbox = [m for r in reports for m in r["outbox"]]
            nexts = [r["next"] for r in reports if r["next"] is not None]
            arrivals = [m[4] for m in outbox]
            if not nexts and not arrivals:
                ships = []
                for conn in conns:
                    conn.send(("FINISH",))
                for conn in conns:
                    msg = self._recv(conn, conns)
                    if msg[0] != "SHIP":
                        raise PartitionError(
                            f"expected SHIP, got {msg[0]}")
                    ships.append(msg[1])
                return ships
            min_next = min(nexts + arrivals)
            batches: Dict[int, List[tuple]] = {}
            for message in sorted(outbox, key=lambda m: (m[3], m[5], m[6])):
                batches.setdefault(message[0], []).append(message)
            hazards = sorted(h for r in reports for h in r["hazards"])
            bound = min_next + self._lookahead
            if hazards and hazards[0][0] < bound:
                when = hazards[0][0]
                if when > min_next:
                    bound = when
                else:
                    items = [h for h in hazards if h[0] == when]
                    for rank, conn in enumerate(conns, start=1):
                        conn.send(("HAZARD", when, items,
                                   batches.get(rank, [])))
                    self._insert_batch(batches.get(0, []))
                    self._hazard_master(conns, items)
                    self._drain_below(when + 1)
                    report = self._make_report()
                    continue
            for rank, conn in enumerate(conns, start=1):
                conn.send(("GRANT", bound, batches.get(rank, [])))
            self._insert_batch(batches.get(0, []))
            self._drain_below(bound)
            report = self._make_report()

    # -- worker loop ---------------------------------------------------------
    def _worker_main(self, rank: int, conn) -> None:
        """Forked worker entry point: never returns, always _exits."""
        try:
            self._setup_local(rank)
            self._participate(rank, conn)
        except _Abort:
            pass
        except BaseException:
            try:
                conn.send(("ERR", traceback.format_exc()))
            except OSError:
                pass
        finally:
            try:
                conn.close()
            except OSError:
                pass
            os._exit(0)

    def _participate(self, rank: int, conn) -> None:
        """Worker side of the round loop."""
        while True:
            conn.send(("REPORT", self._make_report()))
            msg = conn.recv()
            kind = msg[0]
            if kind == "GRANT":
                self._insert_batch(msg[2])
                self._drain_below(msg[1])
            elif kind == "HAZARD":
                self._insert_batch(msg[3])
                self._hazard_participate(conn, msg[2])
                self._drain_below(msg[1] + 1)
            elif kind == "FINISH":
                conn.send(("SHIP", self._collect_ship(rank)))
                return
            elif kind == "DIE":
                raise _Abort()
            else:
                raise PartitionError(f"unknown message kind {kind!r}")

    def _collect_ship(self, rank: int) -> dict:
        """Everything this partition owns, packaged for the master."""
        sim = self.sim
        objects = {}
        for obj in sim.objects:
            name = obj.full_name
            if self._rank_of_name(name) != rank:
                continue
            state = obj.state_dict()
            if state:
                objects[name] = state
        stats = {}
        for path, stat in sim.stats.walk(""):
            if self._rank_of_name(path) != rank:
                continue
            state = stat.state_dict()
            if state is not None:
                stats[path] = state
        return {
            "rank": rank,
            "objects": objects,
            "stats": stats,
            "checker": sim.checker.state_dict(),
            "eventq": self.queue.state_dict(),
            "trace": self._recorder.records if self._recorder else [],
        }

    # -- merge ----------------------------------------------------------------
    def _merge(self, ships: List[dict], recorder) -> None:
        """Fold the workers' shipped state into the master simulation."""
        sim = self.sim
        queue = self.queue
        for ship in ships:
            for name, state in ship["objects"].items():
                sim.find(name).load_state_dict(state)
        stat_map = dict(sim.stats.walk(""))
        for ship in ships:
            for path, state in ship["stats"].items():
                stat_map[path].load_state_dict(state)
        merged = sim.checker.state_dict()
        for ship in ships:
            rank = ship["rank"]
            doc = ship["checker"]
            for name, vals in doc["pairs"].items():
                if self._rank_of_name(name) == rank:
                    merged["pairs"][name] = vals
            for name, vals in doc["links"].items():
                if self._rank_of_name(name) == rank:
                    merged["links"][name] = vals
            merged["last_dispatch_tick"] = max(
                merged["last_dispatch_tick"], doc["last_dispatch_tick"])
        sim.checker.load_state_dict(merged)
        n0, e0 = self._n0, self._e0
        queue._next_seq += sum(
            ship["eventq"]["next_seq"] - n0 for ship in ships)
        queue.events_processed += sum(
            ship["eventq"]["events_processed"] - e0 for ship in ships)
        queue.curtick = max(
            [queue.curtick] + [ship["eventq"]["curtick"] for ship in ships])
        if recorder is not None:
            self._merge_traces(ships, recorder)

    def _merge_traces(self, ships: List[dict], recorder) -> None:
        """Replay all processes' trace records in global dispatch order.

        The stable sort keeps each dispatch's emissions in their
        original relative order (they share a key); dense TLP-id
        allocation is replayed over every TLP-carrying record — exactly
        the order the hybrid engine allocated in — and only records
        passing the user's original category filter reach real sinks.
        The checker's diagnostic ring buffer deliberately receives
        nothing: its contents are unordered across partitions and are
        never part of compared artifacts.
        """
        from repro.check.checker import _RingSink
        tracer = self.sim.tracer
        records = list(recorder.records)
        for ship in ships:
            records.extend(ship["trace"])
        records.sort(key=lambda pair: pair[0])
        categories = tracer.categories
        sinks = [s for s in tracer.sinks if not isinstance(s, _RingSink)]
        for _key, event in records:
            if "tlp" in event:
                event["tlp"] = tracer.tlp_id(event["tlp"])
            if categories is None or event["cat"] in categories:
                for sink in sinks:
                    sink.record(event)
