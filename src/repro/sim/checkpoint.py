"""Versioned simulation checkpoints: snapshot a live simulator, restore
a freshly built twin, continue byte-identically.

A checkpoint is a JSON-safe document produced by :func:`capture` and
consumed by :func:`restore`.  It deliberately contains **no pickled
objects**: everything in it is either a scalar, a name, or a small
structure of scalars, so checkpoints survive code changes that pickle
would not and can be diffed, digested and cached like any other result
artifact.

**Rebuild + overlay.**  Restoring does not resurrect Python objects
from bytes.  Instead the caller rebuilds the simulated system fresh
from its topology spec (a deterministic, purely functional step — boot
enumeration schedules nothing), then calls :func:`restore` to overlay
the captured dynamic state onto the rebuilt twin:

* the event queue's clock, sequence counter and pending events;
* every registered :class:`~repro.sim.simobject.SimObject`'s
  ``state_dict()``, matched by dotted full name;
* every statistic's value, matched by dotted stat path;
* the tracer's dense TLP-id counter;
* the invariant checker's per-port and per-link ledgers.

After the overlay, running the restored simulator produces the same
events at the same ticks with the same insertion sequence numbers as
the captured simulator would have — stats, traces and golden outputs
are byte-identical to never having checkpointed at all.

**Describable events.**  Pending events are captured as
``(when, priority, seq)`` plus an *owner path + method name* pair: the
event must be a :class:`~repro.sim.eventq.CallbackEvent` whose callback
is a bound method of a registered SimObject.  Restore resolves the
owner through the simulator's registry and — crucially — reuses the
owner's existing recycled event handle when it keeps one
(:meth:`~repro.sim.simobject.SimObject.resolve_event`), so a component
that later deschedules ``self._ack_event`` deschedules the very
instance the checkpoint re-armed.  Lambdas, closures and pool events
are not describable and raise :class:`CheckpointError` — which is why
the natural checkpoint boundary is **software quiescence** (a drained
run), where the queue is empty and every component's in-flight buffers
are too.  Mid-run checkpoints work whenever all pending events happen
to be describable (the property-test suite exercises this).
"""

import hashlib
import json
from typing import Dict, List

from repro.sim.eventq import CallbackEvent

#: Identifies checkpoint documents; consumers reject anything else.
CHECKPOINT_FORMAT = "repro-checkpoint"

#: Bumped whenever the document layout or the meaning of a field
#: changes; restore refuses versions it does not understand rather than
#: silently misreading state.
CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """A simulation state that cannot be captured, or a snapshot that
    cannot be applied to the rebuilt simulator it was offered to."""


def _describe_event(sim, entry) -> Dict:
    """Describe one live queue entry as owner-path + method-name.

    ``entry`` is the queue's internal ``[when, priority, seq, event]``
    list.  Raises :class:`CheckpointError` for events that are not
    bound-method callbacks of registered objects — those cannot be
    reconstructed by name on the restore side.
    """
    when, priority, seq, event = entry
    if not isinstance(event, CallbackEvent):
        raise CheckpointError(
            f"cannot checkpoint pending event {event!r} at tick {when}: "
            f"only CallbackEvents bound to registered SimObjects are "
            f"describable (this is a {type(event).__name__})")
    callback = event._callback
    owner = getattr(callback, "__self__", None)
    owner_name = getattr(owner, "full_name", None)
    if owner is None or owner_name is None or sim.find(owner_name) is not owner:
        raise CheckpointError(
            f"cannot checkpoint pending event {event.name!r} at tick "
            f"{when}: its callback {callback!r} is not a bound method of "
            f"a registered SimObject")
    method = getattr(callback, "__name__", "")
    if getattr(owner, method, None) != callback:
        raise CheckpointError(
            f"cannot checkpoint pending event {event.name!r}: "
            f"{owner_name}.{method} does not resolve back to its callback")
    return {
        "when": when,
        "priority": priority,
        "seq": seq,
        "owner": owner_name,
        "method": method,
        "name": event.name,
    }


def capture(sim) -> Dict:
    """Snapshot ``sim`` into a JSON-safe checkpoint document.

    Raises:
        CheckpointError: when a pending event is not describable or a
            component holds in-flight packets (its ``state_dict`` guards
            fire) — checkpoints never silently drop simulation state.
    """
    entries = sorted(sim.eventq.live_entries(),
                     key=lambda e: (e[0], e[1], e[2]))
    events = [_describe_event(sim, entry) for entry in entries]
    objects: Dict[str, Dict] = {}
    for obj in sim.objects:
        state = obj.state_dict()
        if state:
            objects[obj.full_name] = state
    stats: Dict[str, Dict] = {}
    for name, stat in sim.stats.walk(""):
        state = stat.state_dict()
        if state is not None:
            stats[name] = state
    return {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "sim_name": sim.name,
        "eventq": sim.eventq.state_dict(),
        "events": events,
        "objects": objects,
        "stats": stats,
        "tracer": sim.tracer.state_dict(),
        "checker": sim.checker.state_dict(),
    }


def _reconstruct_event(sim, doc: Dict, used: set) -> CallbackEvent:
    """Turn one captured event description back into a live event.

    Prefers the owner's existing recycled handle (bound-method identity
    — see :meth:`SimObject.resolve_event`); falls back to a fresh
    :class:`CallbackEvent` carrying the captured name and priority for
    events whose handle the owner does not keep (one-shot schedules).
    A handle can be scheduled only once, so when several pending events
    wrap the same method the earliest (in dispatch order) gets the
    recycled handle and the rest become fresh events — ``used`` tracks
    the handles already claimed within this restore.
    """
    owner = sim.find(doc["owner"])
    if owner is None:
        raise CheckpointError(
            f"checkpoint schedules an event on {doc['owner']!r} but the "
            f"rebuilt system has no such object")
    method = getattr(owner, doc["method"], None)
    if method is None:
        raise CheckpointError(
            f"checkpoint schedules {doc['owner']}.{doc['method']} but the "
            f"rebuilt object has no such method")
    event = owner.resolve_event(doc["method"])
    if event is None or id(event) in used:
        event = CallbackEvent(method, priority=doc["priority"],
                              name=doc["name"])
    else:
        used.add(id(event))
    return event


def restore(sim, snapshot: Dict) -> None:
    """Overlay a :func:`capture` document onto a freshly built twin.

    ``sim`` must be rebuilt from the same topology spec as the captured
    simulator and must not have run yet: its event queue has to be
    empty (construction schedules nothing) so the restored entries are
    the only pending work.

    Raises:
        CheckpointError: on format/version mismatch, a non-empty target
            queue, or any name in the snapshot that the rebuilt system
            cannot resolve (object, stat, port or method).
    """
    if snapshot.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"not a checkpoint document (format="
            f"{snapshot.get('format')!r}, expected {CHECKPOINT_FORMAT!r})")
    if snapshot.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {snapshot.get('version')!r} is not "
            f"supported (this build reads version {CHECKPOINT_VERSION})")
    if not sim.eventq.empty():
        raise CheckpointError(
            "restore target must be a freshly built simulator with an "
            "empty event queue — rebuild the system from its spec, then "
            "restore before running")
    for full_name, state in snapshot["objects"].items():
        obj = sim.find(full_name)
        if obj is None:
            raise CheckpointError(
                f"checkpoint carries state for {full_name!r} but the "
                f"rebuilt system has no such object — topology mismatch")
        obj.load_state_dict(state)
    stat_map = dict(sim.stats.walk(""))
    for name, state in snapshot["stats"].items():
        stat = stat_map.get(name)
        if stat is None:
            raise CheckpointError(
                f"checkpoint carries statistic {name!r} but the rebuilt "
                f"system has no such stat — topology mismatch")
        stat.load_state_dict(state)
    sim.tracer.load_state_dict(snapshot["tracer"])
    sim.checker.load_state_dict(snapshot["checker"])
    used: set = set()
    entries = [
        (doc["when"], doc["priority"], doc["seq"],
         _reconstruct_event(sim, doc, used))
        for doc in snapshot["events"]
    ]
    sim.eventq.load_state_dict(snapshot["eventq"], entries)


def checkpoint_json(snapshot: Dict) -> str:
    """Canonical serialization: sorted keys, no whitespace.

    Two captures of identical simulation states produce identical
    bytes, which is what makes :func:`checkpoint_digest` a usable cache
    key component.
    """
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def checkpoint_digest(snapshot: Dict) -> str:
    """SHA-256 of the canonical serialization.

    The experiment engine folds this into forked points' result-cache
    keys: a point resumed from a different prefix state must never hit
    a result cached under the old one.
    """
    return hashlib.sha256(checkpoint_json(snapshot).encode()).hexdigest()


def write_checkpoint(snapshot: Dict, path: str) -> None:
    """Write a checkpoint document to ``path`` (canonical JSON)."""
    with open(path, "w") as fh:
        fh.write(checkpoint_json(snapshot))
        fh.write("\n")


def read_checkpoint(path: str) -> Dict:
    """Read a checkpoint document written by :func:`write_checkpoint`."""
    with open(path) as fh:
        snapshot = json.load(fh)
    if snapshot.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{path} is not a checkpoint document")
    return snapshot


__all__: List[str] = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "capture",
    "restore",
    "checkpoint_json",
    "checkpoint_digest",
    "write_checkpoint",
    "read_checkpoint",
]
