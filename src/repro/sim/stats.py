"""A small statistics framework in the spirit of gem5's.

Simulation objects register named statistics; at the end of a run the
whole tree can be dumped to a flat ``dict`` or pretty-printed.  Four stat
kinds cover everything the library needs:

* :class:`Scalar` — a counter or gauge (packets sent, bytes moved).
* :class:`Average` — running mean of samples (queue occupancy).
* :class:`Distribution` — min/max/mean/stddev plus sample count
  (latency distributions).
* :class:`Quantiles` — exact percentiles from retained samples
  (tail latencies: p50/p99/p999 of per-request times).
* :class:`Formula` — a value computed from other stats at dump time
  (throughput = bytes / seconds).
"""

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]


class Stat:
    """Base class: a named, described statistic."""

    def __init__(self, name: str, desc: str = ""):
        if not name:
            raise ValueError("stat name must be non-empty")
        self.name = name
        self.desc = desc

    def value(self) -> Number:
        """The stat's headline value (subclasses define its meaning)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Return the stat to its just-constructed state."""
        raise NotImplementedError

    def dump(self) -> Dict[str, Number]:
        """Return the stat as a flat {suffix: value} mapping."""
        return {"": self.value()}

    def state_dict(self) -> Optional[Dict]:
        """Checkpointable state, or None for derived/stateless stats."""
        return None

    def load_state_dict(self, state: Dict) -> None:
        """Restore :meth:`state_dict` output (stateless stats refuse)."""
        raise ValueError(f"stat {self.name!r} ({type(self).__name__}) "
                         f"holds no checkpointable state")


class Scalar(Stat):
    """A simple accumulating counter / settable gauge."""

    def __init__(self, name: str, desc: str = "", init: Number = 0):
        super().__init__(name, desc)
        self._init = init
        self._value: Number = init

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (counter usage)."""
        self._value += amount

    def set(self, value: Number) -> None:
        """Overwrite the value (gauge usage)."""
        self._value = value

    def value(self) -> Number:
        """Current count / gauge value."""
        return self._value

    def reset(self) -> None:
        """Restore the initial value."""
        self._value = self._init

    def __iadd__(self, amount: Number) -> "Scalar":
        self.inc(amount)
        return self

    def state_dict(self) -> Dict:
        """The current value (the initial value is reconstructed)."""
        return {"value": self._value}

    def load_state_dict(self, state: Dict) -> None:
        """Restore the captured value."""
        self._value = state["value"]


class Average(Stat):
    """Arithmetic mean of all samples."""

    def __init__(self, name: str, desc: str = ""):
        super().__init__(name, desc)
        self._sum: float = 0.0
        self._count: int = 0

    def sample(self, value: Number) -> None:
        """Fold one observation into the mean."""
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        """Number of samples folded in so far."""
        return self._count

    def value(self) -> float:
        """The running mean (0.0 before any sample)."""
        return self._sum / self._count if self._count else 0.0

    def reset(self) -> None:
        """Discard all samples."""
        self._sum = 0.0
        self._count = 0

    def state_dict(self) -> Dict:
        """The running sum and sample count."""
        return {"sum": self._sum, "count": self._count}

    def load_state_dict(self, state: Dict) -> None:
        """Restore the captured sum/count."""
        self._sum = state["sum"]
        self._count = state["count"]


class Distribution(Stat):
    """Streaming min / max / mean / standard deviation of samples.

    Uses Welford's online algorithm, which stays numerically stable
    even for tightly-clustered samples at large magnitudes (the naive
    sum-of-squares formula cancels catastrophically there)."""

    def __init__(self, name: str, desc: str = ""):
        super().__init__(name, desc)
        self.reset()

    def sample(self, value: Number) -> None:
        """Fold one observation into the running moments."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return self._count

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 before any sample)."""
        return self._mean if self._count else 0.0

    @property
    def stddev(self) -> float:
        """Sample standard deviation (0.0 with fewer than two samples)."""
        if self._count < 2:
            return 0.0
        return math.sqrt(max(self._m2 / (self._count - 1), 0.0))

    @property
    def minimum(self) -> Optional[Number]:
        """Smallest sample seen, or None before any sample."""
        return self._min

    @property
    def maximum(self) -> Optional[Number]:
        """Largest sample seen, or None before any sample."""
        return self._max

    def value(self) -> float:
        """Headline value: the mean."""
        return self.mean

    def reset(self) -> None:
        """Discard all samples and moments."""
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min: Optional[Number] = None
        self._max: Optional[Number] = None

    def dump(self) -> Dict[str, Number]:
        """All moments, gem5-style ``::suffix`` keyed."""
        return {
            "::count": self._count,
            "::mean": self.mean,
            "::stddev": self.stddev,
            "::min": self._min if self._min is not None else 0,
            "::max": self._max if self._max is not None else 0,
        }

    def state_dict(self) -> Dict:
        """Welford moments plus extrema (None extrema survive as null)."""
        return {"count": self._count, "mean": self._mean, "m2": self._m2,
                "min": self._min, "max": self._max}

    def load_state_dict(self, state: Dict) -> None:
        """Restore the captured moments."""
        self._count = state["count"]
        self._mean = state["mean"]
        self._m2 = state["m2"]
        self._min = state["min"]
        self._max = state["max"]


#: Default percentile points of a :class:`Quantiles` stat: the tail
#: percentiles fairness analysis reports (``p999`` = 99.9th).
QUANTILE_POINTS: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p99", 0.99), ("p999", 0.999),
)


class Quantiles(Stat):
    """Exact percentiles over every retained sample.

    Tail percentiles cannot be recovered from streaming moments, so
    this stat keeps its samples — use it for *bounded* sample counts
    (per-request latencies of a flow), never per-packet event streams.
    Percentiles use the nearest-rank definition on the sorted samples,
    which is exact, deterministic, and never interpolates a value that
    was not observed.
    """

    def __init__(self, name: str, desc: str = "",
                 points: Sequence[Tuple[str, float]] = QUANTILE_POINTS):
        super().__init__(name, desc)
        self.points: Tuple[Tuple[str, float], ...] = tuple(points)
        for label, fraction in self.points:
            if not 0.0 < fraction <= 1.0:
                raise ValueError(
                    f"quantile {label!r}: fraction {fraction} outside (0, 1]")
        self._samples: List[Number] = []

    def sample(self, value: Number) -> None:
        """Retain one observation."""
        self._samples.append(value)

    @property
    def count(self) -> int:
        """Number of samples retained."""
        return len(self._samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 before any sample)."""
        return (sum(self._samples) / len(self._samples)
                if self._samples else 0.0)

    @property
    def minimum(self) -> Optional[Number]:
        """Smallest sample seen, or None before any sample."""
        return min(self._samples) if self._samples else None

    @property
    def maximum(self) -> Optional[Number]:
        """Largest sample seen, or None before any sample."""
        return max(self._samples) if self._samples else None

    def percentile(self, fraction: float) -> Number:
        """Nearest-rank percentile: smallest sample with at least
        ``fraction`` of the samples at or below it (0.0 when empty)."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(max(1, math.ceil(fraction * len(ordered))), len(ordered))
        return ordered[rank - 1]

    def value(self) -> Number:
        """Headline value: the median."""
        return self.percentile(0.5)

    def reset(self) -> None:
        """Discard all samples."""
        self._samples = []

    def dump(self) -> Dict[str, Number]:
        """Count, mean, configured percentiles and max, ``::``-keyed."""
        out: Dict[str, Number] = {"::count": self.count, "::mean": self.mean}
        for label, fraction in self.points:
            out[f"::{label}"] = self.percentile(fraction)
        out["::max"] = self.maximum if self.maximum is not None else 0
        return out

    def state_dict(self) -> Dict:
        """The retained samples, in observation order."""
        return {"samples": list(self._samples)}

    def load_state_dict(self, state: Dict) -> None:
        """Restore the captured samples."""
        self._samples = list(state["samples"])


class Formula(Stat):
    """A stat computed on demand from a callable (usually a lambda
    closing over other stats)."""

    def __init__(self, name: str, func: Callable[[], Number], desc: str = ""):
        super().__init__(name, desc)
        self._func = func

    def value(self) -> Number:
        """Evaluate the formula now (division by zero reads as 0.0)."""
        try:
            return self._func()
        except ZeroDivisionError:
            return 0.0

    def reset(self) -> None:
        """No state of its own; the stats it reads reset themselves."""
        pass


class StatGroup:
    """A named collection of stats and child groups, forming a tree that
    mirrors the :class:`~repro.sim.simobject.SimObject` hierarchy."""

    def __init__(self, name: str = ""):
        self.name = name
        self._stats: List[Stat] = []
        self._children: List["StatGroup"] = []

    def add(self, stat: Stat) -> Stat:
        """Register an existing stat in this group; returns it."""
        self._stats.append(stat)
        return stat

    def scalar(self, name: str, desc: str = "") -> Scalar:
        """Create and register a :class:`Scalar`."""
        return self.add(Scalar(name, desc))  # type: ignore[return-value]

    def average(self, name: str, desc: str = "") -> Average:
        """Create and register an :class:`Average`."""
        return self.add(Average(name, desc))  # type: ignore[return-value]

    def distribution(self, name: str, desc: str = "") -> Distribution:
        """Create and register a :class:`Distribution`."""
        return self.add(Distribution(name, desc))  # type: ignore[return-value]

    def quantiles(self, name: str, desc: str = "",
                  points: Sequence[Tuple[str, float]] = QUANTILE_POINTS) -> Quantiles:
        """Create and register a :class:`Quantiles`."""
        return self.add(Quantiles(name, desc, points))  # type: ignore[return-value]

    def formula(self, name: str, func: Callable[[], Number], desc: str = "") -> Formula:
        """Create and register a :class:`Formula` over ``func``."""
        return self.add(Formula(name, func, desc))  # type: ignore[return-value]

    def add_child(self, child: "StatGroup") -> "StatGroup":
        """Nest another group under this one; returns the child."""
        self._children.append(child)
        return child

    def reset(self) -> None:
        """Reset every stat in this group and all children."""
        for stat in self._stats:
            stat.reset()
        for child in self._children:
            child.reset()

    def walk(self, prefix: str = ""):
        """Yield ``(dotted_name, stat)`` for every stat in the tree.

        Unlike :meth:`dump` this keeps the typed :class:`Stat` objects,
        so consumers (the structured exporter) can record kind,
        description and distribution moments rather than one number.
        """
        base = f"{prefix}{self.name}." if self.name else prefix
        for stat in self._stats:
            yield f"{base}{stat.name}", stat
        for child in self._children:
            yield from child.walk(base)

    def dump(self, prefix: str = "") -> Dict[str, Number]:
        """Flatten the tree into ``{dotted.name: value}``."""
        base = f"{prefix}{self.name}." if self.name else prefix
        out: Dict[str, Number] = {}
        for stat in self._stats:
            for suffix, value in stat.dump().items():
                out[f"{base}{stat.name}{suffix}"] = value
        for child in self._children:
            out.update(child.dump(base))
        return out

    def pretty(self) -> str:
        """Human-readable multi-line dump, aligned like gem5's stats.txt."""
        flat = self.dump()
        if not flat:
            return ""
        width = max(len(key) for key in flat)
        lines = []
        for key, value in sorted(flat.items()):
            if isinstance(value, float):
                rendered = f"{value:.6g}"
            else:
                rendered = str(value)
            lines.append(f"{key.ljust(width)}  {rendered}")
        return "\n".join(lines)
