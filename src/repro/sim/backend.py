"""The simulation-engine registry (``Simulator(backend=...)``).

The repository grew three ways to drive the same component models:

* ``reference`` — the original pure-binary-heap scheduler
  (:class:`~repro.sim.eventq.ReferenceEventQueue`).  Slowest, smallest,
  and the executable specification of dispatch order that everything
  else must match.
* ``hybrid`` — the PR-4 bucket/heap calendar queue
  (:class:`~repro.sim.eventq.EventQueue`).  The default engine.
* ``turbo`` — the hybrid queue plus the link-layer fast-forward path
  (:mod:`repro.pcie.fastpath`): quiescent link directions advance
  analytically, scheduling one pump event per component-visible tick
  instead of the full per-TLP event cascade.

This module makes that choice a first-class, named object instead of an
ad-hoc constructor argument, so future engines (compiled kernels,
partitioned-parallel schedulers) slot in beside these three:

* :func:`register` adds a :class:`Backend` under a unique name;
* :func:`resolve` maps a name (or None) to a Backend, consulting the
  ``REPRO_BACKEND`` environment variable for the process-wide default —
  exactly how ``REPRO_CHECK`` selects the invariant checker;
* :class:`~repro.sim.simobject.Simulator` accepts ``backend=`` and
  builds its event queue through the registry.

Every backend must produce byte-identical simulation *results* (stats,
traces, figure payloads, checkpoint fork continuations); only wall
clock and internal event accounting may differ.  The golden traces,
figure sweeps, stress campaign and the ``backend-identity`` CI job
enforce that contract.
"""

import os
from typing import Callable, Dict, List, Optional

from repro.sim.eventq import EventQueue, ReferenceEventQueue

__all__ = [
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "Backend",
    "backend_names",
    "default_backend_name",
    "register",
    "resolve",
]

#: Environment variable consulted when ``Simulator(backend=None)``: set
#: to a registered backend name to select the engine process-wide (how
#: the CI ``backend-identity`` job runs everything under ``turbo``).
BACKEND_ENV = "REPRO_BACKEND"

#: Backend used when neither the constructor nor the environment picks.
DEFAULT_BACKEND = "hybrid"

#: The registry itself: name -> Backend.
_REGISTRY: Dict[str, "Backend"] = {}


class Backend:
    """One named simulation engine.

    Args:
        name: registry key (also what ``REPRO_BACKEND`` matches).
        description: one line for ``--list`` style output.
        make_eventq: factory producing the engine's event queue given
            the queue name.
        link_fastpath: True when PCIe link interfaces should install
            the analytic fast-forward engine (:mod:`repro.pcie.fastpath`)
            under this backend.
        partitioned: True when ``Simulator.run`` should route eligible
            runs through the partitioned-parallel engine
            (:mod:`repro.sim.partition`).
    """

    __slots__ = ("name", "description", "make_eventq", "link_fastpath",
                 "partitioned")

    def __init__(self, name: str, description: str,
                 make_eventq: Callable[[str], object],
                 link_fastpath: bool = False,
                 partitioned: bool = False):
        self.name = name
        self.description = description
        self.make_eventq = make_eventq
        self.link_fastpath = link_fastpath
        self.partitioned = partitioned

    def __repr__(self) -> str:
        return f"<Backend {self.name!r} fastpath={self.link_fastpath}>"


def register(backend: Backend) -> Backend:
    """Add ``backend`` to the registry; duplicate names are an error."""
    if backend.name in _REGISTRY:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> List[str]:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)


def default_backend_name() -> str:
    """The process-wide default: ``REPRO_BACKEND`` else ``hybrid``."""
    return os.environ.get(BACKEND_ENV, "").strip() or DEFAULT_BACKEND


def resolve(name: Optional[str] = None) -> Backend:
    """Map a backend name (or None) to its :class:`Backend`.

    None consults :func:`default_backend_name`; unknown names raise a
    ValueError listing the registered choices, so a typo in
    ``--backend`` or ``REPRO_BACKEND`` fails loudly instead of silently
    simulating on the wrong engine.
    """
    chosen = name if name is not None else default_backend_name()
    backend = _REGISTRY.get(chosen)
    if backend is None:
        known = ", ".join(backend_names())
        raise ValueError(
            f"unknown simulation backend {chosen!r} (known: {known})")
    return backend


register(Backend(
    "reference",
    "pure binary-heap scheduler; the executable dispatch-order spec",
    lambda name: ReferenceEventQueue(name),
))
register(Backend(
    "hybrid",
    "bucket/heap calendar queue (PR 4); the default engine",
    lambda name: EventQueue(name),
))
register(Backend(
    "turbo",
    "hybrid queue + analytic link-layer fast-forward for quiescent links",
    lambda name: EventQueue(name),
    link_fastpath=True,
))


def _partition_eventq(name: str):
    """Build the ``parallel`` backend's partition-aware event queue.

    Imported lazily so merely registering the backend never pays for
    (or cycles through) the partition engine module.
    """
    from repro.sim.partition import PartitionEventQueue
    return PartitionEventQueue(name)


register(Backend(
    "parallel",
    "process-per-subtree partitioned engine; conservative link-latency "
    "sync, byte-identical to hybrid",
    _partition_eventq,
    partitioned=True,
))
