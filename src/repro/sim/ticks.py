"""Time units.

Following gem5, simulated time is measured in integer *ticks* where one
tick is one picosecond.  All latencies in the library are expressed in
ticks; these helpers convert to and from human units.

Ticks are plain ``int``; Python's arbitrary-precision integers mean a
simulation can run for arbitrarily long without overflow.
"""

# One tick is one picosecond.
PS = 1
NS = 1_000
US = 1_000_000
MS = 1_000_000_000
S = 1_000_000_000_000


def from_ps(ps: float) -> int:
    """Convert picoseconds to ticks (identity, rounded to int)."""
    return round(ps)


def from_ns(ns: float) -> int:
    """Convert nanoseconds to ticks."""
    return round(ns * NS)


def from_us(us: float) -> int:
    """Convert microseconds to ticks."""
    return round(us * US)


def from_ms(ms: float) -> int:
    """Convert milliseconds to ticks."""
    return round(ms * MS)


def from_s(s: float) -> int:
    """Convert seconds to ticks."""
    return round(s * S)


def to_ns(ticks: int) -> float:
    """Convert ticks to nanoseconds."""
    return ticks / NS


def to_us(ticks: int) -> float:
    """Convert ticks to microseconds."""
    return ticks / US


def to_ms(ticks: int) -> float:
    """Convert ticks to milliseconds."""
    return ticks / MS


def to_s(ticks: int) -> float:
    """Convert ticks to seconds."""
    return ticks / S


def from_frequency_hz(hz: float) -> int:
    """Return the period, in ticks, of a clock running at ``hz`` hertz."""
    if hz <= 0:
        raise ValueError(f"frequency must be positive, got {hz}")
    return round(S / hz)


def gbps_to_bytes_per_tick(gbps: float) -> float:
    """Convert a bit rate in Gbit/s to bytes per tick.

    Useful for link bandwidth arithmetic: a Gen 2 lane at 5 Gbps moves
    ``gbps_to_bytes_per_tick(5.0)`` bytes every picosecond.
    """
    bits_per_second = gbps * 1e9
    bytes_per_second = bits_per_second / 8.0
    return bytes_per_second / S


def bytes_per_tick_to_gbps(bytes_per_tick: float) -> float:
    """Inverse of :func:`gbps_to_bytes_per_tick`."""
    return bytes_per_tick * S * 8.0 / 1e9
