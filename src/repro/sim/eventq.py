"""The event queue at the heart of the simulator.

Events are scheduled at an absolute tick and fire in (tick, priority,
insertion-order) order, mirroring gem5's deterministic event queue.  An
:class:`Event` subclass overrides :meth:`Event.process`;
:class:`CallbackEvent` wraps a plain callable for one-off work.

:class:`EventQueue` is a hybrid scheduler: a calendar-queue-style ring
of near-term buckets absorbs the short, periodic delays that dominate
PCIe simulation (flit times, ACK timers, crossbar/DRAM latencies),
while a binary heap holds the far future (replay timeouts, dd's
startup overhead).  Dispatch order is byte-identical to a pure heap —
``(tick, priority, insertion-seq)`` with lazy squashing — which
:class:`ReferenceEventQueue` preserves as the executable specification
the property tests compare against.
"""

import heapq
from bisect import bisect_right
from typing import Callable, List, Optional, Tuple


class Event:
    """A schedulable unit of work.

    Subclasses override :meth:`process`.  An event instance may be
    scheduled at most once at a time; it can be rescheduled after it has
    fired or been descheduled.  Priorities follow gem5's convention:
    lower numeric priority fires first within a tick.

    Hot-path components keep a small pool of recycled Event subclasses
    with mutable payload slots instead of allocating a closure-wrapped
    :class:`CallbackEvent` per packet.  The recycling contract: an event
    may be reused as soon as ``scheduled`` is False — i.e. after it has
    fired or been descheduled — because squashing clears the queue
    entry's event slot, so a recycled event can never fire a stale
    payload even when rescheduled at the same tick.
    """

    # Common gem5-style priorities.  Most events use DEFAULT_PRI; the
    # others exist so that, e.g., statistics dumps observe a consistent
    # state within a tick.
    MINIMUM_PRI = -100
    DEFAULT_PRI = 0
    SIM_EXIT_PRI = 98
    MAXIMUM_PRI = 100

    # Events are created per TLP/DMA step in the hot loops; slots keep
    # them dict-free.  Subclasses that add state must declare their own
    # __slots__ to stay that way (plain subclasses still work — they
    # just regain a __dict__).
    __slots__ = ("priority", "name", "_when", "_entry")

    def __init__(self, priority: int = DEFAULT_PRI, name: str = ""):
        self.priority = priority
        self.name = name or type(self).__name__
        self._when: Optional[int] = None
        # The live queue entry for this event; squashing an entry is done
        # by clearing its event slot so a stale entry can never fire even
        # if the event is immediately rescheduled.
        self._entry: Optional[list] = None

    # -- scheduling state -------------------------------------------------
    @property
    def scheduled(self) -> bool:
        """True while the event sits in an event queue."""
        return self._entry is not None

    @property
    def when(self) -> Optional[int]:
        """Tick at which the event will fire, or None if unscheduled."""
        return self._when if self.scheduled else None

    # -- behaviour ---------------------------------------------------------
    def process(self) -> None:
        """The event's work; runs at its scheduled tick."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} @ {self._when}>"


class CallbackEvent(Event):
    """An event that invokes an arbitrary callable when it fires."""

    __slots__ = ("_callback",)

    def __init__(
        self,
        callback: Callable[[], None],
        priority: int = Event.DEFAULT_PRI,
        name: str = "",
    ):
        super().__init__(priority, name or getattr(callback, "__name__", "callback"))
        self._callback = callback

    def process(self) -> None:
        """Invoke the wrapped callable."""
        self._callback()


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    The queue tracks the current simulated time (:attr:`curtick`).  Time
    only advances by servicing events; :meth:`run` drains the queue until
    it is empty, a tick limit is reached, or :meth:`stop` is called.

    Internally this is a three-tier hybrid (dispatch order is exactly
    that of a single heap — see :class:`ReferenceEventQueue`):

    * ``_active`` — the sorted batch currently being drained, with
      ``_active_pos`` marking the next entry to fire.  Late schedules
      that land below ``_wheel_tick`` are insorted here (clamped to
      ``_active_pos`` so they can't be placed behind already-dispatched
      entries).
    * ``_buckets`` — a ring of ``num_buckets`` buckets, each spanning
      ``2**bucket_bits`` ticks, covering the window
      ``[_wheel_tick, _wheel_tick + span)``.  Appending is O(1); a
      bucket is sorted only when its turn comes to become the active
      batch.  The defaults (64 buckets × ~1.05 µs ≈ 67 µs of window)
      keep every periodic link-layer delay — flit times through the
      ~0.8 µs replay timeout — within one or two buckets of *now*, so
      bursts coalesce into sizeable batches.
    * ``_heap`` — everything at or beyond the window.  Invariant: the
      heap minimum is always >= ``_wheel_tick``, maintained by
      migrating entries below the next bucket boundary whenever a
      bucket is activated.  When the wheel is empty the window jumps
      straight to the heap minimum's bucket instead of stepping.

    Squashed entries (lazy :meth:`deschedule`) are counted globally and
    compacted out of all three tiers once they outnumber live events,
    so replay/ACK-timer churn can no longer bloat the queue.  ``_live``
    maintains O(1) :meth:`__len__` / :meth:`empty`.
    """

    #: Compaction is skipped below this many squashed entries — tiny
    #: queues aren't worth rebuilding even when mostly dead.
    COMPACT_MIN_SQUASHED = 64

    def __init__(self, name: str = "eventq", bucket_bits: int = 20,
                 num_buckets: int = 64):
        self.name = name
        # Set by the owning Simulator; a bare EventQueue is untraced.
        self.tracer = None
        # Set by the owning Simulator; a bare EventQueue is unchecked.
        self.checker = None
        self.curtick: int = 0
        # Insertion sequence for (tick, priority, seq) ordering.  A plain
        # int rather than itertools.count() so a checkpoint can record it
        # without consuming a value (see :mod:`repro.sim.checkpoint`).
        self._next_seq = 0
        self._stop_requested = False
        # Number of events processed since construction; handy both for
        # statistics and for runaway-simulation guards in tests.
        self.events_processed: int = 0
        if num_buckets & (num_buckets - 1):
            raise ValueError(f"num_buckets must be a power of two, "
                             f"got {num_buckets}")
        self._shift = bucket_bits
        self._mask = num_buckets - 1
        self._span = num_buckets << bucket_bits
        #: Lower edge of the next bucket to activate; every wheel entry
        #: has ``_wheel_tick <= when < _wheel_tick + _span``.
        self._wheel_tick = 0
        self._buckets: List[list] = [[] for _ in range(num_buckets)]
        #: Bit i set ⇔ ``_buckets[i]`` is non-empty; lets the refill
        #: path jump over runs of empty buckets in O(1) instead of
        #: stepping them, which matters for sparse timelines.
        self._occupied = 0
        self._heap: List[Tuple[int, int, int, Event]] = []
        #: Sorted batch being drained; entries before _active_pos have
        #: fired or were squashed.
        self._active: List[list] = []
        self._active_pos = 0
        #: Live (scheduled, non-squashed) events across all tiers.
        self._live = 0
        #: Squashed entries still physically present across all tiers.
        self._squashed = 0

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, when: int) -> Event:
        """Schedule ``event`` to fire at absolute tick ``when``."""
        if when < self.curtick:
            raise ValueError(
                f"cannot schedule {event!r} at {when} in the past "
                f"(curtick={self.curtick})"
            )
        if event._entry is not None:
            raise RuntimeError(f"{event!r} is already scheduled")
        event._when = when
        seq = self._next_seq
        self._next_seq = seq + 1
        entry = [when, event.priority, seq, event]
        event._entry = entry
        self._live += 1
        offset = when - self._wheel_tick
        if offset < 0:
            # The window has already moved past this tick: the entry
            # belongs in the batch being drained.  Clamping the insort
            # position to _active_pos keeps it ahead of (dead) already-
            # consumed entries while preserving sorted order among the
            # live remainder — every live entry at >= _active_pos sorts
            # after it whenever bisect lands below the clamp.
            active = self._active
            ip = bisect_right(active, entry)
            pos = self._active_pos
            active.insert(ip if ip > pos else pos, entry)
        elif offset < self._span:
            idx = (when >> self._shift) & self._mask
            self._buckets[idx].append(entry)
            self._occupied |= 1 << idx
        else:
            heapq.heappush(self._heap, entry)
        return event

    def schedule_after(self, event: Event, delay: int) -> Event:
        """Schedule ``event`` to fire ``delay`` ticks from now."""
        return self.schedule(event, self.curtick + delay)

    def schedule_callback(
        self, delay: int, callback: Callable[[], None], name: str = ""
    ) -> CallbackEvent:
        """Convenience: schedule a plain callable ``delay`` ticks from now."""
        event = CallbackEvent(callback, name=name)
        self.schedule_after(event, delay)
        return event

    def deschedule(self, event: Event) -> None:
        """Remove a scheduled event (lazily: its entry is squashed)."""
        entry = event._entry
        if entry is None:
            raise RuntimeError(f"{event!r} is not scheduled")
        entry[3] = None
        event._entry = None
        event._when = None
        self._live -= 1
        self._squashed += 1
        # Replay/ACK-timer churn deschedules far more than it fires;
        # once dead entries outnumber live ones, rebuild every tier.
        if (self._squashed > self.COMPACT_MIN_SQUASHED
                and self._squashed > self._live):
            self._compact()

    def reschedule(self, event: Event, when: int) -> Event:
        """Move an event to a new tick, scheduling it if it was idle."""
        if event._entry is not None:
            self.deschedule(event)
        return self.schedule(event, when)

    # -- checkpointing -----------------------------------------------------
    def live_entries(self) -> List[list]:
        """Every live (non-squashed) entry across all three tiers.

        Entries are the queue's internal ``[when, priority, seq, event]``
        lists, returned in no particular order — callers that need the
        dispatch order sort by the ``(when, priority, seq)`` prefix.
        Used by :mod:`repro.sim.checkpoint` to describe pending events.
        """
        entries = [e for e in self._active[self._active_pos:]
                   if e[3] is not None]
        for bucket in self._buckets:
            if bucket:
                entries.extend(e for e in bucket if e[3] is not None)
        entries.extend(e for e in self._heap if e[3] is not None)
        return entries

    def state_dict(self) -> dict:
        """Scalar scheduler state for a checkpoint (no events).

        Pending events are captured separately via :meth:`live_entries`
        because they need callback reconstruction, not raw copying.
        """
        return {
            "curtick": self.curtick,
            "next_seq": self._next_seq,
            "events_processed": self.events_processed,
        }

    def load_state_dict(self, state: dict,
                        entries: "List[Tuple[int, int, int, Event]]") -> None:
        """Rebuild the queue from checkpointed state plus live entries.

        Args:
            state: a :meth:`state_dict` document (curtick, next_seq,
                events_processed).
            entries: ``(when, priority, seq, event)`` tuples with the
                event objects already reconstructed.  The exact
                ``(when, priority, seq)`` triples are preserved, so the
                dispatch order after restore is byte-identical to an
                uncheckpointed continuation — including ties that new
                post-restore schedules (whose seq continues from
                ``next_seq``) can never win retroactively.

        The queue's previous contents are discarded; callers are
        expected to restore into a freshly built (empty) queue.
        """
        self.curtick = state["curtick"]
        self._next_seq = state["next_seq"]
        self.events_processed = state["events_processed"]
        self._stop_requested = False
        self._wheel_tick = (self.curtick >> self._shift) << self._shift
        self._buckets = [[] for _ in range(self._mask + 1)]
        self._occupied = 0
        self._heap = []
        self._active = []
        self._active_pos = 0
        self._live = 0
        self._squashed = 0
        for when, priority, seq, event in entries:
            if event._entry is not None:
                raise RuntimeError(
                    f"cannot restore {event!r}: it is already scheduled")
            entry = [when, priority, seq, event]
            event._when = when
            event._entry = entry
            # No pending entry can predate the restored clock, so the
            # window placement only needs the bucket/heap split.
            if when - self._wheel_tick < self._span:
                idx = (when >> self._shift) & self._mask
                self._buckets[idx].append(entry)
                self._occupied |= 1 << idx
            else:
                heapq.heappush(self._heap, entry)
            self._live += 1

    # -- internals ---------------------------------------------------------
    def _compact(self) -> None:
        """Physically drop every squashed entry from all three tiers."""
        heap = [e for e in self._heap if e[3] is not None]
        heapq.heapify(heap)
        self._heap = heap
        occupied = 0
        buckets = self._buckets
        for i, bucket in enumerate(buckets):
            if bucket:
                buckets[i] = [e for e in bucket if e[3] is not None]
                if buckets[i]:
                    occupied |= 1 << i
        self._occupied = occupied
        # The consumed prefix of the active batch goes too; callers in
        # the drain loop re-read _active/_active_pos after any model
        # code runs, so swapping the list out from under them is safe.
        self._active = [e for e in self._active[self._active_pos:]
                        if e[3] is not None]
        self._active_pos = 0
        self._squashed = 0

    def _refill_active(self) -> bool:
        """Activate the next non-empty slice of time as the drain batch.

        Returns False when no live events remain anywhere.  Advances
        ``_wheel_tick`` bucket by bucket, migrating heap entries that
        have come inside each new boundary (preserving the heap-min >=
        ``_wheel_tick`` invariant), and jumping the window straight to
        the heap minimum whenever the wheel is empty.
        """
        shift = self._shift
        width = 1 << shift
        mask = self._mask
        ring = mask + 1
        full = (1 << ring) - 1
        while True:
            heap = self._heap
            while heap and heap[0][3] is None:
                heapq.heappop(heap)
                self._squashed -= 1
            occ = self._occupied
            if not occ:
                if not heap:
                    self._active = []
                    self._active_pos = 0
                    return False
                # Wheel empty: jump the window straight to the heap
                # minimum's bucket instead of stepping towards it.
                wtick = (heap[0][0] >> shift) << shift
            else:
                # Jump to the first non-empty bucket in time order.
                # Rotating the occupancy mask so the current window
                # start is bit 0 turns "next bucket in time" into
                # "lowest set bit" — O(1) instead of stepping empties.
                i = (self._wheel_tick >> shift) & mask
                rot = ((occ >> i) | (occ << (ring - i))) & full
                wtick = self._wheel_tick + (((rot & -rot).bit_length() - 1)
                                            << shift)
                if heap:
                    # ...unless a heap entry has come inside the window
                    # before that bucket's slice of time.
                    htick = (heap[0][0] >> shift) << shift
                    if htick < wtick:
                        wtick = htick
            boundary = wtick + width
            idx = (wtick >> shift) & mask
            batch = self._buckets[idx]
            if batch:
                # Hand the bucket list itself over as the drain batch —
                # squashed entries are NOT filtered here; the drain
                # loops skip them (and settle the _squashed count) far
                # more cheaply than a copy per activation would.
                self._buckets[idx] = []
                self._occupied &= ~(1 << idx)
            else:
                # The bucket is empty, but heap migration below may
                # populate the batch.  It MUST NOT alias the ring slot:
                # a shared list would leave consumed entries in the
                # bucket and let a later schedule() for this slot's
                # next lap append a far-future entry straight into the
                # batch being drained — unsorted, firing ~one window
                # early.
                batch = []
            while heap and heap[0][0] < boundary:
                batch.append(heapq.heappop(heap))
            self._wheel_tick = boundary
            if batch:
                if len(batch) > 1:
                    batch.sort()
                self._active = batch
                self._active_pos = 0
                return True

    def _peek(self) -> Optional[list]:
        """The next live entry, left unconsumed; None when drained."""
        active = self._active
        pos = self._active_pos
        while True:
            n = len(active)
            while pos < n:
                entry = active[pos]
                if entry[3] is not None:
                    self._active_pos = pos
                    return entry
                pos += 1
                self._squashed -= 1
            self._active_pos = pos
            if not self._refill_active():
                return None
            active = self._active
            pos = 0

    # -- execution ---------------------------------------------------------
    def empty(self) -> bool:
        """True if no live (non-squashed) events remain."""
        return self._live == 0

    def next_tick(self) -> Optional[int]:
        """Tick of the next live event, or None if the queue is empty."""
        entry = self._peek()
        return entry[0] if entry is not None else None

    def service_one(self) -> bool:
        """Pop and process the next live event.  Returns False when empty."""
        entry = self._peek()
        if entry is None:
            return False
        self._active_pos += 1
        when = entry[0]
        event = entry[3]
        entry[3] = None
        self.curtick = when
        event._when = None
        event._entry = None
        self._live -= 1
        self.events_processed += 1
        trc = self.tracer
        if trc is not None and trc.enabled:
            trc.emit(when, "eventq", self.name, "dispatch",
                     name=event.name, pri=event.priority)
        ck = self.checker
        if ck is not None and ck.enabled:
            ck.on_dispatch(when, event)
        event.process()
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Service events until the queue drains or a limit is hit.

        Args:
            until: stop once the next event would fire after this tick.
                The clock is advanced to ``until`` when the limit stops
                the run before the queue drains.
            max_events: stop after servicing this many events (guard
                against runaway simulations in tests).

        Returns:
            The current tick when the run stopped.
        """
        self._stop_requested = False
        # The drain below is service_one() inlined: this loop runs tens
        # of millions of iterations per benchmark, and the two extra
        # function calls per event (next_tick + service_one) cost more
        # than everything else in the queue machinery.  Keep the two
        # code paths in sync.
        #
        # Per-iteration costs are shaved by folding the two optional
        # limits into always-comparable locals (None → +inf / a
        # countdown that never reaches zero), hoisting the tracer and
        # checker references (the Simulator never replaces them — only
        # their `enabled` flags flip), and batching the
        # events_processed attribute store into a local counter flushed
        # on exit.
        #
        # The locals (active, pos, n) mirror (_active, _active_pos,
        # len) and MUST be re-read after event.process(): a deschedule
        # inside model code can trigger _compact(), which replaces the
        # active list, and a late schedule can insert into it.
        trc = self.tracer
        ck = self.checker
        refill = self._refill_active
        until_t = float("inf") if until is None else until
        remaining = -1 if max_events is None else max_events
        serviced = 0
        active = self._active
        pos = self._active_pos
        n = len(active)
        try:
            while not self._stop_requested:
                if pos < n:
                    entry = active[pos]
                    event = entry[3]
                    if event is None:
                        pos += 1
                        self._squashed -= 1
                        continue
                else:
                    self._active_pos = pos
                    if not refill():
                        active = self._active
                        pos = 0
                        n = 0
                        break
                    active = self._active
                    pos = 0
                    n = len(active)
                    continue
                when = entry[0]
                if when > until_t:
                    self.curtick = until
                    break
                if remaining == serviced:
                    break
                pos += 1
                self._active_pos = pos
                entry[3] = None
                self.curtick = when
                event._when = None
                event._entry = None
                self._live -= 1
                serviced += 1
                if trc is not None and trc.enabled:
                    trc.emit(when, "eventq", self.name, "dispatch",
                             name=event.name, pri=event.priority)
                if ck is not None and ck.enabled:
                    ck.on_dispatch(when, event)
                event.process()
                active = self._active
                pos = self._active_pos
                n = len(active)
        finally:
            self._active_pos = pos
            self.events_processed += serviced
        return self.curtick

    def stop(self) -> None:
        """Ask a :meth:`run` in progress to stop after the current event."""
        self._stop_requested = True

    def __len__(self) -> int:
        return self._live

    def __repr__(self) -> str:
        return f"<EventQueue {self.name!r} tick={self.curtick} pending={len(self)}>"


class ReferenceEventQueue:
    """The original pure-binary-heap event queue, kept as a reference.

    This is the executable specification of dispatch order — ``(tick,
    priority, insertion-seq)`` with lazy squashing — that the hybrid
    :class:`EventQueue` must match entry for entry.  The property tests
    in ``tests/sim/test_eventq_hybrid.py`` drive both implementations
    with identical randomized schedule/deschedule/reschedule workloads
    and assert the dispatch sequences are identical.  Selectable as the
    ``reference`` engine through :mod:`repro.sim.backend`, so it keeps
    the full Simulator-facing surface: tracer/checker dispatch hooks
    and the checkpoint protocol (:meth:`live_entries` /
    :meth:`state_dict` / :meth:`load_state_dict`).
    """

    def __init__(self, name: str = "eventq"):
        self.name = name
        self.tracer = None
        self.checker = None
        self.curtick: int = 0
        self._heap: List[Tuple[int, int, int, Event]] = []
        # A plain int (not itertools.count) so checkpoints can record
        # the counter without consuming a value, exactly like the
        # hybrid queue.
        self._next_seq = 0
        self._stop_requested = False
        self.events_processed: int = 0

    def schedule(self, event: Event, when: int) -> Event:
        """Schedule ``event`` to fire at absolute tick ``when``."""
        if when < self.curtick:
            raise ValueError(
                f"cannot schedule {event!r} at {when} in the past "
                f"(curtick={self.curtick})"
            )
        if event.scheduled:
            raise RuntimeError(f"{event!r} is already scheduled")
        event._when = when
        seq = self._next_seq
        self._next_seq = seq + 1
        entry = [when, event.priority, seq, event]
        event._entry = entry
        heapq.heappush(self._heap, entry)
        return event

    def schedule_after(self, event: Event, delay: int) -> Event:
        """Schedule ``event`` to fire ``delay`` ticks from now."""
        return self.schedule(event, self.curtick + delay)

    def schedule_callback(
        self, delay: int, callback: Callable[[], None], name: str = ""
    ) -> CallbackEvent:
        """Convenience: schedule a plain callable ``delay`` ticks from now."""
        event = CallbackEvent(callback, name=name)
        self.schedule_after(event, delay)
        return event

    # -- checkpointing -----------------------------------------------------
    def live_entries(self) -> List[list]:
        """Every live (non-squashed) entry; see :meth:`EventQueue.live_entries`."""
        return [e for e in self._heap if e[3] is not None]

    def state_dict(self) -> dict:
        """Scalar scheduler state for a checkpoint (no events)."""
        return {
            "curtick": self.curtick,
            "next_seq": self._next_seq,
            "events_processed": self.events_processed,
        }

    def load_state_dict(self, state: dict,
                        entries: "List[Tuple[int, int, int, Event]]") -> None:
        """Rebuild the queue from checkpointed state plus live entries.

        Mirrors :meth:`EventQueue.load_state_dict`: the exact ``(when,
        priority, seq)`` triples are preserved so the restored dispatch
        order is byte-identical to an uncheckpointed continuation.
        """
        self.curtick = state["curtick"]
        self._next_seq = state["next_seq"]
        self.events_processed = state["events_processed"]
        self._stop_requested = False
        self._heap = []
        for when, priority, seq, event in entries:
            if event._entry is not None:
                raise RuntimeError(
                    f"cannot restore {event!r}: it is already scheduled")
            entry = [when, priority, seq, event]
            event._when = when
            event._entry = entry
            self._heap.append(entry)
        heapq.heapify(self._heap)

    def deschedule(self, event: Event) -> None:
        """Remove a scheduled event (lazily: its entry is squashed)."""
        if not event.scheduled:
            raise RuntimeError(f"{event!r} is not scheduled")
        event._entry[3] = None
        event._entry = None
        event._when = None

    def reschedule(self, event: Event, when: int) -> Event:
        """Move an event to a new tick, scheduling it if it was idle."""
        if event.scheduled:
            self.deschedule(event)
        return self.schedule(event, when)

    def empty(self) -> bool:
        """True if no live (non-squashed) events remain."""
        self._drop_squashed_head()
        return not self._heap

    def _drop_squashed_head(self) -> None:
        while self._heap and self._heap[0][3] is None:
            heapq.heappop(self._heap)

    def next_tick(self) -> Optional[int]:
        """Tick of the next live event, or None if the queue is empty."""
        self._drop_squashed_head()
        return self._heap[0][0] if self._heap else None

    def service_one(self) -> bool:
        """Pop and process the next live event.  Returns False when empty."""
        self._drop_squashed_head()
        if not self._heap:
            return False
        when, __, __, event = heapq.heappop(self._heap)
        assert event is not None
        self.curtick = when
        event._when = None
        event._entry = None
        self.events_processed += 1
        trc = self.tracer
        if trc is not None and trc.enabled:
            trc.emit(when, "eventq", self.name, "dispatch",
                     name=event.name, pri=event.priority)
        ck = self.checker
        if ck is not None and ck.enabled:
            ck.on_dispatch(when, event)
        event.process()
        return True

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Service events until the queue drains or a limit is hit."""
        self._stop_requested = False
        heap = self._heap
        pop = heapq.heappop
        trc = self.tracer
        ck = self.checker
        until_t = float("inf") if until is None else until
        remaining = -1 if max_events is None else max_events
        serviced = 0
        try:
            while not self._stop_requested:
                while heap and heap[0][3] is None:
                    pop(heap)
                if not heap:
                    break
                when = heap[0][0]
                if when > until_t:
                    self.curtick = until
                    break
                if remaining == serviced:
                    break
                event = pop(heap)[3]
                self.curtick = when
                event._when = None
                event._entry = None
                serviced += 1
                if trc is not None and trc.enabled:
                    trc.emit(when, "eventq", self.name, "dispatch",
                             name=event.name, pri=event.priority)
                if ck is not None and ck.enabled:
                    ck.on_dispatch(when, event)
                event.process()
        finally:
            self.events_processed += serviced
        return self.curtick

    def stop(self) -> None:
        """Ask a :meth:`run` in progress to stop after the current event."""
        self._stop_requested = True

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if entry[3] is not None)

    def __repr__(self) -> str:
        return (f"<ReferenceEventQueue {self.name!r} "
                f"tick={self.curtick} pending={len(self)}>")
