"""The event queue at the heart of the simulator.

Events are scheduled at an absolute tick and fire in (tick, priority,
insertion-order) order, mirroring gem5's deterministic event queue.  An
:class:`Event` subclass overrides :meth:`Event.process`;
:class:`CallbackEvent` wraps a plain callable for one-off work.
"""

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class Event:
    """A schedulable unit of work.

    Subclasses override :meth:`process`.  An event instance may be
    scheduled at most once at a time; it can be rescheduled after it has
    fired or been descheduled.  Priorities follow gem5's convention:
    lower numeric priority fires first within a tick.
    """

    # Common gem5-style priorities.  Most events use DEFAULT_PRI; the
    # others exist so that, e.g., statistics dumps observe a consistent
    # state within a tick.
    MINIMUM_PRI = -100
    DEFAULT_PRI = 0
    SIM_EXIT_PRI = 98
    MAXIMUM_PRI = 100

    # Events are created per TLP/DMA step in the hot loops; slots keep
    # them dict-free.  Subclasses that add state must declare their own
    # __slots__ to stay that way (plain subclasses still work — they
    # just regain a __dict__).
    __slots__ = ("priority", "name", "_when", "_entry")

    def __init__(self, priority: int = DEFAULT_PRI, name: str = ""):
        self.priority = priority
        self.name = name or type(self).__name__
        self._when: Optional[int] = None
        # The live heap entry for this event; squashing an entry is done
        # by clearing its event slot so a stale entry can never fire even
        # if the event is immediately rescheduled.
        self._entry: Optional[list] = None

    # -- scheduling state -------------------------------------------------
    @property
    def scheduled(self) -> bool:
        """True while the event sits in an event queue."""
        return self._entry is not None

    @property
    def when(self) -> Optional[int]:
        """Tick at which the event will fire, or None if unscheduled."""
        return self._when if self.scheduled else None

    # -- behaviour ---------------------------------------------------------
    def process(self) -> None:
        """The event's work; runs at its scheduled tick."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} @ {self._when}>"


class CallbackEvent(Event):
    """An event that invokes an arbitrary callable when it fires."""

    __slots__ = ("_callback",)

    def __init__(
        self,
        callback: Callable[[], None],
        priority: int = Event.DEFAULT_PRI,
        name: str = "",
    ):
        super().__init__(priority, name or getattr(callback, "__name__", "callback"))
        self._callback = callback

    def process(self) -> None:
        """Invoke the wrapped callable."""
        self._callback()


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    The queue tracks the current simulated time (:attr:`curtick`).  Time
    only advances by servicing events; :meth:`run` drains the queue until
    it is empty, a tick limit is reached, or :meth:`stop` is called.
    """

    def __init__(self, name: str = "eventq"):
        self.name = name
        # Set by the owning Simulator; a bare EventQueue is untraced.
        self.tracer = None
        # Set by the owning Simulator; a bare EventQueue is unchecked.
        self.checker = None
        self.curtick: int = 0
        self._heap: List[Tuple[int, int, int, Event]] = []
        self._counter = itertools.count()
        self._stop_requested = False
        # Number of events processed since construction; handy both for
        # statistics and for runaway-simulation guards in tests.
        self.events_processed: int = 0

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, when: int) -> Event:
        """Schedule ``event`` to fire at absolute tick ``when``."""
        if when < self.curtick:
            raise ValueError(
                f"cannot schedule {event!r} at {when} in the past "
                f"(curtick={self.curtick})"
            )
        if event.scheduled:
            raise RuntimeError(f"{event!r} is already scheduled")
        event._when = when
        entry = [when, event.priority, next(self._counter), event]
        event._entry = entry
        heapq.heappush(self._heap, entry)
        return event

    def schedule_after(self, event: Event, delay: int) -> Event:
        """Schedule ``event`` to fire ``delay`` ticks from now."""
        return self.schedule(event, self.curtick + delay)

    def schedule_callback(
        self, delay: int, callback: Callable[[], None], name: str = ""
    ) -> CallbackEvent:
        """Convenience: schedule a plain callable ``delay`` ticks from now."""
        event = CallbackEvent(callback, name=name)
        self.schedule_after(event, delay)
        return event

    def deschedule(self, event: Event) -> None:
        """Remove a scheduled event (lazily: its entry is squashed)."""
        if not event.scheduled:
            raise RuntimeError(f"{event!r} is not scheduled")
        assert event._entry is not None
        event._entry[3] = None
        event._entry = None
        event._when = None

    def reschedule(self, event: Event, when: int) -> Event:
        """Move an event to a new tick, scheduling it if it was idle."""
        if event.scheduled:
            self.deschedule(event)
        return self.schedule(event, when)

    # -- execution ---------------------------------------------------------
    def empty(self) -> bool:
        """True if no live (non-squashed) events remain."""
        self._drop_squashed_head()
        return not self._heap

    def _drop_squashed_head(self) -> None:
        while self._heap and self._heap[0][3] is None:
            heapq.heappop(self._heap)

    def next_tick(self) -> Optional[int]:
        """Tick of the next live event, or None if the queue is empty."""
        self._drop_squashed_head()
        return self._heap[0][0] if self._heap else None

    def service_one(self) -> bool:
        """Pop and process the next live event.  Returns False when empty."""
        self._drop_squashed_head()
        if not self._heap:
            return False
        when, __, __, event = heapq.heappop(self._heap)
        assert event is not None
        self.curtick = when
        event._when = None
        event._entry = None
        self.events_processed += 1
        trc = self.tracer
        if trc is not None and trc.enabled:
            trc.emit(when, "eventq", self.name, "dispatch",
                     name=event.name, pri=event.priority)
        ck = self.checker
        if ck is not None and ck.enabled:
            ck.on_dispatch(when, event)
        event.process()
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Service events until the queue drains or a limit is hit.

        Args:
            until: stop once the next event would fire after this tick.
                The clock is advanced to ``until`` when the limit stops
                the run before the queue drains.
            max_events: stop after servicing this many events (guard
                against runaway simulations in tests).

        Returns:
            The current tick when the run stopped.
        """
        self._stop_requested = False
        # The drain below is service_one() inlined: this loop runs tens
        # of millions of iterations per benchmark, and the two extra
        # function calls per event (next_tick + service_one, each
        # re-dropping squashed heads) cost more than everything else in
        # the queue machinery.  Keep the two code paths in sync.
        #
        # Per-iteration costs are shaved further by folding the two
        # optional limits into always-comparable locals (None → +inf /
        # a countdown that never reaches zero), hoisting the tracer
        # reference (the Simulator never replaces it — only its
        # `enabled` flag flips), and batching the events_processed
        # attribute store into a local counter flushed on exit.
        heap = self._heap
        pop = heapq.heappop
        trc = self.tracer
        ck = self.checker
        until_t = float("inf") if until is None else until
        remaining = -1 if max_events is None else max_events
        serviced = 0
        try:
            while not self._stop_requested:
                while heap and heap[0][3] is None:
                    pop(heap)
                if not heap:
                    break
                when = heap[0][0]
                if when > until_t:
                    self.curtick = until
                    break
                if remaining == serviced:
                    break
                event = pop(heap)[3]
                self.curtick = when
                event._when = None
                event._entry = None
                serviced += 1
                if trc is not None and trc.enabled:
                    trc.emit(when, "eventq", self.name, "dispatch",
                             name=event.name, pri=event.priority)
                if ck is not None and ck.enabled:
                    ck.on_dispatch(when, event)
                event.process()
        finally:
            self.events_processed += serviced
        return self.curtick

    def stop(self) -> None:
        """Ask a :meth:`run` in progress to stop after the current event."""
        self._stop_requested = True

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if entry[3] is not None)

    def __repr__(self) -> str:
        return f"<EventQueue {self.name!r} tick={self.curtick} pending={len(self)}>"
