"""Generator-based processes for modelling software on top of the
event queue.

The paper's evaluation runs real software (the Linux kernel's
enumeration code, the IDE driver, ``dd``) on gem5's simulated CPU.  We
model that software directly as *processes*: Python generators that
yield timing directives.  A process may yield:

* :class:`Delay` — consume simulated time (models computation,
  syscall overhead, interrupt handling cost, ...).
* :class:`WaitFor` — block until a :class:`Signal` fires (models
  sleeping on an I/O completion / interrupt).

Example::

    def dd_like(kernel):
        yield Delay(ticks.from_us(50))        # setup cost
        kernel.issue_read(...)                # kick off hardware
        yield WaitFor(kernel.io_done)         # sleep until the IRQ
        ...

Processes make the software side of the simulation readable while
remaining fully event-driven and deterministic.
"""

from typing import Any, Generator, List, Optional, Union

from repro.sim.simobject import SimObject, Simulator


class Delay:
    """Yield from a process to advance simulated time by ``ticks``."""

    __slots__ = ("ticks",)

    def __init__(self, ticks: int):
        if ticks < 0:
            raise ValueError(f"delay must be non-negative, got {ticks}")
        self.ticks = ticks


class Signal:
    """A broadcast condition processes can wait on.

    :meth:`notify` wakes every waiter, delivering an optional value as
    the result of the ``yield``.  By default signals are edge-triggered:
    a notify with no waiters is not remembered.  A *latched* signal
    (``latch=True``) instead stays fired after its first notify, waking
    late waiters immediately — the right shape for one-shot completion
    events (DMA done, request finished) where the waiter may arrive
    after the hardware does.
    """

    def __init__(self, name: str = "signal", latch: bool = False):
        self.name = name
        self.latch = latch
        self._waiters: List["Process"] = []
        self.notify_count = 0
        self._fired = False
        self._value: Any = None

    @property
    def fired(self) -> bool:
        """True once a latched signal has notified."""
        return self._fired

    def notify(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        self.notify_count += 1
        if self.latch:
            self._fired = True
            self._value = value
        for process in waiters:
            process._resume_soon(value)
        return len(waiters)

    def _add_waiter(self, process: "Process") -> None:
        if self.latch and self._fired:
            process._resume_soon(self._value)
            return
        self._waiters.append(process)

    def subscribe(self, callback) -> None:
        """Register a one-shot plain callback fired (synchronously) on
        the next :meth:`notify` — for event-driven hardware models that
        are not generator processes."""
        self._waiters.append(_CallbackWaiter(callback))

    @property
    def waiter_count(self) -> int:
        """Processes/callbacks currently blocked on this signal."""
        return len(self._waiters)

    def __repr__(self) -> str:
        return f"<Signal {self.name!r} waiters={len(self._waiters)}>"


class _CallbackWaiter:
    """Adapts a plain callback to the waiter protocol."""

    __slots__ = ("_callback",)

    def __init__(self, callback):
        self._callback = callback

    def _resume_soon(self, value):
        self._callback(value)


class WaitFor:
    """Yield from a process to sleep until ``signal`` notifies."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal):
        self.signal = signal


Directive = Union[Delay, WaitFor]


class Process(SimObject):
    """A software activity driven by the event queue.

    Wraps a generator; each yielded :class:`Delay` or :class:`WaitFor`
    suspends the generator and arranges for it to resume later.  When
    the generator returns, :attr:`done` becomes True, :attr:`result`
    holds its return value, and :attr:`completed` notifies (so processes
    can wait on each other).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        generator: Generator[Directive, Any, Any],
        parent: Optional[SimObject] = None,
        start_delay: int = 0,
    ):
        super().__init__(sim, name, parent)
        self._generator = generator
        self.done = False
        self.result: Any = None
        self.completed = Signal(f"{name}.completed")
        self.start_tick: Optional[int] = None
        self.end_tick: Optional[int] = None
        self.schedule(start_delay, self._start, name=f"{name}.start")

    def _start(self) -> None:
        self.start_tick = self.curtick
        self._resume(None)

    def _resume_soon(self, value: Any) -> None:
        # Resume via a zero-delay event so that a Signal.notify from deep
        # inside hardware code does not reenter the process synchronously.
        self.schedule(0, lambda: self._resume(value), name=f"{self.name}.resume")

    def _resume(self, value: Any) -> None:
        if self.done:
            return
        try:
            directive = self._generator.send(value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self.end_tick = self.curtick
            self.completed.notify(self.result)
            return
        if isinstance(directive, Delay):
            self.schedule(directive.ticks, lambda: self._resume(None), name=f"{self.name}.delay")
        elif isinstance(directive, WaitFor):
            directive.signal._add_waiter(self)
        else:
            raise TypeError(
                f"process {self.full_name} yielded {directive!r}; expected Delay or WaitFor"
            )

    @property
    def elapsed(self) -> Optional[int]:
        """Ticks from start to completion, if the process has finished."""
        if self.start_tick is None or self.end_tick is None:
            return None
        return self.end_tick - self.start_tick
