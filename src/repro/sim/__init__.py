"""Discrete-event simulation kernel.

This package is the Python stand-in for the slice of gem5's core that the
paper's PCI-Express model depends on: a tick-based event queue
(:mod:`repro.sim.eventq`), a named simulation-object hierarchy and
simulator root (:mod:`repro.sim.simobject`), time-unit helpers
(:mod:`repro.sim.ticks`), a statistics framework (:mod:`repro.sim.stats`) and generator-based
processes for modelling software (:mod:`repro.sim.process`).

The kernel is deterministic: events scheduled for the same tick fire in
(priority, insertion-order) order, so repeated runs of the same
configuration produce identical results.
"""

from repro.sim.eventq import Event, EventQueue, CallbackEvent, ReferenceEventQueue
from repro.sim.backend import (
    Backend,
    backend_names,
    default_backend_name,
    register,
    resolve,
)
from repro.sim.simobject import SimObject, Simulator
from repro.sim.checkpoint import (
    CheckpointError,
    capture,
    restore,
    checkpoint_digest,
    read_checkpoint,
    write_checkpoint,
)
from repro.sim.process import Process, Signal, Delay, WaitFor
from repro.sim import ticks
from repro.sim.stats import (
    Stat,
    Scalar,
    Average,
    Distribution,
    Formula,
    StatGroup,
)

__all__ = [
    "Event",
    "EventQueue",
    "ReferenceEventQueue",
    "CallbackEvent",
    "Backend",
    "backend_names",
    "default_backend_name",
    "register",
    "resolve",
    "SimObject",
    "Simulator",
    "Process",
    "Signal",
    "Delay",
    "WaitFor",
    "ticks",
    "Stat",
    "Scalar",
    "Average",
    "Distribution",
    "Formula",
    "StatGroup",
    "CheckpointError",
    "capture",
    "restore",
    "checkpoint_digest",
    "read_checkpoint",
    "write_checkpoint",
]
