"""Simulation objects and the simulator root.

A :class:`SimObject` is a named node in a tree of hardware/software
models, each holding a reference to the shared :class:`Simulator` (event
queue + statistics root).  This mirrors gem5's SimObject hierarchy
closely enough that the paper's component descriptions translate
one-to-one.
"""

import os
from typing import Callable, Dict, List, Optional

from repro.check.checker import InvariantChecker
from repro.obs.trace import Tracer
from repro.sim import backend as backend_registry
from repro.sim.eventq import CallbackEvent, Event
from repro.sim.stats import StatGroup

#: Environment variable consulted when ``Simulator(check=None)``: set to
#: ``on``/``1``/``true``/``yes`` to enable invariant checking process-wide
#: (how CI runs the tier-1 suite under the checker).
CHECK_ENV = "REPRO_CHECK"


def _check_default() -> bool:
    """Whether :data:`CHECK_ENV` asks for checking to default on."""
    return os.environ.get(CHECK_ENV, "").strip().lower() in (
        "on", "1", "true", "yes")


class Simulator:
    """Owns the event queue, the root of the statistics tree, the
    tracer, and the invariant checker.

    Every :class:`SimObject` is constructed with a reference to a
    Simulator, keeping time and statistics explicit rather than global
    (the library never uses module-level simulation state, so several
    simulations can coexist in one Python process — the benchmark
    harness relies on this).

    Args:
        name: root name for the event queue and statistics tree.
        tracer: a pre-built tracer to use instead of a fresh disabled
            one (tests inject pre-filtered tracers this way).
        check: enable the runtime invariant checker
            (:mod:`repro.check`); None consults the ``REPRO_CHECK``
            environment variable (default off).
        backend: name of the simulation engine to build the event
            queue through (:mod:`repro.sim.backend`); None consults
            the ``REPRO_BACKEND`` environment variable (default
            ``hybrid``).  Unknown names raise ValueError.
    """

    def __init__(self, name: str = "sim", tracer: Optional[Tracer] = None,
                 check: Optional[bool] = None,
                 backend: Optional[str] = None):
        self.name = name
        # The tracer is created disabled; attaching a sink enables it.
        # Components cache the reference, so it is never replaced.
        self.tracer = tracer if tracer is not None else Tracer()
        #: The resolved simulation engine (:class:`repro.sim.backend
        #: .Backend`); components consult ``backend.link_fastpath`` at
        #: construction time to decide whether to install fast paths.
        self.backend = backend_registry.resolve(backend)
        self.eventq = self.backend.make_eventq(f"{name}.eventq")
        self.eventq.tracer = self.tracer
        # The checker mirrors the tracer's lifecycle: always present,
        # created disabled, cached by components — so the hot paths pay
        # one attribute load and branch while it is off.
        self.checker = InvariantChecker(self)
        self.eventq.checker = self.checker
        if _check_default() if check is None else check:
            self.checker.enable()
        self.stats = StatGroup()
        self._objects: List["SimObject"] = []
        # Dict mirror of the registry: restore-by-name (repro.sim.
        # checkpoint) depends on full names being unique, so lookups are
        # O(1) and duplicate registration is an error instead of a
        # silent first-match.
        self._by_name: Dict[str, "SimObject"] = {}
        self._exit_callbacks: List[Callable[[], None]] = []

    # -- time --------------------------------------------------------------
    @property
    def curtick(self) -> int:
        """The current simulated tick."""
        return self.eventq.curtick

    def schedule(self, event: Event, when: int) -> Event:
        """Schedule ``event`` at absolute tick ``when``."""
        return self.eventq.schedule(event, when)

    def schedule_after(self, event: Event, delay: int) -> Event:
        """Schedule ``event`` ``delay`` ticks from now."""
        return self.eventq.schedule_after(event, delay)

    def schedule_callback(
        self, delay: int, callback: Callable[[], None], name: str = ""
    ) -> CallbackEvent:
        """Schedule a plain callable ``delay`` ticks from now."""
        return self.eventq.schedule_callback(delay, callback, name)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation; see :meth:`EventQueue.run`.

        When the invariant checker is enabled and the run ends with the
        event queue fully drained, the quiescence watchdog fires: a
        non-empty replay buffer with no event left to drain it is
        reported as a deadlock rather than silently swallowed.

        Partitioned backends (``backend.partitioned``) route eligible
        runs through :func:`repro.sim.partition.run_partitioned`, which
        falls back to the ordinary single-process drain whenever the
        run cannot be partitioned; either way the post-run quiescence
        check and exit callbacks see the same merged end state.
        """
        if getattr(self.backend, "partitioned", False):
            from repro.sim.partition import run_partitioned
            tick = run_partitioned(self, until=until, max_events=max_events)
        else:
            tick = self.eventq.run(until=until, max_events=max_events)
        if self.checker.enabled and self.eventq.empty():
            self.checker.check_quiescence()
        if self._exit_callbacks and self.eventq.empty():
            # Fire-once semantics: a callback registered with on_exit()
            # runs at the end of the run() that drains the queue, then
            # is dropped (re-register to observe a later drain).
            callbacks, self._exit_callbacks = self._exit_callbacks, []
            for callback in callbacks:
                callback()
        return tick

    def on_exit(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` to fire once when a :meth:`run` ends
        with the event queue fully drained (end of simulation).

        Used for end-of-run flushes — writing a checkpoint after the
        workload completes is the canonical case.  Callbacks run in
        registration order, after the quiescence check, and are
        consumed: each registration fires at most once.
        """
        self._exit_callbacks.append(callback)

    def stop(self) -> None:
        """Ask a run in progress to stop after the current event."""
        self.eventq.stop()

    # -- object registry ---------------------------------------------------
    def register(self, obj: "SimObject") -> None:
        """Record ``obj`` in the object registry (done by SimObject).

        Raises:
            ValueError: if another object already registered the same
                full name — checkpoint restore resolves components by
                path, so paths must be unique.
        """
        full_name = obj.full_name
        existing = self._by_name.get(full_name)
        if existing is not None:
            raise ValueError(
                f"duplicate SimObject full name {full_name!r}: "
                f"{existing!r} is already registered")
        self._by_name[full_name] = obj
        self._objects.append(obj)

    def find(self, full_name: str) -> Optional["SimObject"]:
        """Look an object up by its dotted full name (O(1))."""
        return self._by_name.get(full_name)

    @property
    def objects(self) -> List["SimObject"]:
        """Snapshot of every registered simulation object."""
        return list(self._objects)

    # -- stats ---------------------------------------------------------
    def dump_stats(self) -> Dict[str, float]:
        """Flatten the whole statistics tree to ``{dotted.name: value}``."""
        return self.stats.dump()

    def reset_stats(self) -> None:
        """Reset every statistic in the tree."""
        self.stats.reset()

    # -- checkpointing -----------------------------------------------------
    def checkpoint(self) -> Dict:
        """Snapshot the whole simulation into a JSON-safe document.

        Captures the event queue (pending events described as
        owner-path + method-name, never pickled), every registered
        object's :meth:`SimObject.state_dict`, the statistics tree, the
        tracer's sequence counters, and the invariant checker's
        ledgers.  See :mod:`repro.sim.checkpoint` for the format and
        the describability rules.
        """
        from repro.sim.checkpoint import capture

        return capture(self)

    def restore(self, snapshot: Dict) -> None:
        """Overlay a :meth:`checkpoint` document onto this simulator.

        The simulator must be a freshly built twin of the captured one
        (same topology spec, nothing yet run): restore rebuilds the
        event queue, reloads object state by full name, and resets
        stats/tracer/checker so a subsequent run is byte-identical to
        continuing the captured simulation.
        """
        from repro.sim.checkpoint import restore

        restore(self, snapshot)


class SimObject:
    """A named model component.

    Args:
        sim: the owning :class:`Simulator`.
        name: this object's leaf name; the full name is formed by
            joining parent names with dots, as in gem5
            (``system.pcie.switch.port0``).
        parent: optional parent object for naming/statistics nesting.
    """

    def __init__(self, sim: Simulator, name: str, parent: Optional["SimObject"] = None):
        if not name:
            raise ValueError("SimObject name must be non-empty")
        self.sim = sim
        self.name = name
        self.tracer = sim.tracer
        self.checker = sim.checker
        # Cached like the tracer/checker: the Simulator never replaces
        # its event queue, and the hot paths (per-packet scheduling,
        # curtick reads) shouldn't pay a two-hop property chain.
        self.eventq = sim.eventq
        self.parent = parent
        self.children: List["SimObject"] = []
        if parent is not None:
            parent.children.append(self)
        self.stats = StatGroup(name)
        if parent is not None:
            parent.stats.add_child(self.stats)
        else:
            sim.stats.add_child(self.stats)
        sim.register(self)

    @property
    def full_name(self) -> str:
        """Dotted gem5-style path from the root to this object."""
        parts = []
        node: Optional[SimObject] = self
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return ".".join(reversed(parts))

    # -- convenience passthroughs ------------------------------------------
    @property
    def curtick(self) -> int:
        """The current simulated tick."""
        return self.eventq.curtick

    def schedule(self, delay: int, callback: Callable[[], None], name: str = "") -> CallbackEvent:
        """Schedule ``callback`` to run ``delay`` ticks from now.

        The descriptive ``owner.method`` label is only materialised when
        the tracer is enabled — full-name construction walks the parent
        chain and allocates a string per call, which the untraced hot
        path should not pay.  (Events scheduled while tracing is off
        keep the callback's bare ``__name__`` as their label.)
        """
        if not name and self.tracer.enabled:
            name = f"{self.full_name}.{getattr(callback, '__name__', 'cb')}"
        return self.sim.schedule_callback(delay, callback, name)

    # -- checkpoint protocol ----------------------------------------------
    def state_dict(self) -> Dict:
        """Checkpointable state beyond what construction reproduces.

        The default is empty: most objects are fully described by the
        topology spec that rebuilt them.  Stateful components override
        this to return a JSON-safe dict; anything returned here must be
        accepted back by :meth:`load_state_dict`.
        """
        return {}

    def load_state_dict(self, state: Dict) -> None:
        """Restore :meth:`state_dict` output captured from a twin object.

        The default accepts only an empty dict — receiving state for an
        object that declares none means the checkpoint and the rebuilt
        topology disagree, which is an error rather than data loss.
        """
        if state:
            raise ValueError(
                f"{self.full_name} ({type(self).__name__}) declares no "
                f"checkpointable state but was given keys {sorted(state)}")

    def resolve_event(self, method_name: str) -> Optional[CallbackEvent]:
        """Find this object's recycled event wrapping ``method_name``.

        Checkpoint restore must reuse an existing recycled event handle
        (``self._ack_event`` and friends) rather than minting a new
        instance — the component later deschedules *its* handle, which
        must be the scheduled one.  Bound methods compare equal, so a
        scan of the instance attributes finds the match; returns None
        when the object keeps no handle (the restorer then builds a
        fresh :class:`CallbackEvent`).
        """
        method = getattr(self, method_name)
        for value in vars(self).values():
            if isinstance(value, CallbackEvent) and value._callback == method:
                return value
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.full_name!r}>"
