"""Simulation objects and the simulator root.

A :class:`SimObject` is a named node in a tree of hardware/software
models, each holding a reference to the shared :class:`Simulator` (event
queue + statistics root).  This mirrors gem5's SimObject hierarchy
closely enough that the paper's component descriptions translate
one-to-one.
"""

import os
from typing import Callable, Dict, List, Optional

from repro.check.checker import InvariantChecker
from repro.obs.trace import Tracer
from repro.sim.eventq import CallbackEvent, Event, EventQueue
from repro.sim.stats import StatGroup

#: Environment variable consulted when ``Simulator(check=None)``: set to
#: ``on``/``1``/``true``/``yes`` to enable invariant checking process-wide
#: (how CI runs the tier-1 suite under the checker).
CHECK_ENV = "REPRO_CHECK"


def _check_default() -> bool:
    """Whether :data:`CHECK_ENV` asks for checking to default on."""
    return os.environ.get(CHECK_ENV, "").strip().lower() in (
        "on", "1", "true", "yes")


class Simulator:
    """Owns the event queue, the root of the statistics tree, the
    tracer, and the invariant checker.

    Every :class:`SimObject` is constructed with a reference to a
    Simulator, keeping time and statistics explicit rather than global
    (the library never uses module-level simulation state, so several
    simulations can coexist in one Python process — the benchmark
    harness relies on this).

    Args:
        name: root name for the event queue and statistics tree.
        tracer: a pre-built tracer to use instead of a fresh disabled
            one (tests inject pre-filtered tracers this way).
        check: enable the runtime invariant checker
            (:mod:`repro.check`); None consults the ``REPRO_CHECK``
            environment variable (default off).
    """

    def __init__(self, name: str = "sim", tracer: Optional[Tracer] = None,
                 check: Optional[bool] = None):
        self.name = name
        # The tracer is created disabled; attaching a sink enables it.
        # Components cache the reference, so it is never replaced.
        self.tracer = tracer if tracer is not None else Tracer()
        self.eventq = EventQueue(f"{name}.eventq")
        self.eventq.tracer = self.tracer
        # The checker mirrors the tracer's lifecycle: always present,
        # created disabled, cached by components — so the hot paths pay
        # one attribute load and branch while it is off.
        self.checker = InvariantChecker(self)
        self.eventq.checker = self.checker
        if _check_default() if check is None else check:
            self.checker.enable()
        self.stats = StatGroup()
        self._objects: List["SimObject"] = []
        self._exit_callbacks: List[Callable[[], None]] = []

    # -- time --------------------------------------------------------------
    @property
    def curtick(self) -> int:
        """The current simulated tick."""
        return self.eventq.curtick

    def schedule(self, event: Event, when: int) -> Event:
        """Schedule ``event`` at absolute tick ``when``."""
        return self.eventq.schedule(event, when)

    def schedule_after(self, event: Event, delay: int) -> Event:
        """Schedule ``event`` ``delay`` ticks from now."""
        return self.eventq.schedule_after(event, delay)

    def schedule_callback(
        self, delay: int, callback: Callable[[], None], name: str = ""
    ) -> CallbackEvent:
        """Schedule a plain callable ``delay`` ticks from now."""
        return self.eventq.schedule_callback(delay, callback, name)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation; see :meth:`EventQueue.run`.

        When the invariant checker is enabled and the run ends with the
        event queue fully drained, the quiescence watchdog fires: a
        non-empty replay buffer with no event left to drain it is
        reported as a deadlock rather than silently swallowed.
        """
        tick = self.eventq.run(until=until, max_events=max_events)
        if self.checker.enabled and self.eventq.empty():
            self.checker.check_quiescence()
        return tick

    def stop(self) -> None:
        """Ask a run in progress to stop after the current event."""
        self.eventq.stop()

    # -- object registry ---------------------------------------------------
    def register(self, obj: "SimObject") -> None:
        """Record ``obj`` in the flat object registry (done by SimObject)."""
        self._objects.append(obj)

    def find(self, full_name: str) -> Optional["SimObject"]:
        """Look an object up by its dotted full name."""
        for obj in self._objects:
            if obj.full_name == full_name:
                return obj
        return None

    @property
    def objects(self) -> List["SimObject"]:
        """Snapshot of every registered simulation object."""
        return list(self._objects)

    # -- stats ---------------------------------------------------------
    def dump_stats(self) -> Dict[str, float]:
        """Flatten the whole statistics tree to ``{dotted.name: value}``."""
        return self.stats.dump()

    def reset_stats(self) -> None:
        """Reset every statistic in the tree."""
        self.stats.reset()


class SimObject:
    """A named model component.

    Args:
        sim: the owning :class:`Simulator`.
        name: this object's leaf name; the full name is formed by
            joining parent names with dots, as in gem5
            (``system.pcie.switch.port0``).
        parent: optional parent object for naming/statistics nesting.
    """

    def __init__(self, sim: Simulator, name: str, parent: Optional["SimObject"] = None):
        if not name:
            raise ValueError("SimObject name must be non-empty")
        self.sim = sim
        self.name = name
        self.tracer = sim.tracer
        self.checker = sim.checker
        # Cached like the tracer/checker: the Simulator never replaces
        # its event queue, and the hot paths (per-packet scheduling,
        # curtick reads) shouldn't pay a two-hop property chain.
        self.eventq = sim.eventq
        self.parent = parent
        self.children: List["SimObject"] = []
        if parent is not None:
            parent.children.append(self)
        self.stats = StatGroup(name)
        if parent is not None:
            parent.stats.add_child(self.stats)
        else:
            sim.stats.add_child(self.stats)
        sim.register(self)

    @property
    def full_name(self) -> str:
        """Dotted gem5-style path from the root to this object."""
        parts = []
        node: Optional[SimObject] = self
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return ".".join(reversed(parts))

    # -- convenience passthroughs ------------------------------------------
    @property
    def curtick(self) -> int:
        """The current simulated tick."""
        return self.eventq.curtick

    def schedule(self, delay: int, callback: Callable[[], None], name: str = "") -> CallbackEvent:
        """Schedule ``callback`` to run ``delay`` ticks from now."""
        return self.sim.schedule_callback(
            delay, callback, name or f"{self.full_name}.{getattr(callback, '__name__', 'cb')}"
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.full_name!r}>"
