"""repro-pcie: a standalone PCI-Express interconnect simulator.

A pure-Python reproduction of *Simulating PCI-Express Interconnect for
Future System Exploration* (Alian, Srinivasan, Kim — IISWC 2018): a
discrete-event model of PCI-Express links (data-link-layer ACK/NAK
protocol with replay buffers and timers), root complexes, switches and
the configuration-space machinery that lets modelled device drivers
enumerate and configure devices, all running over a gem5-style memory
substrate.

Start with :mod:`repro.system` (full-machine builders) or the examples:

>>> from repro.system import build_validation_system
>>> system = build_validation_system()
>>> print(system.kernel.enumerator.tree_text())

See README.md for the tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "mem",
    "pci",
    "pcie",
    "devices",
    "drivers",
    "kernel",
    "workloads",
    "platform",
    "system",
    "validation",
    "analysis",
]
