"""Regression tests for link statistics export on idle interfaces.

``replay_fraction`` divides replays by total transmissions; an
interface that never transmitted used to raise ``ZeroDivisionError``
inside the formula at stats-dump time.  It must report 0.0.
"""

import json

from repro.obs import export_stats, write_stats_json
from repro.sim.simobject import Simulator

from tests.pcie.test_link import build_dma_path


def test_idle_link_dumps_zero_replay_fraction():
    sim = Simulator()
    link, device, memory = build_dma_path(sim)
    # No traffic at all: every interface has tlps_sent == replays == 0.
    stats = sim.dump_stats()
    fractions = {k: v for k, v in stats.items()
                 if k.endswith("replay_fraction")}
    assert len(fractions) == 2  # one per interface
    assert all(v == 0.0 for v in fractions.values())


def test_idle_link_stats_export_roundtrips(tmp_path):
    sim = Simulator()
    link, device, memory = build_dma_path(sim)
    doc = export_stats(sim, meta={"workload": "idle"})
    path = write_stats_json(sim, str(tmp_path / "idle_stats.json"))
    on_disk = json.loads(open(path).read())
    assert on_disk["stats"] == doc["stats"]
    fractions = [v for k, v in on_disk["stats"].items()
                 if k.endswith("replay_fraction")]
    assert fractions and all(f["value"] == 0.0 for f in fractions)
