"""Error injection on the ACK/NAK DLLPs themselves.

``error_rate`` corrupts received TLPs and exercises the NAK path;
``dllp_error_rate`` corrupts received DLLPs instead.  Per the spec a
DLLP that fails its CRC is silently discarded — no NAK, no state change
— so a lost ACK strands the sender's replay buffer until the replay
timer retransmits.  These tests show that the recovery really is the
timeout path and that it converges rather than deadlocks.
"""

from repro.pcie.link import PcieLink
from repro.sim.simobject import Simulator

from tests.mem.helpers import FakeMaster, FakeSlave


def build_dma_path(sim, **link_kwargs):
    link = PcieLink(sim, "link", **link_kwargs)
    device = FakeMaster(sim, "device")
    memory = FakeSlave(sim, "memory")
    device.port.bind(link.downstream_if.slave_port)
    link.upstream_if.master_port.bind(memory.port)
    return link, device, memory


def test_corrupted_ack_is_silently_ignored():
    sim = Simulator()
    link, device, memory = build_dma_path(sim, dllp_error_rate=1.0)
    tx, rx = link.downstream_if, link.upstream_if

    device.write(0x1000, 64)
    # Run long enough for delivery + the coalesced ACK, but stop before
    # the replay timer fires.
    sim.run(until=link.replay_timeout - 1)
    assert len(memory.requests) == 1
    assert rx.acks_sent.value() >= 1          # the receiver did ACK...
    assert tx.acks_received.value() == 0      # ...but it was discarded
    assert tx.dllp_corrupted.value() >= 1
    assert len(tx.replay_buffer) == 1         # nothing was purged
    assert tx._replay_event.scheduled


def test_lost_ack_recovers_via_replay_timeout_not_deadlock():
    sim = Simulator()
    link, device, memory = build_dma_path(sim, dllp_error_rate=1.0)
    tx, rx = link.downstream_if, link.upstream_if

    device.write(0x1000, 64)
    # With every DLLP corrupted the sender replays forever; wait for the
    # first full timeout->replay->duplicate cycle to prove the path.
    sim.run(until=link.replay_timeout * 2)
    assert tx.timeouts.value() >= 1
    assert tx.tlp_replays.value() >= 1
    assert rx.out_of_seq.value() >= 1         # duplicate replay re-ACKed
    assert len(memory.requests) == 1          # still delivered only once

    # Heal the link: the next re-ACK gets through, the buffer purges,
    # and the transaction completes without any further replays.
    link.dllp_error_rate = 0.0
    replays_when_healed = tx.tlp_replays.value()
    sim.run(max_events=1_000_000)
    assert len(memory.requests) == 1
    assert len(device.responses) == 1
    assert len(tx.replay_buffer) == 0
    assert not tx._replay_event.scheduled
    assert tx.acks_received.value() >= 1
    # At most one replay was in flight when the link healed.
    assert tx.tlp_replays.value() <= replays_when_healed + 1


def test_lossy_dllps_never_duplicate_or_reorder_deliveries():
    sim = Simulator()
    link, device, memory = build_dma_path(
        sim, dllp_error_rate=0.5, error_seed=7,
    )
    expected = [device.write(0x1000 + i * 64, 64).req_id for i in range(12)]
    sim.run(max_events=3_000_000)
    assert [pkt.req_id for pkt in memory.requests] == expected
    assert sorted(pkt.req_id for pkt in device.responses) == sorted(expected)
    assert link.upstream_if.dllp_corrupted.value() > 0
    assert link.downstream_if.timeouts.value() > 0
    assert len(link.downstream_if.replay_buffer) == 0


def test_dllp_error_injection_is_deterministic():
    def run(seed):
        sim = Simulator()
        link, device, memory = build_dma_path(
            sim, dllp_error_rate=0.3, error_seed=seed,
        )
        for i in range(8):
            device.write(0x1000 + i * 64, 64)
        final = sim.run(max_events=3_000_000)
        return (final, link.downstream_if.timeouts.value(),
                link.upstream_if.dllp_corrupted.value())

    assert run(3) == run(3)
    # A different seed corrupts a different subset: same-seed equality
    # above is not vacuous.
    assert run(3) != run(4)
