"""The quiescent-link fast-forward engine (:mod:`repro.pcie.fastpath`).

Four contracts, each load-bearing for the ``turbo`` backend:

* **identity** — every backend produces byte-identical stats and final
  ticks; the fast path may only change wall clock and event accounting;
* **bailout boundaries** — component refusals and armed observers force
  the engine back onto the event-by-event path without losing traffic;
* **checkpoint safety** — a mid-burst engine refuses to snapshot (its
  wire state lives as virtual integers), a parked engine allows it;
* **saturation guard** — chatty, pump-per-action traffic stands the
  engine down instead of paying planning overhead forever.
"""

import pytest

from repro.mem.packet import MemCmd, Packet
from repro.mem.port import MasterPort, SlavePort
from repro.obs.stats_export import export_stats
from repro.obs.trace import MemorySink
from repro.pcie.link import PcieLink
from repro.pcie.timing import PcieGen
from repro.sim.checkpoint import CheckpointError, capture
from repro.sim.simobject import SimObject, Simulator

BACKENDS = ("reference", "hybrid", "turbo")


class _BurstDriver(SimObject):
    """Pumps MESSAGE TLPs into the link as fast as it will accept."""

    def __init__(self, sim, link, n_tlps):
        super().__init__(sim, "driver")
        self.remaining = n_tlps
        self._pump_pending = False
        self.port = MasterPort(self, "port",
                               recv_timing_resp=lambda pkt: True,
                               recv_req_retry=self._pump_soon)
        self.port.bind(link.upstream_if.slave_port)

    def _pump_soon(self):
        if self._pump_pending:
            return
        self._pump_pending = True
        self.schedule(0, self._pump_deferred, name="pump")

    def _pump_deferred(self):
        self._pump_pending = False
        self.pump()

    def pump(self):
        while self.remaining > 0:
            pkt = Packet(MemCmd.MESSAGE, 0x1000, 64, data=bytes(64),
                         requestor=self.full_name, create_tick=self.curtick)
            if not self.port.send_timing_req(pkt):
                return
            self.remaining -= 1


class _Sink(SimObject):
    """Always-accepting endpoint counting delivered TLPs."""

    def __init__(self, sim, link):
        super().__init__(sim, "sink")
        self.received = 0
        self.port = SlavePort(self, "port", recv_timing_req=self._accept,
                              recv_resp_retry=lambda: None)
        self.port.bind(link.downstream_if.master_port)

    def _accept(self, pkt):
        self.received += 1
        return True


class _ThrottledSink(SimObject):
    """Accepts ``burst`` TLPs, refuses, then retries after ``delay``.

    Exercises the component-refusal bailout boundary: a refusal during
    a fast-forward burst cannot be modelled virtually (the component
    said no), so the engine must fall back without dropping the packet.
    """

    def __init__(self, sim, link, burst=3, delay=5_000_000):
        super().__init__(sim, "sink")
        self.received = 0
        self.burst = burst
        self.delay = delay
        self._credit = burst
        self.port = SlavePort(self, "port", recv_timing_req=self._accept,
                              recv_resp_retry=lambda: None)
        self.port.bind(link.downstream_if.master_port)

    def _accept(self, pkt):
        if self._credit == 0:
            return False
        self._credit -= 1
        self.received += 1
        if self._credit == 0:
            self.schedule(self.delay, self._refill, name="refill")
        return True

    def _refill(self):
        self._credit = self.burst
        if self.port.retry_owed:
            self.port.send_retry_req()


class _PingDriver(SimObject):
    """Sends one MESSAGE, waits for the echo, sends the next.

    Strictly serialized request/response traffic: every TLP needs its
    own pump, the worst yield the saturation guard is built to detect.
    """

    def __init__(self, sim, link, n_tlps):
        super().__init__(sim, "driver")
        self.remaining = n_tlps
        self.echoes = 0
        self.tx = MasterPort(self, "tx", recv_timing_resp=lambda pkt: True,
                             recv_req_retry=lambda: None)
        self.tx.bind(link.upstream_if.slave_port)
        self.rx = SlavePort(self, "rx", recv_timing_req=self._echo,
                            recv_resp_retry=lambda: None)
        self.rx.bind(link.upstream_if.master_port)

    def _echo(self, pkt):
        self.echoes += 1
        if self.remaining > 0:
            self.schedule(0, self.send_one, name="next")
        return True

    def send_one(self):
        if self.remaining <= 0:
            return
        self.remaining -= 1
        pkt = Packet(MemCmd.MESSAGE, 0x1000, 64, data=bytes(64),
                     requestor=self.full_name, create_tick=self.curtick)
        assert self.tx.send_timing_req(pkt)


class _EchoSink(SimObject):
    """Bounces every delivered TLP back upstream."""

    def __init__(self, sim, link):
        super().__init__(sim, "sink")
        self.received = 0
        self.rx = SlavePort(self, "rx", recv_timing_req=self._accept,
                            recv_resp_retry=lambda: None)
        self.rx.bind(link.downstream_if.master_port)
        self.tx = MasterPort(self, "tx", recv_timing_resp=lambda pkt: True,
                             recv_req_retry=lambda: None)
        self.tx.bind(link.downstream_if.slave_port)

    def _accept(self, pkt):
        self.received += 1
        self.schedule(0, self._bounce, name="bounce")
        return True

    def _bounce(self):
        pkt = Packet(MemCmd.MESSAGE, 0x2000, 64, data=bytes(64),
                     requestor=self.full_name, create_tick=self.curtick)
        assert self.tx.send_timing_req(pkt)


def _build(backend, guard=True, **link_kwargs):
    # check=False pins the invariant checker off even under
    # REPRO_CHECK=on: an armed observer (correctly) refuses fast-path
    # engagement, which would reduce this battery to a no-op.  The
    # checker-armed behaviour of the turbo backend is covered by the
    # stress campaign in the backend-identity CI job.
    sim = Simulator("fp", backend=backend, check=False)
    link = PcieLink(sim, "link", gen=PcieGen.GEN2, width=1,
                    ack_policy="immediate", **link_kwargs)
    if link.fastpath is not None:
        link.fastpath.saturation_guard = guard
    return sim, link


def _run_burst(backend, n_tlps=120, sink_cls=_Sink, guard=True,
               **link_kwargs):
    sim, link = _build(backend, guard=guard, **link_kwargs)
    driver = _BurstDriver(sim, link, n_tlps)
    sink = sink_cls(sim, link)
    driver.pump()
    sim.run(max_events=5_000_000)
    assert sink.received == n_tlps, backend
    return sim, link, sink


def _comparable(sim):
    """The stats document minus everything allowed to differ.

    Fast-forward counters (``fastpath_*``) are wall-clock accounting,
    not simulated behaviour, and ``events_processed`` legitimately
    differs (the fast path replaces event cascades with pumps).
    """
    doc = export_stats(sim)
    doc.pop("events_processed")
    doc["stats"] = {name: record for name, record in doc["stats"].items()
                    if "fastpath" not in name}
    return doc


# -- identity ---------------------------------------------------------------
def test_backend_identity_saturated_burst():
    docs = {}
    for backend in BACKENDS:
        sim, __, ___ = _run_burst(backend, n_tlps=120, guard=False)
        docs[backend] = _comparable(sim)
    assert docs["reference"] == docs["hybrid"] == docs["turbo"]


def test_backend_identity_across_refusal_boundary():
    docs = {}
    for backend in BACKENDS:
        sim, __, ___ = _run_burst(backend, n_tlps=40,
                                  sink_cls=_ThrottledSink, guard=False)
        docs[backend] = _comparable(sim)
    assert docs["reference"] == docs["hybrid"] == docs["turbo"]


def test_backend_identity_ping_pong_with_guard():
    """The guard's stand-down must not perturb simulated time."""
    docs = {}
    for backend in BACKENDS:
        sim, link = _build(backend, guard=True)
        driver = _PingDriver(sim, link, 400)
        _EchoSink(sim, link)
        driver.send_one()
        sim.run(max_events=5_000_000)
        assert driver.echoes == 400, backend
        docs[backend] = _comparable(sim)
    assert docs["reference"] == docs["hybrid"] == docs["turbo"]


# -- engagement and bailout boundaries --------------------------------------
def test_fastpath_engages_and_counts():
    __, link, ___ = _run_burst("turbo", n_tlps=120, guard=False)
    fp = link.fastpath
    assert fp.batches.value() >= 1
    assert fp.tlps.value() == 120
    assert fp.bailouts["desync"].value() == 0


def test_component_refusal_bails_out():
    __, link, sink = _run_burst("turbo", n_tlps=40,
                                sink_cls=_ThrottledSink, guard=False)
    fp = link.fastpath
    assert sink.received == 40
    assert fp.bailouts["refusal"].value() >= 1
    assert fp.bailouts["desync"].value() == 0


def test_tracer_armed_mid_run_forces_observer_bailout():
    sim, link = _build("turbo", guard=False)
    fp = link.fastpath
    driver = _BurstDriver(sim, link, 120)
    sink = _Sink(sim, link)
    driver.pump()
    steps = 0
    while not fp.mid_burst and steps < 10_000:
        assert sim.eventq.service_one()
        steps += 1
    sim.tracer.attach(MemorySink())
    sim.run(max_events=5_000_000)
    assert sink.received == 120
    assert fp.bailouts["observer"].value() >= 1
    assert fp.bailouts["desync"].value() == 0


# -- checkpoint safety ------------------------------------------------------
def test_checkpoint_refused_mid_burst_allowed_parked():
    sim, link = _build("turbo", guard=False)
    fp = link.fastpath
    driver = _BurstDriver(sim, link, 50)
    _Sink(sim, link)
    driver.pump()
    steps = 0
    while not fp.mid_burst and steps < 10_000:
        assert sim.eventq.service_one()
        steps += 1
    assert fp.mid_burst
    with pytest.raises(CheckpointError, match="fast-forward"):
        link.upstream_if.state_dict()
    sim.run(max_events=5_000_000)
    # Drained: the engine is parked (or disengaged) — real and virtual
    # state coincide, so snapshots are valid again.
    assert not fp.mid_burst
    link.upstream_if.state_dict()
    capture(sim)


# -- saturation guard -------------------------------------------------------
def test_saturation_guard_stands_down_on_chatty_traffic():
    sim, link = _build("turbo", guard=True)
    fp = link.fastpath
    driver = _PingDriver(sim, link, 400)
    _EchoSink(sim, link)
    driver.send_one()
    sim.run(max_events=5_000_000)
    assert driver.echoes == 400
    assert fp.standdowns.value() >= 1
    assert fp.bailouts["desync"].value() == 0


def test_saturation_guard_disabled_never_stands_down():
    sim, link = _build("turbo", guard=False)
    fp = link.fastpath
    driver = _PingDriver(sim, link, 400)
    _EchoSink(sim, link)
    driver.send_one()
    sim.run(max_events=5_000_000)
    assert fp.standdowns.value() == 0
    assert fp.tlps.value() > 0


def test_saturation_guard_env_switch(monkeypatch):
    def fresh_link():
        sim = Simulator("fp", backend="turbo")
        return PcieLink(sim, "link", gen=PcieGen.GEN2, width=1,
                        ack_policy="immediate")

    monkeypatch.setenv("REPRO_FASTPATH_GUARD", "off")
    assert fresh_link().fastpath.saturation_guard is False
    monkeypatch.delenv("REPRO_FASTPATH_GUARD")
    assert fresh_link().fastpath.saturation_guard is True


def test_quiescent_burst_stays_engaged():
    """A healthy burst (many actions per pump) must not stand down."""
    __, link, ___ = _run_burst("turbo", n_tlps=800, guard=True)
    fp = link.fastpath
    assert fp.standdowns.value() == 0
    assert fp.tlps.value() == 800
