"""Unit tests for PCI-Express wire timing and the timer formulas."""

import pytest

from repro.pcie.timing import (
    DLLP_WIRE_BYTES,
    TLP_OVERHEAD_BYTES,
    LinkTiming,
    PcieGen,
    ack_factor,
    ack_timer_ticks,
    replay_timeout_ticks,
)
from repro.sim import ticks


def test_generation_lane_rates():
    assert PcieGen.GEN1.gt_per_second == 2.5
    assert PcieGen.GEN2.gt_per_second == 5.0
    assert PcieGen.GEN3.gt_per_second == 8.0


def test_symbol_times():
    # Gen 1: 10 bits per byte at 2.5 Gbps -> 4 ns per byte per lane.
    assert PcieGen.GEN1.symbol_time_ticks == pytest.approx(ticks.from_ns(4))
    assert PcieGen.GEN2.symbol_time_ticks == pytest.approx(ticks.from_ns(2))
    # Gen 3: 130 bits per 16 bytes at 8 Gbps -> 1.015625 ns per byte.
    assert PcieGen.GEN3.symbol_time_ticks == pytest.approx(1015.625)


def test_effective_bandwidth_after_encoding():
    assert PcieGen.GEN1.effective_gbps_per_lane == pytest.approx(2.0)
    assert PcieGen.GEN2.effective_gbps_per_lane == pytest.approx(4.0)
    assert PcieGen.GEN3.effective_gbps_per_lane == pytest.approx(8 * 128 / 130)


def test_table1_overheads():
    # 12B header + 2B sequence + 4B LCRC + 2B framing.
    assert TLP_OVERHEAD_BYTES == 20
    assert DLLP_WIRE_BYTES == 8


def test_tlp_transmission_time_gen2_x1():
    timing = LinkTiming(PcieGen.GEN2, 1)
    # A 64B-payload TLP is 84 wire bytes; at 2 ns per byte -> 168 ns.
    assert timing.transmission_ticks(timing.tlp_wire_bytes(64)) == ticks.from_ns(168)


def test_width_divides_transmission_time():
    x1 = LinkTiming(PcieGen.GEN2, 1)
    x4 = LinkTiming(PcieGen.GEN2, 4)
    t1 = x1.transmission_ticks(84)
    t4 = x4.transmission_ticks(84)
    assert t4 == pytest.approx(t1 / 4, rel=1e-3)


def test_device_level_throughput_matches_paper():
    # The paper: "each sector (4KB) of the IDE disk is transferred with
    # a throughput of 3.072 Gbps over our PCI-Express link" (Gen 2 x1,
    # 64B write TLPs).  Pure wire arithmetic gives 64B/168ns = 3.05 Gbps.
    timing = LinkTiming(PcieGen.GEN2, 1)
    per_tlp = timing.transmission_ticks(timing.tlp_wire_bytes(64))
    gbps = 64 * 8 / ticks.to_ns(per_tlp)
    assert gbps == pytest.approx(3.05, rel=0.02)


def test_invalid_width_rejected():
    with pytest.raises(ValueError):
        LinkTiming(PcieGen.GEN2, 3)
    with pytest.raises(ValueError):
        ack_factor(128, 5)


def test_ack_factor_table():
    assert ack_factor(64, 1) == 1.4  # clamps to the 128B row
    assert ack_factor(128, 1) == 1.4
    assert ack_factor(128, 8) == 2.5
    assert ack_factor(128, 16) == 3.0
    assert ack_factor(1024, 1) == 2.4
    assert ack_factor(4096, 32) == 3.0
    with pytest.raises(ValueError):
        ack_factor(8192, 1)


def test_replay_timeout_formula_gen2_x1():
    # ((64 + 28) / 1 * 1.4) * 3 = 386.4 symbols; Gen2 symbol = 2 ns.
    expected = 386.4 * 2
    got = replay_timeout_ticks(PcieGen.GEN2, 1, 64)
    assert got == pytest.approx(ticks.from_ns(expected), rel=1e-3)


def test_replay_timeout_formula_gen2_x8():
    # ((64 + 28) / 8 * 2.5) * 3 = 86.25 symbols -> 172.5 ns.
    got = replay_timeout_ticks(PcieGen.GEN2, 8, 64)
    assert got == pytest.approx(ticks.from_ns(172.5), rel=1e-2)


def test_ack_timer_is_one_third_of_replay():
    replay = replay_timeout_ticks(PcieGen.GEN2, 4, 64)
    ack = ack_timer_ticks(PcieGen.GEN2, 4, 64)
    assert ack == replay // 3


def test_wider_links_time_out_sooner():
    timeouts = [
        replay_timeout_ticks(PcieGen.GEN2, w, 64) for w in (1, 2, 4)
    ]
    assert timeouts == sorted(timeouts, reverse=True)


def test_speed_codes():
    assert PcieGen.GEN1.speed_code == 1
    assert PcieGen.GEN2.speed_code == 2
    assert PcieGen.GEN3.speed_code == 3


def test_link_timing_equality():
    assert LinkTiming(PcieGen.GEN2, 4) == LinkTiming(PcieGen.GEN2, 4)
    assert LinkTiming(PcieGen.GEN2, 4) != LinkTiming(PcieGen.GEN3, 4)
