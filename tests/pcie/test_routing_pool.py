"""Unit tests for the port-pool buffering of the routing engine."""

import pytest

from repro.mem.addr import AddrRange
from repro.pci import header as hdr
from repro.pcie.root_complex import RootComplex
from repro.pcie.routing import PcieRoutingEngine
from repro.sim import ticks
from repro.sim.simobject import Simulator

from tests.mem.helpers import FakeMaster, FakeSlave

WINDOW = AddrRange(0x40000000, 0x100000)


def build(sim, **kwargs):
    rc = RootComplex(sim, num_root_ports=1, **kwargs)
    vp2p = rc.root_ports[0].vp2p
    vp2p.set_memory_window(WINDOW)
    vp2p.config_write(hdr.SECONDARY_BUS, 1, 1)
    vp2p.config_write(hdr.SUBORDINATE_BUS, 1, 1)
    vp2p.config_write(hdr.COMMAND, hdr.CMD_MEM_SPACE | hdr.CMD_BUS_MASTER, 2)
    cpu = FakeMaster(sim, "cpu")
    cpu.port.bind(rc.upstream_slave)
    memory = FakeSlave(sim, "memory", latency=ticks.from_ns(30))
    rc.upstream_master.bind(memory.port)
    dev_pio = FakeSlave(sim, "dev_pio", latency=ticks.from_ns(20))
    dev_dma = FakeMaster(sim, "dev_dma")
    rc.root_ports[0].master_port.bind(dev_pio.port)
    dev_dma.port.bind(rc.root_ports[0].slave_port)
    return rc, cpu, memory, dev_pio, dev_dma


def test_buffer_size_must_leave_a_response_slot():
    with pytest.raises(ValueError):
        RootComplex(Simulator(), buffer_size=1)


def test_datapath_scope_validated():
    with pytest.raises(ValueError):
        RootComplex(Simulator(), datapath_scope="quantum")


def test_pool_refuses_request_flood_but_all_complete():
    sim = Simulator()
    rc, cpu, memory, dev_pio, dev_dma = build(
        sim, buffer_size=4, service_interval=ticks.from_ns(100)
    )
    for i in range(32):
        dev_dma.write(0x80000000 + 64 * i, 64)
    sim.run(max_events=500_000)
    assert len(memory.requests) == 32
    assert len(dev_dma.responses) == 32
    # The flood outran the 100ns datapath: the pool refused some ingress.
    refusals = sum(
        port.ingress_refusals.value()
        for port in [rc.upstream_port] + rc.downstream_ports
    )
    assert refusals > 0


def test_requests_capped_below_pool_size():
    """Request classes (posted + non-posted) can never consume the
    completion partition: with buffer_size=4 the pool splits into
    cpl=1, p=1, np=2, so at most 3 request slots may ever be in use."""
    sim = Simulator()
    rc, cpu, memory, dev_pio, dev_dma = build(
        sim, buffer_size=4, service_interval=ticks.from_ns(200)
    )
    port = rc.root_ports[0]
    assert port._slot_caps == [rc.p_slots, rc.np_slots, rc.cpl_slots]
    max_req_slots = {"seen": 0}
    original = port._try_reserve

    def spy(flow_class):
        ok = original(flow_class)
        req_slots = port._slots[0] + port._slots[1]  # P + NP
        max_req_slots["seen"] = max(max_req_slots["seen"], req_slots)
        return ok

    port._try_reserve = spy
    for i in range(16):
        dev_dma.write(0x80000000 + 64 * i, 64)
    sim.run(max_events=500_000)
    assert max_req_slots["seen"] <= rc.p_slots + rc.np_slots  # == 3


def test_mixed_traffic_under_pressure_completes():
    sim = Simulator()
    rc, cpu, memory, dev_pio, dev_dma = build(
        sim, buffer_size=3, service_interval=ticks.from_ns(150)
    )
    for i in range(8):
        dev_dma.write(0x80000000 + 64 * i, 64)
        cpu.read(WINDOW.start + 64 * i, 4)
    sim.run(max_events=1_000_000)
    assert len(dev_dma.responses) == 8
    assert len(cpu.responses) == 8


def test_engine_scope_serializes_across_ports():
    sim = Simulator()
    interval = ticks.from_ns(50)
    rc, cpu, memory, dev_pio, dev_dma = build(
        sim, latency=0, service_interval=interval, datapath_scope="engine"
    )
    # One request through each ingress port back to back: with the
    # shared engine they cannot be processed concurrently.
    cpu.read(WINDOW.start, 4)
    dev_dma.write(0x80000000, 64)
    sim.run()
    arrivals = sorted(dev_pio.request_ticks + memory.request_ticks)
    assert arrivals[1] - arrivals[0] >= interval


def test_port_scope_processes_ports_concurrently():
    sim = Simulator()
    interval = ticks.from_ns(50)
    rc, cpu, memory, dev_pio, dev_dma = build(
        sim, latency=0, service_interval=interval, datapath_scope="port"
    )
    cpu.read(WINDOW.start, 4)
    dev_dma.write(0x80000000, 64)
    sim.run()
    arrivals = sorted(dev_pio.request_ticks + memory.request_ticks)
    assert arrivals[1] - arrivals[0] < interval


def test_pool_occupancy_stat_sampled():
    sim = Simulator()
    rc, cpu, memory, dev_pio, dev_dma = build(sim)
    dev_dma.write(0x80000000, 64)
    sim.run()
    assert rc.root_ports[0].pool_occupancy.count >= 1
