"""ACK/NAK DLLP coalescing in the transmit queue.

ACKs and NAKs are cumulative, so a pending same-type DLLP is updated in
place to the highest sequence number instead of queueing another entry.
Before this existed, sustained TLP corruption (every received TLP NAKed
while the transmitter was busy) grew ``dllp_queue`` without bound.
"""

from repro.pcie.pkt import DllpType, PciePacket
from repro.sim.simobject import Simulator

from tests.pcie.test_link import build_dma_path


def spy_on_queue(iface):
    """Record dllp_queue occupancy after every enqueue attempt."""
    occupancies = []
    original = iface._queue_dllp

    def spy(ppkt):
        original(ppkt)
        occupancies.append(len(iface.dllp_queue))

    iface._queue_dllp = spy
    return occupancies


def test_same_type_dllps_coalesce_to_highest_seq():
    sim = Simulator()
    link, device, memory = build_dma_path(sim)
    rx = link.upstream_if
    rx._queue_dllp(PciePacket.nak(1))
    rx._queue_dllp(PciePacket.nak(4))
    assert len(rx.dllp_queue) == 1
    assert rx.dllp_queue[0].seq == 4
    # Cumulative: a lower sequence never regresses the pending DLLP.
    rx._queue_dllp(PciePacket.nak(2))
    assert len(rx.dllp_queue) == 1
    assert rx.dllp_queue[0].seq == 4


def test_ack_and_nak_do_not_coalesce_with_each_other():
    sim = Simulator()
    link, device, memory = build_dma_path(sim)
    rx = link.upstream_if
    rx._queue_dllp(PciePacket.nak(3))
    rx._queue_dllp(PciePacket.ack(5))
    assert len(rx.dllp_queue) == 2
    assert {p.dllp_type for p in rx.dllp_queue} == {DllpType.ACK, DllpType.NAK}


def test_sustained_corruption_keeps_dllp_queue_bounded():
    sim = Simulator()
    link, device, memory = build_dma_path(sim, error_rate=1.0)
    rx = link.upstream_if
    occupancies = spy_on_queue(rx)

    for i in range(8):
        device.write(0x80000000 + i * 64, 64)
    # Nothing ever delivers at error_rate=1.0; every arrival is NAKed
    # and the sender replays forever.  Bound the run by wall time.
    sim.run(until=link.replay_timeout * 40)

    assert rx.corrupted.value() > 8          # plenty of NAK triggers...
    assert memory.requests == []             # ...and zero deliveries
    assert occupancies                       # the spy saw traffic
    # One pending NAK at most (no deliveries, so no ACKs): the queue
    # stays bounded no matter how long corruption persists.
    assert max(occupancies) <= 2


def test_immediate_acks_coalesce_while_transmitter_busy():
    sim = Simulator()
    link, device, memory = build_dma_path(sim, ack_policy="immediate")
    rx = link.upstream_if
    occupancies = spy_on_queue(rx)

    n = 16
    for i in range(n):
        device.read(0x80000000 + i * 64, 64)
    sim.run()

    assert len(device.responses) == n
    # The memory side's transmitter is busy with 84-byte response TLPs
    # while 8-byte ACKs pile up; cumulative coalescing caps the backlog
    # at one pending ACK (plus at most one NAK slot, unused here).
    assert max(occupancies) <= 2
    # Coalescing really happened: fewer ACKs were sent than deliveries
    # were acknowledged.
    assert rx.acks_sent.value() < rx.delivered.value()
