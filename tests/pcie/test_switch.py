"""Unit tests for the PCI-Express switch."""

import pytest

from repro.mem.addr import AddrRange
from repro.pci import header as hdr
from repro.pci.capabilities import CAP_ID_PCIE, PciePortType
from repro.pcie.switch import PcieSwitch
from repro.sim import ticks
from repro.sim.simobject import Simulator

from tests.mem.helpers import FakeMaster, FakeSlave

UP_WINDOW = AddrRange(0x40000000, 0x200000)
DOWN_WINDOW_0 = AddrRange(0x40000000, 0x100000)
DOWN_WINDOW_1 = AddrRange(0x40100000, 0x100000)


def program(vp2p, window, primary, secondary, subordinate):
    vp2p.set_memory_window(window)
    vp2p.config_write(hdr.PRIMARY_BUS, primary, 1)
    vp2p.config_write(hdr.SECONDARY_BUS, secondary, 1)
    vp2p.config_write(hdr.SUBORDINATE_BUS, subordinate, 1)
    vp2p.config_write(hdr.COMMAND, hdr.CMD_MEM_SPACE | hdr.CMD_BUS_MASTER, 2)


def build(sim, **kwargs):
    """Switch with an RC-stand-in upstream and a device per downstream
    port.  Bus numbering mirrors the paper's topology: upstream VP2P
    sec=2, downstream VP2Ps on buses 3 and 4."""
    switch = PcieSwitch(sim, num_downstream_ports=2, **kwargs)
    rc_down = FakeMaster(sim, "rc_requests")  # CPU requests into the switch
    rc_up = FakeSlave(sim, "rc_memory", latency=ticks.from_ns(30))  # DMA sink
    rc_down.port.bind(switch.upstream_slave)
    switch.upstream_master.bind(rc_up.port)
    devices = []
    for i, port in enumerate(switch.downstream_ports):
        pio = FakeSlave(sim, f"dev{i}_pio", latency=ticks.from_ns(20))
        dma = FakeMaster(sim, f"dev{i}_dma")
        port.master_port.bind(pio.port)
        dma.port.bind(port.slave_port)
        devices.append((pio, dma))
    program(switch.upstream_vp2p, UP_WINDOW, 1, 2, 4)
    program(switch.downstream_ports[0].vp2p, DOWN_WINDOW_0, 2, 3, 3)
    program(switch.downstream_ports[1].vp2p, DOWN_WINDOW_1, 2, 4, 4)
    return switch, rc_down, rc_up, devices


def test_port_roles_in_capabilities():
    sim = Simulator()
    switch = PcieSwitch(sim, num_downstream_ports=3)
    assert switch.upstream_vp2p.port_type is PciePortType.UPSTREAM_SWITCH_PORT
    assert all(
        p.vp2p.port_type is PciePortType.DOWNSTREAM_SWITCH_PORT
        for p in switch.downstream_ports
    )
    assert switch.upstream_vp2p.find_capability(CAP_ID_PCIE) == 0xD8


def test_needs_a_downstream_port():
    with pytest.raises(ValueError):
        PcieSwitch(Simulator(), num_downstream_ports=0)


def test_upstream_claims_only_upstream_vp2p_window():
    sim = Simulator()
    switch, *_ = build(sim)
    assert switch.upstream_slave.get_ranges() == [UP_WINDOW]


def test_requests_route_to_correct_downstream_port():
    sim = Simulator()
    switch, rc_down, rc_up, devices = build(sim)
    rc_down.read(DOWN_WINDOW_0.start + 4, 4)
    rc_down.read(DOWN_WINDOW_1.start + 8, 4)
    sim.run()
    assert len(devices[0][0].requests) == 1
    assert len(devices[1][0].requests) == 1
    assert len(rc_down.responses) == 2


def test_dma_goes_upstream_with_stamped_bus():
    sim = Simulator()
    switch, rc_down, rc_up, devices = build(sim)
    devices[0][1].write(0x80000000, 64)
    sim.run()
    assert len(rc_up.requests) == 1
    assert rc_up.requests[0].pci_bus_num == 3
    assert len(devices[0][1].responses) == 1


def test_response_with_foreign_bus_goes_upstream():
    sim = Simulator()
    switch, rc_down, rc_up, devices = build(sim)
    # The request arrives unstamped (no root complex in this rig), so
    # the switch's upstream slave stamps the upstream VP2P's primary
    # bus (1).  Bus 1 is in no downstream VP2P [secondary, subordinate]
    # range, so the response must exit upstream.
    rc_down.read(DOWN_WINDOW_0.start, 4)
    sim.run()
    assert len(rc_down.responses) == 1
    assert rc_down.responses[0].pci_bus_num == 1


def test_peer_to_peer_between_downstream_ports():
    sim = Simulator()
    switch, rc_down, rc_up, devices = build(sim)
    devices[0][1].write(DOWN_WINDOW_1.start + 0x10, 64)
    sim.run()
    assert len(devices[1][0].requests) == 1
    assert rc_up.requests == []
    assert len(devices[0][1].responses) == 1


def test_store_and_forward_latency():
    sim = Simulator()
    switch, rc_down, rc_up, devices = build(sim, latency=ticks.from_ns(150),
                                            service_interval=0)
    rc_down.read(DOWN_WINDOW_0.start, 4)
    sim.run()
    assert rc_down.response_ticks[0] == ticks.from_ns(150 + 20 + 150)


def test_vp2ps_lists_upstream_first():
    sim = Simulator()
    switch = PcieSwitch(sim, num_downstream_ports=2)
    assert switch.vp2ps[0] is switch.upstream_vp2p
    assert len(switch.vp2ps) == 3


def test_register_with_host_nested_tree():
    from repro.pci.host import PciHost
    from repro.pcie.root_complex import RootComplex

    sim = Simulator()
    host = PciHost(sim)
    rc = RootComplex(sim, num_root_ports=1)
    (rp_bus,) = rc.register_with_host(host)
    switch = PcieSwitch(sim, num_downstream_ports=2)
    down_buses = switch.register_with_host(rp_bus, device=0)
    assert len(down_buses) == 2
    # Program bus numbers so config cycles route: rp sec=1, up sec=2.
    host.config_write(0, 0, 0, hdr.SECONDARY_BUS, 1, 1)
    host.config_write(0, 0, 0, hdr.SUBORDINATE_BUS, 4, 1)
    host.config_write(1, 0, 0, hdr.SECONDARY_BUS, 2, 1)
    host.config_write(1, 0, 0, hdr.SUBORDINATE_BUS, 4, 1)
    # The downstream VP2Ps appear as devices 0 and 1 on bus 2.
    assert host.config_read(2, 0, 0, hdr.VENDOR_ID, 2) == 0x10B5
    assert host.config_read(2, 1, 0, hdr.VENDOR_ID, 2) == 0x10B5
    assert host.config_read(2, 2, 0, hdr.VENDOR_ID, 2) == 0xFFFF
