"""Unit tests for the pcie-pkt wrapper."""

import pytest

from repro.mem.packet import MemCmd, Packet
from repro.pcie.pkt import DllpType, PciePacket


def test_wraps_exactly_one_kind():
    tlp = Packet(MemCmd.WRITE_REQ, 0, 64, data=bytes(64))
    with pytest.raises(ValueError):
        PciePacket()
    with pytest.raises(ValueError):
        PciePacket(tlp=tlp, dllp_type=DllpType.ACK, seq=0)


def test_tlp_wire_size_includes_table1_overhead():
    write = Packet(MemCmd.WRITE_REQ, 0, 64, data=bytes(64))
    ppkt = PciePacket.for_tlp(write, seq=0)
    assert ppkt.is_tlp and not ppkt.is_dllp
    assert ppkt.wire_bytes() == 64 + 20


def test_read_request_tlp_has_no_payload_on_wire():
    read = Packet(MemCmd.READ_REQ, 0, 64)
    assert PciePacket.for_tlp(read, seq=3).wire_bytes() == 20


def test_dllp_wire_size():
    assert PciePacket.ack(7).wire_bytes() == 8
    assert PciePacket.nak(7).wire_bytes() == 8


def test_ack_nak_constructors():
    ack = PciePacket.ack(5)
    assert ack.is_dllp and ack.dllp_type is DllpType.ACK and ack.seq == 5
    nak = PciePacket.nak(2)
    assert nak.dllp_type is DllpType.NAK


def test_dllp_seq_minus_one_is_legal_but_lower_is_not():
    assert PciePacket.nak(-1).seq == -1
    with pytest.raises(ValueError):
        PciePacket.nak(-2)


def test_repr_mentions_kind():
    tlp = Packet(MemCmd.READ_REQ, 0, 64)
    assert "TLP" in repr(PciePacket.for_tlp(tlp, 0))
    assert "ACK" in repr(PciePacket.ack(0))
