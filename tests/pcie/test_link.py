"""Unit tests for the PCI-Express link model and its ACK/NAK protocol."""

import pytest

from repro.mem.addr import AddrRange
from repro.mem.packet import MemCmd, Packet
from repro.pcie.link import PcieLink
from repro.pcie.timing import PcieGen
from repro.sim import ticks
from repro.sim.simobject import SimObject, Simulator

from tests.mem.helpers import FakeMaster, FakeSlave


def build_mmio_path(sim, **link_kwargs):
    """Requester at the upstream end (like a root port), device at the
    downstream end: models the CPU->device MMIO direction."""
    link = PcieLink(sim, "link", **link_kwargs)
    requester = FakeMaster(sim, "requester")
    device = FakeSlave(sim, "device", latency=ticks.from_ns(100))
    requester.port.bind(link.upstream_if.slave_port)
    link.downstream_if.master_port.bind(device.port)
    return link, requester, device


def build_dma_path(sim, device_kwargs=None, **link_kwargs):
    """Requester at the downstream end (like a device doing DMA),
    memory at the upstream end."""
    link = PcieLink(sim, "link", **link_kwargs)
    device = FakeMaster(sim, "device")
    memory_kwargs = {"latency": ticks.from_ns(50)}
    memory_kwargs.update(device_kwargs or {})
    memory = FakeSlave(sim, "memory", **memory_kwargs)
    device.port.bind(link.downstream_if.slave_port)
    link.upstream_if.master_port.bind(memory.port)
    return link, device, memory


def test_mmio_round_trip():
    sim = Simulator()
    link, requester, device = build_mmio_path(sim)
    requester.read(0x1000, 64)
    sim.run()
    assert len(device.requests) == 1
    assert len(requester.responses) == 1
    assert requester.responses[0].cmd is MemCmd.READ_RESP


def test_mmio_latency_accounts_for_wire_time():
    sim = Simulator()
    link, requester, device = build_mmio_path(sim, gen=PcieGen.GEN2, width=1)
    requester.read(0x1000, 64)
    sim.run()
    # Request: 20 wire bytes -> 40 ns + 4 ns propagation.
    assert device.request_ticks[0] == ticks.from_ns(44)
    # Response: 84 wire bytes -> 168 ns + 4 ns, after 100 ns device time.
    assert requester.response_ticks[0] == ticks.from_ns(44 + 100 + 172)


def test_wider_link_is_faster():
    results = {}
    for width in (1, 4):
        sim = Simulator()
        link, requester, device = build_mmio_path(sim, width=width)
        requester.read(0x1000, 64)
        sim.run()
        results[width] = requester.response_ticks[0]
    assert results[4] < results[1]


def test_dma_direction_works():
    sim = Simulator()
    link, device, memory = build_dma_path(sim)
    device.write(0x80000000, 64)
    sim.run()
    assert len(memory.requests) == 1
    assert memory.requests[0].cmd is MemCmd.WRITE_REQ
    assert len(device.responses) == 1


def test_sequence_numbers_assigned_in_order():
    sim = Simulator()
    link, device, memory = build_dma_path(sim)
    for i in range(5):
        device.write(0x80000000 + i * 64, 64)
    sim.run()
    tx = link.downstream_if
    assert tx.send_seq == 5
    assert tx.peer.recv_seq == 5
    assert [p.addr for p in memory.requests] == [0x80000000 + i * 64 for i in range(5)]


def test_ack_purges_replay_buffer():
    sim = Simulator()
    link, device, memory = build_dma_path(sim)
    device.write(0x80000000, 64)
    sim.run()
    tx = link.downstream_if
    assert len(tx.replay_buffer) == 0
    assert tx.peer.acks_sent.value() >= 1
    assert tx.acks_received.value() >= 1
    assert tx.timeouts.value() == 0


def test_throughput_near_wire_rate_gen2_x1():
    sim = Simulator()
    link, device, memory = build_dma_path(sim)
    n = 64
    for i in range(n):
        device.write(0x80000000 + i * 64, 64)
    sim.run()
    assert len(device.responses) == n
    # 64 TLPs of 84 wire bytes at 2 ns/byte is 10.75 us of pure wire
    # time; protocol overhead should keep us within ~30 % of that.
    wire_time = n * ticks.from_ns(168)
    assert sim.curtick < wire_time * 1.3
    assert link.downstream_if.tlp_replays.value() == 0


def test_slow_receiver_backpressures_through_credits_not_replays():
    # A receiver an order of magnitude slower than the link used to
    # force dropped deliveries and replay storms; with credit-based flow
    # control the TLPs park in the RX buffer / stall at the transmitter
    # instead, and the replay machinery stays idle.
    sim = Simulator()
    link, device, memory = build_dma_path(
        sim, device_kwargs={"max_outstanding": 1, "latency": ticks.from_us(3)}
    )
    for i in range(6):
        device.write(0x80000000 + i * 64, 64)
    sim.run(max_events=500_000)
    tx = link.downstream_if
    assert len(device.responses) == 6  # reliability: everything arrives
    assert tx.peer.delivery_refused.value() > 0  # RX buffer did absorb refusals
    assert tx.timeouts.value() == 0  # ...without a single replay timeout
    assert tx.tlp_replays.value() == 0
    # Credits round-tripped: the transmitter ends with full headroom.
    for cls in (0, 1, 2):
        assert tx.fc.tx_headroom(cls) == tx.peer.fc.rx_capacity[cls]


def test_duplicate_replays_are_discarded_by_sequence_check():
    sim = Simulator()
    # Force ACKs to lag the replay timer: delivered TLPs time out before
    # their ACK returns, so the replay re-sends an already-delivered TLP
    # and the receiver's sequence check must discard the duplicate.
    link, device, memory = build_dma_path(
        sim,
        replay_timeout=ticks.from_ns(400),
        ack_period=ticks.from_ns(900),
    )
    device.write(0x80000000, 64)
    device.write(0x80000040, 64)
    sim.run(max_events=500_000)
    rx = link.upstream_if
    assert rx.out_of_seq.value() >= 1
    assert len(memory.requests) == 2  # no duplicate deliveries
    assert len(device.responses) == 2


def test_replay_buffer_size_one_serializes_by_ack():
    sim = Simulator()
    link, device, memory = build_dma_path(sim, replay_buffer_size=1)
    for i in range(4):
        device.write(0x80000000 + i * 64, 64)
    sim.run()
    assert len(device.responses) == 4
    # With one replay slot, each TLP waits for the previous TLP's ACK:
    # spacing must exceed the pure wire time.
    tx_if = link.downstream_if
    assert tx_if.timeouts.value() == 0
    assert sim.curtick > 4 * ticks.from_ns(168)


def test_immediate_ack_policy():
    sim = Simulator()
    link, device, memory = build_dma_path(sim, ack_policy="immediate")
    for i in range(3):
        device.write(0x80000000 + i * 64, 64)
    sim.run()
    rx = link.upstream_if
    # One ACK per delivered TLP (plus acks for delivered responses on
    # the other interface).
    assert rx.acks_sent.value() == 3


def test_invalid_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        PcieLink(sim, "l1", replay_buffer_size=0)
    with pytest.raises(ValueError):
        PcieLink(sim, "l2", ack_policy="sometimes")


def test_error_injection_exercises_nak_path():
    sim = Simulator()
    link, device, memory = build_dma_path(sim, error_rate=0.2, error_seed=7)
    n = 32
    for i in range(n):
        device.write(0x80000000 + i * 64, 64)
    sim.run(max_events=1_000_000)
    rx = link.upstream_if
    assert rx.corrupted.value() > 0
    assert rx.naks_sent.value() > 0
    assert link.downstream_if.tlp_replays.value() > 0
    # Reliable delivery despite the errors.
    assert len(memory.requests) == n
    assert len(device.responses) == n


def test_error_injection_is_deterministic():
    def run_once():
        sim = Simulator()
        link, device, memory = build_dma_path(sim, error_rate=0.2, error_seed=7)
        for i in range(16):
            device.write(0x80000000 + i * 64, 64)
        sim.run(max_events=1_000_000)
        return (
            link.upstream_if.corrupted.value(),
            link.downstream_if.tlp_replays.value(),
            sim.curtick,
        )

    assert run_once() == run_once()


def test_utilization_stats():
    sim = Simulator()
    link, device, memory = build_dma_path(sim)
    device.write(0x80000000, 64)
    sim.run()
    assert link.up_link.packets.value() >= 1  # the TLP
    assert link.down_link.packets.value() >= 2  # response TLP + ACK
    assert link.up_link.bytes.value() >= 84


def test_replay_fraction_formula():
    sim = Simulator()
    link, device, memory = build_dma_path(sim)
    device.write(0x80000000, 64)
    sim.run()
    stats = sim.dump_stats()
    key = [k for k in stats if k.endswith("down_if.replay_fraction")]
    assert key and stats[key[0]] == 0.0
