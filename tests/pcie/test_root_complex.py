"""Unit tests for the root complex: routing, stamping, backpressure."""

import pytest

from repro.mem.addr import AddrRange
from repro.mem.packet import MemCmd, Packet
from repro.mem.port import PortError
from repro.pci import header as hdr
from repro.pcie.root_complex import RootComplex
from repro.sim import ticks
from repro.sim.simobject import Simulator

from tests.mem.helpers import FakeMaster, FakeSlave


MEM_WINDOW_0 = AddrRange(0x40000000, 0x100000)
MEM_WINDOW_1 = AddrRange(0x40100000, 0x100000)


def open_window(vp2p, window, secondary, subordinate):
    """Program a VP2P the way enumeration software would."""
    vp2p.set_memory_window(window)
    vp2p.config_write(hdr.SECONDARY_BUS, secondary, 1)
    vp2p.config_write(hdr.SUBORDINATE_BUS, subordinate, 1)
    vp2p.config_write(hdr.COMMAND, hdr.CMD_MEM_SPACE | hdr.CMD_BUS_MASTER, 2)


def build(sim, **kwargs):
    """RC with a CPU on the upstream slave, memory on the upstream
    master, and a fake device directly on each of two root ports."""
    rc = RootComplex(sim, num_root_ports=2, **kwargs)
    cpu = FakeMaster(sim, "cpu")
    cpu.port.bind(rc.upstream_slave)
    memory = FakeSlave(sim, "memory", latency=ticks.from_ns(30))
    rc.upstream_master.bind(memory.port)
    devices = []
    for i, port in enumerate(rc.root_ports):
        dev_pio = FakeSlave(sim, f"dev{i}_pio", latency=ticks.from_ns(20))
        dev_dma = FakeMaster(sim, f"dev{i}_dma")
        port.master_port.bind(dev_pio.port)
        dev_dma.port.bind(port.slave_port)
        devices.append((dev_pio, dev_dma))
    open_window(rc.root_ports[0].vp2p, MEM_WINDOW_0, 1, 1)
    open_window(rc.root_ports[1].vp2p, MEM_WINDOW_1, 2, 2)
    return rc, cpu, memory, devices


def test_three_root_ports_by_default_with_wildcat_ids():
    sim = Simulator()
    rc = RootComplex(sim)
    assert len(rc.root_ports) == 3
    assert [v.device_id for v in rc.vp2ps] == [0x9C90, 0x9C92, 0x9C94]
    assert all(v.vendor_id == 0x8086 for v in rc.vp2ps)


def test_needs_at_least_one_port():
    with pytest.raises(ValueError):
        RootComplex(Simulator(), num_root_ports=0)


def test_upstream_ranges_are_union_of_windows():
    sim = Simulator()
    rc, *_ = build(sim)
    ranges = rc.upstream_slave.get_ranges()
    assert MEM_WINDOW_0 in ranges
    assert MEM_WINDOW_1 in ranges


def test_mmio_request_routes_by_window():
    sim = Simulator()
    rc, cpu, memory, devices = build(sim)
    cpu.read(MEM_WINDOW_0.start + 0x10, 4)
    cpu.read(MEM_WINDOW_1.start + 0x20, 4)
    sim.run()
    assert len(devices[0][0].requests) == 1
    assert len(devices[1][0].requests) == 1
    assert len(cpu.responses) == 2


def test_cpu_requests_stamped_with_bus_zero():
    sim = Simulator()
    rc, cpu, memory, devices = build(sim)
    cpu.read(MEM_WINDOW_0.start, 4)
    sim.run()
    assert devices[0][0].requests[0].pci_bus_num == 0


def test_unclaimed_upstream_request_raises():
    sim = Simulator()
    rc, cpu, memory, devices = build(sim)
    cpu.read(0x50000000, 4)  # outside both windows
    with pytest.raises(PortError):
        sim.run()


def test_dma_stamped_with_secondary_bus_and_reaches_memory():
    sim = Simulator()
    rc, cpu, memory, devices = build(sim)
    devices[1][1].write(0x80000000, 64)
    sim.run()
    assert len(memory.requests) == 1
    assert memory.requests[0].pci_bus_num == 2
    assert len(devices[1][1].responses) == 1


def test_dma_response_routes_back_by_bus_number():
    sim = Simulator()
    rc, cpu, memory, devices = build(sim)
    devices[0][1].write(0x80000000, 64)
    devices[1][1].write(0x80001000, 64)
    sim.run()
    # Each device's DMA response comes back to it, not to its sibling.
    assert len(devices[0][1].responses) == 1
    assert len(devices[1][1].responses) == 1
    assert devices[0][1].responses[0].addr == 0x80000000
    assert devices[1][1].responses[0].addr == 0x80001000


def test_peer_to_peer_request_routes_across_root_ports():
    sim = Simulator()
    rc, cpu, memory, devices = build(sim)
    # Device 0 writes into device 1's window: must route down port 1,
    # not up toward memory.
    devices[0][1].write(MEM_WINDOW_1.start + 0x40, 64)
    sim.run()
    assert len(devices[1][0].requests) == 1
    assert memory.requests == []
    assert len(devices[0][1].responses) == 1


def test_latency_applied_both_ways():
    sim = Simulator()
    latency = ticks.from_ns(150)
    rc, cpu, memory, devices = build(sim, latency=latency, service_interval=0)
    cpu.read(MEM_WINDOW_0.start, 4)
    sim.run()
    # request: RC latency; device 20 ns; response: RC latency again.
    assert cpu.response_ticks[0] == 2 * latency + ticks.from_ns(20)


def test_service_interval_serializes_burst():
    sim = Simulator()
    interval = ticks.from_ns(30)
    rc, cpu, memory, devices = build(sim, latency=0, service_interval=interval)
    for i in range(4):
        devices[0][1].write(0x80000000 + 64 * i, 64)
    sim.run()
    arrivals = memory.request_ticks
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    assert all(g >= interval for g in gaps)


def test_bounded_port_buffers_backpressure_but_deliver_all():
    sim = Simulator()
    rc, cpu, memory, devices = build(sim, buffer_size=2)
    for i in range(12):
        devices[0][1].write(0x80000000 + 64 * i, 64)
    sim.run(max_events=200_000)
    assert len(memory.requests) == 12
    assert len(devices[0][1].responses) == 12


def test_register_with_host_builds_config_tree():
    from repro.pci.host import PciHost

    sim = Simulator()
    rc = RootComplex(sim, num_root_ports=2)
    host = PciHost(sim)
    buses = rc.register_with_host(host)
    assert len(buses) == 2
    assert host.config_read(0, 0, 0, hdr.VENDOR_ID, 2) == 0x8086
    assert host.config_read(0, 1, 0, hdr.DEVICE_ID, 2) == 0x9C92
    assert host.config_read(0, 0, 0, hdr.HEADER_TYPE, 1) == 0x01
