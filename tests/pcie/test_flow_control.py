"""Unit and behaviour tests for per-class credit flow control.

Covers the three layers of the credit machinery: TLP classification
(posted / non-posted / completion follows the wire format), the
:class:`~repro.pcie.fc.CreditLedger` arithmetic (advertise / consume /
return, cumulative limits), and the link-level behaviour built on top
— credit-gated transmission, UpdateFC return DLLPs, starvation stall
clocks, and the FC watchdog that heals lost UpdateFCs.
"""

import pytest

from repro.mem.packet import FLOW_CPL, FLOW_NP, FLOW_P, MemCmd, Packet
from repro.pcie.fc import ALL_CLASSES, CreditLedger, FlowClass
from repro.pcie.link import PcieLink
from repro.pcie.pkt import FLOW_CLASS_FOR_DLLP, DllpType, PciePacket
from repro.pcie.timing import PcieGen, fc_watchdog_ticks
from repro.sim import ticks
from repro.sim.simobject import Simulator

from tests.pcie.test_link import build_dma_path


# -- classification ----------------------------------------------------------


def test_tlp_classification_follows_wire_format():
    expected = {
        MemCmd.READ_REQ: FLOW_NP,
        MemCmd.WRITE_REQ: FLOW_P,
        MemCmd.CONFIG_READ_REQ: FLOW_NP,
        MemCmd.CONFIG_WRITE_REQ: FLOW_NP,
        MemCmd.MESSAGE: FLOW_P,
    }
    for cmd, flow in expected.items():
        assert Packet(cmd, 0x1000, 4).flow_class == flow, cmd


def test_every_response_is_completion_class_and_nothing_else():
    for cmd in MemCmd:
        pkt = Packet(cmd, 0x1000, 4)
        assert (pkt.flow_class == FLOW_CPL) == pkt.is_response, cmd


def test_flowclass_enum_mirrors_packet_constants():
    assert FlowClass.P == FLOW_P
    assert FlowClass.NP == FLOW_NP
    assert FlowClass.CPL == FLOW_CPL
    assert [c.label for c in ALL_CLASSES] == ["p", "np", "cpl"]


def test_pcie_packet_exposes_flow_class():
    ppkt = PciePacket.for_tlp(Packet(MemCmd.READ_REQ, 0x1000, 4), seq=0)
    assert ppkt.flow_class is FlowClass.NP


def test_updatefc_dllp_carries_class_and_limit():
    for cls in ALL_CLASSES:
        ppkt = PciePacket.update_fc(cls, 17)
        assert ppkt.is_dllp
        assert FLOW_CLASS_FOR_DLLP[ppkt.dllp_type] == cls
        assert ppkt.seq == 17


# -- ledger arithmetic -------------------------------------------------------


def test_ledger_requires_at_least_one_credit_per_class():
    with pytest.raises(ValueError):
        CreditLedger(0, 6, 4)
    with pytest.raises(ValueError):
        CreditLedger(6, 6, 0)


def test_consume_reduces_headroom_until_advertised():
    fc = CreditLedger(2, 2, 2)
    assert fc.tx_headroom(FLOW_P) == 0  # nothing advertised yet
    assert fc.advertise(FLOW_P, 2)
    assert fc.tx_headroom(FLOW_P) == 2
    fc.consume(FLOW_P)
    fc.consume(FLOW_P)
    assert fc.tx_headroom(FLOW_P) == 0
    # Classes are independent: NP and CPL were never touched.
    assert fc.tx_headroom(FLOW_NP) == 0
    fc.advertise(FLOW_NP, 2)
    assert fc.tx_headroom(FLOW_NP) == 2


def test_advertise_is_monotone_cumulative():
    fc = CreditLedger(4, 4, 4)
    assert fc.advertise(FLOW_NP, 4)
    assert not fc.advertise(FLOW_NP, 4)  # same limit: no new credits
    assert not fc.advertise(FLOW_NP, 2)  # regression: ignored
    assert fc.tx_headroom(FLOW_NP) == 4
    assert fc.advertise(FLOW_NP, 7)
    assert fc.tx_headroom(FLOW_NP) == 7


def test_rx_accept_and_drain_move_the_advertised_limit():
    fc = CreditLedger(3, 3, 3)
    assert fc.rx_limit(FLOW_CPL) == 3
    fc.rx_accept(FLOW_CPL)
    fc.rx_accept(FLOW_CPL)
    assert fc.rx_held[FLOW_CPL] == 2
    assert fc.rx_limit(FLOW_CPL) == 3  # limit moves on drain, not accept
    fc.rx_drain(FLOW_CPL)
    assert fc.rx_held[FLOW_CPL] == 1
    assert fc.rx_drained[FLOW_CPL] == 1
    assert fc.rx_limit(FLOW_CPL) == 4  # capacity + drained


def test_stall_clock_accumulates_per_class():
    fc = CreditLedger(1, 1, 1)
    fc.stall_begin(FLOW_NP, 100)
    fc.stall_begin(FLOW_NP, 150)  # idempotent: first begin wins
    assert fc.stalled(FLOW_NP)
    fc.stall_end(FLOW_NP, 300)
    assert not fc.stalled(FLOW_NP)
    assert fc.stall_ticks[FLOW_NP] == 200
    assert fc.stall_ticks[FLOW_P] == 0
    fc.stall_end(FLOW_NP, 400)  # no stall in progress: no-op
    assert fc.stall_ticks[FLOW_NP] == 200


# -- link integration --------------------------------------------------------


def test_link_advertises_initial_credits_at_link_up():
    sim = Simulator()
    link = PcieLink(sim, "link", p_credits=5, np_credits=3, cpl_credits=2)
    for iface in (link.upstream_if, link.downstream_if):
        assert iface.fc.tx_headroom(FLOW_P) == 5
        assert iface.fc.tx_headroom(FLOW_NP) == 3
        assert iface.fc.tx_headroom(FLOW_CPL) == 2


def test_link_rejects_zero_credit_classes():
    sim = Simulator()
    with pytest.raises(ValueError):
        PcieLink(sim, "bad", np_credits=0)


def test_credits_consumed_and_returned_over_traffic():
    sim = Simulator()
    link, device, memory = build_dma_path(sim)
    for i in range(8):
        device.write(0x80000000 + i * 64, 64)
    sim.run()
    assert len(device.responses) == 8
    for iface in (link.upstream_if, link.downstream_if):
        fc = iface.fc
        for cls in ALL_CLASSES:
            # Quiescence: every consumed credit came back.
            assert fc.tx_headroom(cls) == iface.peer.fc.rx_capacity[cls]
            # And the peer's books agree with ours.
            assert fc.tx_consumed[cls] == (iface.peer.fc.rx_drained[cls]
                                           + iface.peer.fc.rx_held[cls])
    assert link.downstream_if.fc_updates_received.value() > 0
    assert link.upstream_if.fc_updates_sent.value() > 0


def test_single_np_credit_serializes_reads_but_everything_completes():
    sim = Simulator()
    link, device, memory = build_dma_path(sim, np_credits=1)
    n = 6
    for i in range(n):
        device.read(0x80000000 + i * 64, 64)
    sim.run()
    assert len(device.responses) == n
    tx = link.downstream_if
    # The transmitter stalled on NP credits (only one read in flight at
    # a time) but never on completions, and never fell back to replays.
    assert tx.fc.stall_ticks[FLOW_NP] > 0
    assert tx.peer.fc.stall_ticks[FLOW_CPL] == 0
    assert tx.tlp_replays.value() == 0


def test_np_saturation_leaves_completions_reachable():
    # The former-livelock shape in miniature: a deep pipeline of DMA
    # reads saturates the NP credit pool while their completions stream
    # back against the NP flood on the other interface.  Completions
    # have dedicated credits, so the pileup can't starve them.
    sim = Simulator()
    link, device, memory = build_dma_path(
        sim, np_credits=2, device_kwargs={"max_outstanding": 64}
    )
    n = 32
    for i in range(n):
        device.read(0x80000000 + i * 64, 64)
    sim.run(max_events=2_000_000)
    assert len(device.responses) == n
    tx = link.downstream_if
    rx = link.upstream_if
    assert tx.fc.stall_ticks[FLOW_NP] > 0  # the storm did starve NP
    assert rx.fc.stall_ticks[FLOW_CPL] == 0  # completions never stalled
    assert tx.timeouts.value() == 0


def test_fc_stall_stats_exported_per_class():
    sim = Simulator()
    link, device, memory = build_dma_path(sim, np_credits=1)
    for i in range(4):
        device.read(0x80000000 + i * 64, 64)
    sim.run()
    stats = sim.dump_stats()
    np_key = [k for k in stats if k.endswith("down_if.fc_stall_ticks_np")]
    assert np_key and stats[np_key[0]] > 0
    for label in ("p", "cpl"):
        key = [k for k in stats
               if k.endswith(f"down_if.fc_stall_ticks_{label}")]
        assert key and stats[key[0]] == 0


def test_watchdog_defaults_to_twice_replay_timeout():
    sim = Simulator()
    link = PcieLink(sim, "link", gen=PcieGen.GEN3, width=4)
    expected = fc_watchdog_ticks(PcieGen.GEN3, 4, link.max_payload)
    assert link.fc_watchdog == expected
    assert link.config_dict()["fc_watchdog"] == expected


def test_watchdog_heals_corrupted_updatefc():
    # DLLP corruption can eat the UpdateFC that returns the last
    # credit; with one posted credit the transmitter is then starved
    # forever unless the watchdog re-advertises.  The error seed is
    # chosen so at least one UpdateFC dies in flight.
    sim = Simulator()
    link, device, memory = build_dma_path(
        sim, p_credits=1, dllp_error_rate=0.4, error_seed=11
    )
    n = 24
    for i in range(n):
        device.write(0x80000000 + i * 64, 64)
    sim.run(max_events=2_000_000)
    assert len(device.responses) == n  # reliable despite lost UpdateFCs
    tx = link.downstream_if
    assert link.upstream_if.dllp_corrupted.value() > 0
    assert tx.fc_watchdog_fires.value() > 0
    # Conservation still holds at quiescence — every consumed credit is
    # accounted for in the peer's receive books.  (Full headroom is NOT
    # guaranteed here: a corrupted *final* UpdateFC is only re-sent when
    # new work starves, and there is none.)
    for cls in ALL_CLASSES:
        peer_fc = tx.peer.fc
        assert tx.fc.tx_consumed[cls] == (peer_fc.rx_drained[cls]
                                          + peer_fc.rx_held[cls])
        assert peer_fc.rx_held[cls] == 0  # RX buffers fully drained


def test_quiescent_idle_link_schedules_no_watchdog():
    # An idle link must stay quiescent: the watchdog only arms while a
    # class is credit-starved with work pending, so a clean run ends
    # with no pending FC events (this is what keeps sim.run() able to
    # detect quiescence at all).
    sim = Simulator()
    link, device, memory = build_dma_path(sim)
    device.write(0x80000000, 64)
    sim.run()
    assert len(device.responses) == 1
    for iface in (link.upstream_if, link.downstream_if):
        assert not iface._fc_watchdog_event.scheduled
        assert iface.fc_watchdog_fires.value() == 0
