"""Unit tests for the replay-timer path of the link layer.

The happy path (ACK arrives, buffer purges) is covered by
``test_link.py``; here the ACKs are taken away.  Suppressing the
receiver's ``_schedule_ack`` forces the sender down ``_replay_timeout``,
so the tests can pin down *when* the timer fires (exactly
``replay_timeout`` ticks after the transmission that armed it) and that
``_reset_replay_timer`` re-arms or disarms correctly on partial and
full acknowledgement.
"""

from repro.obs.trace import MemorySink
from repro.pcie.link import PcieLink
from repro.pcie.pkt import PciePacket
from repro.sim.simobject import Simulator

from tests.mem.helpers import FakeMaster, FakeSlave


def build_dma_path(sim, **link_kwargs):
    link = PcieLink(sim, "link", **link_kwargs)
    device = FakeMaster(sim, "device")
    memory = FakeSlave(sim, "memory")
    device.port.bind(link.downstream_if.slave_port)
    link.upstream_if.master_port.bind(memory.port)
    return link, device, memory


def suppress_acks(interface):
    """Make an interface stop sending ACK/NAK DLLPs for deliveries."""
    interface._schedule_ack = lambda: None


def test_replay_timer_fires_exactly_replay_timeout_after_tx_start():
    sim = Simulator()
    link, device, memory = build_dma_path(sim)
    tx = link.downstream_if
    suppress_acks(link.upstream_if)
    sink = sim.tracer.attach(MemorySink())

    device.write(0x1000, 64)
    sim.run(until=0)  # process the tick-0 events: TX starts
    tx_start = next(ev["t"] for ev in sink.events
                    if ev["ev"] == "tlp_tx" and ev["comp"] == tx.full_name)
    assert tx._replay_event.scheduled
    assert tx._replay_event.when == tx_start + link.replay_timeout

    # Not a tick early...
    sim.run(until=tx_start + link.replay_timeout - 1)
    assert tx.timeouts.value() == 0
    assert tx.tlp_replays.value() == 0
    # ...and at exactly the deadline the timeout fires and the TLP is
    # retransmitted (the link is idle, so the replay starts immediately).
    sim.run(until=tx_start + link.replay_timeout)
    assert tx.timeouts.value() == 1
    assert tx.tlp_replays.value() == 1
    replays = [ev for ev in sink.events if ev["ev"] == "tlp_tx" and ev["replay"]]
    assert len(replays) == 1
    assert replays[0]["t"] == tx_start + link.replay_timeout


def test_replay_repeats_until_an_ack_finally_lands():
    sim = Simulator()
    link, device, memory = build_dma_path(sim)
    tx, rx = link.downstream_if, link.upstream_if
    original_schedule_ack = rx._schedule_ack
    suppress_acks(rx)

    device.write(0x1000, 64)
    # Each timeout re-arms the timer while the buffer stays populated.
    deadline = link.replay_timeout * 3 + 1000
    sim.run(until=deadline)
    assert tx.timeouts.value() >= 3
    assert len(tx.replay_buffer) == 1
    # Every replay reaches the receiver as a duplicate (recv_seq already
    # advanced past it) and is re-ACKed — but the re-ACK is suppressed.
    assert rx.out_of_seq.value() >= 2

    # Restore ACKs: the next duplicate replay triggers a real re-ACK,
    # the buffer purges, the timer disarms, and the link goes quiet.
    rx._schedule_ack = original_schedule_ack
    sim.run(max_events=1_000_000)
    assert len(tx.replay_buffer) == 0
    assert not tx._replay_event.scheduled
    assert tx.acks_received.value() == 1
    # Despite everything the TLP was delivered exactly once.
    assert len(memory.requests) == 1


def test_partial_ack_resets_the_timer_for_the_remainder():
    sim = Simulator()
    link, device, memory = build_dma_path(sim, replay_buffer_size=4)
    tx, rx = link.downstream_if, link.upstream_if
    suppress_acks(rx)

    device.write(0x1000, 64)
    device.write(0x2000, 64)
    sim.run(until=tx.replay_timeout // 2)
    assert len(tx.replay_buffer) == 2
    armed_at = tx._replay_event.when

    # Hand-deliver an ACK for the first sequence number only.
    inject_at = sim.curtick
    tx.receive_from_link(PciePacket.ack(0))
    assert [ppkt.seq for ppkt in tx.replay_buffer] == [1]
    # _reset_replay_timer re-armed for the survivor, from the ACK tick.
    assert tx._replay_event.scheduled
    assert tx._replay_event.when == inject_at + link.replay_timeout
    assert tx._replay_event.when != armed_at

    # Acknowledging the rest disarms the timer entirely.
    tx.receive_from_link(PciePacket.ack(1))
    assert len(tx.replay_buffer) == 0
    assert not tx._replay_event.scheduled


def test_no_timeouts_on_a_healthy_link():
    sim = Simulator()
    link, device, memory = build_dma_path(sim)
    for i in range(8):
        device.write(0x1000 + i * 64, 64)
    sim.run(max_events=1_000_000)
    assert link.downstream_if.timeouts.value() == 0
    assert link.downstream_if.tlp_replays.value() == 0
    assert len(memory.requests) == 8
