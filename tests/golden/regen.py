"""Regenerate the golden trace files.

Run after a *deliberate* behaviour or vocabulary change:

    PYTHONPATH=src:. python tests/golden/regen.py

then review the diff — every changed line is a changed observable
behaviour — and commit the new goldens with the change that caused
them.
"""

import sys

from tests.golden.scenario import SCENARIOS, golden_path, run_scenario


def main() -> int:
    for name in SCENARIOS:
        text = run_scenario(name)
        path = golden_path(name)
        with open(path, "w") as fh:
            fh.write(text)
        print(f"wrote {path}: {len(text.splitlines()) - 1} events")
    return 0


if __name__ == "__main__":
    sys.exit(main())
