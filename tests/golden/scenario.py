"""The canonical runs behind the golden-trace regression files.

A golden trace freezes the *entire observable behaviour* of a scenario
— every TLP transmission, delivery, refusal, replay and DLLP, with
exact ticks and sequence numbers — as canonical JSONL bytes.  Any
change to event ordering, link timing, replay policy or the trace
vocabulary flips the byte comparison red, which is the point: such
changes must be deliberate, reviewed, and followed by ``regen.py``.

Both scenarios drive a 4 KiB ``dd`` read through the paper's validation
topology narrowed to Gen 2 x1 links; the second also injects
``error_rate=0.2`` to pin the NAK/replay machinery.  Traces restrict to
the ``link``/``engine`` categories — the TLP lifecycle — so the files
stay reviewable (a few thousand events each).
"""

import os

from repro.obs.trace import MemorySink
from repro.system.topology import build_validation_system
from repro.workloads.dd import DdWorkload

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))

#: name -> (golden file, scenario kwargs).  The meta recorded in the
#: header is exactly these kwargs, so a golden file says what made it.
SCENARIOS = {
    "dd_gen2x1": {"error_rate": 0.0},
    "dd_gen2x1_err": {"error_rate": 0.2},
}

BLOCK_BYTES = 4096
TRACE_CATEGORIES = ("link", "engine")


def golden_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.jsonl")


def run_scenario(name: str, **overrides) -> str:
    """Run one golden scenario from a fresh Simulator; return the trace
    as the exact JSONL text a golden file holds."""
    kwargs = dict(SCENARIOS[name])
    kwargs.update(overrides)
    error_rate = kwargs.pop("error_rate")
    system = build_validation_system(
        root_link_width=1, device_link_width=1, error_rate=error_rate,
        **kwargs,
    )
    sink = MemorySink()
    system.sim.tracer.categories = frozenset(TRACE_CATEGORIES)
    system.sim.tracer.attach(sink)
    dd = DdWorkload(system.kernel, system.disk_driver, BLOCK_BYTES,
                    startup_overhead=0)
    process = system.kernel.spawn("dd", dd.run())
    system.run(max_events=10_000_000)
    assert process.done, f"golden scenario {name!r} did not finish"
    meta = {"scenario": name, "block_bytes": BLOCK_BYTES,
            "error_rate": error_rate,
            "categories": sorted(TRACE_CATEGORIES)}
    return sink.to_jsonl(meta=meta)
