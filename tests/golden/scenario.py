"""The canonical runs behind the golden-trace regression files.

A golden trace freezes the *entire observable behaviour* of a scenario
— every TLP transmission, delivery, refusal, replay and DLLP, with
exact ticks and sequence numbers — as canonical JSONL bytes.  Any
change to event ordering, link timing, replay policy or the trace
vocabulary flips the byte comparison red, which is the point: such
changes must be deliberate, reviewed, and followed by ``regen.py``.

The ``dd`` scenarios drive a 4 KiB ``dd`` read through the paper's
validation topology narrowed to Gen 2 x1 links; ``dd_gen2x1_err`` also
injects ``error_rate=0.2`` to pin the NAK/replay machinery.  The
``traffic`` scenario (``two_flow_fanout``) runs two concurrent dd
readers behind one shared uplink through the multi-flow traffic
engine, pinning the deterministic interleaving of concurrent
initiators.  Traces restrict to the ``link``/``engine`` categories —
the TLP lifecycle — so the files stay reviewable (a few thousand
events each).
"""

import os

from repro.obs.trace import MemorySink
from repro.system.topology import build_validation_system
from repro.workloads import scenarios as scenario_lib
from repro.workloads.dd import DdWorkload

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))

#: name -> scenario kwargs (plus an optional ``kind`` selecting the
#: runner: ``"dd"`` is the single-flow validation run, ``"traffic"``
#: the multi-flow engine).  The meta recorded in the header is exactly
#: these kwargs, so a golden file says what made it.
SCENARIOS = {
    "dd_gen2x1": {"error_rate": 0.0},
    "dd_gen2x1_err": {"error_rate": 0.2},
    "two_flow_fanout": {"kind": "traffic", "error_rate": 0.0},
}

BLOCK_BYTES = 4096
TRACE_CATEGORIES = ("link", "engine")


def golden_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.jsonl")


def _run_dd(name: str, error_rate: float, **overrides) -> str:
    system = build_validation_system(
        root_link_width=1, device_link_width=1, error_rate=error_rate,
        **overrides,
    )
    sink = MemorySink()
    system.sim.tracer.categories = frozenset(TRACE_CATEGORIES)
    system.sim.tracer.attach(sink)
    dd = DdWorkload(system.kernel, system.disk_driver, BLOCK_BYTES,
                    startup_overhead=0)
    process = system.kernel.spawn("dd", dd.run())
    system.run(max_events=10_000_000)
    assert process.done, f"golden scenario {name!r} did not finish"
    meta = {"scenario": name, "block_bytes": BLOCK_BYTES,
            "error_rate": error_rate,
            "categories": sorted(TRACE_CATEGORIES)}
    return sink.to_jsonl(meta=meta)


def _run_traffic(name: str, error_rate: float, **overrides) -> str:
    scenario = scenario_lib.fanout_contention(
        fanout=2, requests=1, block_bytes=BLOCK_BYTES,
        error_rate=error_rate, **overrides,
    )
    sink = MemorySink()
    system, engine = scenario_lib.run_scenario(
        scenario, sink=sink, categories=TRACE_CATEGORIES)
    assert engine.completed, f"golden scenario {name!r} did not finish"
    meta = {"scenario": name, "block_bytes": BLOCK_BYTES,
            "error_rate": error_rate, "flows": len(scenario.flows),
            "categories": sorted(TRACE_CATEGORIES)}
    return sink.to_jsonl(meta=meta)


def run_scenario(name: str, **overrides) -> str:
    """Run one golden scenario from a fresh Simulator; return the trace
    as the exact JSONL text a golden file holds."""
    kwargs = dict(SCENARIOS[name])
    kwargs.update(overrides)
    kind = kwargs.pop("kind", "dd")
    error_rate = kwargs.pop("error_rate")
    runner = _run_traffic if kind == "traffic" else _run_dd
    return runner(name, error_rate, **kwargs)
