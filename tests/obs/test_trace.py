"""Unit tests for the tracer and its sinks."""

import io
import json

import pytest

from repro.obs.trace import (
    TRACE_SCHEMA,
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    Tracer,
    encode_event,
    encode_header,
    load_trace,
)


def test_tracer_disabled_until_a_sink_attaches():
    tracer = Tracer()
    assert not tracer.enabled
    sink = tracer.attach(MemorySink())
    assert tracer.enabled
    tracer.detach(sink)
    assert not tracer.enabled


def test_emit_fans_out_to_every_sink():
    tracer = Tracer()
    a, b = MemorySink(), MemorySink()
    tracer.attach(a)
    tracer.attach(b)
    tracer.emit(100, "link", "sim.link.up_if", "tlp_tx", tlp=0, seq=0)
    assert a.events == b.events
    assert a.events == [
        {"t": 100, "cat": "link", "comp": "sim.link.up_if", "ev": "tlp_tx",
         "tlp": 0, "seq": 0}
    ]


def test_category_filter_drops_other_categories():
    tracer = Tracer(categories=("link",))
    sink = tracer.attach(MemorySink())
    tracer.emit(0, "eventq", "sim.eventq", "dispatch", name="x", pri=0)
    tracer.emit(1, "link", "sim.link.up_if", "dllp_rx", kind="ack", seq=0)
    assert [ev["cat"] for ev in sink.events] == ["link"]


def test_tlp_ids_are_dense_and_tracer_local():
    tracer_a, tracer_b = Tracer(), Tracer()
    # Wildly different global req_ids map to the same dense sequence.
    assert [tracer_a.tlp_id(r) for r in (900, 17, 900, 42)] == [0, 1, 0, 2]
    assert [tracer_b.tlp_id(r) for r in (1234, 5678)] == [0, 1]


def test_encoding_is_canonical():
    ev = {"t": 5, "cat": "link", "comp": "c", "ev": "tlp_tx", "seq": 1}
    # Sorted keys, no whitespace: byte-stable regardless of insert order.
    assert encode_event(ev) == (
        '{"cat":"link","comp":"c","ev":"tlp_tx","seq":1,"t":5}'
    )
    assert json.loads(encode_header({"k": "v"})) == {
        "schema": TRACE_SCHEMA, "meta": {"k": "v"},
    }


def test_memory_sink_to_jsonl_matches_jsonl_sink():
    events = [
        {"t": 0, "cat": "link", "comp": "c", "ev": "tlp_tx", "seq": 0},
        {"t": 7, "cat": "link", "comp": "c", "ev": "tlp_deliver", "seq": 0},
    ]
    memory = MemorySink()
    buffer = io.StringIO()
    stream = JsonlSink(buffer, meta={"run": 1})
    for ev in events:
        memory.record(ev)
        stream.record(ev)
    stream.close()
    assert memory.to_jsonl(meta={"run": 1}) == buffer.getvalue()


def test_jsonl_sink_owns_paths_but_not_file_objects(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    sink = JsonlSink(path)
    sink.record({"t": 0, "cat": "link", "comp": "c", "ev": "tlp_tx"})
    sink.close()
    sink.close()  # idempotent
    header, events = load_trace(path)
    assert header["schema"] == TRACE_SCHEMA
    assert len(events) == 1 and events[0]["ev"] == "tlp_tx"


def test_load_trace_rejects_missing_or_foreign_schema():
    with pytest.raises(ValueError):
        load_trace(['{"not_schema": 1}'])
    with pytest.raises(ValueError):
        load_trace(['{"schema": "somebody-else/9"}'])
    with pytest.raises(ValueError):
        load_trace([])


def test_chrome_sink_emits_instants_and_counters():
    sink = ChromeTraceSink()
    sink.record({"t": 2_000_000, "cat": "engine", "comp": "sim.rc.up",
                 "ev": "ingress", "tlp": 0, "pool": 3})
    sink.record({"t": 3_000_000, "cat": "link", "comp": "sim.link.up_if",
                 "ev": "tlp_tx", "tlp": 0, "seq": 0})
    doc = sink.document()
    phases = [ev["ph"] for ev in doc["traceEvents"]]
    # Two thread_name metadata records, one counter, two instants.
    assert phases.count("M") == 2
    assert phases.count("C") == 1
    assert phases.count("i") == 2
    counter = next(ev for ev in doc["traceEvents"] if ev["ph"] == "C")
    assert counter["name"] == "sim.rc.up.pool"
    assert counter["args"] == {"pool": 3}
    instant = next(ev for ev in doc["traceEvents"] if ev["ph"] == "i")
    assert instant["ts"] == 2.0  # 2_000_000 ps -> 2 us
    # Distinct components land on distinct "threads".
    tids = {ev["tid"] for ev in doc["traceEvents"] if ev["ph"] == "i"}
    assert len(tids) == 2


def test_chrome_sink_write_is_valid_json(tmp_path):
    sink = ChromeTraceSink()
    sink.record({"t": 0, "cat": "link", "comp": "c", "ev": "tlp_tx"})
    path = str(tmp_path / "chrome.json")
    sink.write(path)
    with open(path) as fh:
        doc = json.load(fh)
    assert doc["otherData"]["schema"] == TRACE_SCHEMA


def test_close_closes_sinks_and_disables():
    closed = []

    class ClosingSink(MemorySink):
        def close(self):
            closed.append(self)

    tracer = Tracer()
    tracer.attach(ClosingSink())
    tracer.attach(ClosingSink())
    tracer.close()
    assert len(closed) == 2
    assert not tracer.enabled and not tracer.sinks
