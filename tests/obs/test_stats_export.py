"""Unit tests for the typed statistics export."""

import json

from repro.mem.addr import AddrRange
from repro.obs.stats_export import STATS_SCHEMA, export_stats, write_stats_json
from repro.pcie.link import PcieLink
from repro.sim.simobject import SimObject, Simulator

from tests.mem.helpers import FakeMaster, FakeSlave


def build_traffic_sim():
    sim = Simulator()
    link = PcieLink(sim, "link")
    device = FakeMaster(sim, "device")
    memory = FakeSlave(sim, "memory")
    device.port.bind(link.downstream_if.slave_port)
    link.upstream_if.master_port.bind(memory.port)
    for i in range(4):
        device.write(0x1000 + i * 64, 64)
    sim.run(max_events=1_000_000)
    return sim, link


def test_export_covers_every_registered_stat():
    sim, __ = build_traffic_sim()
    doc = export_stats(sim)
    flat = sim.stats.dump()
    assert doc["schema"] == STATS_SCHEMA
    assert set(doc["stats"]) == set(flat)
    for name, record in doc["stats"].items():
        assert "type" in record and "desc" in record, name


def test_typed_records_preserve_kind_and_value():
    sim, link = build_traffic_sim()
    doc = export_stats(sim)
    sent = doc["stats"]["link.down_if.tlps_sent"]
    assert sent["type"] == "scalar"
    assert sent["value"] == link.downstream_if.tlps_sent.value() == 4
    frac = doc["stats"]["link.down_if.replay_fraction"]
    assert frac["type"] == "formula"
    assert frac["value"] == 0.0


def test_export_records_component_configs():
    sim, link = build_traffic_sim()
    doc = export_stats(sim)
    config = doc["components"]["link"]
    assert config["kind"] == "pcie_link"
    assert config["width"] == link.width
    assert config["replay_timeout"] == link.replay_timeout


def test_export_carries_run_state_and_meta():
    sim, __ = build_traffic_sim()
    doc = export_stats(sim, meta={"workload": "unit"})
    assert doc["curtick"] == sim.curtick > 0
    assert doc["events_processed"] == sim.eventq.events_processed > 0
    assert doc["meta"] == {"workload": "unit"}


def test_write_stats_json_round_trips(tmp_path):
    sim, __ = build_traffic_sim()
    path = write_stats_json(sim, str(tmp_path / "stats.json"))
    with open(path) as fh:
        doc = json.load(fh)
    assert doc == json.loads(json.dumps(export_stats(sim)))


def test_distribution_and_average_records():
    sim = Simulator()
    obj = SimObject(sim, "obj")
    dist = obj.stats.distribution("lat", "latency")
    for v in (1, 2, 3):
        dist.sample(v)
    avg = obj.stats.average("occ", "occupancy")
    avg.sample(10)
    avg.sample(20)
    doc = export_stats(sim)
    rec = doc["stats"]["obj.lat"]
    assert rec["type"] == "distribution"
    assert rec["count"] == 3 and rec["min"] == 1 and rec["max"] == 3
    assert rec["mean"] == 2.0
    rec = doc["stats"]["obj.occ"]
    assert rec["type"] == "average"
    assert rec["value"] == 15.0 and rec["count"] == 2
