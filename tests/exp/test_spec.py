"""Sweep/SweepPoint declaration rules."""

import pytest

from repro.exp import Sweep, SweepPoint, resolve_runner, runner_path
from tests.exp import runners


def test_runner_path_roundtrip():
    path = runner_path(runners.quadratic)
    assert path == "tests.exp.runners:quadratic"
    assert resolve_runner(path) is runners.quadratic


def test_runner_path_rejects_lambdas_and_locals():
    with pytest.raises(ValueError):
        runner_path(lambda x: x)

    def local_fn():
        pass

    with pytest.raises(ValueError):
        runner_path(local_fn)


def test_resolve_runner_rejects_malformed_and_missing():
    with pytest.raises(ValueError):
        resolve_runner("no-colon-here")
    with pytest.raises(ValueError):
        resolve_runner("tests.exp.runners:does_not_exist")


def test_point_accepts_callable_or_path():
    by_callable = SweepPoint("a", runners.quadratic, {"x": 2})
    by_path = SweepPoint("a", "tests.exp.runners:quadratic", {"x": 2})
    assert by_callable.runner == by_path.runner


def test_point_params_must_be_json_safe():
    import enum

    class Colour(enum.Enum):
        RED = 1

    with pytest.raises(ValueError):
        SweepPoint("a", runners.quadratic, {"colour": Colour.RED})
    with pytest.raises(ValueError):
        SweepPoint("a", runners.quadratic, {"x": float("nan")})
    with pytest.raises(ValueError):
        SweepPoint("a", runners.quadratic, {"nested": {1: "non-str key"}})


def test_sweep_preserves_order_and_rejects_duplicates():
    sweep = Sweep("s")
    sweep.add("b", runners.quadratic, x=1)
    sweep.add("a", runners.quadratic, x=2)
    assert [p.key for p in sweep] == ["b", "a"]
    assert len(sweep) == 2
    with pytest.raises(ValueError):
        sweep.add("a", runners.quadratic, x=3)
