"""Cheap, deterministic sweep-point runners for the exp tests.

Module-level so :func:`repro.exp.spec.resolve_runner` (and spawn
workers, should a test want them) can import them by dotted path.
"""

CALLS = []


def quadratic(x, scale=1):
    """A trivially checkable runner: records its call, returns x²·scale."""
    CALLS.append((x, scale))
    return {"x": x, "value": x * x * scale}


def failing(message="boom"):
    """A runner that always raises — exercises error propagation."""
    raise RuntimeError(message)


PREFIX_CALLS = []


def fake_prefix(tag="warm"):
    """A prefix runner returning a checkpoint-shaped document."""
    PREFIX_CALLS.append(tag)
    return {"format": "repro-checkpoint", "version": 1, "tag": tag}


def resumed(x, resume_from=None):
    """A point runner that reports whether (and what) it resumed from."""
    CALLS.append((x, resume_from))
    return {"x": x,
            "resumed_tag": None if resume_from is None
            else resume_from["tag"]}
