"""Cheap, deterministic sweep-point runners for the exp tests.

Module-level so :func:`repro.exp.spec.resolve_runner` (and spawn
workers, should a test want them) can import them by dotted path.
"""

CALLS = []


def quadratic(x, scale=1):
    """A trivially checkable runner: records its call, returns x²·scale."""
    CALLS.append((x, scale))
    return {"x": x, "value": x * x * scale}


def failing(message="boom"):
    """A runner that always raises — exercises error propagation."""
    raise RuntimeError(message)
