"""Sweep-engine behaviour: ordering, caching, fan-out, bench records."""

import json

import pytest

from repro.exp import (
    Sweep,
    SweepEngine,
    canonical_json,
    load_records,
)
from tests.exp import runners


def cheap_sweep(n=4):
    sweep = Sweep("cheap")
    for x in range(n):
        sweep.add(f"p{x}", runners.quadratic, x=x)
    return sweep


def test_results_follow_declaration_order(tmp_path):
    sweep = Sweep("order")
    for x in (3, 1, 2):
        sweep.add(f"p{x}", runners.quadratic, x=x)
    result = SweepEngine().run(sweep, workers=1)
    assert list(result.results) == ["p3", "p1", "p2"]
    assert result.results["p3"]["value"] == 9


def test_uncached_engine_always_simulates():
    runners.CALLS.clear()
    engine = SweepEngine()  # no cache_dir
    engine.run(cheap_sweep(2), workers=1)
    engine.run(cheap_sweep(2), workers=1)
    assert len(runners.CALLS) == 4


def test_second_run_served_from_cache(tmp_path):
    runners.CALLS.clear()
    engine = SweepEngine(cache_dir=str(tmp_path / "cache"))
    first = engine.run(cheap_sweep(3), workers=1)
    assert first.cache_hits == 0
    second = engine.run(cheap_sweep(3), workers=1)
    assert second.cache_hits == 3
    assert "3 cached" in second.summary()
    assert len(runners.CALLS) == 3, "cached points must not re-simulate"
    assert canonical_json(first.results) == canonical_json(second.results)


def test_config_change_misses_cache(tmp_path):
    engine = SweepEngine(cache_dir=str(tmp_path / "cache"))
    engine.run(cheap_sweep(2), workers=1)
    changed = Sweep("cheap")
    changed.add("p0", runners.quadratic, x=0, scale=7)
    changed.add("p1", runners.quadratic, x=1)
    result = engine.run(changed, workers=1)
    assert result.cached == {"p0": False, "p1": True}


def test_schema_bump_invalidates_engine_cache(tmp_path):
    cache_dir = str(tmp_path / "cache")
    SweepEngine(cache_dir=cache_dir, schema_version=1).run(
        cheap_sweep(2), workers=1)
    result = SweepEngine(cache_dir=cache_dir, schema_version=2).run(
        cheap_sweep(2), workers=1)
    assert result.cache_hits == 0


def test_corrupt_cache_entry_falls_back_to_rerun(tmp_path):
    cache_dir = tmp_path / "cache"
    engine = SweepEngine(cache_dir=str(cache_dir))
    engine.run(cheap_sweep(2), workers=1)
    for entry in cache_dir.glob("*.json"):
        entry.write_text("not json at all {{{")
    runners.CALLS.clear()
    result = engine.run(cheap_sweep(2), workers=1)
    assert result.cache_hits == 0
    assert len(runners.CALLS) == 2
    # And the rewritten entries serve the third run.
    assert engine.run(cheap_sweep(2), workers=1).cache_hits == 2


def test_runner_exception_propagates():
    sweep = Sweep("fails")
    sweep.add("bad", runners.failing, message="expected failure")
    with pytest.raises(RuntimeError, match="expected failure"):
        SweepEngine().run(sweep, workers=1)


def test_bench_record_appended(tmp_path):
    bench_path = str(tmp_path / "BENCH_sweeps.json")
    engine = SweepEngine(cache_dir=str(tmp_path / "cache"),
                         bench_path=bench_path)
    engine.run(cheap_sweep(2), workers=1)
    engine.run(cheap_sweep(2), workers=1)
    records = load_records(bench_path)
    assert len(records) == 2
    fresh, cached = records
    assert fresh["sweep"] == "cheap"
    assert fresh["points"] == 2 and fresh["simulated"] == 2
    assert set(fresh["per_point_s"]) == {"p0", "p1"}
    assert fresh["total_wall_s"] >= 0
    assert "timestamp" in fresh
    assert cached["cache_hits"] == 2 and cached["simulated"] == 0


def test_invalid_worker_counts_rejected():
    with pytest.raises(ValueError):
        SweepEngine().run(cheap_sweep(1), workers=0)


def test_default_workers_env(monkeypatch):
    from repro.exp import default_workers

    monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
    assert default_workers() == 1
    monkeypatch.setenv("REPRO_SWEEP_WORKERS", "6")
    assert default_workers() == 6
    monkeypatch.setenv("REPRO_SWEEP_WORKERS", "zero")
    with pytest.raises(ValueError):
        default_workers()


# ---------------------------------------------------------------------------
# The acceptance-criterion test: a small Fig. 9(b)-style link-width sweep
# must produce byte-identical JSON from serial and 4-worker parallel runs,
# and a second invocation must be served from cache.
# ---------------------------------------------------------------------------

def small_fig9b_sweep():
    """Fig. 9(b)'s link-width sweep at a test-size block (64 KB)."""
    sweep = Sweep("fig9b_small")
    for width in (1, 2, 4, 8):
        sweep.add(f"x{width}", "repro.exp.points:dd_point",
                  block_bytes=64 * 1024,
                  root_link_width=width, device_link_width=width)
    return sweep


@pytest.mark.slow
def test_serial_and_parallel_fig9b_byte_identical(tmp_path):
    serial = SweepEngine(cache_dir=str(tmp_path / "serial-cache")).run(
        small_fig9b_sweep(), workers=1)
    parallel_engine = SweepEngine(cache_dir=str(tmp_path / "par-cache"))
    parallel = parallel_engine.run(small_fig9b_sweep(), workers=4)

    serial_bytes = json.dumps(serial.results, indent=2, sort_keys=True)
    parallel_bytes = json.dumps(parallel.results, indent=2, sort_keys=True)
    assert serial_bytes == parallel_bytes
    assert serial.cache_hits == 0 and parallel.cache_hits == 0

    # Second invocation: full cache hit, same bytes, and it says so.
    again = parallel_engine.run(small_fig9b_sweep(), workers=4)
    assert again.cache_hits == 4
    assert "4 cached, 0 simulated" in again.summary()
    assert json.dumps(again.results, indent=2, sort_keys=True) == serial_bytes

    # The physics survived the plumbing: x2 clearly out-runs x1.
    widths = serial.results
    assert widths["x2"]["throughput_gbps"] > 1.3 * widths["x1"]["throughput_gbps"]


# ---------------------------------------------------------------------------
# Shared-prefix checkpointing: the engine materialises each distinct
# prefix once, feeds the snapshot to declaring points as resume_from,
# and folds the checkpoint digest into their cache keys.
# ---------------------------------------------------------------------------

def prefixed_sweep(tag="warm", n=3):
    sweep = Sweep("prefixed")
    prefix = {"runner": runners.fake_prefix, "params": {"tag": tag}}
    for x in range(n):
        sweep.add(f"p{x}", runners.resumed, prefix=prefix, x=x)
    return sweep


def test_shared_prefix_runs_once_and_feeds_every_point():
    runners.PREFIX_CALLS.clear()
    runners.CALLS.clear()
    result = SweepEngine().run(prefixed_sweep(n=3), workers=1)
    assert runners.PREFIX_CALLS == ["warm"], "one materialisation, not three"
    assert all(resume is not None for _, resume in runners.CALLS)
    assert [r["resumed_tag"] for r in result.results.values()] == ["warm"] * 3
    meta = list(result.record["prefixes"].values())
    assert meta == [{"runner": meta[0]["runner"], "cached": False,
                     "wall_s": meta[0]["wall_s"]}]


def test_prefix_checkpoint_is_cached_across_runs(tmp_path):
    runners.PREFIX_CALLS.clear()
    engine = SweepEngine(cache_dir=str(tmp_path / "cache"))
    first = engine.run(prefixed_sweep(), workers=1)
    second = engine.run(prefixed_sweep(), workers=1)
    assert runners.PREFIX_CALLS == ["warm"], "second run reuses the snapshot"
    assert second.cache_hits == len(second.results)
    assert list(second.record["prefixes"].values())[0]["cached"] is True
    assert canonical_json(first.results) == canonical_json(second.results)


def test_resume_digest_isolates_cache_entries(tmp_path):
    # Same point params, different prefix state: the digest in the cache
    # key must force a miss instead of serving the stale fork.
    engine = SweepEngine(cache_dir=str(tmp_path / "cache"))
    first = engine.run(prefixed_sweep(tag="warm"), workers=1)
    second = engine.run(prefixed_sweep(tag="other"), workers=1)
    assert second.cache_hits == 0
    assert [r["resumed_tag"] for r in first.results.values()] == ["warm"] * 3
    assert [r["resumed_tag"] for r in second.results.values()] == ["other"] * 3


def test_unprefixed_points_never_see_resume_from():
    runners.CALLS.clear()
    sweep = Sweep("plain")
    sweep.add("p0", runners.resumed, x=5)
    result = SweepEngine().run(sweep, workers=1)
    assert runners.CALLS == [(5, None)]
    assert result.results["p0"]["resumed_tag"] is None
    assert "prefixes" not in result.record


def test_backend_recorded_but_kept_out_of_cache_keys(tmp_path, monkeypatch):
    # Backends produce byte-identical results, so a sweep cached under
    # one engine must hit under another — the backend name is recorded
    # in the bench record for wall-clock forensics only.
    engine = SweepEngine(cache_dir=str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_BACKEND", "hybrid")
    first = engine.run(cheap_sweep(3), workers=1)
    assert first.record["backend"] == "hybrid"
    assert first.cache_hits == 0
    monkeypatch.setenv("REPRO_BACKEND", "turbo")
    second = engine.run(cheap_sweep(3), workers=1)
    assert second.record["backend"] == "turbo"
    assert second.cache_hits == 3, "backend name must not enter cache keys"
    assert canonical_json(first.results) == canonical_json(second.results)
