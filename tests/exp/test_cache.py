"""Result-cache behaviour: keys, hits, invalidation, and recovery."""

import json
import os

from repro.exp import RESULT_SCHEMA_VERSION, ResultCache, cache_key


RUNNER = "tests.exp.runners:quadratic"


def test_cache_key_is_stable_and_param_order_independent():
    d1, k1 = cache_key(RUNNER, {"x": 3, "scale": 2})
    d2, k2 = cache_key(RUNNER, {"scale": 2, "x": 3})
    assert d1 == d2
    assert k1 == k2
    assert len(d1) == 64  # sha256 hex


def test_cache_key_changes_with_config():
    base, __ = cache_key(RUNNER, {"x": 3})
    other_param, __ = cache_key(RUNNER, {"x": 4})
    other_runner, __ = cache_key("tests.exp.runners:failing", {"x": 3})
    assert base != other_param
    assert base != other_runner


def test_cache_key_changes_with_schema_version():
    v1, doc1 = cache_key(RUNNER, {"x": 3}, schema_version=1)
    v2, doc2 = cache_key(RUNNER, {"x": 3}, schema_version=2)
    assert v1 != v2
    assert doc1["schema"] == 1 and doc2["schema"] == 2


def test_hit_after_put(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    digest, key_doc = cache_key(RUNNER, {"x": 3})
    assert cache.get(digest, key_doc) is None
    assert cache.misses == 1
    cache.put(digest, key_doc, {"value": 9}, elapsed_s=0.5)
    entry = cache.get(digest, key_doc)
    assert entry["result"] == {"value": 9}
    assert entry["elapsed_s"] == 0.5
    assert cache.hits == 1


def test_miss_on_config_change(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    digest, key_doc = cache_key(RUNNER, {"x": 3})
    cache.put(digest, key_doc, {"value": 9}, elapsed_s=0.1)
    other_digest, other_doc = cache_key(RUNNER, {"x": 4})
    assert cache.get(other_digest, other_doc) is None


def test_schema_bump_invalidates(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    digest, key_doc = cache_key(RUNNER, {"x": 3}, schema_version=RESULT_SCHEMA_VERSION)
    cache.put(digest, key_doc, {"value": 9}, elapsed_s=0.1)
    bumped_digest, bumped_doc = cache_key(
        RUNNER, {"x": 3}, schema_version=RESULT_SCHEMA_VERSION + 1)
    assert cache.get(bumped_digest, bumped_doc) is None


def test_corrupted_entry_is_a_miss_and_is_deleted(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    digest, key_doc = cache_key(RUNNER, {"x": 3})
    path = cache.put(digest, key_doc, {"value": 9}, elapsed_s=0.1)
    with open(path, "w") as fh:
        fh.write('{"key": truncated garbage')
    assert cache.get(digest, key_doc) is None
    assert not os.path.exists(path), "corrupt entry should be dropped"
    # Falls back to re-run + rewrite cleanly.
    cache.put(digest, key_doc, {"value": 9}, elapsed_s=0.2)
    assert cache.get(digest, key_doc)["result"] == {"value": 9}


def test_key_mismatch_is_a_miss(tmp_path):
    """An entry whose embedded key differs from the query (hash collision
    or hand-edited file) must not be served."""
    cache = ResultCache(str(tmp_path / "cache"))
    digest, key_doc = cache_key(RUNNER, {"x": 3})
    path = cache.put(digest, key_doc, {"value": 9}, elapsed_s=0.1)
    entry = json.load(open(path))
    entry["key"]["params"]["x"] = 999
    json.dump(entry, open(path, "w"))
    assert cache.get(digest, key_doc) is None


def test_non_dict_entry_is_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    digest, key_doc = cache_key(RUNNER, {"x": 3})
    os.makedirs(cache.root)
    with open(os.path.join(cache.root, f"{digest}.json"), "w") as fh:
        json.dump([1, 2, 3], fh)
    assert cache.get(digest, key_doc) is None
