"""Fork-vs-cold byte identity: the tentpole acceptance tests.

A point forked from a prefix checkpoint must be **byte-identical** —
statistics, traces, metrics — to a cold run from tick 0 that simulates
the same warm-up inline, with the invariant checker armed throughout.
Exercised on the paper's validation fabric, on a deep-hierarchy
topology, and under fault injection (where the restored run must also
finish with zero protocol violations).
"""

import pytest

from repro.exp.points import dd_point, dd_prefix
from repro.obs import MemorySink
from repro.sim.checkpoint import capture, checkpoint_json, restore
from repro.system.spec import deep_hierarchy_spec
from repro.system.topology import build_system, build_validation_system
from repro.workloads.dd import DdWorkload

WARM = dict(warm_blocks=1, warm_block_bytes=16 * 1024)
MEASURED_BYTES = 256 * 1024


def _run_measured(system, driver, sink):
    """Attach ``sink``, run the measured dd block, return its workload."""
    system.sim.tracer.attach(sink)
    dd = DdWorkload(system.kernel, driver, MEASURED_BYTES)
    process = system.kernel.spawn("dd", dd.run())
    system.run(max_events=50_000_000)
    assert process.done
    return dd


def _warm(system, driver):
    warm = DdWorkload(system.kernel, driver, WARM["warm_block_bytes"],
                      count=WARM["warm_blocks"])
    process = system.kernel.spawn("dd", warm.run())
    system.run(max_events=50_000_000)
    assert process.done


def _identity_pair(build):
    """Cold-with-warm vs rebuild+restore on ``build()``-made systems.

    ``build`` returns ``(system, driver)``; both paths attach a memory
    trace sink only for the measured phase, so the two sinks must
    produce identical JSONL bytes and the two simulators identical
    statistics documents.
    """
    cold_system, cold_driver = build()
    _warm(cold_system, cold_driver)
    cold_sink = MemorySink()
    cold_dd = _run_measured(cold_system, cold_driver, cold_sink)

    donor_system, donor_driver = build()
    _warm(donor_system, donor_driver)
    snapshot = donor_system.sim.checkpoint()

    forked_system, forked_driver = build()
    restore(forked_system.sim, snapshot)
    forked_sink = MemorySink()
    forked_dd = _run_measured(forked_system, forked_driver, forked_sink)

    assert forked_sink.to_jsonl() == cold_sink.to_jsonl()
    assert forked_system.sim.dump_stats() == cold_system.sim.dump_stats()
    assert forked_dd.result.throughput_gbps == cold_dd.result.throughput_gbps
    return cold_system, forked_system


@pytest.mark.slow
def test_validation_fabric_fork_is_byte_identical():
    def build():
        system = build_validation_system(check=True)
        return system, system.disk_driver

    cold, forked = _identity_pair(build)
    assert cold.sim.checker.violations == []
    assert forked.sim.checker.violations == []


@pytest.mark.slow
def test_deep_hierarchy_fork_is_byte_identical():
    spec = deep_hierarchy_spec(2, 2).to_dict()

    def build():
        system = build_system(spec, check=True)
        return system, system.drivers["sw2_disk1"]

    cold, forked = _identity_pair(build)
    assert cold.sim.checker.violations == []
    assert forked.sim.checker.violations == []


@pytest.mark.slow
def test_fault_injected_fork_completes_with_zero_violations():
    # The stress-campaign shape: error injection on every link, checker
    # armed in record mode via check=True at build time.  A restored run
    # must recover from every injected fault exactly like the cold one.
    def build():
        system = build_validation_system(
            check=True, error_rate=0.05, dllp_error_rate=0.05,
            replay_buffer_size=2, input_queue_size=2)
        return system, system.disk_driver

    cold, forked = _identity_pair(build)
    assert cold.sim.checker.violations == []
    assert forked.sim.checker.violations == []


@pytest.mark.slow
def test_dd_point_resume_matches_inline_warm():
    common = dict(block_bytes=64 * 1024, startup_overhead=100, check=True)
    cold = dd_point(**common, **WARM)
    snapshot = dd_prefix(check=True, **WARM)
    forked = dd_point(**common, resume_from=snapshot)
    assert forked == cold


def test_prefix_checkpoint_is_quiescent_and_deterministic():
    first = dd_prefix(check=True, **WARM)
    second = dd_prefix(check=True, **WARM)
    assert first["events"] == [], "a drained run checkpoints empty"
    assert checkpoint_json(first) == checkpoint_json(second)


def test_capture_refuses_mid_flight_packets():
    # Stop a dd transfer mid-flight: some component holds live packets,
    # whose state_dict guard must refuse rather than silently drop them.
    system = build_validation_system()
    dd = DdWorkload(system.kernel, system.disk_driver, 64 * 1024)
    system.kernel.spawn("dd", dd.run())
    system.run(max_events=2_000)
    assert not system.sim.eventq.empty(), "transfer still in flight"
    from repro.sim.checkpoint import CheckpointError

    with pytest.raises(CheckpointError):
        capture(system.sim)
