"""The scenario_point sweep runner: shape, determinism, and caching.

A scenario point must behave exactly like every other point: a flat
JSON-safe metrics dict, byte-identical results whether the sweep runs
serially or fanned out across processes, and a cache hit on re-run.
"""

import json

from repro.exp import Sweep, SweepEngine
from repro.exp.points import scenario_point
from repro.workloads.scenarios import fanout_contention

SCENARIO = "repro.exp.points:scenario_point"


def small_doc(**overrides):
    kwargs = dict(fanout=2, requests=2, block_bytes=8192)
    kwargs.update(overrides)
    return fanout_contention(**kwargs).to_dict()


def small_sweep():
    sweep = Sweep("traffic_small")
    sweep.add("x1", SCENARIO, scenario=small_doc(uplink_width=1))
    sweep.add("x2", SCENARIO, scenario=small_doc(uplink_width=2))
    return sweep


def test_scenario_point_metric_shape_and_json_safety():
    result = scenario_point(small_doc())
    assert result["completed"] == 1.0
    assert result["violations"] == 0.0
    assert result["violated_rules"] == []
    assert result["fairness_index"] >= 0.98
    assert result["total_gbps"] > 0
    for flow in ("reader0", "reader1"):
        assert result[f"{flow}_gbps"] > 0
        assert result[f"{flow}_bytes"] == 2 * 8192
        assert result[f"{flow}_p99_ns"] > 0
        assert 0 < result[f"{flow}_share"] < 1
    json.dumps(result)  # must round-trip for the cache


def test_scenario_point_check_arms_recording_checker():
    result = scenario_point(small_doc(error_rate=0.05), check=True)
    assert result["completed"] == 1.0
    assert result["violations"] == 0.0


def test_serial_and_parallel_sweeps_are_byte_identical():
    serial = SweepEngine().run(small_sweep(), workers=1)
    parallel = SweepEngine().run(small_sweep(), workers=2)
    assert json.dumps(serial.results, sort_keys=True) == \
        json.dumps(parallel.results, sort_keys=True)


def test_second_run_is_served_from_cache(tmp_path):
    engine = SweepEngine(cache_dir=str(tmp_path / "cache"))
    first = engine.run(small_sweep(), workers=1)
    assert first.cache_hits == 0
    second = engine.run(small_sweep(), workers=1)
    assert second.cache_hits == 2
    assert json.dumps(first.results, sort_keys=True) == \
        json.dumps(second.results, sort_keys=True)


def test_scenario_parameter_changes_miss_the_cache(tmp_path):
    engine = SweepEngine(cache_dir=str(tmp_path / "cache"))
    sweep = Sweep("traffic_small")
    sweep.add("x1", SCENARIO, scenario=small_doc(uplink_width=1))
    engine.run(sweep, workers=1)
    changed = Sweep("traffic_small")
    changed.add("x1", SCENARIO, scenario=small_doc(uplink_width=2))
    result = engine.run(changed, workers=1)
    assert result.cache_hits == 0
