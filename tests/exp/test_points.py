"""Library point runners: JSON-safe param translation and metric shape."""

import json

import pytest

from repro.exp.points import classic_pci_point, dd_point, mmio_point

SMALL = 16 * 1024  # one-IO-sized block keeps these runs fast


def test_dd_point_metric_shape_and_json_safety():
    result = dd_point(SMALL)
    assert set(result) == {"throughput_gbps", "transfer_gbps",
                           "replay_fraction", "timeouts", "tlps_sent",
                           "device_level_gbps"}
    json.dumps(result)  # must round-trip for the cache
    assert result["throughput_gbps"] > 0


def test_dd_point_translates_gen_and_latency_names():
    gen1 = dd_point(SMALL, gen="GEN1")
    gen3 = dd_point(SMALL, gen="GEN3")
    assert gen1["throughput_gbps"] < gen3["throughput_gbps"]
    slow = dd_point(SMALL, switch_latency_ns=500)
    fast = dd_point(SMALL, switch_latency_ns=0)
    assert fast["throughput_gbps"] > slow["throughput_gbps"]


def test_dd_point_rejects_unknown_generation():
    with pytest.raises(KeyError):
        dd_point(SMALL, gen="GEN99")


def test_mmio_point_latency_tracks_rc_latency():
    fast = mmio_point(50, iterations=5)
    slow = mmio_point(150, iterations=5)
    assert set(fast) == {"mmio_read_ns"}
    assert slow["mmio_read_ns"] > fast["mmio_read_ns"]


def test_classic_pci_point_reports_throughput():
    result = classic_pci_point(SMALL)
    assert set(result) == {"throughput_gbps"}
    assert result["throughput_gbps"] > 0
