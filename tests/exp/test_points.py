"""Library point runners: JSON-safe param translation and metric shape."""

import json

import pytest

from repro.exp.points import classic_pci_point, dd_point, mmio_point
from repro.system.spec import deep_hierarchy_spec, validation_spec

SMALL = 16 * 1024  # one-IO-sized block keeps these runs fast


def test_dd_point_metric_shape_and_json_safety():
    result = dd_point(SMALL)
    assert set(result) == {"throughput_gbps", "transfer_gbps",
                           "replay_fraction", "fc_stall_ticks", "timeouts",
                           "tlps_sent", "device_level_gbps"}
    json.dumps(result)  # must round-trip for the cache
    assert result["throughput_gbps"] > 0


def test_dd_point_translates_gen_and_latency_names():
    gen1 = dd_point(SMALL, gen="GEN1")
    gen3 = dd_point(SMALL, gen="GEN3")
    assert gen1["throughput_gbps"] < gen3["throughput_gbps"]
    slow = dd_point(SMALL, switch_latency_ns=500)
    fast = dd_point(SMALL, switch_latency_ns=0)
    assert fast["throughput_gbps"] > slow["throughput_gbps"]


def test_dd_point_rejects_unknown_generation():
    with pytest.raises(KeyError):
        dd_point(SMALL, gen="GEN99")


def test_dd_point_topology_axis_runs_serialized_specs():
    spec = deep_hierarchy_spec(2, 1)
    result = dd_point(SMALL, topology=spec.to_dict(), device="sw2_disk0")
    assert result["throughput_gbps"] > 0
    json.dumps(result)
    # A validation-equivalent spec reproduces the default point exactly.
    via_spec = dd_point(SMALL, topology=validation_spec().to_dict())
    assert via_spec == dd_point(SMALL)


def test_dd_point_topology_excludes_builder_knobs():
    doc = validation_spec().to_dict()
    with pytest.raises(ValueError, match="cannot be combined"):
        dd_point(SMALL, topology=doc, gen="GEN3")
    with pytest.raises(ValueError, match="inside the spec"):
        dd_point(SMALL, topology=doc, root_link_width=8)


def test_mmio_point_latency_tracks_rc_latency():
    fast = mmio_point(50, iterations=5)
    slow = mmio_point(150, iterations=5)
    assert set(fast) == {"mmio_read_ns"}
    assert slow["mmio_read_ns"] > fast["mmio_read_ns"]


def test_classic_pci_point_reports_throughput():
    result = classic_pci_point(SMALL)
    assert set(result) == {"throughput_gbps"}
    assert result["throughput_gbps"] > 0
