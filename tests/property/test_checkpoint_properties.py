"""Property tests: checkpoint/restore round trips (hypothesis).

The contract under test: cutting a run at an arbitrary tick, capturing,
rebuilding a twin and restoring must continue **byte-identically** to
never having checkpointed — same global dispatch order (anchored to
:class:`repro.sim.eventq.ReferenceEventQueue`, the executable dispatch
specification), same per-object state, same queue bookkeeping — for
arbitrary schedule/deschedule workloads across all three tiers of the
hybrid queue.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.checkpoint import capture, checkpoint_json, restore
from repro.sim.eventq import CallbackEvent, Event, ReferenceEventQueue
from repro.sim.simobject import SimObject, Simulator

#: Delays covering the active batch, the bucket ring, and the far heap
#: (same tiers the hybrid-queue reference tests exercise).
_SPAN = 64 << 20
_DELAYS = (0, 1, 37, 1 << 20, 17 << 20, _SPAN - 1, _SPAN, 5 * _SPAN + 3)

_N_OWNERS = 3


class _Recorder(SimObject):
    """Logs every firing, locally (checkpointed) and globally (shared)."""

    def __init__(self, sim, name, shared):
        super().__init__(sim, name)
        self.fired = []
        self.shared = shared

    def tick(self):
        self.fired.append(self.curtick)
        self.shared.append((self.name, self.curtick))

    def state_dict(self):
        return {"fired": list(self.fired)} if self.fired else {}

    def load_state_dict(self, state):
        self.fired = [int(t) for t in state["fired"]]


class _RefEvent(Event):
    """Reference-queue twin of a recorder firing."""

    __slots__ = ("log", "owner")

    def __init__(self, log, owner, priority, name):
        super().__init__(priority=priority, name=name)
        self.log = log
        self.owner = owner

    def process(self):
        self.log.append((self.owner, None))


def _build(ops):
    """One simulator with recorders, the ops scheduled, none run."""
    shared = []
    sim = Simulator("prop")
    owners = [_Recorder(sim, f"o{i}", shared) for i in range(_N_OWNERS)]
    events = []
    for i, (owner, when, priority) in enumerate(ops):
        event = CallbackEvent(owners[owner].tick, priority=priority,
                              name=f"op{i}")
        sim.schedule(event, when)
        events.append(event)
    return sim, owners, events, shared


@st.composite
def _workloads(draw):
    """(ops, deschedule mask, cut tick) triples."""
    ops = draw(st.lists(
        st.tuples(st.integers(0, _N_OWNERS - 1), st.sampled_from(_DELAYS),
                  st.sampled_from((-5, 0, 0, 3))),
        min_size=1, max_size=30))
    mask = draw(st.lists(st.booleans(), min_size=len(ops),
                         max_size=len(ops)))
    cut = draw(st.integers(min_value=0, max_value=6 * _SPAN))
    return ops, mask, cut


@settings(max_examples=60, deadline=None)
@given(_workloads())
def test_cut_capture_restore_continues_byte_identically(workload):
    ops, mask, cut = workload

    # A: the uncheckpointed baseline, run to completion in one go.
    sim_a, owners_a, events_a, shared_a = _build(ops)
    for event, dead in zip(events_a, mask):
        if dead:
            sim_a.eventq.deschedule(event)
    sim_a.run()

    # The reference heap anchors A's global dispatch order.
    ref_log = []
    ref = ReferenceEventQueue()
    ref_events = []
    for i, (owner, when, priority) in enumerate(ops):
        event = _RefEvent(ref_log, f"o{owner}", priority, f"op{i}")
        ref.schedule(event, when)
        ref_events.append(event)
    for event, dead in zip(ref_events, mask):
        if dead:
            ref.deschedule(event)
    ref.run()
    assert [(name, None) for name, _ in shared_a] == ref_log

    # B: same workload, cut mid-run and captured.
    sim_b, owners_b, events_b, shared_b = _build(ops)
    for event, dead in zip(events_b, mask):
        if dead:
            sim_b.eventq.deschedule(event)
    sim_b.run(until=cut)
    snapshot = capture(sim_b)
    captured_triples = sorted(
        (e["when"], e["priority"], e["seq"]) for e in snapshot["events"])

    # C: a fresh twin restored from the snapshot.
    sim_c, owners_c, _, shared_c = _build([])
    restore(sim_c, snapshot)
    assert sorted(tuple(e[:3]) for e in sim_c.eventq.live_entries()) \
        == captured_triples
    # Re-capturing the restored twin reproduces the snapshot exactly.
    assert checkpoint_json(capture(sim_c)) == checkpoint_json(snapshot)
    sim_c.run()

    # The spliced history equals the uncheckpointed baseline.
    assert shared_b + shared_c == shared_a
    for a, c in zip(owners_a, owners_c):
        assert c.fired == a.fired
    assert sim_c.curtick == sim_a.curtick
    assert sim_c.eventq.events_processed == sim_a.eventq.events_processed
    assert sim_c.eventq._next_seq == sim_a.eventq._next_seq
