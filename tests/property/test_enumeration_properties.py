"""Property-based tests of enumeration invariants on random topologies.

For arbitrary trees of bridges and endpoints the enumeration software
must always produce: depth-first bus numbering with correct
[secondary, subordinate] nesting, disjoint BAR assignments that sit
inside every ancestor bridge's programmed window, and decode/bus-master
enables on every endpoint.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.addr import disjoint
from repro.pci.enumeration import Enumerator
from repro.pci.header import Bar, PciBridgeFunction, PciEndpointFunction
from repro.pci.host import PciHost
from repro.sim.simobject import Simulator

# A topology is a recursively nested spec: an int is an endpoint with
# that many BARs (1..3); a list is a bridge containing children.
topology = st.recursive(
    st.integers(min_value=1, max_value=3),
    lambda children: st.lists(children, min_size=0, max_size=3),
    max_leaves=8,
)


def materialize(spec, bus, slot=0):
    """Build function models for a spec; returns the created node."""
    if isinstance(spec, int):
        bars = [Bar(4096 << i) for i in range(spec)]
        fn = PciEndpointFunction(0x8086, 0x1000 + spec, bars=bars)
        bus.add_function(slot, 0, fn)
        return fn
    bridge = PciBridgeFunction(0x8086, 0x9C90)
    child_bus = bus.add_bridge(slot, 0, bridge)
    for i, child in enumerate(spec):
        materialize(child, child_bus, slot=i)
    return bridge


@settings(max_examples=40, deadline=None)
@given(specs=st.lists(topology, min_size=1, max_size=3))
def test_enumeration_invariants(specs):
    host = PciHost(Simulator())
    for i, spec in enumerate(specs):
        materialize(spec, host.root_bus, slot=i)
    enumerator = Enumerator(host)
    roots = enumerator.enumerate()
    all_nodes = enumerator.all_devices()

    # 1. Everything materialized was discovered.
    assert len(all_nodes) == len(host.all_functions())

    # 2. Bus numbering: parents contain children, siblings disjoint.
    def check(node):
        if not node.is_bridge:
            return
        assert node.secondary_bus <= node.subordinate_bus
        child_buses = []
        for child in node.children:
            assert node.secondary_bus <= child.bus <= node.subordinate_bus
            if child.is_bridge:
                child_buses.append((child.secondary_bus, child.subordinate_bus))
            check(child)
        for (a_lo, a_hi), (b_lo, b_hi) in zip(child_buses, child_buses[1:]):
            assert a_hi < b_lo  # depth-first: sibling ranges ordered

    for root in roots:
        check(root)

    # 3. All assigned BARs globally disjoint.
    assigned = [bar.assigned for node in all_nodes for bar in node.bars]
    assert all(rng is not None for rng in assigned)
    assert disjoint(assigned)

    # 4. Every endpoint BAR lies inside every ancestor bridge window,
    #    and every endpoint is enabled.
    def check_windows(node, ancestors):
        model = host.function_at(*node.bdf)
        if node.is_bridge:
            for child in node.children:
                check_windows(child, ancestors + [model])
            return
        assert model.bus_master_enabled
        for bar in node.bars:
            for bridge in ancestors:
                windows = bridge.forwarding_ranges()
                assert any(w.contains_range(bar.assigned) for w in windows)

    for root in roots:
        check_windows(root, [])

    # 5. Interrupt lines unique across endpoints.
    lines = [n.interrupt_line for n in all_nodes if not n.is_bridge]
    assert len(lines) == len(set(lines))
