"""Property-based tests of the traffic engine's conservation laws.

Hypothesis draws small randomized scenario specs and checks the
invariants no flow shape may break: every issued request completes
exactly once, per-flow byte counts match the flow definition, and the
pure-data layer round-trips losslessly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import ticks
from repro.system.spec import DeviceSpec, LinkSpec, SwitchSpec, TopologySpec
from repro.system.topology import build_system
from repro.workloads.traffic import FlowSpec, TrafficEngine

SECTOR = 4096

flow_shapes = st.fixed_dictionaries({
    "kind": st.sampled_from(["dd_read", "dd_write"]),
    "requests": st.integers(min_value=1, max_value=3),
    "sectors": st.integers(min_value=1, max_value=2),
    "gap_us": st.integers(min_value=0, max_value=40),
    "jitter": st.sampled_from([0.0, 0.5]),
    "burst": st.integers(min_value=1, max_value=3),
    "seed": st.integers(min_value=0, max_value=2**32 - 1),
    "start_delay_us": st.integers(min_value=0, max_value=20),
})


def build_fabric(n_disks):
    # Disks run at their default DMA depth (64 outstanding).  This
    # fabric used to need dma_outstanding pinned to 8: with a single
    # shared buffer pool per port, several unthrottled non-posted DMA
    # read streams (dd_write device-side) filled every buffer with
    # requests and starved the completions they were waiting on —
    # found by this very property test.  Per-class flow-control
    # credits guarantee completions a dedicated path, so the pin is
    # gone; see ARCHITECTURE.md, "Flow control & ordering".
    disks = [
        DeviceSpec("disk", name=f"disk{i}",
                   link=LinkSpec(name=f"disk{i}", gen="GEN2", width=1))
        for i in range(n_disks)
    ]
    topology = TopologySpec(children=[
        SwitchSpec(name="switch",
                   link=LinkSpec(name="uplink", gen="GEN2", width=2),
                   children=disks),
    ]).finalize()
    return build_system(topology)


@settings(max_examples=10, deadline=None)
@given(shapes=st.lists(flow_shapes, min_size=1, max_size=3))
def test_random_scenarios_conserve_requests_and_bytes(shapes):
    system = build_fabric(len(shapes))
    flows = [
        FlowSpec(name=f"flow{i}", kind=shape["kind"], device=f"disk{i}",
                 requests=shape["requests"],
                 bytes_per_request=shape["sectors"] * SECTOR,
                 gap=ticks.from_us(shape["gap_us"]), jitter=shape["jitter"],
                 burst=shape["burst"], seed=shape["seed"],
                 start_delay=ticks.from_us(shape["start_delay_us"]))
        for i, shape in enumerate(shapes)
    ]
    engine = TrafficEngine(system, flows)
    engine.start()
    system.run(max_events=100_000_000)
    assert engine.completed
    results = engine.results()
    for i, shape in enumerate(shapes):
        record = results["flows"][f"flow{i}"]
        # Conservation: issued == completed == spec'd, exactly once.
        assert record["requests_issued"] == shape["requests"]
        assert record["requests_completed"] == shape["requests"]
        assert record["bytes"] == shape["requests"] * shape["sectors"] * SECTOR
        # The disk moved exactly the flow's sectors — no loss, no dup.
        disk = system.devices[f"disk{i}"]
        assert disk.sectors_transferred.value() == \
            shape["requests"] * shape["sectors"]
    # Latency samples exist for every completed request.
    dump = system.sim.dump_stats()
    for i, shape in enumerate(shapes):
        assert dump[f"traffic.flow{i}.request_ticks::count"] == \
            shape["requests"]


@settings(max_examples=50, deadline=None)
@given(shape=flow_shapes)
def test_flowspec_roundtrip_property(shape):
    spec = FlowSpec(name="f", kind=shape["kind"], device="disk0",
                    requests=shape["requests"],
                    bytes_per_request=shape["sectors"] * SECTOR,
                    gap=ticks.from_us(shape["gap_us"]),
                    jitter=shape["jitter"], burst=shape["burst"],
                    seed=shape["seed"],
                    start_delay=ticks.from_us(shape["start_delay_us"]))
    spec.validate()
    assert FlowSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()
