"""Property-based tests on core data structures (hypothesis)."""

import statistics

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.addr import AddrRange, disjoint, union_span
from repro.mem.packet import MemCmd, Packet
from repro.pci.config import ConfigSpace
from repro.pcie.timing import (
    PcieGen,
    LinkTiming,
    VALID_WIDTHS,
    ack_timer_ticks,
    replay_timeout_ticks,
)
from repro.sim import ticks
from repro.sim.eventq import CallbackEvent, EventQueue
from repro.sim.stats import Distribution

ranges = st.builds(
    AddrRange,
    st.integers(min_value=0, max_value=1 << 40),
    st.integers(min_value=1, max_value=1 << 30),
)


@given(st.integers(min_value=0, max_value=10**12))
def test_tick_conversion_round_trip(ns):
    assert ticks.to_ns(ticks.from_ns(ns)) == ns


@given(st.floats(min_value=0.001, max_value=1000))
def test_gbps_conversion_round_trip(rate):
    back = ticks.bytes_per_tick_to_gbps(ticks.gbps_to_bytes_per_tick(rate))
    assert abs(back - rate) / rate < 1e-9


@given(ranges, ranges)
def test_overlap_is_symmetric(a, b):
    assert a.overlaps(b) == b.overlaps(a)


@given(ranges, ranges)
def test_overlap_iff_shared_address(a, b):
    shared_start = max(a.start, b.start)
    shared_end = min(a.end, b.end)
    assert a.overlaps(b) == (shared_start < shared_end)


@given(st.lists(ranges, min_size=1, max_size=8))
def test_union_span_contains_every_range(rs):
    span = union_span(rs)
    assert all(span.contains_range(r) for r in rs)


@given(st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=10))
def test_bump_allocation_is_disjoint(sizes):
    cursor = 0
    out = []
    for size in sizes:
        out.append(AddrRange(cursor, size))
        cursor += size
    assert disjoint(out)


@given(
    st.integers(min_value=0, max_value=250),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
)
def test_config_write_mask_invariant(offset, size, init, mask, written):
    """Software writes never disturb read-only bits."""
    cfg = ConfigSpace(256)
    size = min(size, 256 - offset)
    field_mask = (1 << (8 * size)) - 1
    cfg.init_field(offset, size, init & field_mask, writable_mask=mask & field_mask)
    before = cfg.read(offset, size)
    cfg.write(offset, written & field_mask, size)
    after = cfg.read(offset, size)
    readonly = ~(mask & field_mask)
    assert before & readonly == after & readonly
    # Writable bits took the written value.
    assert after & mask & field_mask == written & mask & field_mask


@given(st.integers(min_value=4, max_value=27))
def test_bar_probe_recovers_any_power_of_two_size(log_size):
    from repro.pci.header import Bar, PciEndpointFunction, BAR0

    size = 1 << log_size
    fn = PciEndpointFunction(0x8086, 0x1234, bars=[Bar(size)])
    fn.config_write(BAR0, 0xFFFFFFFF, 4)
    probed = fn.config_read(BAR0, 4)
    decoded = ((~(probed & 0xFFFFFFF0)) & 0xFFFFFFFF) + 1
    assert decoded == size


@given(
    st.sampled_from(list(PcieGen)),
    st.sampled_from(VALID_WIDTHS),
    st.integers(min_value=1, max_value=4096),
)
def test_transmission_time_positive_and_width_monotone(gen, width, nbytes):
    timing = LinkTiming(gen, width)
    t = timing.transmission_ticks(nbytes)
    assert t >= 1
    if width > 1:
        narrower = LinkTiming(gen, 1).transmission_ticks(nbytes)
        assert t <= narrower


@given(st.sampled_from(list(PcieGen)), st.sampled_from(VALID_WIDTHS),
       st.integers(min_value=1, max_value=4096))
def test_ack_timer_always_one_third_of_replay(gen, width, payload):
    replay = replay_timeout_ticks(gen, width, payload)
    ack = ack_timer_ticks(gen, width, payload)
    assert ack == max(1, replay // 3)
    assert replay >= 1


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=10_000),
                          st.integers(min_value=-5, max_value=5)),
                min_size=1, max_size=50))
def test_event_queue_fires_in_order(specs):
    q = EventQueue()
    fired = []
    for when, priority in specs:
        event = CallbackEvent(lambda w=when, p=priority: fired.append((w, p)),
                              priority=priority)
        q.schedule(event, when)
    q.run()
    assert fired == sorted(fired)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=2, max_size=100))
def test_distribution_matches_statistics_module(samples):
    dist = Distribution("d")
    for v in samples:
        dist.sample(v)
    assert dist.mean == pytest_approx(statistics.fmean(samples))
    # The streaming sum-of-squares formula is mildly unstable for large
    # magnitudes; a loose relative bound is the honest contract.
    assert dist.stddev == pytest_approx(statistics.stdev(samples),
                                        rel_tol=1e-4, abs_tol=1e-4)
    assert dist.minimum == min(samples)
    assert dist.maximum == max(samples)


def pytest_approx(value, rel_tol=1e-6, abs_tol=1e-6):
    import pytest

    return pytest.approx(value, rel=rel_tol, abs=abs_tol)


@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=255))
def test_bridge_bus_range_check(primary, secondary, subordinate):
    from repro.pci.header import PciBridgeFunction, PRIMARY_BUS, SECONDARY_BUS, SUBORDINATE_BUS

    bridge = PciBridgeFunction(0x8086, 0x9C90)
    bridge.config_write(PRIMARY_BUS, primary, 1)
    bridge.config_write(SECONDARY_BUS, secondary, 1)
    bridge.config_write(SUBORDINATE_BUS, subordinate, 1)
    for bus in range(0, 256, 17):
        assert bridge.bus_in_range(bus) == (secondary <= bus <= subordinate)
