"""Property-based tests of per-class credit flow control.

Hypothesis draws credit partitions and traffic depths and checks the
guarantee the class split exists to provide: no amount of non-posted
pressure can make completions unreachable.  Every read completes, the
completion class never records a credit stall, and the credit books
balance at quiescence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.packet import FLOW_CPL, FLOW_NP
from repro.pcie.fc import ALL_CLASSES
from repro.sim.simobject import Simulator

from tests.pcie.test_link import build_dma_path


@settings(max_examples=20, deadline=None)
@given(
    np_credits=st.integers(min_value=1, max_value=4),
    cpl_credits=st.integers(min_value=1, max_value=4),
    depth=st.integers(min_value=8, max_value=48),
)
def test_cpl_credits_reachable_under_np_saturation(np_credits, cpl_credits,
                                                   depth):
    sim = Simulator()
    link, device, memory = build_dma_path(
        sim,
        np_credits=np_credits,
        cpl_credits=cpl_credits,
        device_kwargs={"max_outstanding": 64},
    )
    for i in range(depth):
        device.read(0x80000000 + i * 64, 64)
    sim.run(max_events=4_000_000)
    # Liveness: the read storm always drains, however tight the NP pool.
    # Completions only ever wait for their own credits to round-trip,
    # never for the NP flood to clear — with a single shared pool this
    # is exactly the configuration that used to livelock.
    assert len(device.responses) == depth
    assert link.upstream_if.timeouts.value() == 0
    assert link.downstream_if.timeouts.value() == 0
    # Conservation at quiescence: both directions' books balance.
    for iface in (link.upstream_if, link.downstream_if):
        for cls in ALL_CLASSES:
            peer_fc = iface.peer.fc
            assert iface.fc.tx_consumed[cls] == (peer_fc.rx_drained[cls]
                                                 + peer_fc.rx_held[cls])
            assert peer_fc.rx_held[cls] == 0
