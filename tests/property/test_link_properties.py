"""Property-based tests of the link-layer reliability invariants.

The ACK/NAK protocol's whole job is: every TLP handed to a link arrives
at the other side **exactly once and in order**, no matter how the
receiver misbehaves (full buffers) or how many packets the error
injector corrupts.  Hypothesis drives randomized traffic at randomized
adversity and checks exactly that.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcie.link import PcieLink
from repro.pcie.timing import PcieGen
from repro.sim import ticks
from repro.sim.simobject import Simulator

from tests.mem.helpers import FakeMaster, FakeSlave


def run_traffic(n_packets, width, replay_buffer, error_rate, seed,
                receiver_outstanding, receiver_latency_ns):
    sim = Simulator()
    link = PcieLink(
        sim, "link",
        gen=PcieGen.GEN2,
        width=width,
        replay_buffer_size=replay_buffer,
        error_rate=error_rate,
        error_seed=seed,
    )
    device = FakeMaster(sim, "device")
    memory = FakeSlave(sim, "memory",
                       latency=ticks.from_ns(receiver_latency_ns),
                       max_outstanding=receiver_outstanding)
    device.port.bind(link.downstream_if.slave_port)
    link.upstream_if.master_port.bind(memory.port)
    expected = []
    for i in range(n_packets):
        pkt = device.write(0x80000000 + i * 64, 64)
        expected.append(pkt.req_id)
    sim.run(max_events=3_000_000)
    return link, device, memory, expected


@settings(max_examples=20, deadline=None)
@given(
    n_packets=st.integers(min_value=1, max_value=24),
    width=st.sampled_from([1, 4, 8]),
    replay_buffer=st.integers(min_value=1, max_value=4),
    error_rate=st.floats(min_value=0.0, max_value=0.3),
    seed=st.integers(min_value=0, max_value=2**16),
    receiver_outstanding=st.integers(min_value=1, max_value=8),
    receiver_latency_ns=st.integers(min_value=0, max_value=2000),
)
def test_exactly_once_in_order_delivery(n_packets, width, replay_buffer,
                                        error_rate, seed,
                                        receiver_outstanding,
                                        receiver_latency_ns):
    link, device, memory, expected = run_traffic(
        n_packets, width, replay_buffer, error_rate, seed,
        receiver_outstanding, receiver_latency_ns,
    )
    delivered = [pkt.req_id for pkt in memory.requests]
    # Exactly once, in issue order, despite refusals/corruption/replays.
    assert delivered == expected
    # And the sender got every response back.
    assert sorted(pkt.req_id for pkt in device.responses) == sorted(expected)
    # Replay buffers fully drained at quiescence.
    assert len(link.downstream_if.replay_buffer) == 0


@settings(max_examples=15, deadline=None)
@given(
    n_packets=st.integers(min_value=2, max_value=16),
    error_rate=st.floats(min_value=0.05, max_value=0.4),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_corruption_forces_replays_but_never_duplicates(n_packets,
                                                        error_rate, seed):
    link, device, memory, expected = run_traffic(
        n_packets, 1, 4, error_rate, seed, 64, 50,
    )
    assert [p.req_id for p in memory.requests] == expected
    rx = link.upstream_if
    if rx.corrupted.value():
        assert link.downstream_if.tlp_replays.value() > 0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_sequence_numbers_consistent_after_run(seed):
    link, device, memory, expected = run_traffic(12, 1, 2, 0.1, seed, 2, 500)
    tx = link.downstream_if
    rx = link.upstream_if
    # Everything sent was eventually received: counters agree.
    assert tx.send_seq == rx.recv_seq == len(expected)
