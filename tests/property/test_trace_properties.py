"""Property-based tests of trace well-formedness.

Whatever the topology, link width, buffer sizing or injected error
rate, a TLP-lifecycle trace must tell a coherent story: transmissions
precede deliveries, nothing is delivered twice, per-component
timestamps never run backwards, and every TLP that suffered a refusal
or corruption is eventually delivered anyway.  Hypothesis drives
randomized scenarios and checks exactly that — the same invariants the
golden files pin exactly, but over the whole configuration space.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.report import (
    reconcile_trace_with_link,
    trace_latency_breakdown,
)
from repro.obs.trace import MemorySink
from repro.pcie.link import PcieLink
from repro.pcie.timing import PcieGen
from repro.sim import ticks
from repro.sim.simobject import Simulator
from repro.system.topology import build_validation_system
from repro.workloads.dd import DdWorkload

from tests.mem.helpers import FakeMaster, FakeSlave


def check_wellformed_lifecycles(events):
    """The invariants every ``link``-category trace must satisfy."""
    last_tick = {}
    first_kind = {}
    deliveries = {}
    troubled = set()
    for ev in events:
        # Per-component time never runs backwards.
        comp = ev["comp"]
        assert ev["t"] >= last_tick.get(comp, 0), (comp, ev)
        last_tick[comp] = ev["t"]
        if "tlp" not in ev:
            continue
        key = (ev["tlp"], ev.get("resp", False))
        if ev["ev"] in ("tlp_tx", "tlp_deliver"):
            first_kind.setdefault(key, ev["ev"])
        if ev["ev"] == "tlp_deliver":
            # A TLP crossing several links is delivered once *per link*,
            # so exactly-once is a per-component property.
            deliveries[key + (comp,)] = deliveries.get(key + (comp,), 0) + 1
        elif ev["ev"] in ("tlp_refused", "tlp_corrupt"):
            # Refusal/corruption events carry no direction flag.
            troubled.add(ev["tlp"])
    # A TLP is transmitted before it is delivered anywhere.
    for key, kind in first_kind.items():
        assert kind == "tlp_tx", f"TLP {key} delivered before any tx"
    # Exactly-once delivery, even across replays and duplicates.
    for key, n in deliveries.items():
        assert n == 1, f"TLP {key} delivered {n} times"
    # Every troubled TLP was eventually delivered anyway.
    delivered_ids = {tlp for (tlp, __, __c) in deliveries}
    assert troubled <= delivered_ids
    return deliveries


@settings(max_examples=20, deadline=None)
@given(
    n_packets=st.integers(min_value=1, max_value=16),
    width=st.sampled_from([1, 4, 8]),
    replay_buffer=st.integers(min_value=1, max_value=4),
    error_rate=st.floats(min_value=0.0, max_value=0.3),
    dllp_error_rate=st.floats(min_value=0.0, max_value=0.3),
    seed=st.integers(min_value=0, max_value=2**16),
    receiver_outstanding=st.integers(min_value=1, max_value=4),
)
def test_link_traces_are_wellformed_under_adversity(
        n_packets, width, replay_buffer, error_rate, dllp_error_rate,
        seed, receiver_outstanding):
    sim = Simulator()
    link = PcieLink(
        sim, "link",
        gen=PcieGen.GEN2, width=width,
        replay_buffer_size=replay_buffer,
        error_rate=error_rate, dllp_error_rate=dllp_error_rate,
        error_seed=seed,
    )
    device = FakeMaster(sim, "device")
    memory = FakeSlave(sim, "memory", latency=ticks.from_ns(200),
                       max_outstanding=receiver_outstanding)
    device.port.bind(link.downstream_if.slave_port)
    link.upstream_if.master_port.bind(memory.port)
    sink = sim.tracer.attach(MemorySink())
    for i in range(n_packets):
        device.write(0x80000000 + i * 64, 64)
    sim.run(max_events=3_000_000)

    assert len(memory.requests) == n_packets  # traffic actually completed
    deliveries = check_wellformed_lifecycles(sink.events)
    # Each write is a request TLP plus a response TLP, delivered once each.
    assert len(deliveries) == 2 * n_packets

    # The trace reconciles with the link statistics on both interfaces,
    # and the breakdown closes its books (nothing left in flight).
    breakdown = trace_latency_breakdown(
        [ev for ev in sink.events if ev["cat"] == "link"])
    for counts in reconcile_trace_with_link(breakdown, link).values():
        for stat_name, pair in counts.items():
            assert pair["stat"] == pair["trace"], stat_name
    # At quiescence nothing is genuinely in flight; anything unresolved
    # is a wasted retransmission of an already-delivered TLP, of which
    # there can be at most one per replayed transmission.
    assert breakdown["totals"]["unresolved"] <= breakdown["totals"]["replays"]
    if error_rate == 0 and dllp_error_rate == 0:
        assert breakdown["totals"]["unresolved"] == 0
    assert breakdown["totals"]["link_ticks"] > 0


@settings(max_examples=5, deadline=None)
@given(
    root_width=st.sampled_from([1, 2, 4]),
    device_width=st.sampled_from([1, 2]),
    error_rate=st.sampled_from([0.0, 0.15]),
)
def test_system_traces_are_wellformed_across_topologies(
        root_width, device_width, error_rate):
    system = build_validation_system(
        root_link_width=root_width,
        device_link_width=device_width,
        error_rate=error_rate,
    )
    system.sim.tracer.categories = frozenset(("link", "engine"))
    sink = system.sim.tracer.attach(MemorySink())
    dd = DdWorkload(system.kernel, system.disk_driver, 4096,
                    startup_overhead=0)
    process = system.kernel.spawn("dd", dd.run())
    system.run(max_events=10_000_000)
    assert process.done

    link_events = [ev for ev in sink.events if ev["cat"] == "link"]
    check_wellformed_lifecycles(link_events)
    # Engine residencies pair up too: the only open items at the end
    # are wasted retransmissions of already-delivered TLPs.
    breakdown = trace_latency_breakdown(sink.events)
    assert breakdown["totals"]["unresolved"] <= breakdown["totals"]["replays"]
    if error_rate == 0:
        assert breakdown["totals"]["unresolved"] == 0
    # And both PCIe links reconcile trace counts against statistics.
    for link in (system.links["root"], system.links["disk"]):
        for counts in reconcile_trace_with_link(breakdown, link).values():
            for stat_name, pair in counts.items():
                assert pair["stat"] == pair["trace"], (link.full_name,
                                                       stat_name)
