"""Unit tests for the DMA copy accelerator (the third device kind)."""

import pytest

from repro.devices.accel import (
    ACCEL_DEVICE_ID,
    ACCEL_VENDOR_ID,
    CMD_COPY,
    REG_CMD,
    REG_DST,
    REG_NBYTES,
    REG_SRC,
    REG_STATUS,
    STATUS_ERROR,
    STATUS_IRQ,
    DmaAccelerator,
)
from repro.sim import ticks
from repro.sim.simobject import Simulator
from repro.system.spec import DeviceSpec, LinkSpec, SwitchSpec, TopologySpec
from repro.system.topology import DEVICE_KINDS, build_system

from tests.mem.helpers import FakeSlave


class StubIntc:
    def __init__(self):
        self.raised = 0

    def raise_irq(self, line):
        self.raised += 1


def build(sim, **accel_kwargs):
    accel = DmaAccelerator(sim, **accel_kwargs)
    accel.intc = StubIntc()
    memory = FakeSlave(sim, "memory", latency=ticks.from_ns(50))
    accel.dma_port.bind(memory.port)
    return accel, memory


def start_copy(accel, src=0x80000000, dst=0x80100000, nbytes=256):
    accel.mmio_write(0, REG_SRC, 8, src)
    accel.mmio_write(0, REG_DST, 8, dst)
    accel.mmio_write(0, REG_NBYTES, 8, nbytes)
    accel.mmio_write(0, REG_CMD, 4, CMD_COPY)


def test_config_identity_and_capability_chain():
    sim = Simulator()
    accel = DmaAccelerator(sim)
    assert accel.function.vendor_id == ACCEL_VENDOR_ID
    assert accel.function.device_id == ACCEL_DEVICE_ID
    ids = [cap_id for cap_id, __ in accel.function.walk_capabilities()]
    assert ids == [0x01, 0x05, 0x10, 0x11]  # PM, MSI, PCIe, MSI-X


def test_copy_reads_source_then_writes_destination():
    sim = Simulator()
    accel, memory = build(sim, chunk=64)
    start_copy(accel, nbytes=256)
    assert accel.busy
    sim.run()
    assert not accel.busy
    assert accel.intc.raised == 1
    assert accel.copies_completed.value() == 1
    assert accel.bytes_copied.value() == 256
    # 256 bytes at 64 B chunks: 4 reads then 4 writes, in that order.
    reads = [p for p in memory.requests if p.is_read]
    writes = [p for p in memory.requests if not p.is_read]
    assert len(reads) == len(writes) == 4
    assert max(memory.requests.index(p) for p in reads) < \
        min(memory.requests.index(p) for p in writes)
    assert {p.addr for p in reads} == {0x80000000 + i * 64 for i in range(4)}
    assert {p.addr for p in writes} == {0x80100000 + i * 64 for i in range(4)}


def test_copy_latency_scales_with_size():
    def copy_ticks(nbytes):
        sim = Simulator()
        accel, __ = build(sim)
        start_copy(accel, nbytes=nbytes)
        sim.run()
        return accel.copy_ticks.mean

    assert copy_ticks(4096) > copy_ticks(256)


def test_bad_command_and_zero_bytes_set_error():
    sim = Simulator()
    accel, __ = build(sim)
    accel.mmio_write(0, REG_NBYTES, 8, 0)
    accel.mmio_write(0, REG_CMD, 4, CMD_COPY)
    assert accel.mmio_read(0, REG_STATUS, 4) & STATUS_ERROR
    assert accel.intc.raised == 1  # error interrupt, no hang


def test_command_while_busy_flags_error_without_corrupting_copy():
    sim = Simulator()
    accel, __ = build(sim)
    start_copy(accel, nbytes=512)
    accel.mmio_write(0, REG_CMD, 4, CMD_COPY)  # while busy
    assert accel.mmio_read(0, REG_STATUS, 4) & STATUS_ERROR
    sim.run()
    assert accel.copies_completed.value() == 1
    assert accel.mmio_read(0, REG_STATUS, 4) & STATUS_IRQ


def test_accel_is_a_registered_device_kind():
    from repro.drivers.accel import DmaAccelDriver
    from repro.system.spec import DEVICE_KIND_NAMES

    assert "accel" in DEVICE_KIND_NAMES
    assert DEVICE_KINDS["accel"] == (DmaAccelerator, DmaAccelDriver)


def accel_system(**params):
    topology = TopologySpec(children=[
        SwitchSpec(name="switch",
                   link=LinkSpec(name="uplink", gen="GEN2", width=2),
                   children=[
                       DeviceSpec("accel", name="accel0",
                                  link=LinkSpec(name="accel0", gen="GEN2",
                                                width=1),
                                  params=params),
                   ]),
    ]).finalize()
    return build_system(topology)


def test_spec_built_accel_binds_and_copies_end_to_end():
    system = accel_system(dma_outstanding=8)
    assert system.accel is system.devices["accel0"]
    driver = system.accel_driver
    assert driver.device is system.accel

    done = {}

    def copy():
        signal = yield from driver.start_copy(0x90000000, 0x91000000, 4096)
        from repro.sim.process import WaitFor
        yield WaitFor(signal)
        done["result"] = signal

    process = system.kernel.spawn("copy", copy())
    system.run(max_events=50_000_000)
    assert process.done
    assert system.accel.copies_completed.value() == 1
    assert system.accel.bytes_copied.value() == 4096


def test_driver_rejects_concurrent_copies():
    from repro.drivers.base import DriverError

    system = accel_system()
    driver = system.accel_driver

    def two_copies():
        first = yield from driver.start_copy(0x90000000, 0x91000000, 256)
        with pytest.raises(DriverError):
            yield from driver.start_copy(0x90000000, 0x91000000, 256)
        from repro.sim.process import WaitFor
        yield WaitFor(first)

    process = system.kernel.spawn("copies", two_copies())
    system.run(max_events=50_000_000)
    assert process.done


def test_mixed_three_kind_fabric_builds_and_resolves():
    topology = TopologySpec(children=[
        SwitchSpec(name="switch",
                   link=LinkSpec(name="uplink", gen="GEN2", width=4),
                   children=[
                       DeviceSpec("disk", name="disk0",
                                  link=LinkSpec(name="disk0", gen="GEN2",
                                                width=1)),
                       DeviceSpec("nic", name="nic0",
                                  link=LinkSpec(name="nic0", gen="GEN2",
                                                width=1)),
                       DeviceSpec("accel", name="accel0",
                                  link=LinkSpec(name="accel0", gen="GEN2",
                                                width=1)),
                   ]),
    ]).finalize()
    system = build_system(topology)
    assert system.disk is system.devices["disk0"]
    assert system.nic is system.devices["nic0"]
    assert system.accel is system.devices["accel0"]
    assert system.accel_driver.device is system.accel
