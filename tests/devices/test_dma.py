"""Unit tests for the DMA engine."""

import pytest

from repro.devices.base import PcieDevice
from repro.devices.dma import DmaEngine
from repro.mem.packet import MemCmd
from repro.pci.header import Bar, PciEndpointFunction
from repro.sim import ticks
from repro.sim.simobject import Simulator

from tests.mem.helpers import FakeSlave


def build(sim, chunk=64, max_outstanding=8, memory_kwargs=None):
    device = PcieDevice(
        sim, "dev", PciEndpointFunction(0x8086, 0x1234, bars=[Bar(4096)])
    )
    engine = DmaEngine(sim, "dma", device, chunk=chunk,
                       max_outstanding=max_outstanding)
    kwargs = {"latency": ticks.from_ns(50)}
    kwargs.update(memory_kwargs or {})
    memory = FakeSlave(sim, "memory", **kwargs)
    device.dma_port.bind(memory.port)
    return device, engine, memory


def test_write_chunks_into_cache_lines():
    sim = Simulator()
    device, engine, memory = build(sim)
    transfer = engine.write(0x80000000, 4096)
    sim.run()
    assert transfer._finished
    assert len(memory.requests) == 64
    assert all(p.size == 64 for p in memory.requests)
    assert all(p.cmd is MemCmd.WRITE_REQ for p in memory.requests)
    assert memory.requests[0].addr == 0x80000000
    assert memory.requests[-1].addr == 0x80000000 + 4096 - 64


def test_unaligned_tail_chunk():
    sim = Simulator()
    device, engine, memory = build(sim)
    engine.write(0x80000000, 100)
    sim.run()
    assert [p.size for p in memory.requests] == [64, 36]


def test_completion_waits_for_all_responses():
    sim = Simulator()
    device, engine, memory = build(sim)
    done_at = []
    transfer = engine.write(0x80000000, 1024)
    transfer.completed.subscribe(lambda __: done_at.append(sim.curtick))
    sim.run()
    assert done_at, "transfer never completed"
    # Completion cannot precede the last response (memory latency 50ns).
    assert done_at[0] >= ticks.from_ns(50)
    assert engine.transfers_completed.value() == 1
    assert engine.bytes_moved.value() == 1024


def test_outstanding_window_respected():
    sim = Simulator()
    device, engine, memory = build(
        sim, max_outstanding=4, memory_kwargs={"latency": ticks.from_us(1)}
    )
    engine.write(0x80000000, 4096)
    # Run until just before the first response: only 4 requests may be
    # in flight.
    sim.run(until=ticks.from_ns(999))
    assert len(memory.requests) <= 4
    sim.run()
    assert len(memory.requests) == 64


def test_posted_write_completes_without_responses():
    sim = Simulator()
    device, engine, memory = build(sim)
    transfer = engine.write(0x80000000, 1024, posted=True)
    sim.run()
    assert transfer._finished
    assert all(p.cmd is MemCmd.MESSAGE for p in memory.requests)
    assert len(memory.requests) == 16
    # Device received no responses at all.
    assert device._dma_waiters == {}


def test_large_posted_transfer_paces_on_queue_space():
    sim = Simulator()
    device, engine, memory = build(sim, max_outstanding=32)
    transfer = engine.write(0x80000000, 16384, posted=True)  # 256 chunks
    sim.run(max_events=500_000)
    assert transfer._finished
    assert len(memory.requests) == 256


def test_read_transfer():
    sim = Simulator()
    device, engine, memory = build(sim)
    transfer = engine.read(0x80000000, 512)
    sim.run()
    assert transfer._finished
    assert all(p.cmd is MemCmd.READ_REQ for p in memory.requests)
    assert len(memory.requests) == 8


def test_parameter_validation():
    sim = Simulator()
    device, engine, memory = build(sim)
    with pytest.raises(ValueError):
        engine.write(0x0, 0)
    with pytest.raises(ValueError):
        DmaEngine(sim, "bad", device, chunk=0)
    with pytest.raises(ValueError):
        DmaEngine(sim, "bad2", device, max_outstanding=0)


def test_concurrent_transfers_both_complete():
    sim = Simulator()
    device, engine, memory = build(sim)
    a = engine.write(0x80000000, 512)
    b = engine.read(0x80010000, 512)
    sim.run()
    assert a._finished and b._finished
    assert len(memory.requests) == 16
