"""Unit tests for the IDE-like storage device."""

import pytest

from repro.devices.disk import (
    CMD_READ_DMA,
    CMD_WRITE_DMA,
    REG_BUF_ADDR,
    REG_CMD,
    REG_COUNT,
    REG_IRQ_CLEAR,
    REG_LBA,
    REG_STATUS,
    STATUS_BUSY,
    STATUS_ERROR,
    STATUS_IRQ,
    IdeDisk,
)
from repro.mem.packet import MemCmd
from repro.sim import ticks
from repro.sim.simobject import Simulator

from tests.mem.helpers import FakeSlave


class StubIntc:
    def __init__(self):
        self.raised = 0

    def raise_irq(self, line):
        self.raised += 1


def build(sim, memory_latency=None, **disk_kwargs):
    disk = IdeDisk(sim, **disk_kwargs)
    disk.intc = StubIntc()
    memory = FakeSlave(
        sim, "memory",
        latency=memory_latency if memory_latency is not None else ticks.from_ns(50),
    )
    disk.dma_port.bind(memory.port)
    return disk, memory


def start_read(disk, lba=0, count=1, buf=0x80000000):
    disk.mmio_write(0, REG_LBA, 4, lba)
    disk.mmio_write(0, REG_COUNT, 4, count)
    disk.mmio_write(0, REG_BUF_ADDR, 8, buf)
    disk.mmio_write(0, REG_CMD, 4, CMD_READ_DMA)


def test_config_identity_and_capability_chain():
    sim = Simulator()
    disk = IdeDisk(sim)
    assert disk.function.vendor_id == 0x8086
    assert disk.function.device_id == 0x7111
    ids = [cap_id for cap_id, __ in disk.function.walk_capabilities()]
    assert ids == [0x01, 0x05, 0x10, 0x11]  # PM, MSI, PCIe, MSI-X


def test_read_command_transfers_sectors_and_interrupts():
    sim = Simulator()
    disk, memory = build(sim)
    start_read(disk, count=2)
    assert disk.busy
    sim.run()
    assert not disk.busy
    assert disk.irq_pending
    assert disk.intc.raised == 1
    assert disk.sectors_transferred.value() == 2
    assert disk.bytes_transferred.value() == 8192
    # 2 sectors x 64 write packets each.
    writes = [p for p in memory.requests if p.cmd is MemCmd.WRITE_REQ]
    assert len(writes) == 128


def test_sector_barrier_no_posted_writes():
    """All of a sector's write responses must return before the next
    sector's first packet is issued."""
    sim = Simulator()
    disk, memory = build(sim, memory_latency=ticks.from_us(2))
    start_read(disk, count=2)
    sim.run()
    arrivals = memory.request_ticks
    # With a 2 us memory latency and the outstanding window, sector 2's
    # first packet cannot be issued before sector 1's last response —
    # which itself is at least 2 us after sector 1's last request.
    sector1_last_req = arrivals[63]
    sector2_first_req = arrivals[64]
    assert sector2_first_req >= sector1_last_req + ticks.from_us(2)


def test_posted_writes_ablation_removes_barrier():
    sim = Simulator()
    disk, memory = build(sim, memory_latency=ticks.from_us(2), posted_writes=True)
    start_read(disk, count=2)
    sim.run()
    arrivals = memory.request_ticks
    gap = arrivals[64] - arrivals[63]
    # Posted: only the access latency separates sectors, not a 2 us
    # response round trip.
    assert gap < ticks.from_us(2)
    assert all(p.cmd is MemCmd.MESSAGE for p in memory.requests)


def test_access_latency_charged_per_sector():
    sim = Simulator()
    disk, memory = build(sim, access_latency=ticks.from_us(1), memory_latency=0)
    start_read(disk, count=3)
    sim.run()
    # Three sectors, each preceded by 1 us of medium access.
    assert sim.curtick >= 3 * ticks.from_us(1)
    assert disk.sector_transfer_ticks.count == 3


def test_write_command_reads_from_memory():
    sim = Simulator()
    disk, memory = build(sim)
    disk.mmio_write(0, REG_LBA, 4, 5)
    disk.mmio_write(0, REG_COUNT, 4, 1)
    disk.mmio_write(0, REG_BUF_ADDR, 8, 0x80000000)
    disk.mmio_write(0, REG_CMD, 4, CMD_WRITE_DMA)
    sim.run()
    reads = [p for p in memory.requests if p.cmd is MemCmd.READ_REQ]
    assert len(reads) == 64
    assert 5 in disk._store


def test_irq_clear_register():
    sim = Simulator()
    disk, memory = build(sim)
    start_read(disk)
    sim.run()
    assert disk.irq_pending
    disk.mmio_write(0, REG_IRQ_CLEAR, 4, 1)
    assert not disk.irq_pending


def test_invalid_command_sets_error():
    sim = Simulator()
    disk, memory = build(sim)
    disk.mmio_write(0, REG_COUNT, 4, 1)
    disk.mmio_write(0, REG_CMD, 4, 99)
    assert disk.mmio_read(0, REG_STATUS, 4) & STATUS_ERROR
    assert disk.intc.raised == 1


def test_out_of_range_transfer_rejected():
    sim = Simulator()
    disk, memory = build(sim, capacity_sectors=10)
    start_read(disk, lba=8, count=5)
    assert disk.mmio_read(0, REG_STATUS, 4) & STATUS_ERROR
    sim.run()
    assert disk.sectors_transferred.value() == 0


def test_zero_count_rejected():
    sim = Simulator()
    disk, memory = build(sim)
    disk.mmio_write(0, REG_COUNT, 4, 0)
    disk.mmio_write(0, REG_CMD, 4, CMD_READ_DMA)
    assert disk.mmio_read(0, REG_STATUS, 4) & STATUS_ERROR


def test_command_while_busy_flags_error():
    sim = Simulator()
    disk, memory = build(sim)
    start_read(disk, count=4)
    disk.mmio_write(0, REG_CMD, 4, CMD_READ_DMA)  # while busy
    assert disk.mmio_read(0, REG_STATUS, 4) & STATUS_ERROR
    sim.run()
    # The original command still completes.
    assert disk.sectors_transferred.value() == 4


def test_device_level_throughput_stat():
    sim = Simulator()
    disk, memory = build(sim)
    start_read(disk, count=4)
    sim.run()
    assert disk.sector_transfer_ticks.count == 4
    # The barrier means each sector takes at least one memory round trip.
    assert disk.sector_transfer_ticks.mean >= ticks.from_ns(50)
