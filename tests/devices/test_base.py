"""Unit tests for the generic PCI-Express device template."""

import pytest

from repro.devices.base import PcieDevice
from repro.pci import header as hdr
from repro.pci.header import Bar, PciEndpointFunction
from repro.sim import ticks
from repro.sim.simobject import Simulator

from tests.mem.helpers import FakeMaster


class RegisterDevice(PcieDevice):
    """Exposes one 32-bit scratch register per BAR for testing."""

    def __init__(self, sim):
        fn = PciEndpointFunction(
            0x8086, 0xBEEF, bars=[Bar(4096), Bar(32, io=True)]
        )
        super().__init__(sim, "dev", fn, pio_latency=ticks.from_ns(30))
        self.scratch = {0: 0xAABBCCDD, 1: 0x11223344}
        self.writes = []

    def mmio_read(self, bar, offset, size):
        return self.scratch[bar] >> (8 * offset)

    def mmio_write(self, bar, offset, size, value):
        self.writes.append((bar, offset, size, value))


def program(device, mem_base=0x40000000, io_base=0x2F000000):
    device.function.config_write(hdr.BAR0, mem_base, 4)
    device.function.config_write(hdr.BAR0 + 4, io_base, 4)
    device.function.config_write(
        hdr.COMMAND, hdr.CMD_MEM_SPACE | hdr.CMD_IO_SPACE | hdr.CMD_BUS_MASTER, 2
    )


def build(sim):
    device = RegisterDevice(sim)
    program(device)
    cpu = FakeMaster(sim, "cpu")
    cpu.port.bind(device.pio_port)
    return device, cpu


def test_pio_ranges_follow_bars():
    sim = Simulator()
    device = RegisterDevice(sim)
    assert device.pio_port.get_ranges() == []  # decode disabled
    program(device)
    ranges = device.pio_port.get_ranges()
    assert len(ranges) == 2


def test_locate_bar():
    sim = Simulator()
    device = RegisterDevice(sim)
    program(device)
    assert device.locate_bar(0x40000010) == (0, 0x10)
    assert device.locate_bar(0x2F000004) == (1, 0x4)
    assert device.locate_bar(0x50000000) == (None, None)


def test_mmio_read_round_trip():
    sim = Simulator()
    device, cpu = build(sim)
    cpu.read(0x40000000, 4)
    sim.run()
    assert cpu.responses[0].data == (0xAABBCCDD).to_bytes(4, "little")
    assert cpu.response_ticks[0] == ticks.from_ns(30)
    assert device.mmio_reads.value() == 1


def test_mmio_write_dispatched_with_value():
    sim = Simulator()
    device, cpu = build(sim)
    cpu.write(0x40000008, 4, data=(0xDEAD).to_bytes(4, "little"))
    sim.run()
    assert device.writes == [(0, 8, 4, 0xDEAD)]
    assert len(cpu.responses) == 1
    assert device.mmio_writes.value() == 1


def test_io_bar_access():
    sim = Simulator()
    device, cpu = build(sim)
    cpu.read(0x2F000000, 4)
    sim.run()
    assert cpu.responses[0].data == (0x11223344).to_bytes(4, "little")


def test_unclaimed_address_reads_all_ones():
    sim = Simulator()
    device, cpu = build(sim)
    # Disable decode after the request is already "routed" to the
    # device (stale window scenario).
    device.function.config_write(hdr.COMMAND, 0, 2)
    cpu.read(0x40000000, 4)
    sim.run()
    assert cpu.responses[0].data == b"\xff\xff\xff\xff"


def test_interrupt_requires_controller():
    sim = Simulator()
    device = RegisterDevice(sim)
    with pytest.raises(RuntimeError):
        device.raise_interrupt()


def test_interrupt_reaches_controller():
    sim = Simulator()
    device = RegisterDevice(sim)

    class StubIntc:
        def __init__(self):
            self.lines = []

        def raise_irq(self, line):
            self.lines.append(line)

    device.intc = StubIntc()
    device.function.config_write(hdr.INTERRUPT_LINE, 42, 1)
    device.raise_interrupt()
    assert device.intc.lines == [42]
    assert device.interrupts_raised.value() == 1
