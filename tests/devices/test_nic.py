"""Unit tests for the 8254x-pcie NIC model."""

import pytest

from repro.devices.nic import (
    CTRL_LOOPBACK,
    DESCRIPTOR_BYTES,
    ICR_RXT0,
    ICR_TXDW,
    REG_CTRL,
    REG_ICR,
    REG_IMS,
    REG_IMC,
    REG_STATUS,
    REG_TDT,
    STATUS_LINK_UP,
    Nic8254xPcie,
)
from repro.mem.packet import MemCmd
from repro.sim import ticks
from repro.sim.simobject import Simulator

from tests.mem.helpers import FakeSlave


class StubIntc:
    def __init__(self):
        self.raised = 0

    def raise_irq(self, line):
        self.raised += 1


def build(sim):
    nic = Nic8254xPcie(sim)
    nic.intc = StubIntc()
    memory = FakeSlave(sim, "memory", latency=ticks.from_ns(50))
    nic.dma_port.bind(memory.port)
    return nic, memory


def transmit(nic, desc=0x81000000, buf=0x82000000, length=1500):
    nic.post_tx_descriptor(desc, buf, length)
    nic.mmio_write(0, REG_TDT, 4, 1)


def test_identity_matches_paper():
    sim = Simulator()
    nic = Nic8254xPcie(sim)
    assert nic.function.device_id == 0x10D3  # invokes the e1000e probe
    ids = [cap_id for cap_id, __ in nic.function.walk_capabilities()]
    assert ids == [0x01, 0x05, 0x10, 0x11]  # PM -> MSI -> PCIe -> MSI-X


def test_status_reports_link_up():
    sim = Simulator()
    nic, _ = build(sim)
    assert nic.mmio_read(0, REG_STATUS, 4) & STATUS_LINK_UP


def test_tx_dma_sequence():
    sim = Simulator()
    nic, memory = build(sim)
    transmit(nic, length=1500)
    sim.run()
    reads = [p for p in memory.requests if p.cmd is MemCmd.READ_REQ]
    writes = [p for p in memory.requests if p.cmd is MemCmd.WRITE_REQ]
    # Descriptor fetch (16B) + payload fetch (1500B chunked).
    assert reads[0].size == DESCRIPTOR_BYTES
    assert sum(p.size for p in reads[1:]) == 1500
    # Descriptor write-back.
    assert len(writes) == 1 and writes[0].size == DESCRIPTOR_BYTES
    assert nic.frames_transmitted.value() == 1
    assert nic.tx_bytes.value() == 1500


def test_icr_set_and_read_to_clear():
    sim = Simulator()
    nic, memory = build(sim)
    transmit(nic)
    sim.run()
    icr = nic.mmio_read(0, REG_ICR, 4)
    assert icr & ICR_TXDW
    assert nic.mmio_read(0, REG_ICR, 4) == 0  # cleared by the read


def test_interrupt_only_when_masked_in():
    sim = Simulator()
    nic, memory = build(sim)
    transmit(nic)
    sim.run()
    assert nic.intc.raised == 0  # IMS clear: no interrupt
    nic.mmio_write(0, REG_IMS, 4, ICR_TXDW)
    transmit(nic)
    sim.run()
    assert nic.intc.raised == 1


def test_ims_imc_set_clear_semantics():
    sim = Simulator()
    nic, _ = build(sim)
    nic.mmio_write(0, REG_IMS, 4, ICR_TXDW | ICR_RXT0)
    nic.mmio_write(0, REG_IMC, 4, ICR_TXDW)
    assert nic._regs[REG_IMS] == ICR_RXT0


def test_loopback_delivers_to_rx_ring():
    sim = Simulator()
    nic, memory = build(sim)
    nic.mmio_write(0, REG_CTRL, 4, CTRL_LOOPBACK)
    nic.post_rx_buffer(0x83000000, 0x84000000, 2048)
    transmit(nic, length=1000)
    sim.run()
    assert nic.frames_received.value() == 1
    assert nic.rx_bytes.value() == 1000
    # RX data + RX descriptor write-back landed in memory.
    rx_writes = [p for p in memory.requests
                 if p.cmd is MemCmd.WRITE_REQ and p.addr >= 0x83000000]
    assert sum(p.size for p in rx_writes) == 1000 + DESCRIPTOR_BYTES


def test_loopback_without_rx_buffer_drops():
    sim = Simulator()
    nic, memory = build(sim)
    nic.mmio_write(0, REG_CTRL, 4, CTRL_LOOPBACK)
    transmit(nic)
    sim.run()
    assert nic.frames_dropped.value() == 1
    assert nic.frames_received.value() == 0


def test_back_to_back_frames_serialize():
    sim = Simulator()
    nic, memory = build(sim)
    nic.post_tx_descriptor(0x81000000, 0x82000000, 600)
    nic.post_tx_descriptor(0x81000010, 0x82001000, 600)
    nic.mmio_write(0, REG_TDT, 4, 2)
    sim.run()
    assert nic.frames_transmitted.value() == 2
    assert nic.tx_bytes.value() == 1200


def test_empty_frame_rejected():
    sim = Simulator()
    nic, _ = build(sim)
    with pytest.raises(ValueError):
        nic.post_tx_descriptor(0x81000000, 0x82000000, 0)
