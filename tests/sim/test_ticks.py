"""Unit tests for time-unit conversions."""

import pytest

from repro.sim import ticks


def test_one_tick_is_one_picosecond():
    assert ticks.PS == 1
    assert ticks.NS == 1_000
    assert ticks.US == 1_000_000
    assert ticks.S == 1_000_000_000_000


def test_from_ns_round_trips():
    assert ticks.from_ns(150) == 150_000
    assert ticks.to_ns(ticks.from_ns(150)) == pytest.approx(150)


def test_from_us_and_ms():
    assert ticks.from_us(1) == ticks.from_ns(1000)
    assert ticks.from_ms(1) == ticks.from_us(1000)
    assert ticks.from_s(1) == ticks.S


def test_fractional_ns_rounds_to_nearest_tick():
    assert ticks.from_ns(0.5) == 500
    assert ticks.from_ns(0.0001) == 0


def test_frequency_period():
    assert ticks.from_frequency_hz(1e9) == ticks.from_ns(1)
    assert ticks.from_frequency_hz(2e9) == 500


def test_frequency_must_be_positive():
    with pytest.raises(ValueError):
        ticks.from_frequency_hz(0)


def test_gbps_conversion_gen2_lane():
    # A Gen 2 lane moves 5 Gbps = 0.625 GB/s = 0.000625 bytes per ps.
    bpt = ticks.gbps_to_bytes_per_tick(5.0)
    assert bpt == pytest.approx(0.000625)
    assert ticks.bytes_per_tick_to_gbps(bpt) == pytest.approx(5.0)


def test_gbps_round_trip_various_rates():
    for rate in (2.5, 5.0, 8.0, 16.0):
        assert ticks.bytes_per_tick_to_gbps(
            ticks.gbps_to_bytes_per_tick(rate)
        ) == pytest.approx(rate)
