"""Unit tests for repro.sim.checkpoint: capture, restore, formats."""

import pytest

from repro.sim.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointError,
    capture,
    checkpoint_digest,
    checkpoint_json,
    read_checkpoint,
    restore,
    write_checkpoint,
)
from repro.sim.eventq import CallbackEvent, Event
from repro.sim.simobject import SimObject, Simulator


class Counter(SimObject):
    """Minimal stateful component with a recycled event handle."""

    def __init__(self, sim, name, parent=None):
        super().__init__(sim, name, parent)
        self.count = 0
        self.log = []
        self._tick_event = CallbackEvent(self.tick, name="tick")

    def tick(self):
        self.count += 1
        self.log.append(self.curtick)

    def state_dict(self):
        return {"count": self.count} if self.count else {}

    def load_state_dict(self, state):
        self.count = int(state["count"])


def build(name="sim"):
    sim = Simulator(name)
    system = SimObject(sim, "system")
    counter = Counter(sim, "counter", parent=system)
    return sim, counter


def test_capture_empty_sim_document_shape():
    sim, _ = build()
    doc = capture(sim)
    assert doc["format"] == CHECKPOINT_FORMAT
    assert doc["version"] == CHECKPOINT_VERSION
    assert doc["sim_name"] == "sim"
    assert doc["events"] == []
    assert doc["eventq"]["curtick"] == 0


def test_capture_is_deterministic():
    sim, counter = build()
    sim.schedule(counter._tick_event, 30)
    assert checkpoint_json(capture(sim)) == checkpoint_json(capture(sim))
    assert checkpoint_digest(capture(sim)) == checkpoint_digest(capture(sim))


def test_pending_bound_method_events_are_described():
    sim, counter = build()
    sim.schedule(counter._tick_event, 30)
    counter.schedule(10, counter.tick)
    doc = capture(sim)
    assert [(e["when"], e["owner"], e["method"]) for e in doc["events"]] == [
        (10, "system.counter", "tick"),
        (30, "system.counter", "tick"),
    ]


def test_unbound_callback_is_not_describable():
    sim, _ = build()
    sim.schedule_callback(10, lambda: None, name="anon")
    with pytest.raises(CheckpointError, match="not a bound method"):
        capture(sim)


def test_non_callback_event_is_not_describable():
    class Bare(Event):
        def process(self):
            pass

    sim, _ = build()
    sim.schedule(Bare(), 5)
    with pytest.raises(CheckpointError, match="only CallbackEvents"):
        capture(sim)


def test_mid_run_round_trip_matches_uncheckpointed_run():
    sim, counter = build()
    for when in (10, 20, 30, 40):
        counter.schedule(when, counter.tick)
    sim.run(until=15)
    snapshot = capture(sim)

    twin, twin_counter = build()
    restore(twin, snapshot)
    assert twin.curtick == 15
    assert twin_counter.count == 1
    twin.run()
    assert twin_counter.count == 4
    assert twin_counter.log == [20, 30, 40]

    # The uncheckpointed continuation sees the exact same dispatch.
    sim.run()
    assert counter.log == [10, 20, 30, 40]
    assert twin.eventq.events_processed == sim.eventq.events_processed
    assert twin.eventq._next_seq == sim.eventq._next_seq


def test_restore_reuses_the_recycled_event_handle():
    sim, counter = build()
    sim.schedule(counter._tick_event, 25)
    snapshot = capture(sim)

    twin, twin_counter = build()
    restore(twin, snapshot)
    entries = twin.eventq.live_entries()
    assert len(entries) == 1
    assert entries[0][3] is twin_counter._tick_event
    # The component can deschedule its own handle after a restore.
    twin.eventq.deschedule(twin_counter._tick_event)
    twin.run()
    assert twin_counter.count == 0


def test_restore_rejects_wrong_format_and_version():
    sim, _ = build()
    snapshot = capture(sim)
    twin, _ = build()
    with pytest.raises(CheckpointError, match="not a checkpoint"):
        restore(twin, dict(snapshot, format="something-else"))
    with pytest.raises(CheckpointError, match="version"):
        restore(twin, dict(snapshot, version=CHECKPOINT_VERSION + 1))


def test_restore_requires_an_empty_queue():
    sim, counter = build()
    snapshot = capture(sim)
    twin, twin_counter = build()
    twin_counter.schedule(5, twin_counter.tick)
    with pytest.raises(CheckpointError, match="empty event queue"):
        restore(twin, snapshot)


def test_restore_rejects_unknown_object_and_stat():
    sim, counter = build()
    counter.tick()
    snapshot = capture(sim)
    twin, _ = build()
    tampered = dict(snapshot)
    tampered["objects"] = {"system.ghost": {"count": 1}}
    with pytest.raises(CheckpointError, match="no such object"):
        restore(twin, tampered)
    tampered = dict(snapshot, objects={})
    tampered["stats"] = {"system.ghost.n": {"value": 1}}
    with pytest.raises(CheckpointError, match="no such stat"):
        restore(twin, tampered)


def test_restore_rejects_state_for_a_stateless_object():
    sim, _ = build()
    snapshot = capture(sim)
    twin, _ = build()
    tampered = dict(snapshot)
    tampered["objects"] = {"system": {"mystery": 1}}
    with pytest.raises(ValueError, match="declares no"):
        restore(twin, tampered)


def test_stats_round_trip():
    sim, counter = build()
    stat = counter.stats.scalar("n")
    stat.inc(7)
    snapshot = capture(sim)
    twin, twin_counter = build()
    twin_counter.stats.scalar("n")
    restore(twin, snapshot)
    assert twin.dump_stats()["system.counter.n"] == 7


def test_simulator_methods_delegate():
    sim, counter = build()
    counter.schedule(10, counter.tick)
    snapshot = sim.checkpoint()
    twin, twin_counter = build()
    twin.restore(snapshot)
    twin.run()
    assert twin_counter.log == [10]


def test_write_read_round_trip(tmp_path):
    sim, counter = build()
    sim.schedule(counter._tick_event, 30)
    snapshot = capture(sim)
    path = str(tmp_path / "ckpt.json")
    write_checkpoint(snapshot, path)
    loaded = read_checkpoint(path)
    assert loaded == snapshot
    assert checkpoint_digest(loaded) == checkpoint_digest(snapshot)


def test_read_rejects_non_checkpoint_file(tmp_path):
    path = tmp_path / "nope.json"
    path.write_text('{"format": "something"}')
    with pytest.raises(CheckpointError, match="not a checkpoint"):
        read_checkpoint(str(path))


def test_resolve_event_finds_handle_or_none():
    sim, counter = build()
    assert counter.resolve_event("tick") is counter._tick_event
    system = sim.find("system")
    assert system.resolve_event("schedule") is None
