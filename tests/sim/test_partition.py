"""Unit battery for the partitioned-parallel engine (repro.sim.partition).

Static coverage: partition planning (cut selection, nested parent
ranks, link ownership), the hint chain (builder kwarg vs environment),
the engagement guards in ``_build_engine`` (everything that must fall
back to the serial drain), backend registration, and the harness
``--partitions`` flag contract.  The run-to-identity battery lives in
``tests/system/test_partition_identity.py``.
"""

import pytest

from repro.sim.backend import backend_names, resolve
from repro.sim.partition import (
    PARTITIONS_ENV,
    PartitionEventQueue,
    _build_engine,
    _partition_hint,
    plan_partitions,
)
from repro.system.spec import deep_hierarchy_spec, validation_spec
from repro.system.topology import build_system, build_validation_system


# ----------------------------------------------------------- partition plans


def test_default_plan_cuts_every_root_port():
    plan = plan_partitions(validation_spec(enable_msi=True))
    assert plan.num_partitions == 2
    assert [(c.link_name, c.parent_rank, c.child_rank)
            for c in plan.cuts] == [("root", 0, 1)]
    # Everything below the root port belongs to the child rank.
    assert plan.node_ranks == {"switch": 1, "disk": 1}
    assert plan.link_ranks == {"root": 1, "disk": 1}


def test_hinted_plan_cuts_largest_subtrees_with_nested_parent_ranks():
    plan = plan_partitions(deep_hierarchy_spec(4, 1), 4)
    assert plan.num_partitions == 4
    # The deep chain nests sw1 > sw2 > sw3; each cut's parent side is
    # the rank owning the switch above it, not always rank 0.
    assert [(c.link_name, c.parent_rank, c.child_rank)
            for c in plan.cuts] == [("sw1", 0, 1), ("sw2", 1, 2),
                                    ("sw3", 2, 3)]
    assert plan.node_ranks["sw1_disk0"] == 1
    assert plan.node_ranks["sw2_disk0"] == 2
    # sw4 hangs off sw3 and stays with sw3's rank.
    assert plan.node_ranks["sw4"] == 3
    assert plan.node_ranks["sw4_disk0"] == 3


def test_hint_two_cuts_single_largest_subtree():
    plan = plan_partitions(deep_hierarchy_spec(4, 1), 2)
    assert plan.num_partitions == 2
    assert [(c.link_name, c.child_rank) for c in plan.cuts] == [("sw1", 1)]
    # One cut at the top of the chain: the whole fabric below is rank 1.
    assert set(plan.node_ranks.values()) == {1}


def test_hint_one_means_no_cuts():
    plan = plan_partitions(deep_hierarchy_spec(2, 2), 1)
    assert plan.num_partitions == 1
    assert plan.cuts == []


def test_link_ranks_cover_every_spec_link():
    spec = deep_hierarchy_spec(3, 2)
    plan = plan_partitions(spec, 3)

    def link_names(node):
        yield node.link.name
        for child in getattr(node, "children", None) or ():
            yield from link_names(child)

    expected = {name for child in spec.children
                for name in link_names(child)}
    assert set(plan.link_ranks) == expected


# ----------------------------------------------------------- the hint chain


class _FakeSim:
    def __init__(self, hint=None):
        if hint is not None:
            self.partition_hint = hint


def test_builder_hint_wins_over_environment(monkeypatch):
    monkeypatch.setenv(PARTITIONS_ENV, "7")
    assert _partition_hint(_FakeSim(hint=3)) == 3


def test_environment_hint_used_when_builder_silent(monkeypatch):
    monkeypatch.setenv(PARTITIONS_ENV, "4")
    assert _partition_hint(_FakeSim()) == 4


def test_no_hint_anywhere_is_none(monkeypatch):
    monkeypatch.delenv(PARTITIONS_ENV, raising=False)
    assert _partition_hint(_FakeSim()) is None


def test_garbage_environment_hint_fails_loudly(monkeypatch):
    monkeypatch.setenv(PARTITIONS_ENV, "many")
    with pytest.raises(ValueError, match=PARTITIONS_ENV):
        _partition_hint(_FakeSim())


def test_build_system_partitions_kwarg_sets_the_hint(monkeypatch):
    monkeypatch.delenv(PARTITIONS_ENV, raising=False)
    system = build_system(validation_spec(enable_msi=True), partitions=2)
    assert system.sim.partition_hint == 2
    assert _partition_hint(system.sim) == 2


# ------------------------------------------------------- engagement guards


@pytest.fixture
def parallel_env(monkeypatch):
    """Select the parallel backend and clear any partition hint."""
    monkeypatch.setenv("REPRO_BACKEND", "parallel")
    monkeypatch.delenv(PARTITIONS_ENV, raising=False)


def _armed_system(**kwargs):
    """A validation system with one pending event (engageable queue)."""
    system = build_validation_system(**kwargs)
    system.sim.schedule_callback(10, lambda: None, "poke")
    return system


def test_engages_on_msi_validation_fabric(parallel_env):
    system = _armed_system(enable_msi=True)
    engine = _build_engine(system.sim, None)
    assert engine is not None
    assert engine.nparts == 2


def test_falls_back_without_msi(parallel_env):
    # Legacy INTx interrupts are synchronous device->kernel calls that
    # bypass the fabric; the engine cannot reproduce them, so non-MSI
    # fabrics must drain single-process.
    system = _armed_system()
    assert _build_engine(system.sim, None) is None


def test_falls_back_on_bounded_horizon(parallel_env):
    system = _armed_system(enable_msi=True)
    assert _build_engine(system.sim, 1_000_000) is None


def test_falls_back_on_empty_queue(parallel_env):
    system = build_validation_system(enable_msi=True)
    assert _build_engine(system.sim, None) is None


def test_falls_back_on_hint_one(parallel_env, monkeypatch):
    monkeypatch.setenv(PARTITIONS_ENV, "1")
    system = _armed_system(enable_msi=True)
    assert _build_engine(system.sim, None) is None


def test_falls_back_on_non_partition_queue(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "hybrid")
    system = _armed_system(enable_msi=True)
    assert not isinstance(system.sim.eventq, PartitionEventQueue)
    assert _build_engine(system.sim, None) is None


# ---------------------------------------------------- backend registration


def test_parallel_backend_is_registered():
    assert "parallel" in backend_names()
    backend = resolve("parallel")
    assert backend.partitioned
    assert not backend.link_fastpath


def test_only_parallel_is_partitioned():
    for name in ("reference", "hybrid", "turbo"):
        assert not resolve(name).partitioned


def test_parallel_backend_builds_partition_queue():
    queue = resolve("parallel").make_eventq("q")
    assert isinstance(queue, PartitionEventQueue)


# ------------------------------------------------ harness --partitions flag


def _scrub(monkeypatch, name):
    """Unset ``name`` so teardown restores it even if the harness sets it.

    ``monkeypatch.delenv(..., raising=False)`` records nothing for an
    absent key, so a later ``os.environ[name] = ...`` inside the code
    under test would leak past the test.  Setting first registers the
    original (absent) state; deleting then gives the unset precondition.
    """
    monkeypatch.setenv(name, "sentinel")
    monkeypatch.delenv(name)


def test_harness_rejects_partitions_on_serial_backend(monkeypatch, capsys):
    import os

    from benchmarks import harness

    _scrub(monkeypatch, "REPRO_BACKEND")
    _scrub(monkeypatch, PARTITIONS_ENV)
    assert harness.main(["fig9b", "--partitions", "2"]) == 2
    err = capsys.readouterr().err
    assert "partitioned backend" in err
    assert PARTITIONS_ENV not in os.environ


def test_harness_rejects_nonpositive_partitions(monkeypatch, capsys):
    from benchmarks import harness

    _scrub(monkeypatch, "REPRO_BACKEND")
    _scrub(monkeypatch, PARTITIONS_ENV)
    assert harness.main(
        ["fig9b", "--backend", "parallel", "--partitions", "0"]) == 2
    assert "must be >= 1" in capsys.readouterr().err


def test_harness_partitions_composes_with_parallel_backend(monkeypatch,
                                                           capsys):
    import os

    from benchmarks import harness

    _scrub(monkeypatch, "REPRO_BACKEND")
    _scrub(monkeypatch, PARTITIONS_ENV)
    # A bogus benchmark name stops the run *after* the flag gates: the
    # partitions/backend combination was accepted and exported.
    assert harness.main(
        ["nonesuch", "--backend", "parallel", "--partitions", "2"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err
    assert os.environ["REPRO_BACKEND"] == "parallel"
    assert os.environ[PARTITIONS_ENV] == "2"


def test_harness_partitions_honors_backend_environment(monkeypatch, capsys):
    import os

    from benchmarks import harness

    # --partitions without --backend consults $REPRO_BACKEND, so the
    # flag composes with an environment-selected parallel engine.
    monkeypatch.setenv("REPRO_BACKEND", "parallel")
    _scrub(monkeypatch, PARTITIONS_ENV)
    assert harness.main(["nonesuch", "--partitions", "4"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err
    assert os.environ[PARTITIONS_ENV] == "4"
