"""Unit tests for generator-based processes."""

import pytest

from repro.sim.process import Delay, Process, Signal, WaitFor
from repro.sim.simobject import Simulator
from repro.sim import ticks


def test_delay_advances_time():
    sim = Simulator()

    def body():
        yield Delay(ticks.from_ns(100))
        return sim.curtick

    proc = Process(sim, "p", body())
    sim.run()
    assert proc.done
    assert proc.result == ticks.from_ns(100)
    assert proc.elapsed == ticks.from_ns(100)


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Delay(-1)


def test_wait_for_signal_delivers_value():
    sim = Simulator()
    sig = Signal("irq")
    got = []

    def waiter():
        value = yield WaitFor(sig)
        got.append(value)

    Process(sim, "w", waiter())
    sim.schedule_callback(ticks.from_ns(50), lambda: sig.notify("data"))
    sim.run()
    assert got == ["data"]


def test_signal_wakes_all_waiters():
    sim = Simulator()
    sig = Signal()
    done = []

    def waiter(i):
        yield WaitFor(sig)
        done.append(i)

    for i in range(3):
        Process(sim, f"w{i}", waiter(i))
    sim.schedule_callback(10, sig.notify)
    sim.run()
    assert sorted(done) == [0, 1, 2]
    assert sig.waiter_count == 0


def test_notify_without_waiters_is_not_remembered():
    sim = Simulator()
    sig = Signal()
    assert sig.notify() == 0
    woken = []

    def waiter():
        yield WaitFor(sig)
        woken.append(True)

    Process(sim, "w", waiter())
    sim.run()
    # The earlier notify must not wake this later waiter.
    assert woken == []
    assert sig.waiter_count == 1


def test_processes_can_wait_on_each_other():
    sim = Simulator()
    order = []

    def first():
        yield Delay(100)
        order.append("first")
        return 42

    p1 = Process(sim, "p1", first())

    def second():
        value = yield WaitFor(p1.completed)
        order.append(("second", value))

    Process(sim, "p2", second())
    sim.run()
    assert order == ["first", ("second", 42)]


def test_start_delay():
    sim = Simulator()

    def body():
        yield Delay(10)

    proc = Process(sim, "p", body(), start_delay=90)
    sim.run()
    assert proc.start_tick == 90
    assert proc.end_tick == 100


def test_invalid_yield_raises():
    sim = Simulator()

    def body():
        yield "not a directive"

    Process(sim, "p", body())
    with pytest.raises(TypeError):
        sim.run()


def test_zero_length_process_completes_immediately():
    sim = Simulator()

    def body():
        return 7
        yield  # pragma: no cover

    proc = Process(sim, "p", body())
    sim.run()
    assert proc.done
    assert proc.result == 7
    assert proc.elapsed == 0
