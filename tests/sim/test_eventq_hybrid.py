"""Property tests: the hybrid EventQueue against the reference heap.

:class:`repro.sim.eventq.ReferenceEventQueue` is the original pure
binary-heap scheduler, kept as the executable specification of dispatch
order.  These tests drive it and the bucketed hybrid with identical
randomized schedule/deschedule/reschedule workloads (fixed seeds) and
assert the two dispatch sequences — tags, ticks, and therefore
(tick, priority, insertion-seq) order — are identical, including under
``until`` and ``max_events`` stepping.

Also here: the recycled-event contract (a squashed entry can never fire
a stale payload, even when its event is immediately rescheduled at the
same tick), compaction behaviour, and the O(1) ``__len__``.
"""

import random

import pytest

from repro.sim.eventq import Event, EventQueue, ReferenceEventQueue

# Delay distribution for randomized workloads, chosen to exercise every
# tier of the hybrid: 0 / tiny delays land in the active batch (insort
# path), medium ones in the bucket ring, and large ones beyond the
# ~67 µs window land in the far-future heap (default span is
# 64 buckets << 20 bits = 67_108_864 ticks).
_SPAN = 64 << 20
_DELAY_CHOICES = (
    0,              # same-tick: insort into the draining batch
    1,              # adjacent tick
    37,             # within the current bucket
    1 << 20,        # next bucket
    17 << 20,       # mid-ring
    _SPAN - 1,      # last tick inside the window
    _SPAN,          # first tick beyond: far heap
    5 * _SPAN + 3,  # deep future: wheel must jump, not step
)


class _WorkloadEvent(Event):
    """An event that reports back to the workload driver when it fires."""

    __slots__ = ("driver", "tag")

    def __init__(self, driver, tag, priority):
        super().__init__(priority=priority, name=f"wl{tag}")
        self.driver = driver
        self.tag = tag

    def process(self):
        self.driver.fired(self)


class _Workload:
    """Drives one queue with a seed-determined reactive workload.

    Every fired event logs ``(tag, tick)`` and then — drawn from the
    driver's PRNG — schedules fresh events, deschedules or reschedules
    pending ones.  Two drivers with the same seed consume their PRNGs
    in dispatch order, so their logs are byte-identical exactly when
    the two queues dispatch identically; any divergence shows up as a
    log mismatch.
    """

    def __init__(self, queue, seed, budget=400):
        self.q = queue
        self.rng = random.Random(seed)
        self.log = []
        self.pending = []
        self.budget = budget
        self.next_tag = 0
        for __ in range(16):
            self._spawn(base=0)

    def _spawn(self, base):
        tag = self.next_tag
        self.next_tag += 1
        priority = self.rng.choice((-10, 0, 0, 0, 7))
        when = base + self.rng.choice(_DELAY_CHOICES)
        event = _WorkloadEvent(self, tag, priority)
        self.q.schedule(event, when)
        self.pending.append(event)
        return event

    def fired(self, event):
        self.pending.remove(event)
        self.log.append((event.tag, self.q.curtick))
        rng = self.rng
        if self.budget > 0:
            for __ in range(rng.randrange(0, 3)):
                self.budget -= 1
                self._spawn(base=self.q.curtick)
        if self.pending and rng.random() < 0.25:
            victim = self.pending[rng.randrange(len(self.pending))]
            if rng.random() < 0.5:
                self.q.deschedule(victim)
                self.pending.remove(victim)
            else:
                when = self.q.curtick + rng.choice(_DELAY_CHOICES)
                self.q.reschedule(victim, when)


def _run_pair(seed, runner):
    """Run the same seeded workload on both queues via ``runner``."""
    ref = _Workload(ReferenceEventQueue(), seed)
    hyb = _Workload(EventQueue(), seed)
    runner(ref.q)
    runner(hyb.q)
    assert ref.log, "workload fired nothing — test is vacuous"
    assert hyb.log == ref.log
    assert hyb.q.curtick == ref.q.curtick
    assert hyb.q.events_processed == ref.q.events_processed
    return ref, hyb


@pytest.mark.parametrize("seed", range(8))
def test_randomized_dispatch_matches_reference(seed):
    _run_pair(seed, lambda q: q.run())


@pytest.mark.parametrize("seed", range(4))
def test_randomized_dispatch_matches_under_until_steps(seed):
    def stepped(q):
        # March time forward in fixed strides so runs stop mid-batch,
        # mid-window, and mid-heap; the final unbounded run drains.
        for limit in range(0, 40 * _SPAN, 3 * _SPAN + 12_345):
            q.run(until=limit)
        q.run()

    _run_pair(seed, stepped)


@pytest.mark.parametrize("seed", range(4))
def test_randomized_dispatch_matches_under_max_events_steps(seed):
    def stepped(q):
        for __ in range(1000):
            q.run(max_events=7)
            if q.empty():
                break
        q.run()

    _run_pair(seed, stepped)


@pytest.mark.parametrize("seed", range(4))
def test_len_and_next_tick_track_reference(seed):
    ref = _Workload(ReferenceEventQueue(), seed)
    hyb = _Workload(EventQueue(), seed)
    for __ in range(1000):
        assert len(hyb.q) == len(ref.q)
        assert hyb.q.empty() == ref.q.empty()
        assert hyb.q.next_tick() == ref.q.next_tick()
        if hyb.q.empty():
            break
        assert hyb.q.service_one() == ref.q.service_one()
        assert hyb.log == ref.log
    assert hyb.q.empty() and ref.q.empty()


# ---------------------------------------------------------------------------
# Recycled events: a squashed entry must never fire a stale payload.
# ---------------------------------------------------------------------------
class _RecycledEvent(Event):
    """Minimal model of the link/port recycled events: one instance,
    mutable payload slot, reused as soon as ``scheduled`` is False."""

    __slots__ = ("payload", "log")

    def __init__(self, log):
        super().__init__(name="recycled")
        self.payload = None
        self.log = log

    def process(self):
        self.log.append(self.payload)


def test_recycled_event_does_not_fire_stale_payload_after_squash():
    q = EventQueue()
    log = []
    event = _RecycledEvent(log)
    event.payload = "stale"
    q.schedule(event, 100)
    q.deschedule(event)
    # Reuse the instance immediately — same tick as the squashed entry.
    event.payload = "fresh"
    q.schedule(event, 100)
    q.run()
    assert log == ["fresh"]


def test_recycled_event_squashed_mid_run_fires_only_fresh_payload():
    # The hazard inside a drain batch: an earlier event at the same tick
    # deschedules + reschedules (recycles) a later one whose squashed
    # entry is already sitting in the active batch.
    q = EventQueue()
    log = []
    recycled = _RecycledEvent(log)

    def recycle():
        q.deschedule(recycled)
        recycled.payload = "fresh"
        q.schedule(recycled, q.curtick)  # same tick, after the squashed entry

    recycled.payload = "stale"
    q.schedule_callback(50, recycle)
    q.schedule(recycled, 50)
    q.run()
    assert log == ["fresh"]


def test_recycled_event_reusable_after_firing():
    q = EventQueue()
    log = []
    event = _RecycledEvent(log)
    event.payload = 1
    q.schedule(event, 10)
    q.run()
    assert not event.scheduled
    event.payload = 2
    q.schedule(event, q.curtick + 5)
    q.run()
    assert log == [1, 2]


# ---------------------------------------------------------------------------
# Compaction and O(1) length.
# ---------------------------------------------------------------------------
class _CountingEvent(Event):
    __slots__ = ()

    def process(self):
        pass


def _physical_entries(q):
    return (len(q._heap) + len(q._active) - q._active_pos
            + sum(len(b) for b in q._buckets))


def test_compaction_drops_squashed_entries_from_all_tiers():
    q = EventQueue()
    events = []
    # Spread across several buckets and the far heap.
    for i in range(3000):
        e = _CountingEvent()
        q.schedule(e, (i % 5) * (1 << 19) + (0 if i % 3 else 2 * _SPAN))
        events.append(e)
    for e in events[:-10]:
        q.deschedule(e)
    assert len(q) == 10
    # Dead entries must have been physically compacted away, not just
    # squashed in place: 2990 squashed vs 10 live crosses the threshold
    # repeatedly.  A residue below the compaction floor may remain.
    assert q._squashed <= q.COMPACT_MIN_SQUASHED
    assert _physical_entries(q) <= len(q) + q.COMPACT_MIN_SQUASHED
    fired = 0
    while q.service_one():
        fired += 1
    assert fired == 10
    assert q.empty() and len(q) == 0


def test_len_is_a_counter_not_a_scan():
    q = EventQueue()
    events = [_CountingEvent() for __ in range(100)]
    for i, e in enumerate(events):
        q.schedule(e, i)
        assert len(q) == i + 1
    for i, e in enumerate(events[:50]):
        q.deschedule(e)
        assert len(q) == 99 - i
    assert not q.empty()
    while q.service_one():
        pass
    assert len(q) == 0 and q.empty()


def test_deep_future_wheel_jump():
    # An empty wheel with only far-heap work: the window must jump
    # straight to the heap minimum, not step bucket by bucket.
    q = EventQueue()

    class Tagged(Event):
        __slots__ = ("log", "tag")

        def __init__(self, log, tag):
            super().__init__(name=tag)
            self.log = log
            self.tag = tag

        def process(self):
            self.log.append(self.tag)

    order = []
    for tag, when in (("far", 400 * _SPAN + 7), ("near", 3),
                      ("mid", 2 * _SPAN)):
        q.schedule(Tagged(order, tag), when)
    q.run()
    assert order == ["near", "mid", "far"]
    assert q.curtick == 400 * _SPAN + 7
