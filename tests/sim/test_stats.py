"""Unit tests for the statistics framework."""

import pytest

from repro.sim.stats import Average, Distribution, Formula, Scalar, StatGroup


def test_scalar_increments_and_resets():
    s = Scalar("packets")
    s.inc()
    s.inc(4)
    assert s.value() == 5
    s.reset()
    assert s.value() == 0


def test_scalar_iadd():
    s = Scalar("bytes")
    s += 64
    s += 64
    assert s.value() == 128


def test_scalar_set():
    s = Scalar("gauge")
    s.set(7)
    assert s.value() == 7


def test_scalar_requires_name():
    with pytest.raises(ValueError):
        Scalar("")


def test_average():
    a = Average("occupancy")
    assert a.value() == 0.0
    for v in (1, 2, 3):
        a.sample(v)
    assert a.value() == pytest.approx(2.0)
    assert a.count == 3


def test_distribution_statistics():
    d = Distribution("latency")
    for v in (10, 20, 30, 40):
        d.sample(v)
    assert d.count == 4
    assert d.mean == pytest.approx(25.0)
    assert d.minimum == 10
    assert d.maximum == 40
    assert d.stddev == pytest.approx(12.9099, rel=1e-3)


def test_distribution_single_sample_has_zero_stddev():
    d = Distribution("latency")
    d.sample(5)
    assert d.stddev == 0.0


def test_distribution_dump_keys():
    d = Distribution("lat")
    d.sample(1)
    dump = d.dump()
    assert set(dump) == {"::count", "::mean", "::stddev", "::min", "::max"}


def test_formula_computes_from_other_stats():
    bytes_moved = Scalar("bytes")
    seconds = Scalar("seconds")
    throughput = Formula("bw", lambda: bytes_moved.value() / seconds.value())
    bytes_moved.inc(100)
    seconds.set(4)
    assert throughput.value() == 25.0


def test_formula_swallows_division_by_zero():
    f = Formula("ratio", lambda: 1 / 0)
    assert f.value() == 0.0


def test_group_dump_flattens_tree():
    root = StatGroup("system")
    root.scalar("ticks").inc(10)
    child = root.add_child(StatGroup("pcie"))
    child.scalar("replays").inc(3)
    flat = root.dump()
    assert flat["system.ticks"] == 10
    assert flat["system.pcie.replays"] == 3


def test_group_reset_recurses():
    root = StatGroup("r")
    s1 = root.scalar("a")
    child = root.add_child(StatGroup("c"))
    s2 = child.scalar("b")
    s1.inc(1)
    s2.inc(2)
    root.reset()
    assert s1.value() == 0
    assert s2.value() == 0


def test_pretty_output_contains_all_keys():
    root = StatGroup("top")
    root.scalar("x").inc(1)
    root.distribution("d").sample(2.5)
    text = root.pretty()
    assert "top.x" in text
    assert "top.d::mean" in text
