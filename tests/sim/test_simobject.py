"""Unit tests for SimObject / Simulator."""

import pytest

from repro.sim.simobject import SimObject, Simulator


def test_full_name_walks_parents():
    sim = Simulator()
    system = SimObject(sim, "system")
    pcie = SimObject(sim, "pcie", parent=system)
    port = SimObject(sim, "port0", parent=pcie)
    assert port.full_name == "system.pcie.port0"
    assert system.children == [pcie]
    assert pcie.children == [port]


def test_name_must_be_non_empty():
    sim = Simulator()
    with pytest.raises(ValueError):
        SimObject(sim, "")


def test_find_by_full_name():
    sim = Simulator()
    system = SimObject(sim, "system")
    child = SimObject(sim, "dev", parent=system)
    assert sim.find("system.dev") is child
    assert sim.find("nope") is None


def test_stats_nest_under_parent():
    sim = Simulator()
    system = SimObject(sim, "system")
    dev = SimObject(sim, "dev", parent=system)
    dev.stats.scalar("count").inc(2)
    assert sim.dump_stats()["system.dev.count"] == 2


def test_schedule_helper_uses_relative_delay():
    sim = Simulator()
    obj = SimObject(sim, "obj")
    fired = []
    obj.schedule(100, lambda: fired.append(sim.curtick))
    sim.run()
    assert fired == [100]
    assert obj.curtick == 100


def test_two_simulators_are_independent():
    sim_a, sim_b = Simulator("a"), Simulator("b")
    obj_a = SimObject(sim_a, "x")
    obj_a.schedule(10, lambda: None)
    sim_b.run()
    assert sim_b.curtick == 0
    sim_a.run()
    assert sim_a.curtick == 10


def test_reset_stats():
    sim = Simulator()
    obj = SimObject(sim, "obj")
    counter = obj.stats.scalar("n")
    counter.inc(5)
    sim.reset_stats()
    assert counter.value() == 0
