"""Unit tests for SimObject / Simulator."""

import pytest

from repro.sim.simobject import SimObject, Simulator


def test_full_name_walks_parents():
    sim = Simulator()
    system = SimObject(sim, "system")
    pcie = SimObject(sim, "pcie", parent=system)
    port = SimObject(sim, "port0", parent=pcie)
    assert port.full_name == "system.pcie.port0"
    assert system.children == [pcie]
    assert pcie.children == [port]


def test_name_must_be_non_empty():
    sim = Simulator()
    with pytest.raises(ValueError):
        SimObject(sim, "")


def test_find_by_full_name():
    sim = Simulator()
    system = SimObject(sim, "system")
    child = SimObject(sim, "dev", parent=system)
    assert sim.find("system.dev") is child
    assert sim.find("nope") is None


def test_stats_nest_under_parent():
    sim = Simulator()
    system = SimObject(sim, "system")
    dev = SimObject(sim, "dev", parent=system)
    dev.stats.scalar("count").inc(2)
    assert sim.dump_stats()["system.dev.count"] == 2


def test_schedule_helper_uses_relative_delay():
    sim = Simulator()
    obj = SimObject(sim, "obj")
    fired = []
    obj.schedule(100, lambda: fired.append(sim.curtick))
    sim.run()
    assert fired == [100]
    assert obj.curtick == 100


def test_two_simulators_are_independent():
    sim_a, sim_b = Simulator("a"), Simulator("b")
    obj_a = SimObject(sim_a, "x")
    obj_a.schedule(10, lambda: None)
    sim_b.run()
    assert sim_b.curtick == 0
    sim_a.run()
    assert sim_a.curtick == 10


def test_reset_stats():
    sim = Simulator()
    obj = SimObject(sim, "obj")
    counter = obj.stats.scalar("n")
    counter.inc(5)
    sim.reset_stats()
    assert counter.value() == 0


def test_duplicate_full_name_rejected():
    sim = Simulator()
    system = SimObject(sim, "system")
    SimObject(sim, "dev", parent=system)
    with pytest.raises(ValueError, match="duplicate SimObject full name"):
        SimObject(sim, "dev", parent=system)


def test_same_leaf_name_under_different_parents_is_fine():
    sim = Simulator()
    a = SimObject(sim, "a")
    b = SimObject(sim, "b")
    dev_a = SimObject(sim, "dev", parent=a)
    dev_b = SimObject(sim, "dev", parent=b)
    assert sim.find("a.dev") is dev_a
    assert sim.find("b.dev") is dev_b


def test_on_exit_fires_once_at_drain_in_order():
    sim = Simulator()
    obj = SimObject(sim, "obj")
    fired = []
    sim.on_exit(lambda: fired.append(("first", sim.curtick)))
    sim.on_exit(lambda: fired.append(("second", sim.curtick)))
    obj.schedule(50, lambda: None)
    sim.run()
    assert fired == [("first", 50), ("second", 50)]
    # Consumed: a later drained run does not re-fire old registrations.
    obj.schedule(10, lambda: None)
    sim.run()
    assert len(fired) == 2


def test_on_exit_waits_for_a_drained_run():
    sim = Simulator()
    obj = SimObject(sim, "obj")
    fired = []
    sim.on_exit(lambda: fired.append(sim.curtick))
    obj.schedule(10, lambda: None)
    obj.schedule(100, lambda: None)
    sim.run(until=20)
    assert fired == [], "queue still holds the tick-100 event"
    sim.run()
    assert fired == [100]


def test_schedule_label_is_lazy():
    # check=False keeps the checker's context ring off the tracer, so
    # the tracer is genuinely disabled even under REPRO_CHECK=on.
    sim = Simulator(check=False)
    system = SimObject(sim, "system")
    dev = SimObject(sim, "dev", parent=system)

    def tick():
        pass

    cold = dev.schedule(5, tick)
    assert cold.name == "tick", "untraced schedules keep the bare __name__"
    sim.tracer.enabled = True
    hot = dev.schedule(6, tick)
    assert hot.name == "system.dev.tick"
