"""The simulation-engine registry (:mod:`repro.sim.backend`)."""

import pytest

from repro.pcie.link import PcieLink
from repro.pcie.timing import PcieGen
from repro.sim.backend import (
    BACKEND_ENV,
    DEFAULT_BACKEND,
    Backend,
    backend_names,
    default_backend_name,
    register,
    resolve,
)
from repro.sim.backend import _REGISTRY
from repro.sim.eventq import EventQueue, ReferenceEventQueue
from repro.sim.simobject import Simulator


def test_builtin_backends_registered():
    assert {"reference", "hybrid", "turbo"} <= set(backend_names())
    assert DEFAULT_BACKEND == "hybrid"


def test_resolve_by_name():
    assert resolve("reference").name == "reference"
    assert resolve("turbo").link_fastpath is True
    assert resolve("hybrid").link_fastpath is False
    assert resolve("reference").link_fastpath is False


def test_resolve_unknown_name_lists_choices():
    with pytest.raises(ValueError, match="unknown simulation backend"):
        resolve("bogus")
    with pytest.raises(ValueError, match="hybrid"):
        resolve("bogus")


def test_resolve_none_uses_default(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    assert default_backend_name() == "hybrid"
    assert resolve(None).name == "hybrid"
    assert resolve().name == "hybrid"


def test_env_var_selects_default(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "turbo")
    assert default_backend_name() == "turbo"
    assert resolve(None).name == "turbo"
    # An explicit name still beats the environment.
    assert resolve("reference").name == "reference"


def test_env_var_whitespace_falls_back(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "  ")
    assert default_backend_name() == "hybrid"


def test_env_var_typo_fails_loudly(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "trubo")
    with pytest.raises(ValueError, match="trubo"):
        resolve(None)


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register(Backend("hybrid", "imposter", lambda name: EventQueue(name)))


def test_register_new_backend():
    backend = Backend("test-engine", "registry test double",
                      lambda name: ReferenceEventQueue(name))
    try:
        assert register(backend) is backend
        assert resolve("test-engine") is backend
        assert "test-engine" in backend_names()
    finally:
        _REGISTRY.pop("test-engine", None)


def test_simulator_builds_queue_through_backend(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    assert isinstance(Simulator("default").eventq, EventQueue)
    assert isinstance(Simulator("ref", backend="reference").eventq,
                      ReferenceEventQueue)
    turbo = Simulator("turbo", backend="turbo")
    assert isinstance(turbo.eventq, EventQueue)
    assert turbo.backend.link_fastpath is True


def test_simulator_honours_env_backend(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "reference")
    sim = Simulator("env")
    assert sim.backend.name == "reference"
    assert isinstance(sim.eventq, ReferenceEventQueue)


def test_link_fastpath_installed_only_under_turbo():
    for name, installed in (("reference", False), ("hybrid", False),
                            ("turbo", True)):
        sim = Simulator("wiring", backend=name)
        link = PcieLink(sim, "link", gen=PcieGen.GEN2, width=1,
                        ack_policy="immediate")
        assert (link.fastpath is not None) is installed, name


def test_link_fastpath_static_eligibility():
    """Error injection and timer-coalesced ACKs stay event-by-event."""
    sim = Simulator("eligibility", backend="turbo")
    assert PcieLink(sim, "errs", gen=PcieGen.GEN2, width=1,
                    ack_policy="immediate",
                    error_rate=1e-6).fastpath is None
    assert PcieLink(sim, "derrs", gen=PcieGen.GEN2, width=1,
                    ack_policy="immediate",
                    dllp_error_rate=1e-6).fastpath is None
    assert PcieLink(sim, "timer", gen=PcieGen.GEN2, width=1,
                    ack_policy="timer").fastpath is None
    assert PcieLink(sim, "plain", gen=PcieGen.GEN2, width=1,
                    ack_policy="immediate").fastpath is not None
