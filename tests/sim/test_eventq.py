"""Unit tests for the event queue."""

import pytest

from repro.sim.eventq import CallbackEvent, Event, EventQueue


class RecordingEvent(Event):
    def __init__(self, log, tag, **kwargs):
        super().__init__(**kwargs)
        self.log = log
        self.tag = tag

    def process(self):
        self.log.append(self.tag)


def test_events_fire_in_tick_order():
    q = EventQueue()
    log = []
    q.schedule(RecordingEvent(log, "c"), 30)
    q.schedule(RecordingEvent(log, "a"), 10)
    q.schedule(RecordingEvent(log, "b"), 20)
    q.run()
    assert log == ["a", "b", "c"]
    assert q.curtick == 30


def test_same_tick_orders_by_priority_then_insertion():
    q = EventQueue()
    log = []
    q.schedule(RecordingEvent(log, "low", priority=10), 5)
    q.schedule(RecordingEvent(log, "first", priority=0), 5)
    q.schedule(RecordingEvent(log, "second", priority=0), 5)
    q.run()
    assert log == ["first", "second", "low"]


def test_schedule_in_past_raises():
    q = EventQueue()
    q.schedule_callback(10, lambda: None)
    q.run()
    assert q.curtick == 10
    with pytest.raises(ValueError):
        q.schedule(CallbackEvent(lambda: None), 5)


def test_double_schedule_raises():
    q = EventQueue()
    ev = CallbackEvent(lambda: None)
    q.schedule(ev, 10)
    with pytest.raises(RuntimeError):
        q.schedule(ev, 20)


def test_deschedule_prevents_firing():
    q = EventQueue()
    log = []
    ev = RecordingEvent(log, "x")
    q.schedule(ev, 10)
    q.deschedule(ev)
    q.run()
    assert log == []
    assert not ev.scheduled


def test_deschedule_unscheduled_raises():
    q = EventQueue()
    with pytest.raises(RuntimeError):
        q.deschedule(CallbackEvent(lambda: None))


def test_reschedule_moves_event():
    q = EventQueue()
    log = []
    ev = RecordingEvent(log, "x")
    q.schedule(ev, 10)
    q.reschedule(ev, 50)
    q.schedule(RecordingEvent(log, "y"), 20)
    q.run()
    assert log == ["y", "x"]
    assert q.curtick == 50


def test_event_can_be_rescheduled_after_firing():
    q = EventQueue()
    log = []
    ev = RecordingEvent(log, "x")
    q.schedule(ev, 10)
    q.run()
    q.schedule(ev, 20)
    q.run()
    assert log == ["x", "x"]


def test_run_until_limit_advances_clock_to_limit():
    q = EventQueue()
    log = []
    q.schedule(RecordingEvent(log, "a"), 10)
    q.schedule(RecordingEvent(log, "b"), 100)
    end = q.run(until=50)
    assert log == ["a"]
    assert end == 50
    q.run()
    assert log == ["a", "b"]


def test_events_scheduled_during_processing_fire():
    q = EventQueue()
    log = []

    def chain(n):
        log.append(n)
        if n < 3:
            q.schedule_callback(10, lambda: chain(n + 1))

    q.schedule_callback(0, lambda: chain(0))
    q.run()
    assert log == [0, 1, 2, 3]
    assert q.curtick == 30


def test_stop_from_within_event():
    q = EventQueue()
    log = []
    q.schedule_callback(10, lambda: (log.append("a"), q.stop()))
    q.schedule_callback(20, lambda: log.append("b"))
    q.run()
    assert log == ["a"]
    q.run()
    assert log == ["a", "b"]


def test_max_events_guard():
    q = EventQueue()
    log = []
    for i in range(10):
        q.schedule(RecordingEvent(log, i), i)
    q.run(max_events=4)
    assert log == [0, 1, 2, 3]


def test_len_excludes_squashed():
    q = EventQueue()
    ev = CallbackEvent(lambda: None)
    q.schedule(ev, 10)
    q.schedule_callback(20, lambda: None)
    assert len(q) == 2
    q.deschedule(ev)
    assert len(q) == 1


def test_next_tick_and_empty():
    q = EventQueue()
    assert q.empty()
    assert q.next_tick() is None
    ev = CallbackEvent(lambda: None)
    q.schedule(ev, 42)
    assert q.next_tick() == 42
    q.deschedule(ev)
    assert q.empty()


def test_events_processed_counter():
    q = EventQueue()
    for i in range(5):
        q.schedule_callback(i, lambda: None)
    q.run()
    assert q.events_processed == 5
