"""Unit tests for the IOCache."""

import pytest

from repro.mem.iocache import IOCache
from repro.mem.packet import MemCmd, Packet
from repro.sim import ticks
from repro.sim.simobject import Simulator

from tests.mem.helpers import FakeMaster, FakeSlave


def build(sim, **kwargs):
    cache = IOCache(sim, "iocache", **kwargs)
    master = FakeMaster(sim)
    mem = FakeSlave(sim, "mem", latency=ticks.from_ns(30))
    master.port.bind(cache.cpu_side)
    cache.mem_side.bind(mem.port)
    return cache, master, mem


def test_geometry_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        IOCache(sim, "bad", size=1000, line_size=64, assoc=4)


def test_read_miss_then_hit():
    sim = Simulator()
    cache, master, mem = build(sim)
    master.read(0x1000, 64)
    sim.run()
    assert cache.misses.value() == 1
    assert len(mem.requests) == 1
    first_latency = master.response_ticks[0]

    master.read(0x1000, 64)
    sim.run()
    assert cache.hits.value() == 1
    assert len(mem.requests) == 1  # no new memory traffic
    second_latency = master.response_ticks[1] - first_latency
    assert second_latency < first_latency


def test_full_line_write_allocates_without_fetch():
    sim = Simulator()
    cache, master, mem = build(sim)
    master.write(0x2000, 64)
    sim.run()
    assert cache.allocations.value() == 1
    assert mem.requests == []  # absorbed by the cache
    assert master.responses[0].cmd is MemCmd.WRITE_RESP


def test_partial_write_is_write_through():
    sim = Simulator()
    cache, master, mem = build(sim)
    master.write(0x2000, 8, data=bytes(8))
    sim.run()
    assert len(mem.requests) == 1
    assert mem.requests[0].size == 8
    assert len(master.responses) == 1


def test_dirty_eviction_emits_writeback():
    sim = Simulator()
    # 1 KiB, 64B lines, assoc 4 -> 4 sets; 5 distinct lines mapping to one
    # set force an eviction.  Set index = (addr//64) % 4.
    cache, master, mem = build(sim, size=1024, line_size=64, assoc=4)
    stride = 4 * 64  # same set each time
    for i in range(5):
        master.write(0x10000 + i * stride, 64)
    sim.run()
    assert cache.allocations.value() == 5
    assert cache.writebacks.value() == 1
    writebacks = [p for p in mem.requests if p.cmd is MemCmd.WRITE_REQ]
    assert len(writebacks) == 1
    assert writebacks[0].addr == 0x10000  # LRU victim


def test_write_hit_marks_dirty_no_memory_traffic():
    sim = Simulator()
    cache, master, mem = build(sim)
    master.write(0x3000, 64)
    master.write(0x3000, 64)
    sim.run()
    assert cache.hits.value() == 1
    assert mem.requests == []


def test_read_fill_after_miss_is_clean():
    sim = Simulator()
    cache, master, mem = build(sim, size=1024, line_size=64, assoc=4)
    master.read(0x4000, 64)
    sim.run()
    # Evicting a clean line must not produce a writeback.
    stride = 4 * 64
    for i in range(1, 5):
        master.read(0x4000 + i * stride, 64)
    sim.run()
    assert cache.writebacks.value() == 0


def test_sustained_dma_write_stream_all_completes():
    sim = Simulator()
    cache, master, mem = build(sim, writeback_entries=4)
    for i in range(64):
        master.write(0x100000 + i * 64, 64)
    sim.run(max_events=200_000)
    assert len(master.responses) == 64
    # A 1 KiB cache cannot hold 4 KiB of writes: most lines were evicted
    # dirty and written back.
    assert cache.writebacks.value() >= 40


def test_posted_partial_writes_never_hold_mshrs():
    # MSI messages are partial posted writes: memory never acknowledges
    # them, so holding an MSHR per message would leak the slot and
    # refuse all DMA after ``mshrs`` interrupts (the irq_storm wedge).
    sim = Simulator()
    cache, master, mem = build(sim, mshrs=4)
    for i in range(3 * cache.mshrs):
        pkt = Packet(MemCmd.MESSAGE, 0x10000000, 4, data=bytes(4),
                     requestor=master.full_name, create_tick=sim.curtick)
        master._queue.push(pkt, 0)
    sim.run()
    # Every message reached memory; none is parked awaiting an ack.
    messages = [p for p in mem.requests if p.cmd == MemCmd.MESSAGE]
    assert len(messages) == 3 * cache.mshrs
    assert len(cache._outstanding) == 0
    # The cache still serves reads afterwards — no wedged MSHRs.
    master.read(0x1000, 64)
    sim.run()
    assert len(master.responses) == 1
