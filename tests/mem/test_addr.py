"""Unit tests for address ranges."""

import pytest

from repro.mem.addr import AddrRange, disjoint, union_span


def test_contains_half_open():
    r = AddrRange(0x1000, 0x100)
    assert r.contains(0x1000)
    assert r.contains(0x10FF)
    assert not r.contains(0x1100)
    assert not r.contains(0xFFF)
    assert 0x1000 in r


def test_size_and_end():
    r = AddrRange(0x2000, end=0x3000)
    assert r.size == 0x1000
    assert AddrRange(0x2000, 0x1000) == r


def test_negative_range_rejected():
    with pytest.raises(ValueError):
        AddrRange(0x1000, end=0x500)


def test_overlaps():
    a = AddrRange(0x0, 0x100)
    b = AddrRange(0x80, 0x100)
    c = AddrRange(0x100, 0x100)
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c)  # half-open intervals touching don't overlap


def test_contains_range():
    outer = AddrRange(0x0, 0x1000)
    inner = AddrRange(0x100, 0x100)
    assert outer.contains_range(inner)
    assert not inner.contains_range(outer)
    assert outer.contains_range(outer)


def test_offset():
    r = AddrRange(0x1000, 0x100)
    assert r.offset(0x1040) == 0x40
    with pytest.raises(ValueError):
        r.offset(0x2000)


def test_hash_and_equality():
    assert len({AddrRange(0, 10), AddrRange(0, 10), AddrRange(0, 11)}) == 2


def test_union_span():
    span = union_span([AddrRange(0x4000, 0x100), AddrRange(0x1000, 0x100)])
    assert span.start == 0x1000
    assert span.end == 0x4100


def test_union_span_empty_raises():
    with pytest.raises(ValueError):
        union_span([])


def test_disjoint():
    assert disjoint([AddrRange(0, 10), AddrRange(10, 10), AddrRange(100, 5)])
    assert not disjoint([AddrRange(0, 11), AddrRange(10, 10)])
