"""Unit tests for ports, the retry protocol, and PacketQueue."""

import pytest

from repro.mem.packet import MemCmd, Packet
from repro.mem.port import MasterPort, PacketQueue, PortError, SlavePort
from repro.sim.simobject import SimObject, Simulator

from tests.mem.helpers import FakeMaster, FakeSlave


def make_pair(sim):
    owner_m = SimObject(sim, "m")
    owner_s = SimObject(sim, "s")
    master = MasterPort(owner_m, "port")
    slave = SlavePort(owner_s, "port")
    master.bind(slave)
    return master, slave


def test_bind_is_symmetric():
    sim = Simulator()
    master, slave = make_pair(sim)
    assert master.peer is slave
    assert slave.peer is master
    assert master.bound and slave.bound


def test_double_bind_raises():
    sim = Simulator()
    master, slave = make_pair(sim)
    other = MasterPort(SimObject(sim, "o"), "port")
    with pytest.raises(PortError):
        other.bind(slave)


def test_bind_type_checked():
    sim = Simulator()
    master = MasterPort(SimObject(sim, "m"), "port")
    with pytest.raises(TypeError):
        master.bind(master)


def test_unbound_send_raises():
    sim = Simulator()
    master = MasterPort(SimObject(sim, "m"), "port")
    with pytest.raises(PortError):
        master.send_timing_req(Packet(MemCmd.READ_REQ, 0, 4))


def test_send_req_delivers_to_handler():
    sim = Simulator()
    master, slave = make_pair(sim)
    got = []
    slave.recv_timing_req = lambda pkt: (got.append(pkt), True)[1]
    pkt = Packet(MemCmd.READ_REQ, 0x10, 4)
    assert master.send_timing_req(pkt)
    assert got == [pkt]


def test_response_through_wrong_direction_raises():
    sim = Simulator()
    master, slave = make_pair(sim)
    with pytest.raises(PortError):
        master.send_timing_req(Packet(MemCmd.READ_RESP, 0, 4))
    with pytest.raises(PortError):
        slave.send_timing_resp(Packet(MemCmd.READ_REQ, 0, 4))


def test_refusal_marks_retry_owed():
    sim = Simulator()
    master, slave = make_pair(sim)
    slave.recv_timing_req = lambda pkt: False
    master.recv_req_retry = lambda: None
    assert not master.send_timing_req(Packet(MemCmd.READ_REQ, 0, 4))
    assert master.waiting_for_req_retry
    assert slave.retry_owed
    slave.send_retry_req()
    assert not slave.retry_owed
    assert not master.waiting_for_req_retry


def test_retry_without_refusal_raises():
    # With the invariant checker enabled (REPRO_CHECK=on) the same
    # illegal double retry surfaces as an InvariantViolation before the
    # port machinery can raise its PortError; both are correct.
    from repro.check import InvariantViolation

    sim = Simulator()
    master, slave = make_pair(sim)
    with pytest.raises((PortError, InvariantViolation)):
        slave.send_retry_req()
    with pytest.raises((PortError, InvariantViolation)):
        master.send_retry_resp()


def test_resp_retry_owed_property_mirrors_state():
    # Public mirror of SlavePort.retry_owed for the response direction:
    # owners (the link interface) must never reach into the private
    # _resp_retry_owed attribute.
    sim = Simulator()
    master, slave = make_pair(sim)
    master.recv_timing_resp = lambda pkt: False
    slave.recv_timing_req = lambda pkt: True
    slave.recv_resp_retry = lambda: None
    req = Packet(MemCmd.READ_REQ, 0x10, 4)
    assert master.send_timing_req(req)
    assert not master.resp_retry_owed
    assert not slave.send_timing_resp(req.make_response())
    assert master.resp_retry_owed
    master.send_retry_resp()
    assert not master.resp_retry_owed


def test_unwired_handler_raises():
    sim = Simulator()
    master, slave = make_pair(sim)
    with pytest.raises(PortError):
        master.send_timing_req(Packet(MemCmd.READ_REQ, 0, 4))


def test_master_slave_round_trip():
    sim = Simulator()
    master = FakeMaster(sim)
    slave = FakeSlave(sim, latency=100)
    master.port.bind(slave.port)
    master.read(0x1000, 64)
    sim.run()
    assert len(slave.requests) == 1
    assert len(master.responses) == 1
    assert master.responses[0].cmd is MemCmd.READ_RESP
    assert master.response_ticks[0] == 100


def test_backpressure_via_retry():
    sim = Simulator()
    master = FakeMaster(sim)
    slave = FakeSlave(sim, latency=100, max_outstanding=2)
    master.port.bind(slave.port)
    for i in range(6):
        master.read(0x1000 + i * 64, 64)
    sim.run()
    # All six eventually complete despite the 2-entry bound.
    assert len(master.responses) == 6
    # They complete in waves of two per 100-tick service window.
    assert master.response_ticks == [100, 100, 200, 200, 300, 300]


def test_slave_ranges():
    sim = Simulator()
    from repro.mem.addr import AddrRange

    slave = SlavePort(SimObject(sim, "s"), "port", ranges=[AddrRange(0x0, 0x100)])
    assert slave.get_ranges() == [AddrRange(0x0, 0x100)]
    slave.set_ranges([AddrRange(0x200, 0x100)])
    assert slave.get_ranges() == [AddrRange(0x200, 0x100)]


# --- PacketQueue --------------------------------------------------------------


def test_packet_queue_capacity():
    sim = Simulator()
    owner = SimObject(sim, "o")
    q = PacketQueue(owner, "q", lambda pkt: True, capacity=2)
    assert q.push(Packet(MemCmd.READ_REQ, 0, 4))
    assert q.push(Packet(MemCmd.READ_REQ, 4, 4))
    # Third push while nothing drained yet this tick... drain happens via
    # events, so both are still queued.
    assert q.full
    assert not q.push(Packet(MemCmd.READ_REQ, 8, 4))
    assert q.refused.value() == 1


def test_packet_queue_capacity_validated():
    sim = Simulator()
    owner = SimObject(sim, "o")
    with pytest.raises(ValueError):
        PacketQueue(owner, "q", lambda pkt: True, capacity=0)


def test_packet_queue_honours_ready_delay():
    sim = Simulator()
    owner = SimObject(sim, "o")
    sent = []
    q = PacketQueue(owner, "q", lambda pkt: (sent.append(sim.curtick), True)[1], 8)
    q.push(Packet(MemCmd.READ_REQ, 0, 4), delay=50)
    q.push(Packet(MemCmd.READ_REQ, 4, 4), delay=10)
    sim.run()
    # FIFO: the second packet cannot pass the first even though its own
    # ready time is earlier.
    assert sent == [50, 50]


def test_packet_queue_waits_for_retry():
    sim = Simulator()
    owner = SimObject(sim, "o")
    accept = {"ok": False}
    sent = []

    def send(pkt):
        if accept["ok"]:
            sent.append(pkt)
            return True
        return False

    q = PacketQueue(owner, "q", send, 8)
    q.push(Packet(MemCmd.READ_REQ, 0, 4))
    sim.run()
    assert sent == []
    accept["ok"] = True
    q.retry()
    sim.run()
    assert len(sent) == 1


def test_packet_queue_space_freed_callback():
    sim = Simulator()
    owner = SimObject(sim, "o")
    freed = []
    q = PacketQueue(owner, "q", lambda pkt: True, 4)
    q.on_space_freed = lambda: freed.append(sim.curtick)
    q.push(Packet(MemCmd.READ_REQ, 0, 4), delay=10)
    sim.run()
    assert freed == [10]
