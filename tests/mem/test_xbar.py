"""Unit tests for the crossbars."""

import pytest

from repro.mem.addr import AddrRange
from repro.mem.packet import MemCmd, Packet
from repro.mem.port import PortError
from repro.mem.xbar import CoherentXBar, NoncoherentXBar
from repro.sim.simobject import Simulator

from tests.mem.helpers import FakeMaster, FakeSlave


def build_xbar(sim, n_slaves=2, **kwargs):
    xbar = NoncoherentXBar(sim, "iobus", **kwargs)
    master = FakeMaster(sim)
    master.port.bind(xbar.attach_master("cpu"))
    slaves = []
    for i in range(n_slaves):
        slave = FakeSlave(
            sim,
            f"dev{i}",
            ranges=[AddrRange(0x1000 * (i + 1), 0x1000)],
            latency=100,
        )
        slave.port.bind(xbar.attach_slave(f"dev{i}_side"))
        slaves.append(slave)
    return xbar, master, slaves


def test_routes_by_address_range():
    sim = Simulator()
    xbar, master, (dev0, dev1) = build_xbar(sim)
    master.read(0x1100, 64)
    master.read(0x2100, 64)
    sim.run()
    assert len(dev0.requests) == 1 and dev0.requests[0].addr == 0x1100
    assert len(dev1.requests) == 1 and dev1.requests[0].addr == 0x2100
    assert len(master.responses) == 2


def test_unclaimed_address_raises_without_default():
    sim = Simulator()
    xbar, master, _ = build_xbar(sim)
    master.read(0xDEAD0000, 64)
    with pytest.raises(PortError):
        sim.run()


def test_default_port_catches_unclaimed():
    sim = Simulator()
    xbar = NoncoherentXBar(sim, "bus")
    master = FakeMaster(sim)
    master.port.bind(xbar.attach_master("cpu"))
    dev = FakeSlave(sim, "dev", ranges=[AddrRange(0x1000, 0x1000)])
    dev.port.bind(xbar.attach_slave("dev_side"))
    catchall = FakeSlave(sim, "mem", ranges=[])
    default_port = xbar.attach_slave("mem_side")
    catchall.port.bind(default_port)
    xbar.set_default_port(default_port)
    master.read(0xDEAD0000, 64)
    sim.run()
    assert len(catchall.requests) == 1


def test_default_port_must_belong_to_xbar():
    sim = Simulator()
    xbar_a = NoncoherentXBar(sim, "a")
    xbar_b = NoncoherentXBar(sim, "b")
    foreign = xbar_b.attach_slave("x")
    with pytest.raises(ValueError):
        xbar_a.set_default_port(foreign)


def test_responses_return_to_originating_port():
    sim = Simulator()
    xbar = NoncoherentXBar(sim, "bus")
    masters = []
    for i in range(2):
        m = FakeMaster(sim, f"m{i}")
        m.port.bind(xbar.attach_master(f"cpu{i}"))
        masters.append(m)
    dev = FakeSlave(sim, "dev", ranges=[AddrRange(0x1000, 0x1000)])
    dev.port.bind(xbar.attach_slave("dev_side"))
    masters[0].read(0x1000, 64)
    masters[1].read(0x1040, 64)
    sim.run()
    assert len(masters[0].responses) == 1
    assert len(masters[1].responses) == 1
    assert masters[0].responses[0].addr == 0x1000
    assert masters[1].responses[0].addr == 0x1040
    assert xbar.outstanding_responses == 0


def test_latency_applied():
    sim = Simulator()
    xbar, master, (dev0, _) = build_xbar(sim)
    master.read(0x1000, 64)
    sim.run()
    # Request path: frontend + serialization + forward; read request has
    # no payload so serialization is 0 ticks.
    expected_req_arrival = xbar.frontend_latency + xbar.forward_latency
    assert dev0.request_ticks[0] == expected_req_arrival
    # Response carries 64B payload: ceil(64/16)=4 ticks serialization.
    expected_resp = expected_req_arrival + 100 + xbar.frontend_latency + 4 + xbar.forward_latency
    assert master.response_ticks[0] == expected_resp


def test_serialization_spaces_back_to_back_packets():
    sim = Simulator()
    xbar = NoncoherentXBar(sim, "bus", frontend_latency=10, forward_latency=0, width=1)
    master = FakeMaster(sim)
    master.port.bind(xbar.attach_master("cpu"))
    dev = FakeSlave(sim, "dev", ranges=[AddrRange(0x0, 0x10000)], latency=0)
    dev.port.bind(xbar.attach_slave("dev_side"))
    master.write(0x0, 64)
    master.write(0x40, 64)
    sim.run()
    # Each write occupies the layer for 10 + 64 ticks.
    assert dev.request_ticks == [74, 148]


def test_posted_message_routes_without_response():
    sim = Simulator()
    xbar, master, (dev0, _) = build_xbar(sim)
    msg = Packet(MemCmd.MESSAGE, 0x1000, 4, data=bytes(4))
    master._queue.push(msg)
    sim.run()
    assert len(dev0.requests) == 1
    assert master.responses == []
    assert xbar.outstanding_responses == 0


def test_stats_count_packets():
    sim = Simulator()
    xbar, master, _ = build_xbar(sim)
    master.write(0x1000, 64)
    sim.run()
    assert xbar.pkt_count.value() == 2  # request + response
    assert xbar.bytes_moved.value() == 64  # only the write carries payload


def test_coherent_xbar_behaves_like_noncoherent():
    sim = Simulator()
    xbar = CoherentXBar(sim, "membus")
    master = FakeMaster(sim)
    master.port.bind(xbar.attach_master("cpu"))
    dev = FakeSlave(sim, "mem", ranges=[AddrRange(0x0, 0x10000)])
    dev.port.bind(xbar.attach_slave("mem_side"))
    master.read(0x40, 64)
    sim.run()
    assert len(master.responses) == 1


def test_many_requests_through_small_queues_all_complete():
    sim = Simulator()
    xbar = NoncoherentXBar(sim, "bus", queue_depth=2)
    master = FakeMaster(sim)
    master.port.bind(xbar.attach_master("cpu"))
    dev = FakeSlave(sim, "dev", ranges=[AddrRange(0x0, 0x100000)], latency=500,
                    max_outstanding=1)
    dev.port.bind(xbar.attach_slave("dev_side"))
    for i in range(20):
        master.read(i * 64, 64)
    sim.run(max_events=100_000)
    assert len(master.responses) == 20
