"""Unit tests for the simple DRAM controller."""

import pytest

from repro.mem.addr import AddrRange
from repro.mem.dram import SimpleMemory
from repro.mem.packet import MemCmd, Packet
from repro.sim import ticks
from repro.sim.simobject import Simulator

from tests.mem.helpers import FakeMaster

DRAM_BASE = 0x80000000


def build(sim, **kwargs):
    mem = SimpleMemory(sim, "dram", AddrRange(DRAM_BASE, 1 << 30), **kwargs)
    master = FakeMaster(sim)
    master.port.bind(mem.port)
    return mem, master


def test_fixed_latency_read():
    sim = Simulator()
    mem, master = build(sim, latency=ticks.from_ns(30), bandwidth=0)
    master.read(DRAM_BASE, 64)
    sim.run()
    assert master.response_ticks == [ticks.from_ns(30)]
    assert mem.reads.value() == 1
    assert mem.bytes_read.value() == 64


def test_bandwidth_serializes_consecutive_accesses():
    sim = Simulator()
    # 1 byte per tick -> a 64B access occupies 64 ticks of service.
    mem, master = build(sim, latency=0, bandwidth=1.0)
    master.read(DRAM_BASE, 64)
    master.read(DRAM_BASE + 64, 64)
    sim.run()
    assert master.response_ticks == [64, 128]


def test_zero_bandwidth_means_unlimited():
    sim = Simulator()
    mem, master = build(sim, latency=100, bandwidth=0)
    for i in range(4):
        master.read(DRAM_BASE + i * 64, 64)
    sim.run()
    assert master.response_ticks == [100] * 4


def test_write_counts_and_responds():
    sim = Simulator()
    mem, master = build(sim, latency=50, bandwidth=0)
    master.write(DRAM_BASE, 128)
    sim.run()
    assert mem.writes.value() == 1
    assert mem.bytes_written.value() == 128
    assert master.responses[0].cmd is MemCmd.WRITE_RESP


def test_outstanding_bound_backpressures():
    sim = Simulator()
    mem, master = build(sim, latency=1_000, bandwidth=0, max_outstanding=2)
    for i in range(10):
        master.read(DRAM_BASE + i * 64, 64)
    sim.run()
    assert len(master.responses) == 10


def test_posted_message_consumed_without_response():
    sim = Simulator()
    mem, master = build(sim)
    master._queue.push(Packet(MemCmd.MESSAGE, DRAM_BASE, 4, data=bytes(4)))
    sim.run()
    assert mem.writes.value() == 1
    assert master.responses == []
