"""Reusable fake devices for memory-system tests."""

from typing import List, Optional

from repro.mem.addr import AddrRange
from repro.mem.packet import MemCmd, Packet
from repro.mem.port import MasterPort, PacketQueue, SlavePort
from repro.sim.simobject import SimObject, Simulator


class FakeMaster(SimObject):
    """Issues requests through a master port; records responses.

    Queues requests internally and honours the retry protocol, so tests
    can blast packets at components with tiny buffers.
    """

    def __init__(self, sim: Simulator, name: str = "master"):
        super().__init__(sim, name)
        self.port = MasterPort(
            self,
            "port",
            recv_timing_resp=self._recv_resp,
            recv_req_retry=lambda: self._queue.retry(),
        )
        self._queue = PacketQueue(self, "outq", self.port.send_timing_req, 1024)
        self.responses: List[Packet] = []
        self.response_ticks: List[int] = []
        self.refused_responses = 0

    def read(self, addr: int, size: int = 64, delay: int = 0) -> Packet:
        pkt = Packet(MemCmd.READ_REQ, addr, size, requestor=self.full_name,
                     create_tick=self.curtick)
        self._queue.push(pkt, delay)
        return pkt

    def write(self, addr: int, size: int = 64, delay: int = 0,
              data: Optional[bytes] = None) -> Packet:
        pkt = Packet(MemCmd.WRITE_REQ, addr, size,
                     data=data if data is not None else bytes(size),
                     requestor=self.full_name, create_tick=self.curtick)
        self._queue.push(pkt, delay)
        return pkt

    def _recv_resp(self, pkt: Packet) -> bool:
        self.responses.append(pkt)
        self.response_ticks.append(self.curtick)
        return True


class FakeSlave(SimObject):
    """Responds to every request after ``latency`` ticks.

    ``max_outstanding`` bounds buffered requests; beyond it the slave
    refuses, exercising the retry path of whatever sits upstream.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "slave",
        ranges: Optional[List[AddrRange]] = None,
        latency: int = 100,
        max_outstanding: int = 64,
    ):
        super().__init__(sim, name)
        self.latency = latency
        self.max_outstanding = max_outstanding
        self._in_flight = 0
        self.port = SlavePort(
            self,
            "port",
            recv_timing_req=self._recv_req,
            recv_resp_retry=lambda: self._respq.retry(),
            ranges=ranges or [AddrRange(0, 1 << 48)],
        )
        self._respq = PacketQueue(self, "respq", self._send_resp, 4096)
        self.requests: List[Packet] = []
        self.request_ticks: List[int] = []

    def _recv_req(self, pkt: Packet) -> bool:
        if self._in_flight >= self.max_outstanding:
            return False
        self.requests.append(pkt)
        self.request_ticks.append(self.curtick)
        if not pkt.needs_response:
            return True
        self._in_flight += 1
        self._respq.push(pkt.make_response(), self.latency)
        return True

    def _send_resp(self, pkt: Packet) -> bool:
        if not self.port.send_timing_resp(pkt):
            return False
        self._in_flight -= 1
        if self.port.retry_owed:
            self.port.send_retry_req()
        return True
