"""Unit tests for packets and commands."""

import pytest

from repro.mem.packet import MemCmd, Packet


def test_command_taxonomy():
    assert MemCmd.READ_REQ.is_request and MemCmd.READ_REQ.is_read
    assert MemCmd.WRITE_RESP.is_response and MemCmd.WRITE_RESP.is_write
    assert MemCmd.CONFIG_READ_REQ.is_config
    assert not MemCmd.READ_REQ.is_config
    assert MemCmd.MESSAGE.is_request
    assert not MemCmd.MESSAGE.needs_response


def test_response_command_mapping():
    assert MemCmd.READ_REQ.response_command is MemCmd.READ_RESP
    assert MemCmd.CONFIG_WRITE_REQ.response_command is MemCmd.CONFIG_WRITE_RESP
    with pytest.raises(ValueError):
        MemCmd.READ_RESP.response_command


def test_packet_ids_unique():
    a = Packet(MemCmd.READ_REQ, 0, 64)
    b = Packet(MemCmd.READ_REQ, 0, 64)
    assert a.req_id != b.req_id


def test_pci_bus_num_initialised_to_minus_one():
    # Per the paper: "we create a PCI bus number field in the packet
    # class, and initialize it to -1."
    pkt = Packet(MemCmd.READ_REQ, 0x40000000, 64)
    assert pkt.pci_bus_num == -1


def test_make_response_preserves_identity_and_bus():
    req = Packet(MemCmd.WRITE_REQ, 0x100, 64, data=bytes(64))
    req.pci_bus_num = 2
    resp = req.make_response()
    assert resp.cmd is MemCmd.WRITE_RESP
    assert resp.req_id == req.req_id
    assert resp.pci_bus_num == 2
    assert resp.addr == req.addr


def test_read_response_gets_default_payload():
    req = Packet(MemCmd.READ_REQ, 0x0, 32)
    resp = req.make_response()
    assert resp.data == bytes(32)
    assert resp.payload_size == 32


def test_payload_size_per_paper():
    # "The maximum TLP payload size is 0 for a read request or a write
    # response and is cache line size for a write request or read response."
    read_req = Packet(MemCmd.READ_REQ, 0, 64)
    write_req = Packet(MemCmd.WRITE_REQ, 0, 64, data=bytes(64))
    assert read_req.payload_size == 0
    assert write_req.payload_size == 64
    assert read_req.make_response().payload_size == 64
    assert write_req.make_response().payload_size == 0


def test_write_payload_length_must_match():
    with pytest.raises(ValueError):
        Packet(MemCmd.WRITE_REQ, 0, 64, data=bytes(10))


def test_posted_message_has_no_response():
    msg = Packet(MemCmd.MESSAGE, 0xFEE00000, 4, data=bytes(4))
    assert msg.posted
    assert not msg.needs_response
    with pytest.raises(ValueError):
        msg.make_response()


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        Packet(MemCmd.READ_REQ, 0, -1)
